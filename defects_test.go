package hilight_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hilight"
	"hilight/internal/exp"
)

// partitionCut disables the full vertex column at x=2 of a 4×1 grid
// (vertex lattice 5×2), cutting every braiding path between the left and
// right halves while both halves stay usable.
func partitionCut() (*hilight.Grid, *hilight.DefectMap) {
	return hilight.NewGrid(4, 1), &hilight.DefectMap{Vertices: []int{2, 7}}
}

func TestUnroutablePartitionedGrid(t *testing.T) {
	g, cut := partitionCut()
	c := hilight.NewCircuit("cross-cut", 4)
	c.Add2(hilight.CX, 0, 3)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = hilight.Compile(c, g, hilight.WithMethod("identity"), hilight.WithDefects(cut))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Compile hung on a partitioned grid instead of returning ErrUnroutable")
	}
	var unroutable *hilight.ErrUnroutable
	if !errors.As(err, &unroutable) {
		t.Fatalf("got %v, want ErrUnroutable", err)
	}
	if unroutable.Gate != 0 {
		t.Fatalf("blamed gate %d, want 0", unroutable.Gate)
	}
	if unroutable.Reason == "" {
		t.Fatal("ErrUnroutable carries no reason")
	}
}

func TestWithFallback(t *testing.T) {
	g, cut := partitionCut()
	// Both gates stay within one half, so a layout that keeps the pairs
	// on their own sides routes fine. The hilight placement clusters all
	// four qubits around the center and straddles the cut; identity keeps
	// q0,q1 left and q2,q3 right.
	c := hilight.NewCircuit("pairs", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 2, 3)

	if _, err := hilight.Compile(c, g, hilight.WithDefects(cut)); err == nil {
		t.Fatal("hilight placement should fail on the partitioned strip (test premise)")
	}
	res, err := hilight.Compile(c, g, hilight.WithDefects(cut), hilight.WithFallback("identity"))
	if err != nil {
		t.Fatalf("fallback chain failed: %v", err)
	}
	if !res.Degraded || res.FallbackMethod != "identity" {
		t.Fatalf("Degraded=%v FallbackMethod=%q, want true/identity", res.Degraded, res.FallbackMethod)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}

	// A primary success must not be marked degraded.
	res, err = hilight.Compile(c, hilight.NewGrid(4, 1), hilight.WithFallback("identity"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.FallbackMethod != "" {
		t.Fatalf("pristine compile marked degraded: %+v", res)
	}

	// Unknown fallback methods fail fast, before any compile work.
	if _, err := hilight.Compile(c, g, hilight.WithFallback("nope")); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("got %v, want unknown-method error", err)
	}

	// When every chain entry fails, the primary's error is reported. The
	// gate set q0-q1, q2-q3, q0-q3 would need all four qubits on one
	// two-tile side of the cut, so NO placement can route it.
	wide := hilight.NewCircuit("wide", 4)
	wide.Add2(hilight.CX, 0, 1)
	wide.Add2(hilight.CX, 2, 3)
	wide.Add2(hilight.CX, 0, 3)
	var unroutable *hilight.ErrUnroutable
	if _, err := hilight.Compile(wide, g, hilight.WithDefects(cut), hilight.WithFallback("identity", "random")); !errors.As(err, &unroutable) {
		t.Fatalf("got %v, want primary ErrUnroutable", err)
	}
}

func TestCompileCanceled(t *testing.T) {
	c, ok := hilight.Benchmark("QFT-16")
	if !ok {
		t.Fatal("missing benchmark")
	}
	g := hilight.RectGrid(c.NumQubits)

	// Already-canceled context: no routing work may happen.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	observed := 0
	_, err := hilight.Compile(c, g,
		hilight.WithContext(ctx),
		hilight.WithObserver(func(hilight.CycleStats) { observed++ }))
	if !errors.Is(err, hilight.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if observed != 0 {
		t.Fatalf("router ran %d cycles under a dead context", observed)
	}

	// Mid-run cancellation: cancel from inside the per-cycle observer, so
	// the test is deterministic without timing games. The router must stop
	// at the next cycle boundary.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cycles := 0
	_, err = hilight.Compile(c, g,
		hilight.WithContext(ctx2),
		hilight.WithObserver(func(hilight.CycleStats) {
			cycles++
			if cycles == 2 {
				cancel2()
			}
		}))
	if !errors.Is(err, hilight.ErrCanceled) {
		t.Fatalf("mid-run cancel: got %v, want ErrCanceled", err)
	}
	if cycles > 3 {
		t.Fatalf("router ran %d cycles after cancellation", cycles)
	}

	// WithTimeout: an expired deadline surfaces as ErrCanceled too.
	if _, err := hilight.Compile(c, g, hilight.WithTimeout(time.Nanosecond)); !errors.Is(err, hilight.ErrCanceled) {
		t.Fatalf("timeout: got %v, want ErrCanceled", err)
	}

	// A generous timeout must not interfere.
	if _, err := hilight.Compile(c, g, hilight.WithTimeout(time.Minute)); err != nil {
		t.Fatalf("generous timeout failed compile: %v", err)
	}
}

func TestCompileGuards(t *testing.T) {
	small := hilight.NewCircuit("small", 2)
	small.Add2(hilight.CX, 0, 1)
	wide := hilight.NewCircuit("wide", 10)
	wide.Add2(hilight.CX, 0, 9)
	for _, method := range hilight.Methods() {
		t.Run(method, func(t *testing.T) {
			if _, err := hilight.Compile(nil, hilight.NewGrid(2, 2), hilight.WithMethod(method)); !errors.Is(err, hilight.ErrNilCircuit) {
				t.Fatalf("nil circuit: got %v, want ErrNilCircuit", err)
			}
			if _, err := hilight.Compile(small, nil, hilight.WithMethod(method)); !errors.Is(err, hilight.ErrNilGrid) {
				t.Fatalf("nil grid: got %v, want ErrNilGrid", err)
			}
			var capErr *hilight.ErrInsufficientCapacity
			_, err := hilight.Compile(wide, hilight.NewGrid(2, 2), hilight.WithMethod(method))
			if !errors.As(err, &capErr) {
				t.Fatalf("too-wide circuit: got %v, want ErrInsufficientCapacity", err)
			}
			if capErr.Need != 10 || capErr.Have != 4 {
				t.Fatalf("capacity error = %+v, want Need=10 Have=4", capErr)
			}
		})
	}

	// An invalid defect map fails cleanly and leaves the caller's grid alone.
	g := hilight.NewGrid(3, 3)
	if _, err := hilight.Compile(small, g, hilight.WithDefects(&hilight.DefectMap{Tiles: []int{99}})); err == nil {
		t.Fatal("out-of-range defect map accepted")
	}
	if g.HasDefects() {
		t.Fatal("failed WithDefects mutated the caller's grid")
	}
	res, err := hilight.Compile(small, g, hilight.WithDefects(&hilight.DefectMap{Tiles: []int{8}}))
	if err != nil {
		t.Fatal(err)
	}
	if g.HasDefects() {
		t.Fatal("WithDefects mutated the caller's grid")
	}
	if !res.Schedule.Grid.TileDefective(8) {
		t.Fatal("result grid is not the degraded clone")
	}
}

// TestDefectYieldAcceptance is the ISSUE's headline robustness bar: with
// 5% random defects at seed 1, the hilight method (with identity
// fallback) must compile at least 90% of the small Table 1 benchmarks on
// the next-larger grid, and every produced schedule must pass the
// defect-aware validator (RunDefectYield validates internally and errors
// out otherwise).
func TestDefectYieldAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("yield study is slow")
	}
	rep, err := exp.RunDefectYield(exp.Options{Scale: exp.ScaleSmall, Seed: 1, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Points {
		if p.Rate != 0.05 {
			continue
		}
		found = true
		if p.Attempts == 0 {
			t.Fatal("no attempts at the 5% point")
		}
		if sr := p.SuccessRate(); sr < 0.9 {
			t.Fatalf("5%% defect yield %.1f%% < 90%%", 100*sr)
		}
	}
	if !found {
		t.Fatal("yield study has no 5% point")
	}
}

// The three options interact: WithDefects degrades the grid, WithFallback
// swaps in a method the primary couldn't match, and WithCompaction runs
// its pipeline pass on whatever schedule the winning attempt produced.
// The compacted fallback schedule must still pass the defect-aware
// validator and must never be slower than the uncompacted one.
func TestCompactionOnFallbackDefectiveGrid(t *testing.T) {
	g, cut := partitionCut()
	c := hilight.NewCircuit("pairs", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 2, 3)

	plain, err := hilight.Compile(c, g,
		hilight.WithDefects(cut), hilight.WithFallback("identity"))
	if err != nil {
		t.Fatalf("fallback compile failed: %v", err)
	}
	res, err := hilight.Compile(c, g,
		hilight.WithDefects(cut), hilight.WithFallback("identity"), hilight.WithCompaction())
	if err != nil {
		t.Fatalf("fallback+compaction compile failed: %v", err)
	}
	if !res.Degraded || res.FallbackMethod != "identity" {
		t.Fatalf("Degraded=%v FallbackMethod=%q, want true/identity", res.Degraded, res.FallbackMethod)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("compacted fallback schedule invalid: %v", err)
	}
	if res.Schedule.Grid.Defects().Empty() {
		t.Fatal("compacted schedule lost the grid's defect map")
	}
	if res.Latency > plain.Latency {
		t.Errorf("compaction raised latency on defective grid: %d -> %d",
			plain.Latency, res.Latency)
	}
	if res.Latency != res.Schedule.Latency() {
		t.Errorf("Result.Latency %d describes a different schedule (latency %d)",
			res.Latency, res.Schedule.Latency())
	}
	found := false
	for _, st := range res.Trace {
		if st.Stage == "compact" {
			found = true
		}
	}
	if !found {
		t.Errorf("compact stage missing from trace of a WithCompaction compile")
	}
}
