package hilight_test

// Determinism suite for the parallel route pass (ISSUE 6): across worker
// counts AND across GOMAXPROCS settings, the *-parallel methods must
// emit byte-identical encoded schedules on the Table-1 circuit set. The
// suite runs under `go test -race`, so it also proves the speculation
// rounds are data-race-free while pinning the determinism contract that
// lets Fingerprint exclude WithRouteWorkers.

import (
	"bytes"
	"runtime"
	"testing"

	"hilight"
)

// determinismBenchmarks is the Table-1 subset the suite compiles: small
// enough to sweep 3 worker counts × 3 GOMAXPROCS settings per circuit,
// varied enough to cover chain-, block-, and all-to-all-shaped DAGs.
var determinismBenchmarks = []string{"QFT-16", "Ising-10", "sqrt8_260"}

func compileParallel(t *testing.T, name string, workers int) []byte {
	t.Helper()
	c, ok := hilight.Benchmark(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	g := hilight.RectGrid(c.NumQubits)
	res, err := hilight.Compile(c, g,
		hilight.WithMethod("hilight-parallel"),
		hilight.WithRouteWorkers(workers))
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("%s workers=%d: invalid schedule: %v", name, workers, err)
	}
	enc, err := hilight.EncodeScheduleJSON(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestParallelDeterminismAcrossWorkersAndGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range determinismBenchmarks {
		t.Run(name, func(t *testing.T) {
			var want []byte
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				for _, workers := range []int{1, 2, 8} {
					enc := compileParallel(t, name, workers)
					if want == nil {
						want = enc
						continue
					}
					if !bytes.Equal(want, enc) {
						t.Fatalf("schedule differs at GOMAXPROCS=%d workers=%d", procs, workers)
					}
				}
			}
		})
	}
}
