package hilight_test

// Behavior-preservation goldens: the routing hot path is optimized for
// zero allocations, and these tests pin down that the optimization never
// changes *what* is computed. The golden file records, at seed 1,
//
//   - a schedule fingerprint (FNV-1a over every layer/braid/path) per
//     path-finder on a Table 1 subset, and
//   - latency/ResUtil per public method preset.
//
// Regenerate with `go test -run TestGolden -update` — but only when a
// change is *supposed* to alter schedules; performance work must keep
// this file byte-identical.

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hilight"
	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const goldenPath = "testdata/golden_schedules.json"

// goldenFile is the on-disk golden format.
type goldenFile struct {
	// ScheduleHash maps "<benchmark>/<finder>" to the schedule fingerprint.
	ScheduleHash map[string]string `json:"schedule_hash"`
	// Presets maps "<benchmark>/<method>" to "latency/resutil".
	Presets map[string]string `json:"presets"`
	// DefectHash maps "<benchmark>" to the schedule fingerprint of a
	// compile on a defective grid (faultinject rate 5%, seed 1): pins
	// defect-aware routing, not just the pristine path.
	DefectHash map[string]string `json:"defect_hash"`
}

// goldenBenchmarks is the Table 1 subset the finder-identity test runs:
// every deterministic small row plus one representative per family, kept
// small enough that the exhaustive Full16 finder stays affordable.
var goldenBenchmarks = []string{
	"4gt11_82", "4gt5_75", "rd32_270", "sqrt8_260", "squar5_261",
	"QFT-10", "QFT-16", "BV-10", "CC-11", "Ising-10",
}

// goldenFinders are the registered path-finder names the sweep pins.
func goldenFinders() []string {
	return []string{"astar-closest", "full-16", "stack-dfs", "l-shape"}
}

// hashSchedule fingerprints every braid of every layer, in order.
func hashSchedule(s *sched.Schedule) string {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	putInt := func(v int) {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
		h.Write(buf)
	}
	putInt(len(s.Layers))
	for _, layer := range s.Layers {
		putInt(len(layer))
		for _, b := range layer {
			putInt(b.Gate)
			putInt(b.CtlTile)
			putInt(b.TgtTile)
			if b.SwapTiles {
				putInt(1)
			} else {
				putInt(0)
			}
			putInt(len(b.Path))
			for _, v := range b.Path {
				putInt(v)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func computeGolden(t testing.TB) *goldenFile {
	gf := &goldenFile{
		ScheduleHash: map[string]string{},
		Presets:      map[string]string{},
		DefectHash:   map[string]string{},
	}
	for _, name := range goldenBenchmarks {
		e, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown golden benchmark %s", name)
		}
		c := e.Build()
		g := grid.Rect(e.N)
		for _, finder := range goldenFinders() {
			sp := core.Spec{Placement: "hilight", Ordering: "proposed", Finder: finder}
			res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, finder, err)
			}
			if err := res.Schedule.Validate(res.Circuit); err != nil {
				t.Fatalf("%s/%s: invalid schedule: %v", name, finder, err)
			}
			gf.ScheduleHash[name+"/"+finder] = hashSchedule(res.Schedule)
		}
	}
	for _, name := range []string{"sqrt8_260", "QFT-16", "Ising-10"} {
		c, ok := hilight.Benchmark(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		g := hilight.RectGrid(c.NumQubits)
		for _, method := range hilight.Methods() {
			res, err := hilight.Compile(c, g, hilight.WithMethod(method), hilight.WithSeed(1))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, method, err)
			}
			gf.Presets[name+"/"+method] = fmt.Sprintf("%d/%.6f", res.Latency, res.ResUtil)
		}
	}
	// Defect fixtures: the same compile with a fixed 5%-rate defect map on
	// the next-larger grid must keep producing the identical schedule. The
	// seeds are chosen so each sampled map hits all three defect classes
	// (dead tile, dead vertex, broken channel).
	for _, fix := range []struct {
		name string
		w, h int
		seed int64
	}{
		{"QFT-16", 5, 4, 4},
		{"Ising-10", 4, 4, 7},
	} {
		c, ok := hilight.Benchmark(fix.name)
		if !ok {
			t.Fatalf("unknown benchmark %s", fix.name)
		}
		g := hilight.NewGrid(fix.w, fix.h)
		_, dm := hilight.InjectDefects(g, 0.05, fix.seed)
		res, err := hilight.Compile(c, g, hilight.WithSeed(1), hilight.WithDefects(dm))
		if err != nil {
			t.Fatalf("defect golden %s: %v", fix.name, err)
		}
		if err := res.Schedule.Validate(res.Circuit); err != nil {
			t.Fatalf("defect golden %s: invalid schedule: %v", fix.name, err)
		}
		if got := res.Schedule.Grid.Defects(); got.Empty() {
			t.Fatalf("defect golden %s: schedule grid lost its defects", fix.name)
		}
		gf.DefectHash[fix.name] = hashSchedule(res.Schedule)
	}
	return gf
}

// TestGoldenSchedules pins routing behavior: every path-finder must keep
// producing byte-identical schedules, and every method preset identical
// latency/ResUtil, at seed 1.
func TestGoldenSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is slow")
	}
	got := computeGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d schedule hashes, %d preset rows",
			len(got.ScheduleHash), len(got.Presets))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	diffMaps(t, "schedule_hash", want.ScheduleHash, got.ScheduleHash)
	diffMaps(t, "presets", want.Presets, got.Presets)
	diffMaps(t, "defect_hash", want.DefectHash, got.DefectHash)
}

func diffMaps(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s[%s] = %s, want %s", label, k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s[%s] unexpected new entry", label, k)
		}
	}
}
