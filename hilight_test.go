package hilight_test

import (
	"strings"
	"testing"

	"hilight"
)

func TestCompileQuickstart(t *testing.T) {
	c := hilight.NewCircuit("bell-chain", 4)
	c.Add1(hilight.H, 0)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 1, 2)
	c.Add2(hilight.CX, 2, 3)
	res, err := hilight.Compile(c, hilight.SquareGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 3 {
		t.Errorf("latency = %d, want 3 (serial chain)", res.Latency)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestCompileAllMethods(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(8)
	for _, m := range hilight.Methods() {
		res, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(3))
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if err := res.Schedule.Validate(res.Circuit); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if _, err := hilight.Compile(c, g, hilight.WithMethod("nope")); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Error("unknown method accepted")
	}
}

func TestCompileQCOOverride(t *testing.T) {
	c := hilight.QFT(6)
	g := hilight.SquareGrid(6)
	on, err := hilight.Compile(c, g, hilight.WithMethod("hilight-map"), hilight.WithQCO(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := on.Schedule.Validate(on.Circuit); err != nil {
		t.Fatal(err)
	}
	// The rewritten circuit must stay semantically equal to the input.
	eq, err := hilight.EquivalentCircuits(c, on.Circuit, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("QCO-compiled circuit not equivalent to input")
	}
}

func TestQASMRoundTripThroughAPI(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
`
	c, err := hilight.ParseQASM("ghz3", src)
	if err != nil {
		t.Fatal(err)
	}
	out := hilight.FormatQASM(c)
	c2, err := hilight.ParseQASM("ghz3", out)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Errorf("round trip changed gate count: %d vs %d", c.Len(), c2.Len())
	}
	res, err := hilight.Compile(c, hilight.SquareGrid(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 2 {
		t.Errorf("ghz3 latency = %d, want 2", res.Latency)
	}
}

func TestBenchmarkRegistryThroughAPI(t *testing.T) {
	names := hilight.BenchmarkNames()
	if len(names) != 36 {
		t.Fatalf("benchmark count = %d", len(names))
	}
	c, ok := hilight.Benchmark("BV-10")
	if !ok || c.NumQubits != 10 {
		t.Fatal("BV-10 missing or malformed")
	}
	if _, ok := hilight.Benchmark("nope"); ok {
		t.Error("unknown benchmark accepted")
	}
}

func TestGridWithFactoryThroughAPI(t *testing.T) {
	g, err := hilight.GridWithFactory(8, 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Capacity() < 8 {
		t.Errorf("capacity %d < 8", g.Capacity())
	}
	c := hilight.QFT(8)
	res, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := hilight.ResUtil(res.Schedule); got != res.ResUtil {
		t.Errorf("ResUtil mismatch: %g vs %g", got, res.ResUtil)
	}
}

func TestCompileWithCompaction(t *testing.T) {
	c := hilight.QFT(12)
	g := hilight.RectGrid(12)
	plain, err := hilight.Compile(c, g, hilight.WithMethod("identity"))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := hilight.Compile(c, g, hilight.WithMethod("identity"), hilight.WithCompaction())
	if err != nil {
		t.Fatal(err)
	}
	if packed.Latency > plain.Latency {
		t.Errorf("compaction increased latency: %d -> %d", plain.Latency, packed.Latency)
	}
	if err := packed.Schedule.Validate(packed.Circuit); err != nil {
		t.Fatalf("compacted schedule invalid: %v", err)
	}
	if packed.Latency != packed.Schedule.Latency() {
		t.Error("result metrics not refreshed after compaction")
	}
}

func TestOptimizeProgramExported(t *testing.T) {
	c := hilight.NewCircuit("fan", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 0, 2)
	c.Add2(hilight.CX, 3, 2)
	o := hilight.OptimizeProgram(c)
	eq, err := hilight.EquivalentCircuits(c, o, 1e-9)
	if err != nil || !eq {
		t.Errorf("OptimizeProgram broke semantics: %v %v", eq, err)
	}
}
