package hilight_test

import (
	"sync"
	"testing"

	"hilight"
)

// TestCompileConcurrentSafety runs many Compile calls in parallel across
// methods: each call builds its own finder/ordering state, so there must
// be no data races (run with -race) and results must match the serial
// ones.
func TestCompileConcurrentSafety(t *testing.T) {
	c := hilight.QFT(12)
	g := hilight.RectGrid(12)
	methods := hilight.Methods()

	// Serial reference latencies.
	want := map[string]int{}
	for _, m := range methods {
		res, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(9))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want[m] = res.Latency
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(methods)*4)
	for round := 0; round < 4; round++ {
		for _, m := range methods {
			wg.Add(1)
			go func(m string) {
				defer wg.Done()
				res, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(9))
				if err != nil {
					errs <- err
					return
				}
				if res.Latency != want[m] {
					t.Errorf("%s: concurrent latency %d != serial %d", m, res.Latency, want[m])
				}
				if err := res.Schedule.Validate(res.Circuit); err != nil {
					t.Errorf("%s: %v", m, err)
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompileDeterminism: identical inputs and seeds yield identical
// schedules, braid for braid.
func TestCompileDeterminism(t *testing.T) {
	c := hilight.QFT(10)
	g := hilight.RectGrid(10)
	for _, m := range []string{"hilight-map", "hilight-pg", "autobraid-full", "baseline"} {
		a, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(42))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		b, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(42))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		da, err := hilight.EncodeScheduleJSON(a.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		db, err := hilight.EncodeScheduleJSON(b.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Errorf("%s: schedules differ across identical runs", m)
		}
	}
}

// TestScheduleJSONRoundTripThroughAPI: a compiled schedule survives
// serialization and still validates.
func TestScheduleJSONRoundTripThroughAPI(t *testing.T) {
	c := hilight.QFT(9)
	g, err := hilight.GridWithFactory(9, 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	data, err := hilight.EncodeScheduleJSON(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := hilight.DecodeScheduleJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(res.Circuit); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
	if hilight.ResUtil(s2) != res.ResUtil {
		t.Error("ResUtil changed through serialization")
	}
}
