package hilight_test

// Wire-codec benchmarks over the Table 1 subset the goldens pin: encode
// and decode throughput for the binary format, with the JSON codec as
// the baseline and the bytes-per-schedule ratio reported per run.
// Snapshots live in the "wire" section of BENCH_route.json (refresh via
// `make bench-route`).

import (
	"testing"

	"hilight"
)

// wireBenchCases compiles each Table 1 fixture once and returns the
// schedules with their pre-encoded payloads.
func wireBenchCases(b *testing.B) []struct {
	name string
	s    *hilight.Schedule
	bin  []byte
	js   []byte
} {
	b.Helper()
	cases := make([]struct {
		name string
		s    *hilight.Schedule
		bin  []byte
		js   []byte
	}, 0, len(goldenWireBenchmarks))
	for _, name := range goldenWireBenchmarks {
		s := goldenWireSchedule(b, name)
		bin, err := hilight.EncodeScheduleBinary(s)
		if err != nil {
			b.Fatal(err)
		}
		js, err := hilight.EncodeScheduleJSON(s)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			s    *hilight.Schedule
			bin  []byte
			js   []byte
		}{name, s, bin, js})
	}
	return cases
}

func BenchmarkWireEncode(b *testing.B) {
	for _, tc := range wireBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(len(tc.bin)), "bin_B")
			b.ReportMetric(float64(len(tc.js)), "json_B")
			b.ReportMetric(100*float64(len(tc.bin))/float64(len(tc.js)), "pct_of_json")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hilight.EncodeScheduleBinary(tc.s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireEncodeJSON(b *testing.B) {
	for _, tc := range wireBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hilight.EncodeScheduleJSON(tc.s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, tc := range wireBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hilight.DecodeScheduleBinary(tc.bin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecodeJSON(b *testing.B) {
	for _, tc := range wireBenchCases(b) {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hilight.DecodeScheduleJSON(tc.js); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
