// Package hilight is the public API of the HiLight surface-code
// communication framework (Park, Kim & Kang, DAC 2024): qubit mapping for
// the double-defect surface code, where two-qubit gates execute as
// braiding paths on a tile grid and latency is the number of cycles of
// non-intersecting braids.
//
// The typical flow is three calls:
//
//	c := hilight.QFT(16)                         // or ParseQASM / NewCircuit
//	g := hilight.RectGrid(c.NumQubits)           // M×(M−1) hardware grid
//	res, err := hilight.Compile(c, g)            // place, order, braid
//
// Compile defaults to the paper's full "hilight" configuration
// (pattern-matching + qubit-proximity placement, ASAP gate ordering,
// closest-corner A* braiding). Options select every other configuration
// the paper evaluates, including the AutoBraid baselines.
package hilight

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	_ "hilight/internal/autobraid" // registers the autobraid-sp/-full method specs
	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/faultinject"
	"hilight/internal/grid"
	"hilight/internal/hwopt"
	"hilight/internal/obs"
	"hilight/internal/place"
	"hilight/internal/qasm"
	"hilight/internal/qco"
	"hilight/internal/sched"
	"hilight/internal/sim"
)

// Core types, re-exported so downstream code never imports internal
// packages.
type (
	// Circuit is an ordered gate list over program qubits.
	Circuit = circuit.Circuit
	// Gate is a single operation on one or two program qubits.
	Gate = circuit.Gate
	// Kind enumerates gate kinds (H, CX, RZ, ...).
	Kind = circuit.Kind
	// Grid is the double-defect surface-code tile grid.
	Grid = grid.Grid
	// Layout maps program qubits to grid tiles.
	Layout = grid.Layout
	// Schedule is the braiding schedule produced by Compile.
	Schedule = sched.Schedule
	// Layer is one braiding cycle of a Schedule: the braids that execute
	// simultaneously.
	Layer = sched.Layer
	// Braid is one braiding operation of a Layer: a gate (or inserted
	// SWAP) realized as a routing path between two tiles.
	Braid = sched.Braid
	// Result carries the schedule and its latency/runtime/ResUtil metrics,
	// plus Degraded/FallbackMethod when a WithFallback method produced it.
	// Result.Trace records the compile's per-stage timing and counters
	// (see StageTrace).
	Result = core.Result
	// StageTrace is one entry of Result.Trace: a compiler pass's name,
	// wall-clock duration, and key counters (gates after rewrites, cycles
	// routed, braids compacted). Stage durations sum to ≈ Result.Runtime.
	StageTrace = core.StageTrace
	// TraceCounter is one named counter of a StageTrace.
	TraceCounter = core.TraceCounter
	// DefectMap lists a grid's fabrication defects: dead tiles, dead
	// routing vertices, and broken routing channels.
	DefectMap = grid.DefectMap
)

// Error taxonomy. ErrUnroutable and ErrInsufficientCapacity are struct
// types retrieved with errors.As; ErrCanceled, ErrNilCircuit and
// ErrNilGrid are sentinels matched with errors.Is.
type (
	// ErrUnroutable means the router proved a gate cannot be braided:
	// defects or reserved regions disconnect its operand tiles, so the
	// compile failed fast instead of spinning.
	ErrUnroutable = core.ErrUnroutable
	// ErrInsufficientCapacity means the grid has fewer usable tiles than
	// the circuit has program qubits.
	ErrInsufficientCapacity = core.ErrInsufficientCapacity
)

var (
	// ErrCanceled matches any compile abandoned because its context was
	// canceled or its WithTimeout deadline fired.
	ErrCanceled = core.ErrCanceled
	// ErrNilCircuit is returned by Compile for a nil circuit.
	ErrNilCircuit = errors.New("hilight: nil circuit")
	// ErrNilGrid is returned by Compile for a nil grid.
	ErrNilGrid = errors.New("hilight: nil grid")
)

// Common gate kinds.
const (
	H       = circuit.H
	X       = circuit.X
	Y       = circuit.Y
	Z       = circuit.Z
	S       = circuit.S
	T       = circuit.T
	RX      = circuit.RX
	RY      = circuit.RY
	RZ      = circuit.RZ
	CX      = circuit.CX
	CZ      = circuit.CZ
	SWAP    = circuit.SWAP
	Measure = circuit.Measure
)

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM parses OpenQASM 2.0 source into a circuit.
func ParseQASM(name, src string) (*Circuit, error) { return qasm.Parse(name, src) }

// ParseQASMFile parses an OpenQASM 2.0 file, resolving non-library
// `include` statements relative to the file's directory.
func ParseQASMFile(path string) (*Circuit, error) { return qasm.ParseFile(path) }

// WriteQASM renders a circuit as OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error { return qasm.Write(w, c) }

// FormatQASM returns a circuit's OpenQASM 2.0 source.
func FormatQASM(c *Circuit) string { return qasm.Format(c) }

// NewGrid returns an explicit w×h tile grid. Most callers want SquareGrid
// or RectGrid, which size the grid from a qubit count; NewGrid exists for
// shapes those don't produce — e.g. a grid one size larger than RectGrid
// to leave slack for fabrication defects (see WithDefects).
func NewGrid(w, h int) *Grid { return grid.New(w, h) }

// SquareGrid returns the M×M grid for n qubits, M = ceil(sqrt(n)).
func SquareGrid(n int) *Grid { return grid.Square(n) }

// RectGrid returns the hardware-optimized M×(M−1) grid (M×M when the
// rectangle cannot hold n qubits).
func RectGrid(n int) *Grid { return grid.Rect(n) }

// GridWithFactory returns a grid for n qubits with a fw×fh magic-state
// factory reserved in one corner (§3.4).
func GridWithFactory(n, fw, fh int, rect bool) (*Grid, error) {
	return hwopt.GridWithFactory(n, fw, fh, rect)
}

// ResUtil computes the Eq. 1 resource-utilization metric of a schedule.
func ResUtil(s *Schedule) float64 { return hwopt.ResUtilOf(s) }

// OptimizeProgram applies the program-level commuting-CX reordering
// (§3.3) and returns the rewritten, semantically-equal circuit.
func OptimizeProgram(c *Circuit) *Circuit { return qco.Optimize(c) }

// EquivalentCircuits reports whether two circuits implement the same
// operator (statevector oracle; ≤ 20 qubits).
func EquivalentCircuits(a, b *Circuit, tol float64) (bool, error) {
	return sim.Equivalent(a, b, tol)
}

// options collects Compile configuration.
type options struct {
	method       string
	seed         int64
	qco          *bool
	observer     core.Observer
	sink         core.ScheduleSink
	metrics      *obs.Registry
	events       obs.EventObserver
	jobDone      func(job int, r BatchResult)
	compact      bool
	defects      *DefectMap
	ctx          context.Context
	timeout      time.Duration
	fallback     []string
	routeWorkers *int
	lookahead    *int
	placement    place.Method // test hook: overrides the method's placement
}

// Option configures Compile.
type Option func(*options)

// WithMethod selects a named configuration. See Methods for the list.
func WithMethod(name string) Option { return func(o *options) { o.method = name } }

// WithSeed seeds the randomized components (pattern-matched random
// layouts, baseline partitioning). The default seed is 1.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithQCO overrides whether the program-level optimization runs,
// independent of the method preset.
func WithQCO(enabled bool) Option {
	return func(o *options) { o.qco = &enabled }
}

// CycleStats summarizes one braiding cycle for WithObserver callbacks.
type CycleStats = core.CycleStats

// WithObserver registers a per-cycle callback for congestion profiling:
// it receives, for every braiding cycle, the ready-set size, how many
// gates were placed or deferred, and the lattice resources consumed.
func WithObserver(fn func(CycleStats)) Option {
	return func(o *options) { o.observer = core.ObserverFunc(fn) }
}

// ScheduleSink receives the schedule incrementally while the router
// produces it: OnStart once with the grid and the pristine initial
// layout, then OnLayer for every sealed braiding cycle, in order. The
// layer and its braid paths are router-owned scratch — consume or copy
// them before returning, never retain them. Returning an error aborts
// the compile (the streaming service uses this to stop routing when a
// client hangs up).
type ScheduleSink = core.ScheduleSink

// WithScheduleSink streams the schedule out of the compile as the router
// seals each braiding cycle, instead of (in addition to, strictly — the
// Result still carries the full schedule) waiting for Compile to return.
// The sink observes the raw route output: WithCompaction's hoisting runs
// afterwards and is not replayed, so combine the two only when the
// streamed prefix being pre-compaction is acceptable. Each compile
// attempt calls OnStart once; under WithFallback a failed primary may
// therefore be followed by a second OnStart from the fallback method —
// single-shot sinks (wire.StreamEncoder) reject that, failing the
// fallback, so streaming is typically used without a fallback chain.
// Compile ignores a nil sink.
func WithScheduleSink(s ScheduleSink) Option {
	return func(o *options) { o.sink = s }
}

// WithDefects compiles against degraded hardware: the tiles, vertices and
// channels of d are treated as permanently unusable. The caller's grid is
// never mutated — Compile clones it before applying the defects, and the
// returned Result.Grid is the degraded clone. An invalid map (out-of-range
// ids, non-adjacent channel endpoints) fails the compile with a validation
// error.
func WithDefects(d *DefectMap) Option {
	return func(o *options) { o.defects = d }
}

// WithContext attaches a context that is honored before placement and at
// every cycle boundary of the routing loop. Once the context is done,
// Compile returns an error matching ErrCanceled; with an already-canceled
// context it returns before any routing work.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithTimeout bounds the whole compile (all fallback attempts included)
// by d, layered on top of any WithContext context. A fired deadline
// surfaces as ErrCanceled.
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithFallback configures graceful degradation: when the primary method
// fails to route (typically ErrUnroutable on heavily-defective hardware),
// the listed methods are tried in order and the first success is returned
// with Result.Degraded set and Result.FallbackMethod naming the method
// that succeeded. Cancellation and insufficient-capacity failures are
// method-independent and abort the chain immediately. When every method
// fails, the primary method's error is returned.
func WithFallback(methods ...string) Option {
	return func(o *options) { o.fallback = append(o.fallback, methods...) }
}

// InjectDefects samples a random defect map for g at the given rate (see
// the fault-injection harness: tiles and channels fail at rate, vertices
// at rate/4) and returns a degraded clone of g along with the map. The
// sample is deterministic per (grid, rate, seed). The returned map can be
// serialized with EncodeDefects or replayed via WithDefects on the
// pristine grid.
func InjectDefects(g *Grid, rate float64, seed int64) (*Grid, *DefectMap) {
	return faultinject.Inject(g, rate, seed)
}

// EncodeDefects serializes a defect map as JSON.
func EncodeDefects(d *DefectMap) ([]byte, error) { return grid.EncodeDefects(d) }

// DecodeDefects parses EncodeDefects output; the map is validated against
// the target grid when applied (WithDefects / Grid.ApplyDefects).
func DecodeDefects(data []byte) (*DefectMap, error) { return grid.DecodeDefects(data) }

// WithCompaction inserts the compact pass into the compile pipeline,
// between route and finalize-metrics: braids are hoisted into earlier
// cycles where dependencies and lattice occupancy allow, so latency
// never increases and often shrinks on schedules produced by weaker
// orderings. Schedules with inserted SWAPs (the AutoBraid baseline)
// pass through unchanged. Metrics are computed after compaction by the
// finalize pass, so Result.Latency always describes the returned
// schedule.
func WithCompaction() Option {
	return func(o *options) { o.compact = true }
}

// WithRouteWorkers sets the speculative worker-pool size of the parallel
// route pass used by the *-parallel methods (see Methods): n goroutines
// path-find each cycle's ready gates concurrently against an immutable
// snapshot, and a deterministic commit order makes the emitted schedule
// byte-identical for every pool size. Any n ≤ 0 selects GOMAXPROCS at
// route time. Methods that route sequentially ignore the option, so a
// process-wide default is always safe to set. Because the output never
// depends on the value, the option is excluded from Fingerprint.
func WithRouteWorkers(n int) Option {
	return func(o *options) {
		if n <= 0 {
			n = -1 // auto: GOMAXPROCS at route time
		}
		o.routeWorkers = &n
	}
}

// WithLookahead sets the windowed-lookahead depth of the parallel route
// pass: equal-length path ties break toward vertices that the next k
// pending two-qubit gates per qubit are least likely to need, reducing
// future serialization stalls. The depth never changes which gates route
// or how many braids execute — only which of the equally-short paths
// each braid takes — so schedules compiled under different depths are
// equivalent, and the option is excluded from Fingerprint. Methods that
// route sequentially ignore the option.
func WithLookahead(k int) Option {
	return func(o *options) { o.lookahead = &k }
}

// Methods returns the method names accepted by WithMethod, sorted.
// Every name resolves to a declarative pipeline spec in core's static
// registry, so enumeration instantiates no components and draws no
// random state. The slice is a fresh copy on every call: mutating it
// cannot corrupt the registry or later calls.
func Methods() []string { return core.MethodNames() }

// Compile maps the circuit onto the grid and returns the braiding
// schedule with its metrics. The selected method resolves to a
// declarative pipeline spec (validate → decompose-swaps → qco →
// capacity → place → route → adjust → compact → finalize-metrics, with
// the optional stages present only when enabled); Result.Trace records
// each executed stage's duration and counters. The schedule is
// guaranteed to validate against the returned (possibly QCO-rewritten)
// circuit — including on defective hardware (WithDefects), where every
// braid provably avoids dead tiles, vertices and channels. Failures are
// typed: ErrNilCircuit / ErrNilGrid for missing inputs,
// ErrInsufficientCapacity when the circuit is wider than the grid's
// usable tiles, ErrUnroutable when defects disconnect a gate's
// operands, and ErrCanceled when a WithContext / WithTimeout deadline
// fires.
func Compile(c *Circuit, g *Grid, opts ...Option) (*Result, error) {
	o := options{method: "hilight", seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if c == nil {
		return nil, ErrNilCircuit
	}
	if g == nil {
		return nil, ErrNilGrid
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("hilight: invalid circuit: %w", err)
	}

	ctx := o.ctx
	if o.timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	if ctx != nil {
		// Fail an already-dead context before any placement or routing.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hilight: %w (%v)", ErrCanceled, err)
		}
	}

	chain := append([]string{o.method}, o.fallback...)
	specs := make([]core.Spec, len(chain))
	for i, name := range chain {
		sp, ok := core.LookupMethod(name)
		if !ok {
			return nil, fmt.Errorf("hilight: unknown method %q (have %v)", name, Methods())
		}
		specs[i] = sp
	}

	baseGrid := g
	if !o.defects.Empty() {
		gg := g.Clone()
		if err := gg.ApplyDefects(o.defects); err != nil {
			return nil, err
		}
		g = gg
	}

	var firstErr error
	for i, name := range chain {
		if i > 0 && o.metrics != nil {
			// A fallback method is being activated: the primary (or an
			// earlier fallback) failed with a recoverable error.
			o.metrics.Counter("compile/fallback-activations").Inc()
		}
		// Each attempt gets a fresh seeded rng, so a method sees the same
		// random stream whether it runs as primary or as fallback.
		ro := core.RunOptions{
			Rng:       rand.New(rand.NewSource(o.seed)),
			QCO:       o.qco,
			Observer:  o.observer,
			Sink:      o.sink,
			Metrics:   o.metrics,
			Ctx:       ctx,
			Compact:   o.compact,
			Placement: o.placement,
		}
		// The execution knobs apply only to methods that already route in
		// parallel: overriding them can then never change which route pass
		// runs, which keeps both options inert on sequential methods and
		// output-stable on parallel ones — the contract that lets
		// Fingerprint exclude them.
		if specs[i].RouteWorkers != 0 {
			ro.RouteWorkers = o.routeWorkers
			ro.Lookahead = o.lookahead
		}
		res, err := core.Run(c, g, specs[i], ro)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			// Cancellation and capacity failures are method-independent:
			// no fallback can recover them, so abort the chain.
			var capErr *ErrInsufficientCapacity
			if errors.Is(err, ErrCanceled) || errors.As(err, &capErr) {
				return nil, err
			}
			continue
		}
		if i > 0 {
			res.Degraded = true
			res.FallbackMethod = name
			if o.metrics != nil {
				o.metrics.Counter("compile/fallback-recovered").Inc()
			}
		}
		// The pristine caller grid, so Recompile can rebuild the degraded
		// grid from a fresh DefectMap delta.
		res.BaseGrid = baseGrid
		return res, nil
	}
	return nil, firstErr
}

// Benchmark builds a named Table 1 benchmark circuit (see BenchmarkNames).
func Benchmark(name string) (*Circuit, bool) {
	e, ok := bench.ByName(name)
	if !ok {
		return nil, false
	}
	return e.Build(), true
}

// BenchmarkNames lists the built-in Table 1 benchmarks, sorted. The
// slice is a fresh copy on every call — like Methods, callers may keep
// or mutate it without corrupting the registry.
func BenchmarkNames() []string {
	entries := bench.Table1()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// Generators for the paper's parametric workloads, re-exported.
var (
	// QFT builds the n-qubit quantum Fourier transform (n² gates).
	QFT = bench.QFT
	// BV builds the Bernstein–Vazirani circuit with an all-ones string.
	BV = bench.BV
	// CC builds the counterfeit-coin circuit.
	CC = bench.CC
	// Ising builds 1D transverse-field Ising Trotter steps.
	Ising = bench.Ising
	// QAOA builds a QAOA instance with the given ZZ count and depth.
	QAOA = bench.QAOA
	// GHZ builds the GHZ-state preparation chain.
	GHZ = bench.GHZ
	// WState builds a W-state preparation chain.
	WState = bench.WState
	// VQE builds a hardware-efficient VQE ansatz.
	VQE = bench.VQE
	// GraphState builds a chain graph state.
	GraphState = bench.GraphState
	// CuccaroAdder builds the ripple-carry adder (semantically verified
	// against classical addition by the test suite).
	CuccaroAdder = bench.CuccaroAdder
	// Grover builds a Grover-search skeleton.
	Grover = bench.Grover
	// HiddenShift builds the hidden-shift benchmark.
	HiddenShift = bench.HiddenShift
)
