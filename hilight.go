// Package hilight is the public API of the HiLight surface-code
// communication framework (Park, Kim & Kang, DAC 2024): qubit mapping for
// the double-defect surface code, where two-qubit gates execute as
// braiding paths on a tile grid and latency is the number of cycles of
// non-intersecting braids.
//
// The typical flow is three calls:
//
//	c := hilight.QFT(16)                         // or ParseQASM / NewCircuit
//	g := hilight.RectGrid(c.NumQubits)           // M×(M−1) hardware grid
//	res, err := hilight.Compile(c, g)            // place, order, braid
//
// Compile defaults to the paper's full "hilight" configuration
// (pattern-matching + qubit-proximity placement, ASAP gate ordering,
// closest-corner A* braiding). Options select every other configuration
// the paper evaluates, including the AutoBraid baselines.
package hilight

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"hilight/internal/autobraid"
	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/hwopt"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/qasm"
	"hilight/internal/qco"
	"hilight/internal/route"
	"hilight/internal/sched"
	"hilight/internal/sim"
)

// Core types, re-exported so downstream code never imports internal
// packages.
type (
	// Circuit is an ordered gate list over program qubits.
	Circuit = circuit.Circuit
	// Gate is a single operation on one or two program qubits.
	Gate = circuit.Gate
	// Kind enumerates gate kinds (H, CX, RZ, ...).
	Kind = circuit.Kind
	// Grid is the double-defect surface-code tile grid.
	Grid = grid.Grid
	// Layout maps program qubits to grid tiles.
	Layout = grid.Layout
	// Schedule is the braiding schedule produced by Compile.
	Schedule = sched.Schedule
	// Result carries the schedule and its latency/runtime/ResUtil metrics.
	Result = core.Result
)

// Common gate kinds.
const (
	H       = circuit.H
	X       = circuit.X
	Y       = circuit.Y
	Z       = circuit.Z
	S       = circuit.S
	T       = circuit.T
	RX      = circuit.RX
	RY      = circuit.RY
	RZ      = circuit.RZ
	CX      = circuit.CX
	CZ      = circuit.CZ
	SWAP    = circuit.SWAP
	Measure = circuit.Measure
)

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM parses OpenQASM 2.0 source into a circuit.
func ParseQASM(name, src string) (*Circuit, error) { return qasm.Parse(name, src) }

// ParseQASMFile parses an OpenQASM 2.0 file, resolving non-library
// `include` statements relative to the file's directory.
func ParseQASMFile(path string) (*Circuit, error) { return qasm.ParseFile(path) }

// WriteQASM renders a circuit as OpenQASM 2.0.
func WriteQASM(w io.Writer, c *Circuit) error { return qasm.Write(w, c) }

// FormatQASM returns a circuit's OpenQASM 2.0 source.
func FormatQASM(c *Circuit) string { return qasm.Format(c) }

// SquareGrid returns the M×M grid for n qubits, M = ceil(sqrt(n)).
func SquareGrid(n int) *Grid { return grid.Square(n) }

// RectGrid returns the hardware-optimized M×(M−1) grid (M×M when the
// rectangle cannot hold n qubits).
func RectGrid(n int) *Grid { return grid.Rect(n) }

// GridWithFactory returns a grid for n qubits with a fw×fh magic-state
// factory reserved in one corner (§3.4).
func GridWithFactory(n, fw, fh int, rect bool) (*Grid, error) {
	return hwopt.GridWithFactory(n, fw, fh, rect)
}

// ResUtil computes the Eq. 1 resource-utilization metric of a schedule.
func ResUtil(s *Schedule) float64 { return hwopt.ResUtilOf(s) }

// OptimizeProgram applies the program-level commuting-CX reordering
// (§3.3) and returns the rewritten, semantically-equal circuit.
func OptimizeProgram(c *Circuit) *Circuit { return qco.Optimize(c) }

// EquivalentCircuits reports whether two circuits implement the same
// operator (statevector oracle; ≤ 20 qubits).
func EquivalentCircuits(a, b *Circuit, tol float64) (bool, error) {
	return sim.Equivalent(a, b, tol)
}

// options collects Compile configuration.
type options struct {
	method   string
	seed     int64
	qco      *bool
	observer core.Observer
	compact  bool
}

// Option configures Compile.
type Option func(*options)

// WithMethod selects a named configuration. See Methods for the list.
func WithMethod(name string) Option { return func(o *options) { o.method = name } }

// WithSeed seeds the randomized components (pattern-matched random
// layouts, baseline partitioning). The default seed is 1.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithQCO overrides whether the program-level optimization runs,
// independent of the method preset.
func WithQCO(enabled bool) Option {
	return func(o *options) { o.qco = &enabled }
}

// CycleStats summarizes one braiding cycle for WithObserver callbacks.
type CycleStats = core.CycleStats

// WithObserver registers a per-cycle callback for congestion profiling:
// it receives, for every braiding cycle, the ready-set size, how many
// gates were placed or deferred, and the lattice resources consumed.
func WithObserver(fn func(CycleStats)) Option {
	return func(o *options) { o.observer = core.ObserverFunc(fn) }
}

// WithCompaction runs the post-routing compaction pass: braids are
// hoisted into earlier cycles where dependencies and lattice occupancy
// allow, so latency never increases and often shrinks on schedules
// produced by weaker orderings. Schedules with inserted SWAPs (the
// AutoBraid baseline) pass through unchanged.
func WithCompaction() Option {
	return func(o *options) { o.compact = true }
}

// methodConfigs maps public method names to framework configurations.
func methodConfigs(rng *rand.Rand) map[string]core.Config {
	return map[string]core.Config{
		"hilight":        core.HilightPG(rng), // mapping + program level
		"hilight-map":    core.HilightMap(rng),
		"hilight-pg":     core.HilightPG(rng),
		"hilight-gm":     core.HilightGM(rng),
		"baseline":       core.Fig9Baseline(rng),
		"autobraid-sp":   autobraid.SP(),
		"autobraid-full": autobraid.Full(rng),
		"identity": {
			Placement: place.Identity{},
			Ordering:  order.Proposed{},
			Finder:    &route.AStar{},
		},
		"random": {
			Placement: place.Random{Rng: rng},
			Ordering:  order.Proposed{},
			Finder:    &route.AStar{},
		},
		"hilight-refined": {
			Placement: place.Refined{Base: place.HiLight{Rng: rng}},
			Ordering:  order.Proposed{},
			Finder:    &route.AStar{},
		},
		"hilight-cp": {
			Placement: place.HiLight{Rng: rng},
			Ordering:  order.CriticalPath{},
			Finder:    &route.AStar{},
		},
	}
}

// Methods returns the method names accepted by WithMethod, sorted.
func Methods() []string {
	cfgs := methodConfigs(rand.New(rand.NewSource(1)))
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Compile maps the circuit onto the grid and returns the braiding
// schedule with its metrics. The schedule is guaranteed to validate
// against the returned (possibly QCO-rewritten) circuit.
func Compile(c *Circuit, g *Grid, opts ...Option) (*Result, error) {
	o := options{method: "hilight", seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cfgs := methodConfigs(rand.New(rand.NewSource(o.seed)))
	cfg, ok := cfgs[o.method]
	if !ok {
		return nil, fmt.Errorf("hilight: unknown method %q (have %v)", o.method, Methods())
	}
	if o.qco != nil {
		cfg.QCO = *o.qco
	}
	cfg.Observer = o.observer
	res, err := core.Map(c, g, cfg)
	if err != nil {
		return nil, err
	}
	if o.compact {
		res.Schedule = core.CompactSchedule(res.Schedule, res.Circuit, cfg.Finder)
		res.Latency = res.Schedule.Latency()
		res.PathLen = res.Schedule.TotalPathLength()
		if res.Latency > 0 {
			res.ResUtil = float64(res.PathLen) / (float64(g.Tiles()) * float64(res.Latency))
		} else {
			res.ResUtil = 0
		}
	}
	return res, nil
}

// Benchmark builds a named Table 1 benchmark circuit (see BenchmarkNames).
func Benchmark(name string) (*Circuit, bool) {
	e, ok := bench.ByName(name)
	if !ok {
		return nil, false
	}
	return e.Build(), true
}

// BenchmarkNames lists the built-in Table 1 benchmarks in table order.
func BenchmarkNames() []string {
	entries := bench.Table1()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// Generators for the paper's parametric workloads, re-exported.
var (
	// QFT builds the n-qubit quantum Fourier transform (n² gates).
	QFT = bench.QFT
	// BV builds the Bernstein–Vazirani circuit with an all-ones string.
	BV = bench.BV
	// CC builds the counterfeit-coin circuit.
	CC = bench.CC
	// Ising builds 1D transverse-field Ising Trotter steps.
	Ising = bench.Ising
	// QAOA builds a QAOA instance with the given ZZ count and depth.
	QAOA = bench.QAOA
	// GHZ builds the GHZ-state preparation chain.
	GHZ = bench.GHZ
	// WState builds a W-state preparation chain.
	WState = bench.WState
	// VQE builds a hardware-efficient VQE ansatz.
	VQE = bench.VQE
	// GraphState builds a chain graph state.
	GraphState = bench.GraphState
	// CuccaroAdder builds the ripple-carry adder (semantically verified
	// against classical addition by the test suite).
	CuccaroAdder = bench.CuccaroAdder
	// Grover builds a Grover-search skeleton.
	Grover = bench.Grover
	// HiddenShift builds the hidden-shift benchmark.
	HiddenShift = bench.HiddenShift
)
