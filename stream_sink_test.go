package hilight_test

import (
	"bytes"
	"testing"

	"hilight"
	"hilight/internal/wire"
)

// TestScheduleSinkStreamsCompile pins the emit-hook contract end to end:
// compiling with a wire.StreamEncoder sink produces a frame stream that
// reassembles into exactly the schedule Compile returns — for both the
// sequential and the parallel route pass.
func TestScheduleSinkStreamsCompile(t *testing.T) {
	c := hilight.QFT(10)
	for _, method := range []string{"hilight", "hilight-parallel"} {
		t.Run(method, func(t *testing.T) {
			g := hilight.RectGrid(c.NumQubits)
			var buf bytes.Buffer
			enc := wire.NewStreamEncoder(&buf)
			res, err := hilight.Compile(c, g,
				hilight.WithMethod(method),
				hilight.WithScheduleSink(enc))
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := enc.End(nil); err != nil {
				t.Fatalf("End: %v", err)
			}
			streamed, _, err := wire.ReadStream(&buf)
			if err != nil {
				t.Fatalf("ReadStream: %v", err)
			}
			want, err := hilight.EncodeScheduleJSON(res.Schedule)
			if err != nil {
				t.Fatalf("EncodeScheduleJSON(result): %v", err)
			}
			got, err := hilight.EncodeScheduleJSON(streamed)
			if err != nil {
				t.Fatalf("EncodeScheduleJSON(streamed): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("streamed schedule differs from Compile result (%d vs %d layers)",
					len(streamed.Layers), len(res.Schedule.Layers))
			}
		})
	}
}

// TestScheduleSinkLayerCount pins the per-layer callback cadence: one
// OnLayer per schedule layer, cycles in order, after a single OnStart.
func TestScheduleSinkLayerCount(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(c.NumQubits)
	var starts, layers int
	lastCycle := -1
	sink := sinkFuncs{
		onStart: func() error { starts++; return nil },
		onLayer: func(cycle int, layer hilight.Layer) error {
			layers++
			if cycle != lastCycle+1 {
				t.Errorf("cycle %d after %d — not contiguous", cycle, lastCycle)
			}
			lastCycle = cycle
			if len(layer) == 0 {
				t.Errorf("cycle %d: empty layer emitted", cycle)
			}
			return nil
		},
	}
	res, err := hilight.Compile(c, g, hilight.WithScheduleSink(sink))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if starts != 1 {
		t.Errorf("OnStart called %d times, want 1", starts)
	}
	if layers != len(res.Schedule.Layers) {
		t.Errorf("OnLayer called %d times, schedule has %d layers", layers, len(res.Schedule.Layers))
	}
}

type sinkFuncs struct {
	onStart func() error
	onLayer func(cycle int, layer hilight.Layer) error
}

func (s sinkFuncs) OnStart(g *hilight.Grid, initial *hilight.Layout) error { return s.onStart() }
func (s sinkFuncs) OnLayer(cycle int, layer hilight.Layer) error           { return s.onLayer(cycle, layer) }
