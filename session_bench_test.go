package hilight_test

import (
	"testing"

	"hilight"
)

// sessionBenchSubset is the Table 1 subset the session section of
// BENCH_route.json tracks: a small, a mid-size and two larger circuits,
// so the warm/cold ratio is visible across prefix lengths.
var sessionBenchSubset = []string{"rd32_270", "sqrt8_260", "urf2_277", "QFT-16"}

// sessionBenchParent compiles the parent once; the benchmark loop then
// measures only the incremental path.
func sessionBenchParent(b *testing.B, name string) (*hilight.Result, hilight.Delta) {
	b.Helper()
	c, ok := hilight.Benchmark(name)
	if !ok {
		b.Fatalf("benchmark %q not registered", name)
	}
	parent, err := hilight.Compile(c, hilight.RectGrid(c.NumQubits))
	if err != nil {
		b.Fatalf("parent compile: %v", err)
	}
	edit := hilight.Edit{Op: hilight.OpAppend, Gate: hilight.Gate{Kind: hilight.CX, Q0: 0, Q1: c.NumQubits - 1}}
	return parent, hilight.Delta{Edits: []hilight.Edit{edit}}
}

// BenchmarkRecompileEdit measures a single-gate session recompile: the
// parent placement and untouched layer prefix replay verbatim, only the
// suffix re-routes. Compare against BenchmarkRecompileEditCold below —
// the session section of BENCH_route.json pins the ratio at ≥ 3×.
func BenchmarkRecompileEdit(b *testing.B) {
	for _, name := range sessionBenchSubset {
		parent, delta := sessionBenchParent(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := hilight.Recompile(parent, delta)
				if err != nil {
					b.Fatal(err)
				}
				if res.WarmCycles == 0 {
					b.Fatal("recompile fell back cold; the benchmark would measure the wrong path")
				}
			}
		})
	}
}

// BenchmarkRecompileEditCold is the cold baseline: the same edited
// circuit compiled from scratch.
func BenchmarkRecompileEditCold(b *testing.B) {
	for _, name := range sessionBenchSubset {
		parent, delta := sessionBenchParent(b, name)
		warm, err := hilight.Recompile(parent, delta)
		if err != nil {
			b.Fatal(err)
		}
		g := hilight.RectGrid(warm.Input.NumQubits)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hilight.Compile(warm.Input, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
