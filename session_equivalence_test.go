package hilight_test

import (
	"testing"

	"hilight"
)

// sameLayerPrefix asserts the first n layers of b are byte-identical to
// a's — gate, tiles, swap flag and every path vertex.
func sameLayerPrefix(t *testing.T, a, b *hilight.Schedule, n int, label string) {
	t.Helper()
	if n > len(a.Layers) || n > len(b.Layers) {
		t.Fatalf("%s: prefix %d exceeds schedules (%d vs %d layers)", label, n, len(a.Layers), len(b.Layers))
	}
	for li := 0; li < n; li++ {
		la, lb := a.Layers[li], b.Layers[li]
		if len(la) != len(lb) {
			t.Fatalf("%s: layer %d has %d braids, parent %d", label, li, len(lb), len(la))
		}
		for bi := range la {
			x, y := la[bi], lb[bi]
			if x.Gate != y.Gate || x.CtlTile != y.CtlTile || x.TgtTile != y.TgtTile || x.SwapTiles != y.SwapTiles {
				t.Fatalf("%s: layer %d braid %d diverged: %+v vs %+v", label, li, bi, x, y)
			}
			if len(x.Path) != len(y.Path) {
				t.Fatalf("%s: layer %d braid %d path lengths diverged", label, li, bi)
			}
			for pi := range x.Path {
				if x.Path[pi] != y.Path[pi] {
					t.Fatalf("%s: layer %d braid %d path vertex %d diverged", label, li, bi, pi)
				}
			}
		}
	}
}

// TestRecompileEquivalenceTable1 is the session equivalence suite: for
// every Table 1 benchmark, a single-gate edit recompile must (1) replay
// a prefix byte-identical to the parent, (2) produce a schedule that
// fully validates, and (3) stay within the cold-compile envelope of the
// edited circuit — warm starting buys time, never schedule quality
// beyond a bounded slack.
func TestRecompileEquivalenceTable1(t *testing.T) {
	names := hilight.BenchmarkNames()
	if len(names) == 0 {
		t.Fatal("no Table 1 benchmarks registered")
	}
	if testing.Short() {
		names = names[:6]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, ok := hilight.Benchmark(name)
			if !ok {
				t.Fatalf("benchmark %q vanished", name)
			}
			g := hilight.RectGrid(c.NumQubits)
			parent, err := hilight.Compile(c, g)
			if err != nil {
				t.Fatalf("cold compile: %v", err)
			}

			edit := hilight.Edit{Op: hilight.OpAppend, Gate: hilight.Gate{Kind: hilight.CX, Q0: 0, Q1: c.NumQubits - 1}}
			warm, err := hilight.Recompile(parent, hilight.Delta{Edits: []hilight.Edit{edit}})
			if err != nil {
				t.Fatalf("recompile: %v", err)
			}
			if warm.Delta == nil {
				t.Fatal("Result.Delta not set")
			}
			if err := warm.Schedule.Validate(warm.Circuit); err != nil {
				t.Fatalf("warm schedule invalid: %v", err)
			}
			sameLayerPrefix(t, parent.Schedule, warm.Schedule, warm.WarmCycles, "edit")

			// Envelope: recompiling the edited circuit cold bounds what the
			// warm path may cost. The replayed prefix pins the parent's
			// routing, so a couple of cycles and the appended gate's path
			// are the only slack a warm start may need.
			cold, err := hilight.Compile(warm.Input, g)
			if err != nil {
				t.Fatalf("cold compile of edited circuit: %v", err)
			}
			// QCO may weave the appended gate into the middle of the edited
			// working circuit; the pinned prefix then defers it where a cold
			// route wouldn't, so the envelope is proportional, not constant.
			if slack := cold.Latency/8 + 2; warm.Latency > cold.Latency+slack {
				t.Errorf("warm latency %d vs cold %d: outside envelope", warm.Latency, cold.Latency)
			}
			if cold.PathLen > 0 && float64(warm.PathLen) > 1.25*float64(cold.PathLen)+32 {
				t.Errorf("warm pathlen %d vs cold %d: outside envelope", warm.PathLen, cold.PathLen)
			}
		})
	}
}

// TestRecompileDefectDelta checks the live-defect path: a DefectMap
// delta recompile validates, replays whatever prefix survives, and the
// result provably routes around every current defect (Validate on the
// degraded grid enforces it).
func TestRecompileDefectDelta(t *testing.T) {
	c, _ := hilight.Benchmark("rd32_270")
	g := hilight.RectGrid(c.NumQubits)
	parent, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}

	// Degrade a vertex mid-grid; the session engine must rebuild the
	// grid from BaseGrid and route clear of it.
	dm := &hilight.DefectMap{Vertices: []int{parent.Schedule.Layers[0][0].Path[0]}}
	warm, err := hilight.Recompile(parent, hilight.Delta{Defects: dm})
	if err != nil {
		t.Fatalf("defect recompile: %v", err)
	}
	if err := warm.Schedule.Validate(warm.Circuit); err != nil {
		t.Fatalf("defect recompile schedule invalid: %v", err)
	}
	for _, l := range warm.Schedule.Layers {
		for _, b := range l {
			for _, v := range b.Path {
				if v == dm.Vertices[0] {
					t.Fatalf("schedule routes through the dead vertex %d", v)
				}
			}
		}
	}
	sameLayerPrefix(t, parent.Schedule, warm.Schedule, warm.WarmCycles, "defects")

	// Healing the defect (empty replacement map) recompiles on the
	// pristine grid again and replays the whole parent.
	healed, err := hilight.Recompile(warm, hilight.Delta{Defects: &hilight.DefectMap{}})
	if err != nil {
		t.Fatalf("healed recompile: %v", err)
	}
	if err := healed.Schedule.Validate(healed.Circuit); err != nil {
		t.Fatalf("healed schedule invalid: %v", err)
	}
}

// TestRecompileUnchangedReplaysAll: the zero Delta replays the entire
// parent schedule and reports an empty diff.
func TestRecompileUnchangedReplaysAll(t *testing.T) {
	c := hilight.QFT(10)
	g := hilight.RectGrid(c.NumQubits)
	parent, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := hilight.Recompile(parent, hilight.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmCycles != len(parent.Schedule.Layers) {
		t.Fatalf("unchanged recompile replayed %d/%d layers", warm.WarmCycles, len(parent.Schedule.Layers))
	}
	if d := warm.Delta; d == nil || d.GateMoves != 0 || d.GateRepaths != 0 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatalf("unchanged recompile diff not empty: %+v", warm.Delta)
	}
	sameLayerPrefix(t, parent.Schedule, warm.Schedule, len(parent.Schedule.Layers), "identity")
}

// TestRecompileFallsBackCold: deltas the warm path cannot serve (a
// compacted parent, a changed first gate) still succeed — cold — and
// still report the diff.
func TestRecompileFallsBackCold(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(c.NumQubits)
	parent, err := hilight.Compile(c, g, hilight.WithCompaction())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := hilight.Recompile(parent, hilight.Delta{},
		hilight.WithCompaction()) // compaction rules warm replay out
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmCycles != 0 {
		t.Fatalf("compacted recompile claimed %d warm cycles", warm.WarmCycles)
	}
	if warm.Delta == nil {
		t.Fatal("cold-fallback recompile lost its Delta")
	}

	// An edit at gate 0 empties the prefix: cold fallback, valid result.
	head := hilight.Edit{Op: hilight.OpInsert, Index: 0, Gate: hilight.Gate{Kind: hilight.CX, Q0: 0, Q1: 1}}
	cold, err := hilight.Recompile(parent2(t, c, g), hilight.Delta{Edits: []hilight.Edit{head}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Schedule.Validate(cold.Circuit); err != nil {
		t.Fatalf("head-edit schedule invalid: %v", err)
	}
}

func parent2(t *testing.T, c *hilight.Circuit, g *hilight.Grid) *hilight.Result {
	t.Helper()
	res, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
