package hilight_test

import (
	"testing"

	"hilight"
)

func TestCompileAllMatchesSerial(t *testing.T) {
	var jobs []hilight.BatchJob
	for _, n := range []int{6, 8, 10, 12, 14, 16} {
		jobs = append(jobs, hilight.BatchJob{Circuit: hilight.QFT(n)})
		jobs = append(jobs, hilight.BatchJob{Circuit: hilight.BV(n), Grid: hilight.SquareGrid(n)})
	}
	serial := hilight.CompileAll(jobs, 1, hilight.WithSeed(11))
	parallel := hilight.CompileAll(jobs, 8, hilight.WithSeed(11))
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatal("result count mismatch")
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.Latency != parallel[i].Result.Latency {
			t.Errorf("job %d: serial latency %d != parallel %d",
				i, serial[i].Result.Latency, parallel[i].Result.Latency)
		}
		if err := parallel[i].Result.Schedule.Validate(parallel[i].Result.Circuit); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestCompileAllReportsPerJobErrors(t *testing.T) {
	jobs := []hilight.BatchJob{
		{Circuit: hilight.QFT(6)},
		{Circuit: nil}, // bad job
		{Circuit: hilight.QFT(9), Grid: hilight.SquareGrid(4)}, // grid too small
		{Circuit: hilight.BV(5)},
	}
	results := hilight.CompileAll(jobs, 2)
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("good jobs failed: %v / %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Error("nil-circuit job succeeded")
	}
	if results[2].Err == nil {
		t.Error("oversized job succeeded")
	}
}

func TestCompileAllEmptyAndDefaults(t *testing.T) {
	if got := hilight.CompileAll(nil, 0); len(got) != 0 {
		t.Error("empty batch returned results")
	}
	res := hilight.CompileAll([]hilight.BatchJob{{Circuit: hilight.GHZ(5)}}, 0)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Result.Grid.Tiles() != hilight.RectGrid(5).Tiles() {
		t.Error("nil grid did not default to the rectangular grid")
	}
}
