package hilight_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hilight"
)

func TestCompileAllMatchesSerial(t *testing.T) {
	var jobs []hilight.BatchJob
	for _, n := range []int{6, 8, 10, 12, 14, 16} {
		jobs = append(jobs, hilight.BatchJob{Circuit: hilight.QFT(n)})
		jobs = append(jobs, hilight.BatchJob{Circuit: hilight.BV(n), Grid: hilight.SquareGrid(n)})
	}
	serial := hilight.CompileAll(jobs, 1, hilight.WithSeed(11))
	parallel := hilight.CompileAll(jobs, 8, hilight.WithSeed(11))
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatal("result count mismatch")
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.Latency != parallel[i].Result.Latency {
			t.Errorf("job %d: serial latency %d != parallel %d",
				i, serial[i].Result.Latency, parallel[i].Result.Latency)
		}
		if err := parallel[i].Result.Schedule.Validate(parallel[i].Result.Circuit); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func TestCompileAllReportsPerJobErrors(t *testing.T) {
	jobs := []hilight.BatchJob{
		{Circuit: hilight.QFT(6)},
		{Circuit: nil}, // bad job
		{Circuit: hilight.QFT(9), Grid: hilight.SquareGrid(4)}, // grid too small
		{Circuit: hilight.BV(5)},
	}
	results := hilight.CompileAll(jobs, 2)
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("good jobs failed: %v / %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil {
		t.Error("nil-circuit job succeeded")
	}
	if results[2].Err == nil {
		t.Error("oversized job succeeded")
	}
}

func TestCompileAllEmptyAndDefaults(t *testing.T) {
	if got := hilight.CompileAll(nil, 0); len(got) != 0 {
		t.Error("empty batch returned results")
	}
	res := hilight.CompileAll([]hilight.BatchJob{{Circuit: hilight.GHZ(5)}}, 0)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Result.Grid.Tiles() != hilight.RectGrid(5).Tiles() {
		t.Error("nil grid did not default to the rectangular grid")
	}
}

// pairsCircuit routes within each half of the partitionCut grid, so the
// identity fallback succeeds where the hilight placement straddles the
// cut; wideCircuit adds a cross-cut gate no placement can satisfy.
func pairsCircuit() *hilight.Circuit {
	c := hilight.NewCircuit("pairs", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 2, 3)
	return c
}

func wideCircuit() *hilight.Circuit {
	c := hilight.NewCircuit("wide", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 2, 3)
	c.Add2(hilight.CX, 0, 3)
	return c
}

// A batch whose context died before CompileAll was even called must drain
// promptly: the dispatcher hands out no work at all (zero start events),
// and every job reports ErrCanceled.
func TestCompileAllPromptDrainOnPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]hilight.BatchJob, 5000)
	for i := range jobs {
		jobs[i] = hilight.BatchJob{Circuit: hilight.QFT(16)}
	}
	var starts atomic.Int64
	t0 := time.Now()
	results := hilight.CompileAll(jobs, 4,
		hilight.WithContext(ctx),
		hilight.WithEvents(func(e hilight.CompileEvent) {
			if e.Kind == hilight.EventJobStart {
				starts.Add(1)
			}
		}))
	elapsed := time.Since(t0)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, hilight.ErrCanceled) {
			t.Fatalf("job %d: got %v, want ErrCanceled", i, r.Err)
		}
		if r.Result != nil {
			t.Fatalf("job %d carries both Result and Err", i)
		}
	}
	if n := starts.Load(); n != 0 {
		t.Fatalf("%d jobs were dispatched under a pre-canceled context", n)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("pre-canceled batch of %d jobs took %v to drain", len(jobs), elapsed)
	}
}

// Cancelling mid-batch stops the dispatcher: the select race against
// Done plus the Err() check at the loop top allow at most one extra job
// to be handed out after cancellation, so with parallelism 1 no more
// than two jobs ever start.
func TestCompileAllCancelShortCircuitsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]hilight.BatchJob, 8)
	for i := range jobs {
		jobs[i] = hilight.BatchJob{Circuit: hilight.QFT(8)}
	}
	var starts atomic.Int64
	results := hilight.CompileAll(jobs, 1,
		hilight.WithContext(ctx),
		hilight.WithEvents(func(e hilight.CompileEvent) {
			if e.Kind == hilight.EventJobStart {
				starts.Add(1)
				cancel()
			}
		}))
	// The started job's Compile sees the dead context; the rest are
	// failed by the dispatcher without ever reaching a worker.
	for i, r := range results {
		if !errors.Is(r.Err, hilight.ErrCanceled) {
			t.Fatalf("job %d: got %v, want ErrCanceled", i, r.Err)
		}
	}
	if n := starts.Load(); n == 0 || n > 2 {
		t.Fatalf("%d jobs started, want 1 or 2 (dispatcher kept dispatching after cancel)", n)
	}
}

// Every BatchResult carries exactly one of Result and Err — including a
// job degraded to a fallback method (Result only, Degraded set) and a job
// whose every chain entry failed (Err only, no partial Result).
func TestCompileAllBatchResultInvariant(t *testing.T) {
	g, cut := partitionCut()
	jobs := []hilight.BatchJob{
		{Circuit: pairsCircuit(), Grid: g}, // degrades to the identity fallback
		{Circuit: wideCircuit(), Grid: g},  // unroutable under every chain entry
		{Circuit: nil},                     // rejected before compiling
	}
	results := hilight.CompileAll(jobs, 2,
		hilight.WithDefects(cut), hilight.WithFallback("identity"))
	for i, r := range results {
		if (r.Result == nil) == (r.Err == nil) {
			t.Fatalf("job %d violates the exactly-one invariant: Result=%v Err=%v",
				i, r.Result, r.Err)
		}
	}
	if results[0].Err != nil {
		t.Fatalf("degradable job failed: %v", results[0].Err)
	}
	if !results[0].Result.Degraded || results[0].Result.FallbackMethod != "identity" {
		t.Fatalf("job 0: Degraded=%v FallbackMethod=%q, want true/identity",
			results[0].Result.Degraded, results[0].Result.FallbackMethod)
	}
	if results[1].Err == nil {
		t.Fatal("unroutable job succeeded")
	}
	if results[2].Err == nil {
		t.Fatal("nil-circuit job succeeded")
	}
}

// The batch/... metric family reconciles with the batch outcome: the
// outcome counters are disjoint and sum to batch/jobs, the histograms
// record one observation per picked-up job, the inflight gauge returns
// to zero, and the compile/... fallback counters match the degradation
// chain activity.
func TestCompileAllMetricsAccounting(t *testing.T) {
	g, cut := partitionCut()
	jobs := []hilight.BatchJob{
		{Circuit: pairsCircuit(), Grid: g}, // succeeds via fallback (degraded)
		{Circuit: wideCircuit(), Grid: g},  // fails after trying the fallback
		{Circuit: nil},                     // fails without compiling
	}
	m := hilight.NewMetrics()
	hilight.CompileAll(jobs, 2,
		hilight.WithMetrics(m), hilight.WithDefects(cut), hilight.WithFallback("identity"))
	snap := m.Snapshot()
	counter := func(name string) int64 {
		t.Helper()
		v, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %q missing from snapshot", name)
		}
		return v
	}
	want := map[string]int64{
		"batch/jobs":           3,
		"batch/jobs-succeeded": 1,
		"batch/jobs-failed":    2,
		"batch/jobs-panicked":  0,
		"batch/jobs-canceled":  0,
		"batch/jobs-degraded":  1,
		// Jobs 0 and 1 each activate the fallback chain once; only job 0
		// recovers.
		"compile/fallback-activations": 2,
		"compile/fallback-recovered":   1,
	}
	for name, v := range want {
		if got := counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if sum := counter("batch/jobs-succeeded") + counter("batch/jobs-failed") +
		counter("batch/jobs-panicked") + counter("batch/jobs-canceled"); sum != counter("batch/jobs") {
		t.Errorf("outcome counters sum to %d, want batch/jobs = %d", sum, counter("batch/jobs"))
	}
	if v, ok := snap.Gauge("batch/inflight"); !ok || v != 0 {
		t.Errorf("batch/inflight = %d (ok=%v), want 0 after the batch returns", v, ok)
	}
	for _, h := range []string{"batch/queue-wait-seconds", "batch/job-seconds"} {
		hs, ok := snap.Histogram(h)
		if !ok || hs.Count != 3 {
			t.Errorf("%s count = %d (ok=%v), want one observation per picked-up job", h, hs.Count, ok)
		}
	}
}

// Event stream invariants: every job emits exactly one terminal event,
// a start precedes it when a worker picked the job up, and a degraded
// job additionally reports JobDegraded (naming the fallback method)
// before its finish.
func TestCompileAllEventInvariants(t *testing.T) {
	g, cut := partitionCut()
	jobs := []hilight.BatchJob{
		{Circuit: pairsCircuit(), Grid: g},
		{Circuit: wideCircuit(), Grid: g},
		{Circuit: nil},
	}
	var mu sync.Mutex
	perJob := make(map[int][]hilight.CompileEvent)
	hilight.CompileAll(jobs, 1,
		hilight.WithDefects(cut), hilight.WithFallback("identity"),
		hilight.WithEvents(func(e hilight.CompileEvent) {
			mu.Lock()
			perJob[e.Job] = append(perJob[e.Job], e)
			mu.Unlock()
		}))
	if len(perJob) != len(jobs) {
		t.Fatalf("events for %d jobs, want %d", len(perJob), len(jobs))
	}
	for i := range jobs {
		evs := perJob[i]
		if len(evs) == 0 || evs[0].Kind != hilight.EventJobStart {
			t.Fatalf("job %d: first event %v, want JobStart", i, evs)
		}
		last := evs[len(evs)-1]
		if last.Kind != hilight.EventJobFinish && last.Kind != hilight.EventJobPanic {
			t.Fatalf("job %d: last event %v is not terminal", i, last.Kind)
		}
		terminals := 0
		for _, e := range evs {
			if e.Kind == hilight.EventJobFinish || e.Kind == hilight.EventJobPanic {
				terminals++
			}
		}
		if terminals != 1 {
			t.Fatalf("job %d emitted %d terminal events, want exactly one", i, terminals)
		}
	}
	// Job 0 degraded: JobDegraded with the fallback method, then a clean
	// finish.
	evs := perJob[0]
	if len(evs) != 3 || evs[1].Kind != hilight.EventJobDegraded {
		t.Fatalf("degraded job events = %v, want [start degraded finish]", evs)
	}
	if evs[1].Method != "identity" {
		t.Errorf("JobDegraded.Method = %q, want identity", evs[1].Method)
	}
	if evs[2].Err != nil {
		t.Errorf("degraded job finished with Err: %v", evs[2].Err)
	}
	// Failed jobs carry their error on the finish event and no degraded
	// event.
	for _, i := range []int{1, 2} {
		evs := perJob[i]
		if len(evs) != 2 || evs[1].Err == nil {
			t.Fatalf("failed job %d events = %v, want [start finish(err)]", i, evs)
		}
	}
}
