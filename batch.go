package hilight

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// BatchJob is one circuit/grid pair for CompileAll. A nil Grid selects
// the rectangular M×(M−1) grid for the circuit's width.
type BatchJob struct {
	Circuit *Circuit
	Grid    *Grid
}

// BatchResult pairs a job's result with its error; exactly one of the
// two is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// CompileAll maps every job concurrently on a bounded worker pool and
// returns results in job order. parallelism ≤ 0 uses GOMAXPROCS. Every
// job runs the same pass pipeline Compile does — each builds its own
// Pipeline with a fresh seeded rng, so jobs never share mutable router
// internals; identical seeds give identical per-job results (including
// per-job Result.Trace) regardless of pool size or scheduling.
//
// A job that panics is isolated: the panic is recovered into that job's
// Err while every other job runs to completion. When a WithContext
// context is canceled mid-batch, the remaining jobs fail fast with
// ErrCanceled (Compile checks the context before doing any work), so a
// canceled batch drains promptly instead of compiling to the end.
func CompileAll(jobs []BatchJob, parallelism int, opts ...Option) []BatchResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runBatchJob(i, jobs[i], opts)
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// runBatchJob compiles one job, converting a panic anywhere below (a
// poisoned circuit, a placement bug) into that job's error instead of
// killing the whole process.
func runBatchJob(i int, job BatchJob, opts []Option) (br BatchResult) {
	defer func() {
		if rec := recover(); rec != nil {
			br = BatchResult{Err: fmt.Errorf("hilight: job %d panicked: %v\n%s", i, rec, debug.Stack())}
		}
	}()
	if job.Circuit == nil {
		return BatchResult{Err: fmt.Errorf("hilight: job %d has no circuit", i)}
	}
	g := job.Grid
	if g == nil {
		g = RectGrid(job.Circuit.NumQubits)
	}
	res, err := Compile(job.Circuit, g, opts...)
	return BatchResult{Result: res, Err: err}
}
