package hilight

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"hilight/internal/obs"
)

// BatchJob is one circuit/grid pair for CompileAll. A nil Grid selects
// the rectangular M×(M−1) grid for the circuit's width.
type BatchJob struct {
	Circuit *Circuit
	Grid    *Grid
}

// BatchResult pairs a job's result with its error. Exactly one of the
// two is set: a successful job (including one degraded to a WithFallback
// method — check Result.Degraded) carries a Result and a nil Err, while
// any failure carries an Err and a nil Result. runBatchJob enforces the
// invariant, so callers may branch on `Err != nil` alone.
type BatchResult struct {
	Result *Result
	Err    error
}

// CompileAll maps every job concurrently on a bounded worker pool and
// returns results in job order. parallelism ≤ 0 uses GOMAXPROCS. Every
// job runs the same pass pipeline Compile does — each builds its own
// Pipeline with a fresh seeded rng, so jobs never share mutable router
// internals; identical seeds give identical per-job results (including
// per-job Result.Trace) regardless of pool size or scheduling.
//
// A job that panics is isolated: the panic is recovered into that job's
// Err while every other job runs to completion. When a WithContext
// context is canceled mid-batch, the dispatcher stops handing out work
// and fails every not-yet-dispatched job with ErrCanceled directly —
// a canceled 10k-job batch drains in the time of the in-flight jobs, not
// by round-tripping every index through a worker. Jobs already picked up
// fail fast too (Compile checks the context before doing any work).
//
// With WithMetrics, the batch feeds the registry's batch/... family:
// job counters (jobs, jobs-succeeded, jobs-failed, jobs-panicked,
// jobs-canceled, jobs-degraded), queue-wait-seconds and job-seconds
// histograms, and an inflight gauge. With WithEvents, every job emits
// lifecycle events (see CompileEvent).
func CompileAll(jobs []BatchJob, parallelism int, opts ...Option) []BatchResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	// Resolve the batch-level options (context, metrics, events) from the
	// same option list each job's Compile will consume.
	o := options{method: "hilight", seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	bm := newBatchMetrics(o.metrics)
	bm.jobs(int64(len(jobs)))

	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runJob(i, jobs[i], opts, o.events, bm, time.Since(start))
				if o.jobDone != nil {
					o.jobDone(i, results[i])
				}
			}
		}()
	}

	// Dispatch until the context dies; a canceled batch short-circuits
	// here instead of round-tripping every remaining index through a
	// worker. The Err() check at the loop top bounds how many sends can
	// still win the select race against Done.
	dispatched := len(jobs)
dispatch:
	for i := range jobs {
		if o.ctx == nil {
			work <- i
			continue
		}
		if o.ctx.Err() != nil {
			dispatched = i
			break
		}
		select {
		case work <- i:
		case <-o.ctx.Done():
			dispatched = i
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	// Fail the jobs the dispatcher never handed out. They report a
	// terminal finish event with zero Duration and no preceding start.
	if dispatched < len(jobs) {
		err := fmt.Errorf("hilight: %w (batch canceled before job was dispatched: %v)",
			ErrCanceled, o.ctx.Err())
		for i := dispatched; i < len(jobs); i++ {
			results[i] = BatchResult{Err: err}
			bm.canceled()
			if o.events != nil {
				o.events.OnEvent(obs.Event{Kind: obs.JobFinish, Job: i, Err: err})
			}
			if o.jobDone != nil {
				o.jobDone(i, results[i])
			}
		}
	}
	return results
}

// runJob runs one picked-up job with its bookkeeping: queue-wait and
// wall-time metrics, lifecycle events, and the job counters.
func runJob(i int, job BatchJob, opts []Option, ev obs.EventObserver, bm *batchMetrics, wait time.Duration) BatchResult {
	bm.pickedUp(wait)
	if ev != nil {
		ev.OnEvent(obs.Event{Kind: obs.JobStart, Job: i, QueueWait: wait})
	}
	t0 := time.Now()
	br, panicked := runBatchJob(i, job, opts)
	d := time.Since(t0)
	bm.finished(br, panicked, d)
	if ev != nil {
		if br.Result != nil && br.Result.Degraded {
			ev.OnEvent(obs.Event{
				Kind: obs.JobDegraded, Job: i, Method: br.Result.FallbackMethod,
				QueueWait: wait, Duration: d,
			})
		}
		kind := obs.JobFinish
		if panicked {
			kind = obs.JobPanic
		}
		ev.OnEvent(obs.Event{Kind: kind, Job: i, Err: br.Err, QueueWait: wait, Duration: d})
	}
	return br
}

// runBatchJob compiles one job, converting a panic anywhere below (a
// poisoned circuit, a placement bug) into that job's error instead of
// killing the whole process. It upholds the BatchResult invariant:
// exactly one of Result and Err is set, so an error never carries a
// partial Result and a degraded fallback success never carries an Err.
func runBatchJob(i int, job BatchJob, opts []Option) (br BatchResult, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			br = BatchResult{Err: fmt.Errorf("hilight: job %d panicked: %v\n%s", i, rec, debug.Stack())}
			panicked = true
		}
	}()
	if job.Circuit == nil {
		return BatchResult{Err: fmt.Errorf("hilight: job %d has no circuit", i)}, false
	}
	g := job.Grid
	if g == nil {
		g = RectGrid(job.Circuit.NumQubits)
	}
	res, err := Compile(job.Circuit, g, opts...)
	if err != nil {
		// Drop any partial result: the documented invariant is that an
		// errored job carries no Result.
		return BatchResult{Err: err}, false
	}
	return BatchResult{Result: res}, false
}

// batchMetrics bundles the batch/... handles so the worker loop meters
// jobs through cached pointers (atomic increments, no lookups). A nil
// receiver (no registry) turns every method into a no-op.
type batchMetrics struct {
	submitted, succeeded, failed, panicked, cancel, degraded *obs.Counter
	queueWait, jobSeconds                                    *obs.Histogram
	inflight                                                 *obs.Gauge
}

func newBatchMetrics(m *obs.Registry) *batchMetrics {
	if m == nil {
		return nil
	}
	return &batchMetrics{
		submitted:  m.Counter("batch/jobs"),
		succeeded:  m.Counter("batch/jobs-succeeded"),
		failed:     m.Counter("batch/jobs-failed"),
		panicked:   m.Counter("batch/jobs-panicked"),
		cancel:     m.Counter("batch/jobs-canceled"),
		degraded:   m.Counter("batch/jobs-degraded"),
		queueWait:  m.Histogram("batch/queue-wait-seconds", obs.DurationBuckets),
		jobSeconds: m.Histogram("batch/job-seconds", obs.DurationBuckets),
		inflight:   m.Gauge("batch/inflight"),
	}
}

func (b *batchMetrics) jobs(n int64) {
	if b != nil {
		b.submitted.Add(n)
	}
}

func (b *batchMetrics) pickedUp(wait time.Duration) {
	if b != nil {
		b.queueWait.ObserveDuration(wait)
		b.inflight.Add(1)
	}
}

func (b *batchMetrics) canceled() {
	if b != nil {
		b.cancel.Inc()
	}
}

// finished classifies a terminal job into exactly one of the disjoint
// outcome counters: jobs = succeeded + failed + panicked + canceled.
func (b *batchMetrics) finished(br BatchResult, panicked bool, d time.Duration) {
	if b == nil {
		return
	}
	b.jobSeconds.ObserveDuration(d)
	b.inflight.Add(-1)
	switch {
	case panicked:
		b.panicked.Inc()
	case errors.Is(br.Err, ErrCanceled):
		b.cancel.Inc()
	case br.Err != nil:
		b.failed.Inc()
	default:
		b.succeeded.Inc()
		if br.Result.Degraded {
			b.degraded.Inc()
		}
	}
}
