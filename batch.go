package hilight

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchJob is one circuit/grid pair for CompileAll. A nil Grid selects
// the rectangular M×(M−1) grid for the circuit's width.
type BatchJob struct {
	Circuit *Circuit
	Grid    *Grid
}

// BatchResult pairs a job's result with its error; exactly one of the
// two is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// CompileAll maps every job concurrently on a bounded worker pool and
// returns results in job order. parallelism ≤ 0 uses GOMAXPROCS. Each
// worker builds its own framework state, so jobs never share mutable
// router internals; identical seeds give identical per-job results
// regardless of pool size or scheduling.
func CompileAll(jobs []BatchJob, parallelism int, opts ...Option) []BatchResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				job := jobs[i]
				if job.Circuit == nil {
					results[i] = BatchResult{Err: fmt.Errorf("hilight: job %d has no circuit", i)}
					continue
				}
				g := job.Grid
				if g == nil {
					g = RectGrid(job.Circuit.NumQubits)
				}
				res, err := Compile(job.Circuit, g, opts...)
				results[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
