package hilight_test

import (
	"sort"
	"testing"

	"hilight"
)

// The registry enumerators hand out sorted defensive copies: a caller
// that sorts, truncates, or scribbles over the returned slice must not
// corrupt later calls or the registries behind them.
func TestMethodsDefensiveCopy(t *testing.T) {
	a := hilight.Methods()
	if len(a) == 0 {
		t.Fatal("no methods registered")
	}
	if !sort.StringsAreSorted(a) {
		t.Errorf("Methods not sorted: %v", a)
	}
	want := append([]string(nil), a...)
	for i := range a {
		a[i] = "corrupted"
	}
	b := hilight.Methods()
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("mutating Methods() result leaked into later call: %v", b)
		}
	}
	// The registry itself still resolves every name.
	for _, m := range b {
		if _, err := hilight.Compile(hilight.GHZ(3), hilight.SquareGrid(3), hilight.WithMethod(m)); err != nil {
			t.Errorf("method %q broken after mutation: %v", m, err)
		}
	}
}

func TestBenchmarkNamesDefensiveCopy(t *testing.T) {
	a := hilight.BenchmarkNames()
	if len(a) == 0 {
		t.Fatal("no benchmarks registered")
	}
	if !sort.StringsAreSorted(a) {
		t.Errorf("BenchmarkNames not sorted: %v", a)
	}
	want := append([]string(nil), a...)
	for i := range a {
		a[i] = "corrupted"
	}
	b := hilight.BenchmarkNames()
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("mutating BenchmarkNames() result leaked into later call: %v", b)
		}
	}
	for _, name := range b {
		if _, ok := hilight.Benchmark(name); !ok {
			t.Errorf("benchmark %q no longer resolves after mutation", name)
		}
	}
}
