module hilight

go 1.22
