GO ?= go

.PHONY: all build vet lint test race bench bench-route bench-smoke fuzz golden wire-compat check serve smoke chaos chaos-short cluster-smoke session-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally (CI installs
# it); when absent the target degrades to a notice instead of failing.
STATICCHECK ?= staticcheck
lint: vet
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "lint: $(STATICCHECK) not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# The full suite under the race detector: the CompileAll worker pool,
# the shared metrics registry, and every package that touches them.
race:
	$(GO) test -race ./...

# Hot-path microbenchmarks tracked in BENCH_route.json. BenchmarkRouteCircuit
# and BenchmarkFinderFind must report 0 allocs/op in steady state.
bench-route:
	$(GO) test -bench 'BenchmarkFinderFind|BenchmarkOccupancy' -benchmem -benchtime 1000x ./internal/route/
	$(GO) test -bench 'BenchmarkRouteCircuit|BenchmarkCompileQFT' -benchmem -benchtime 5x ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkWire -benchmem -benchtime 200x .

# Fast benchmark regression gate for CI: one iteration of the QFT64
# compile (sequential + the parallel worker sweep), failing only past 5x
# of the BENCH_route.json snapshot — order-of-magnitude protection, not
# precision tracking.
bench-smoke:
	$(GO) run ./cmd/benchsmoke

# Everything, including the paper-artifact benchmarks (slow).
bench:
	$(GO) test -bench . -benchmem ./...

# Fuzz the hostile-input surfaces: the QASM parser, the schedule JSON
# decoder, and the binary wire decoders. FUZZTIME=20s per target by
# default; raise it for deeper runs.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/qasm/
	$(GO) test -run '^$$' -fuzz FuzzDecodeJSON -fuzztime $(FUZZTIME) ./internal/sched/
	$(GO) test -run '^$$' -fuzz FuzzDecodeWire -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDelta -fuzztime $(FUZZTIME) ./internal/session/

# Refresh the behavior-preservation goldens after an *intentional* schedule
# change (testdata/golden_schedules.json).
golden:
	$(GO) test -run TestGoldenSchedules -update .

# Wire-format compatibility gate (CI job wire-compat): every checked-in
# testdata/golden_wire fixture must decode and re-encode byte-identically
# — the v1 freeze. Refresh with `go test -run TestGoldenWire -update .`
# only alongside a format version bump.
wire-compat:
	$(GO) test -run 'TestGoldenWire|TestBinaryRoundTrip|TestStreamRoundTrip' -v . ./internal/wire/

# Run the compile service locally (POST /v1/compile, /v1/jobs; see
# `hilightd -h` for flags). SERVE_ADDR=:9000 picks a different port.
SERVE_ADDR ?= :8753
serve:
	$(GO) run ./cmd/hilightd -addr $(SERVE_ADDR)

# The daemon end-to-end smoke: boots hilightd on an ephemeral port,
# compiles over HTTP (asserting a cache hit via /metrics), forces a 429
# off a full queue, and SIGTERMs the daemon mid-compile to check drain.
smoke:
	$(GO) test -run 'TestE2E' -v ./cmd/hilightd/

# Bounded chaos soak (~30s under -race): ≥20 daemon lives over one shared
# journal with a fixed fault schedule — kill -9 crashes mid-batch, journal
# resurrection, injected pass panics, watchdog stalls, client disconnects
# and slow-loris bodies — asserting no acked job is lost or duplicated,
# results stay byte-deterministic, metrics reconcile, nothing leaks.
chaos-short:
	$(GO) test -race -run TestChaosShort -v ./internal/chaos/

# Multi-node soak under -race: one coordinator over three in-process
# workers, a worker killed mid-batch — no acked job may be lost, the
# coordinator must stop routing to the dead worker within a probe
# interval or two, and repeated fingerprints must hit the sharded caches
# at least as often as a single node. Plus the cluster unit/integration
# tests (ring, steal queue, byte-identity, passthrough).
cluster-smoke:
	$(GO) test -race -run TestClusterSoak -v ./internal/chaos/
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run TestE2ECoordinator -v ./cmd/hilightd/

# Session-engine soak under -race: daemon lives over one shared journal
# driving incremental recompiles (If-Fingerprint-Match) interleaved with
# live defect feeds and kill -9 crashes — every recompiled schedule must
# validate and route around the current defects, and no acked session
# head may be lost across a restart. Plus the session unit/equivalence
# tests and the service/cluster session round-trips.
session-smoke:
	$(GO) test -race -run TestSessionChurn -v ./internal/chaos/
	$(GO) test -race ./internal/session/
	$(GO) test -race -run 'TestSession|TestDefectFeed' ./internal/service/
	$(GO) test -race -run TestClusterSessionAffinity ./internal/cluster/

# Longer randomized soak via the CLI driver; tune with CHAOS_CYCLES/CHAOS_SEED.
CHAOS_CYCLES ?= 50
CHAOS_SEED ?= 1
chaos:
	$(GO) run ./cmd/chaos -cycles $(CHAOS_CYCLES) -seed $(CHAOS_SEED)

check: build vet test
