package hilight

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/place"
)

// boomPlacement panics on circuits named "boom" — a stand-in for a buggy
// placement hitting a pathological input — and otherwise defers to
// identity placement.
type boomPlacement struct{}

func (boomPlacement) Name() string { return "boom" }

func (boomPlacement) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	if c.Name == "boom" {
		panic("placement exploded")
	}
	return place.Identity{}.Place(c, g)
}

// withPlacement is the white-box test hook: it swaps the method's
// placement for an arbitrary implementation.
func withPlacement(m place.Method) Option {
	return func(o *options) { o.placement = m }
}

func mkJob(name string) BatchJob {
	c := NewCircuit(name, 4)
	c.Add2(CX, 0, 1)
	c.Add2(CX, 2, 3)
	return BatchJob{Circuit: c}
}

// A panicking job must surface as that job's Err while every other job
// runs to completion.
func TestCompileAllIsolatesPanics(t *testing.T) {
	jobs := []BatchJob{mkJob("ok-0"), mkJob("boom"), mkJob("ok-2")}
	results := CompileAll(jobs, 2, withPlacement(boomPlacement{}))
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, results[i].Err)
		}
		if results[i].Result == nil || results[i].Result.Schedule == nil {
			t.Fatalf("job %d has no schedule", i)
		}
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("poisoned job reported no error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "placement exploded") {
		t.Fatalf("panic not reflected in error: %v", err)
	}
	if results[1].Result != nil {
		t.Fatal("poisoned job has both Result and Err")
	}
}

// A canceled context drains the batch promptly: every remaining job fails
// fast with ErrCanceled instead of compiling to the end.
func TestCompileAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []BatchJob{mkJob("a"), mkJob("b"), mkJob("c"), mkJob("d")}
	for i, r := range CompileAll(jobs, 2, WithContext(ctx)) {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("job %d: got %v, want ErrCanceled", i, r.Err)
		}
	}
}

// A panicking job reports the JobPanic terminal event (not JobFinish)
// and lands in the batch/jobs-panicked counter.
func TestCompileAllPanicEventAndMetrics(t *testing.T) {
	jobs := []BatchJob{mkJob("ok-0"), mkJob("boom")}
	m := NewMetrics()
	var mu sync.Mutex
	kinds := make(map[int][]EventKind)
	CompileAll(jobs, 1, withPlacement(boomPlacement{}),
		WithMetrics(m),
		WithEvents(func(e CompileEvent) {
			mu.Lock()
			kinds[e.Job] = append(kinds[e.Job], e.Kind)
			mu.Unlock()
		}))
	if got := kinds[0]; len(got) != 2 || got[0] != EventJobStart || got[1] != EventJobFinish {
		t.Fatalf("healthy job events = %v, want [job-start job-finish]", got)
	}
	if got := kinds[1]; len(got) != 2 || got[0] != EventJobStart || got[1] != EventJobPanic {
		t.Fatalf("poisoned job events = %v, want [job-start job-panic]", got)
	}
	snap := m.Snapshot()
	for name, want := range map[string]int64{
		"batch/jobs-panicked":  1,
		"batch/jobs-succeeded": 1,
		"batch/jobs-failed":    0,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
}

// A nil-circuit job fails alone, without panicking the pool.
func TestCompileAllNilCircuitJob(t *testing.T) {
	results := CompileAll([]BatchJob{{}, mkJob("fine")}, 0)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "no circuit") {
		t.Fatalf("nil-circuit job: got %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("healthy job failed: %v", results[1].Err)
	}
}
