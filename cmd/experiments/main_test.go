package main

import (
	"strings"
	"testing"

	"hilight/internal/exp"
	"hilight/internal/obs"
)

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", exp.Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunOneSmallExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	o := exp.Options{Scale: exp.ScaleSmall, Trials: 2, Seed: 3}
	for _, name := range []string{"fig8c", "threshold", "finders"} {
		if err := runOne(name, o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// With a registry attached, an experiment's compiles aggregate into the
// pipeline/... metric families.
func TestRunOneFeedsMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	o := exp.Options{Scale: exp.ScaleSmall, Trials: 1, Seed: 3, Metrics: obs.NewRegistry()}
	if err := runOne("bounds", o); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	runs, ok := snap.Counter("pipeline/route/runs")
	if !ok || runs <= 0 {
		t.Fatalf("pipeline/route/runs = %d (ok=%v), want > 0", runs, ok)
	}
	var buf strings.Builder
	if err := snap.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pipeline_route_runs_total") {
		t.Errorf("exposition missing route runs:\n%s", buf.String())
	}
}
