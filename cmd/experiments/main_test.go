package main

import (
	"testing"

	"hilight/internal/exp"
)

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", exp.Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunOneSmallExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	o := exp.Options{Scale: exp.ScaleSmall, Trials: 2, Seed: 3}
	for _, name := range []string{"fig8c", "threshold", "finders"} {
		if err := runOne(name, o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
