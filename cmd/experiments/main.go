// Command experiments regenerates the paper's evaluation artifacts:
// Table 1 and Figures 8a, 8b, 8c, 9 and 10.
//
// Usage:
//
//	experiments -run all -scale small
//	experiments -run table1,fig9 -scale medium -trials 10
//
// Scale bounds the benchmark sizes: small (seconds), medium (tens of
// seconds), full (the paper's largest instances, minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hilight/internal/exp"
	"hilight/internal/obs"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated: table1,fig8a,fig8b,fig8c,fig9,fig10,threshold,finders,defects or all")
		scale   = flag.String("scale", "small", "benchmark scale: small, medium, full")
		trials  = flag.Int("trials", 5, "trials for randomized arms (paper: 100)")
		seed    = flag.Int64("seed", 1, "base seed")
		format  = flag.String("format", "table", "output format: table or csv (table1 and fig9 only)")
		metrics = flag.Bool("metrics", false, "print aggregated compile metrics (Prometheus text format) after the runs")
	)
	flag.Parse()
	o := exp.Options{Scale: exp.Scale(*scale), Trials: *trials, Seed: *seed}
	if *metrics {
		o.Metrics = obs.NewRegistry()
	}
	asCSV = *format == "csv"
	names := strings.Split(*run, ",")
	if *run == "all" {
		names = []string{"table1", "fig8a", "fig8b", "fig8c", "fig9", "fig10", "threshold", "finders", "bounds", "modes", "defects"}
	}
	for _, name := range names {
		if err := runOne(strings.TrimSpace(name), o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if o.Metrics != nil {
		if err := o.Metrics.WriteMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// asCSV selects CSV output for the reports that support it.
var asCSV bool

func runOne(name string, o exp.Options) error {
	switch name {
	case "table1":
		rep, err := exp.RunTable1(o)
		if err != nil {
			return err
		}
		if asCSV {
			return rep.WriteCSV(os.Stdout)
		}
		fmt.Println("Table 1 — mapping-level comparison (grid M×(M−1))")
		rep.Print(os.Stdout)
	case "fig8a":
		rep, err := exp.RunFig8a(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "fig8b":
		rep, err := exp.RunFig8b(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "fig8c":
		rep, err := exp.RunFig8c(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "fig9":
		rep, err := exp.RunFig9(o)
		if err != nil {
			return err
		}
		if asCSV {
			return rep.WriteCSV(os.Stdout)
		}
		rep.Print(os.Stdout)
	case "fig10":
		rep, err := exp.RunFig10(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "threshold":
		rep, err := exp.RunThresholdSweep(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "finders":
		rep, err := exp.RunFinderAblation(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "bounds":
		rep, err := exp.RunBounds(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "modes":
		rep, err := exp.RunModes(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	case "defects":
		rep, err := exp.RunDefectYield(o)
		if err != nil {
			return err
		}
		rep.Print(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment (table1, fig8a, fig8b, fig8c, fig9, fig10, threshold, finders, bounds, modes, defects)")
	}
	return nil
}
