// Command chaos soaks hilightd under randomized crash/fault schedules
// and reports any violated resilience invariant. It boots the daemon
// in-process, kill -9s it mid-batch, replays the journal, injects pass
// panics, watchdog stalls, client disconnects and slow-loris bodies,
// and verifies that no acknowledged job is lost or duplicated and that
// every fingerprint resolves to byte-identical schedules across lives.
//
// Usage:
//
//	go run ./cmd/chaos -cycles 50 -kill-prob 0.6 -seed 42
//
// Exit status 1 when any invariant broke; the violations are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hilight/internal/chaos"
)

func main() { os.Exit(run()) }

func run() int {
	var cfg chaos.Config
	flag.Int64Var(&cfg.Seed, "seed", 1, "fault-schedule seed (same seed, same schedule)")
	flag.IntVar(&cfg.Cycles, "cycles", 22, "daemon lives to run")
	flag.IntVar(&cfg.BatchesPerCycle, "batches", 2, "async batches submitted per life")
	flag.IntVar(&cfg.JobsPerBatch, "jobs", 2, "jobs per batch")
	flag.Float64Var(&cfg.KillProb, "kill-prob", 0.5, "per-cycle probability of a crash stop")
	flag.IntVar(&cfg.StallEvery, "stall-every", 7, "inject a watchdog stall every Nth cycle (0 disables)")
	flag.IntVar(&cfg.PanicEvery, "panic-every", 5, "inject a pass panic every Nth cycle (0 disables)")
	flag.DurationVar(&cfg.WatchdogWindow, "watchdog", 250*time.Millisecond, "stall-detection window")
	journal := flag.String("journal", "", "journal directory (empty: a temp dir, removed on success)")
	keep := flag.Bool("keep", false, "keep the temp journal directory for inspection")
	flag.Parse()

	cfg.Log = os.Stderr
	cfg.JournalDir = *journal
	temp := cfg.JournalDir == ""
	if temp {
		dir, err := os.MkdirTemp("", "hilightd-chaos-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.JournalDir = dir
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	fmt.Printf("cycles: %d (%d crashes, %d graceful)\n", rep.Cycles, rep.Crashes, rep.Graceful)
	fmt.Printf("acked: %d batches / %d jobs; faults: %d stalls, %d panics, %d disconnects, %d slow-loris\n",
		rep.BatchesAcked, rep.JobsAcked, rep.Stalls, rep.Panics, rep.Disconnects, rep.Loris)
	if len(rep.Violations) > 0 {
		fmt.Printf("VIOLATIONS (%d):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  - %s\n", v)
		}
		if temp {
			fmt.Printf("journal kept at %s\n", cfg.JournalDir)
		}
		return 1
	}
	fmt.Println("all invariants held")
	if temp && !*keep {
		os.RemoveAll(cfg.JournalDir)
	} else if temp {
		fmt.Printf("journal kept at %s\n", cfg.JournalDir)
	}
	return 0
}
