package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerateToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "qft.qasm")
	if err := run(false, "", out, 6, 0, 0, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "qreg q[6]") {
		t.Errorf("output missing register:\n%s", data)
	}
}

func TestRunNamedBenchmark(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bv.qasm")
	if err := run(false, "BV-10", out, 0, 0, 0, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "cx ") != 9 {
		t.Errorf("BV-10 should emit 9 CX gates:\n%s", data)
	}
}

func TestRunAllGeneratorFlags(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name                    string
		qft, bv, cc, ising, ghz int
	}{
		{"bv", 0, 8, 0, 0, 0},
		{"cc", 0, 0, 8, 0, 0},
		{"ising", 0, 0, 0, 6, 0},
		{"ghz", 0, 0, 0, 0, 7},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.name+".qasm")
		if err := run(false, "", out, c.qft, c.bv, c.cc, c.ising, 2, c.ghz); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
			t.Fatalf("%s produced no output", c.name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, "", "", 0, 0, 0, 0, 5, 0); err == nil {
		t.Error("nothing-to-generate accepted")
	}
	if err := run(false, "nope", "", 0, 0, 0, 0, 5, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(false, "BV-10", "/no/such/dir/x.qasm", 0, 0, 0, 0, 5, 0); err == nil {
		t.Error("unwritable output accepted")
	}
}
