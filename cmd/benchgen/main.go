// Command benchgen emits the built-in benchmark circuits as OpenQASM 2.0,
// for feeding other toolchains or inspecting the workloads Table 1 runs.
//
// Usage:
//
//	benchgen -list
//	benchgen -name QFT-100 [-out qft100.qasm]
//	benchgen -qft 32 | -bv 64 | -cc 32 | -ising 16 -steps 5 | -ghz 12
package main

import (
	"flag"
	"fmt"
	"os"

	"hilight"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list built-in Table 1 benchmarks")
		name  = flag.String("name", "", "Table 1 benchmark name")
		out   = flag.String("out", "", "output file (default stdout)")
		qft   = flag.Int("qft", 0, "generate an n-qubit QFT")
		bv    = flag.Int("bv", 0, "generate an n-qubit Bernstein-Vazirani")
		cc    = flag.Int("cc", 0, "generate an n-qubit counterfeit-coin")
		ising = flag.Int("ising", 0, "generate an n-spin 1D Ising model")
		steps = flag.Int("steps", 5, "Trotter steps for -ising")
		ghz   = flag.Int("ghz", 0, "generate an n-qubit GHZ preparation")
	)
	flag.Parse()
	if err := run(*list, *name, *out, *qft, *bv, *cc, *ising, *steps, *ghz); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(list bool, name, out string, qft, bv, cc, ising, steps, ghz int) error {
	if list {
		for _, b := range hilight.BenchmarkNames() {
			fmt.Println(b)
		}
		return nil
	}
	var c *hilight.Circuit
	switch {
	case name != "":
		var ok bool
		if c, ok = hilight.Benchmark(name); !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", name)
		}
	case qft > 0:
		c = hilight.QFT(qft)
	case bv > 0:
		c = hilight.BV(bv)
	case cc > 0:
		c = hilight.CC(cc)
	case ising > 0:
		c = hilight.Ising(ising, steps)
	case ghz > 0:
		c = hilight.GHZ(ghz)
	default:
		return fmt.Errorf("nothing to generate (try -list, -name, or -qft N)")
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return hilight.WriteQASM(w, c)
}
