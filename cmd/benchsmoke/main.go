// Command benchsmoke is the CI benchmark regression gate: it runs a
// small, fast subset of the tracked benchmarks once and fails when a
// result lands more than -factor slower than the snapshot recorded in
// BENCH_route.json.
//
// Usage:
//
//	benchsmoke [-baseline BENCH_route.json] [-factor 5] [-bench regex] [-pkg ./internal/core/]
//
// The gate is deliberately loose: with -benchtime 1x on shared CI
// runners the noise floor is high, so the factor defaults to 5×. The
// point is to catch order-of-magnitude regressions (an accidental
// quadratic loop, a lost fast path) the moment they land — precision
// tracking stays with `make bench-route` on a quiet machine.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// snapshot mirrors the per-benchmark record in BENCH_route.json.
type snapshot struct {
	NsOp float64 `json:"ns_op"`
}

// benchFile mirrors the sections of BENCH_route.json the gate reads:
// "current" holds the sequential-path snapshots, "parallel" the
// route-worker sweeps. Both are gated the same way.
type benchFile struct {
	CPU      string              `json:"cpu"`
	Current  map[string]snapshot `json:"current"`
	Parallel map[string]snapshot `json:"parallel"`
}

// benchLine matches one `go test -bench` result line:
// BenchmarkCompileQFT/QFT64-8  1  9549907 ns/op  ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchsmoke", flag.ContinueOnError)
	var (
		baseline = fs.String("baseline", "BENCH_route.json", "snapshot file with the reference ns/op values")
		factor   = fs.Float64("factor", 5, "fail when measured ns/op exceeds the snapshot by this factor")
		// "BenchmarkCompileQFT/QFT64" also matches the Parallel variant
		// (go test -bench splits the regex per slash, each part
		// unanchored), so one run covers the sequential compile and the
		// whole worker sweep at QFT64 size.
		bench     = fs.String("bench", "BenchmarkCompileQFT/QFT64", "benchmark regex passed to go test -bench")
		pkg       = fs.String("pkg", "./internal/core/", "package holding the benchmarks")
		benchtime = fs.String("benchtime", "1x", "go test -benchtime value")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		return 1
	}
	var ref benchFile
	if err := json.Unmarshal(data, &ref); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %s: %v\n", *baseline, err)
		return 1
	}
	want := make(map[string]float64, len(ref.Current)+len(ref.Parallel))
	for name, s := range ref.Current {
		want[name] = s.NsOp
	}
	for name, s := range ref.Parallel {
		want[name] = s.NsOp
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, *pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke: go test:", err)
		return 1
	}

	matched, failed := 0, 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ns, ok := want[name]
		if !ok {
			fmt.Printf("?    %-45s %12.0f ns/op (no snapshot in %s)\n", name, got, *baseline)
			continue
		}
		matched++
		ratio := got / ns
		verdict := "ok  "
		if ratio > *factor {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-45s %12.0f ns/op  %5.2fx of snapshot %.0f\n", verdict, name, got, ratio, ns)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchsmoke: -bench %q matched no snapshotted benchmarks — gate is vacuous\n", *bench)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchsmoke: %d of %d benchmarks regressed past %.1fx\n", failed, matched, *factor)
		return 1
	}
	fmt.Printf("benchsmoke: %d benchmarks within %.1fx of %s\n", matched, *factor, *baseline)
	return 0
}
