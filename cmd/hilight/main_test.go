package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hilight"
	"hilight/internal/wire"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "", true, "hilight", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hilight-map") || !strings.Contains(out, "QFT-100") {
		t.Errorf("list output incomplete:\n%s", out)
	}
}

func TestRunBenchMetrics(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "BV-10", false, "hilight-map", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency   9 cycles") {
		t.Errorf("BV-10 metrics wrong:\n%s", out)
	}
}

func TestRunQASMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ghz.qasm")
	src := "OPENQASM 2.0;\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(path, "", false, "hilight-map", "square", "", 1, "metrics", "", 0, 0, -1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency   3 cycles") {
		t.Errorf("ghz metrics wrong:\n%s", out)
	}
}

func TestRunRealFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.real")
	src := ".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(path, "", false, "hilight-map", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency   1 cycles") {
		t.Errorf("real-file metrics wrong:\n%s", out)
	}
}

func TestRunShowVariants(t *testing.T) {
	for _, show := range []string{"layers", "viz", "heat", "svg", "json", "qasm"} {
		out, err := capture(t, func() error {
			return run("", "CC-11", false, "hilight-map", "rect", "", 1, show, "", 0, 0, -1, false, false)
		})
		if err != nil {
			t.Fatalf("%s: %v", show, err)
		}
		if len(out) == 0 {
			t.Errorf("%s produced no output", show)
		}
	}
}

func TestRunWithFactoryAndMagic(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "sqrt8_260", false, "hilight-map", "rect", "1x1", 1, "metrics", "", 10, 0, -1, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "magic") || !strings.Contains(out, "units needed") {
		t.Errorf("magic analysis missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []func() error{
		func() error {
			return run("", "", false, "hilight", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
		}, // no input
		func() error {
			return run("", "nope", false, "hilight", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
		}, // bad bench
		func() error {
			return run("", "BV-10", false, "nope", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
		}, // bad method
		func() error {
			return run("", "BV-10", false, "hilight", "hex", "", 1, "metrics", "", 0, 0, -1, false, false)
		}, // bad grid
		func() error {
			return run("", "BV-10", false, "hilight", "rect", "x", 1, "metrics", "", 0, 0, -1, false, false)
		}, // bad factory
		func() error {
			return run("", "BV-10", false, "hilight", "rect", "", 1, "nope", "", 0, 0, -1, false, false)
		}, // bad show
		func() error {
			return run("/no/such/file.qasm", "", false, "hilight", "rect", "", 1, "metrics", "", 0, 0, -1, false, false)
		},
	}
	for i, f := range cases {
		if _, err := capture(t, f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunTraceTable(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "QFT-10", false, "hilight", "rect", "", 1, "metrics", "", 0, 0, -1, true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"validate", "decompose-swaps", "qco", "place", "route", "finalize-metrics", "total"} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace table missing stage %q:\n%s", stage, out)
		}
	}
}

// -metrics appends the Prometheus text exposition to the output, and its
// pipeline counters reconcile with the human-readable metrics above it:
// one run per executed pass, and the route pass's cycle total equals the
// reported latency.
func TestRunMetricsFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", "BV-10", false, "hilight-map", "rect", "", 1, "metrics", "", 0, 0, -1, false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency   9 cycles") {
		t.Fatalf("human metrics missing:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE pipeline_route_runs_total counter",
		"pipeline_route_runs_total 1",
		"pipeline_route_cycles_total 9", // reconciles with the latency line
		"pipeline_place_runs_total 1",
		"route_braids_routed_total",
		"pipeline_route_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRunFormatVariants pins the -format flag: json prints the canonical
// schedule JSON, bin writes the binary wire payload, stream writes a
// frame stream — and all three carry the same schedule.
func TestRunFormatVariants(t *testing.T) {
	outputs := map[string]string{}
	for _, format := range []string{"json", "bin", "stream"} {
		out, err := capture(t, func() error {
			return run("", "BV-10", false, "hilight-map", "rect", "", 1, "metrics", format, 0, 0, -1, false, false)
		})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s produced no output", format)
		}
		outputs[format] = out
	}

	jsonSched, err := hilight.DecodeScheduleJSON([]byte(outputs["json"]))
	if err != nil {
		t.Fatalf("-format json output undecodable: %v", err)
	}
	binSched, err := hilight.DecodeScheduleBinary([]byte(outputs["bin"]))
	if err != nil {
		t.Fatalf("-format bin output undecodable: %v", err)
	}
	streamSched, meta, err := wire.ReadStream(strings.NewReader(outputs["stream"]))
	if err != nil {
		t.Fatalf("-format stream output undecodable: %v", err)
	}
	var trailer struct {
		LatencyCycles int `json:"latency_cycles"`
	}
	if err := json.Unmarshal(meta, &trailer); err != nil || trailer.LatencyCycles <= 0 {
		t.Errorf("stream trailer metadata malformed: %s (%v)", meta, err)
	}
	want, _ := hilight.EncodeScheduleJSON(jsonSched)
	for name, s := range map[string]*hilight.Schedule{"bin": binSched, "stream": streamSched} {
		got, _ := hilight.EncodeScheduleJSON(s)
		if !bytes.Equal(got, want) {
			t.Errorf("-format %s schedule differs from -format json", name)
		}
	}
	if len(outputs["bin"]) >= len(outputs["json"]) {
		t.Errorf("binary output (%d B) not smaller than JSON (%d B)", len(outputs["bin"]), len(outputs["json"]))
	}

	if _, err := capture(t, func() error {
		return run("", "BV-10", false, "hilight-map", "rect", "", 1, "metrics", "nope", 0, 0, -1, false, false)
	}); err == nil {
		t.Error("unknown -format accepted")
	}
}
