// Command hilight maps a quantum circuit onto a double-defect
// surface-code grid and reports the braiding schedule and its metrics.
//
// Usage:
//
//	hilight -in circuit.qasm [flags]
//	hilight -bench QFT-100 [flags]
//
// Flags select the mapping method (any of the paper's configurations,
// including the AutoBraid baselines), the grid shape, an optional
// magic-state factory reservation, and the output form.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"hilight"
	"hilight/internal/wire"
)

func main() {
	var (
		inFile  = flag.String("in", "", "OpenQASM 2.0 input file")
		benchN  = flag.String("bench", "", "built-in benchmark name (see -list)")
		list    = flag.Bool("list", false, "list built-in benchmarks and methods")
		method  = flag.String("method", "hilight", "mapping method")
		gridKin = flag.String("grid", "rect", "grid shape: square or rect (M×(M−1))")
		factory = flag.String("factory", "", "reserve a WxH magic-state factory, e.g. 2x2")
		seed    = flag.Int64("seed", 1, "seed for randomized components")
		show    = flag.String("show", "metrics", "output: metrics, layers, viz, heat, svg, json, or qasm")
		format  = flag.String("format", "", "schedule encoding to stdout: json (canonical JSON), bin (versioned binary wire format), or stream (binary frames emitted while the router runs); overrides -show")
		trace   = flag.Bool("trace", false, "print per-stage pipeline timing and counters")
		metrics = flag.Bool("metrics", false, "print aggregated compile metrics (Prometheus text format) after the output")
		magicP  = flag.Int("magic-period", 0, "analyze magic-state throughput: cycles per distilled state (0 = off)")
		routeW  = flag.Int("route-workers", 0, "worker pool for *-parallel route methods (0 = method preset, negative = GOMAXPROCS); the schedule is identical at any setting")
		lookahd = flag.Int("lookahead", -1, "dependency-layer lookahead window for *-parallel route methods (-1 = method preset, 0 = off); tie-breaks equal-length paths only")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write a heap profile to this file after compiling")
		diffF   = flag.Bool("diff", false, "compare two schedule files (canonical JSON or binary wire format) and print the differences: hilight -diff a.json b.json")
	)
	flag.Parse()
	if *diffF {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "hilight: -diff needs exactly two schedule files")
			os.Exit(2)
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "hilight:", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hilight:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hilight:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*inFile, *benchN, *list, *method, *gridKin, *factory, *seed, *show, *format, *magicP, *routeW, *lookahd, *trace, *metrics)
	if *memProf != "" {
		f, merr := os.Create(*memProf)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "hilight:", merr)
			os.Exit(1)
		}
		runtime.GC() // report live objects, not transient garbage
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "hilight:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilight:", err)
		exit(1)
	}
}

// exit runs deferred profile flushes before terminating.
func exit(code int) {
	pprof.StopCPUProfile()
	os.Exit(code)
}

// runDiff loads two schedule files and prints how they differ — the
// regression view for anyone iterating on heuristics, and the offline
// twin of the delta a session recompile reports.
func runDiff(pathA, pathB string) error {
	a, err := loadSchedule(pathA)
	if err != nil {
		return err
	}
	b, err := loadSchedule(pathB)
	if err != nil {
		return err
	}
	d := hilight.CompareSchedules(a, b)
	d.Print(os.Stdout, filepath.Base(pathA), filepath.Base(pathB))
	return nil
}

// loadSchedule reads a schedule in either on-disk encoding the CLI can
// emit, sniffing JSON by its leading byte.
func loadSchedule(path string) (*hilight.Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		s, err := hilight.DecodeScheduleJSON(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	s, err := hilight.DecodeScheduleBinary(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func run(inFile, benchName string, list bool, method, gridKind, factory string, seed int64, show, format string, magicPeriod, routeWorkers, lookahead int, trace, metrics bool) error {
	if list {
		fmt.Println("methods:")
		for _, m := range hilight.Methods() {
			fmt.Println("  " + m)
		}
		fmt.Println("benchmarks:")
		for _, b := range hilight.BenchmarkNames() {
			fmt.Println("  " + b)
		}
		return nil
	}
	var c *hilight.Circuit
	switch {
	case inFile != "":
		var err error
		if strings.EqualFold(filepath.Ext(inFile), ".real") {
			data, rerr := os.ReadFile(inFile)
			if rerr != nil {
				return rerr
			}
			name := strings.TrimSuffix(filepath.Base(inFile), filepath.Ext(inFile))
			c, err = hilight.ParseReal(name, string(data))
		} else {
			c, err = hilight.ParseQASMFile(inFile)
		}
		if err != nil {
			return err
		}
	case benchName != "":
		var ok bool
		c, ok = hilight.Benchmark(benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", benchName)
		}
	default:
		return fmt.Errorf("need -in or -bench (try -list)")
	}

	switch format {
	case "", "json", "bin", "stream":
	default:
		return fmt.Errorf("unknown -format %q (json, bin, stream)", format)
	}
	// Binary formats own stdout; human-readable side channels (trace,
	// metrics exposition) move to stderr so the payload stays parseable.
	textOut := os.Stdout
	if format == "bin" || format == "stream" {
		textOut = os.Stderr
	}

	g, err := buildGrid(c.NumQubits, gridKind, factory)
	if err != nil {
		return err
	}
	copts := []hilight.Option{hilight.WithMethod(method), hilight.WithSeed(seed)}
	if routeWorkers != 0 {
		copts = append(copts, hilight.WithRouteWorkers(routeWorkers))
	}
	if lookahead >= 0 {
		copts = append(copts, hilight.WithLookahead(lookahead))
	}
	var reg *hilight.Metrics
	if metrics {
		reg = hilight.NewMetrics()
		copts = append(copts, hilight.WithMetrics(reg))
	}
	var enc *wire.StreamEncoder
	if format == "stream" {
		// Frames hit stdout while the router runs: a consumer holds layer 0
		// before the compile finishes.
		enc = wire.NewStreamEncoder(os.Stdout)
		copts = append(copts, hilight.WithScheduleSink(enc))
	}
	res, err := hilight.Compile(c, g, copts...)
	if err != nil {
		if enc != nil && enc.Started() {
			// Frames already went out; deliver the failure in-band too.
			_ = enc.Abort(err.Error())
		}
		return err
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		if enc != nil && enc.Started() {
			_ = enc.Abort(err.Error())
		}
		return fmt.Errorf("internal error: produced invalid schedule: %w", err)
	}
	if trace {
		printTrace(textOut, res)
	}

	switch format {
	case "stream":
		meta, err := json.Marshal(map[string]any{
			"latency_cycles": res.Latency,
			"path_len":       res.PathLen,
			"resutil":        res.ResUtil,
			"runtime_ns":     res.Runtime.Nanoseconds(),
		})
		if err != nil {
			return err
		}
		if err := enc.End(meta); err != nil {
			return err
		}
		return writeMetrics(reg, textOut)
	case "bin":
		data, err := hilight.EncodeScheduleBinary(res.Schedule)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
		return writeMetrics(reg, textOut)
	case "json":
		data, err := hilight.EncodeScheduleJSON(res.Schedule)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return writeMetrics(reg, textOut)
	}

	switch show {
	case "metrics":
		fmt.Printf("circuit   %s (%d qubits, %d gates, %d two-qubit)\n",
			c.Name, c.NumQubits, c.Len(), c.CXCount())
		fmt.Printf("grid      %s\n", g)
		fmt.Printf("method    %s\n", method)
		fmt.Printf("latency   %d cycles\n", res.Latency)
		fmt.Printf("runtime   %s\n", res.Runtime)
		fmt.Printf("resutil   %.3f\n", res.ResUtil)
		fmt.Printf("pathlen   %d occupied routing vertices\n", res.PathLen)
		if ins := res.Schedule.InsertedBraids(); ins > 0 {
			fmt.Printf("inserted  %d SWAP braids\n", ins)
		}
		if magicPeriod > 0 {
			unit := hilight.DefaultMagicFactory()
			unit.Period = magicPeriod
			rep, err := hilight.AnalyzeMagic(res.Circuit, res.Schedule, unit)
			if err != nil {
				return err
			}
			fmt.Printf("magic     %d T gates, %d stall cycles with 1 unit (total latency %d)\n",
				rep.TCount, rep.StallCycles, rep.TotalLatency)
			if k, err := hilight.MagicFactoriesNeeded(res.Circuit, res.Schedule, unit, 0, 1024); err == nil {
				fmt.Printf("          %d units needed for stall-free execution\n", k)
			}
		}
	case "viz":
		fmt.Print(hilight.RenderSchedule(res.Schedule, 8))
	case "heat":
		fmt.Print(hilight.RenderHeat(res.Schedule))
	case "svg":
		fmt.Print(hilight.RenderSVG(res.Schedule, 16))
	case "json":
		data, err := hilight.EncodeScheduleJSON(res.Schedule)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "layers":
		for i, layer := range res.Schedule.Layers {
			fmt.Printf("cycle %d:\n", i)
			for _, b := range layer {
				if b.Gate >= 0 {
					fmt.Printf("  gate %d  %v  tiles %d->%d  path %v\n",
						b.Gate, res.Circuit.Gates[b.Gate], b.CtlTile, b.TgtTile, b.Path)
				} else {
					fmt.Printf("  swap braid  tiles %d<->%d  path %v\n", b.CtlTile, b.TgtTile, b.Path)
				}
			}
		}
	case "qasm":
		fmt.Print(hilight.FormatQASM(res.Circuit))
	default:
		return fmt.Errorf("unknown -show %q (metrics, layers, viz, heat, svg, json, qasm)", show)
	}
	return writeMetrics(reg, os.Stdout)
}

// writeMetrics appends the Prometheus exposition when -metrics asked for
// it; a nil registry is a no-op.
func writeMetrics(reg *hilight.Metrics, w io.Writer) error {
	if reg == nil {
		return nil
	}
	fmt.Fprintln(w)
	return reg.WriteMetrics(w)
}

// printTrace renders Result.Trace as a per-stage table: one row per
// executed pipeline pass with its wall-clock duration and counters.
func printTrace(w io.Writer, res *hilight.Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tduration\tcounters")
	var total time.Duration
	for _, st := range res.Trace {
		total += st.Duration
		parts := make([]string, 0, len(st.Counters))
		for _, c := range st.Counters {
			parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", st.Stage, st.Duration, strings.Join(parts, " "))
	}
	fmt.Fprintf(tw, "total\t%s\t(runtime %s)\n", total, res.Runtime)
	tw.Flush()
}

func buildGrid(n int, kind, factory string) (*hilight.Grid, error) {
	rect := false
	switch kind {
	case "rect":
		rect = true
	case "square":
	default:
		return nil, fmt.Errorf("unknown -grid %q (square, rect)", kind)
	}
	if factory == "" {
		if rect {
			return hilight.RectGrid(n), nil
		}
		return hilight.SquareGrid(n), nil
	}
	var fw, fh int
	if _, err := fmt.Sscanf(factory, "%dx%d", &fw, &fh); err != nil {
		return nil, fmt.Errorf("bad -factory %q, want WxH: %w", factory, err)
	}
	return hilight.GridWithFactory(n, fw, fh, rect)
}
