package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hilight/internal/wire"
)

// syncBuffer is a goroutine-safe buffer for the daemon's stdout/stderr.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`hilightd listening on (http://\S+)`)

// bootDaemon runs the daemon in-process on an ephemeral port and returns
// its base URL plus a channel carrying run's exit code.
func bootDaemon(t *testing.T, args ...string) (string, *syncBuffer, chan int) {
	t.Helper()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], &stderr, exit
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d\nstderr: %s", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address\nstdout: %s", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postCompile(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("non-JSON response (%d): %s", resp.StatusCode, data)
	}
	return resp.StatusCode, out
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestE2ESmoke is the end-to-end acceptance path: boot hilightd on an
// ephemeral port, compile a built-in benchmark twice over HTTP, assert
// the second response came from the schedule cache (via /metrics), force
// a 429 off a full queue, then SIGTERM the daemon mid-compile and check
// the in-flight request drains before exit.
func TestE2ESmoke(t *testing.T) {
	base, stderr, exit := bootDaemon(t, "-workers", "2", "-queue", "-1", "-drain-timeout", "2m")
	waitReady(t, base)

	// First compile: a miss that fills the cache.
	status, first := postCompile(t, base, `{"benchmark":"QFT-16"}`)
	if status != 200 {
		t.Fatalf("first compile status %d: %v", status, first)
	}
	if first["cached"] != false || first["schedule"] == nil {
		t.Fatalf("malformed first response: cached=%v", first["cached"])
	}

	// Second identical compile: answered from cache.
	status, second := postCompile(t, base, `{"benchmark":"QFT-16"}`)
	if status != 200 || second["cached"] != true {
		t.Fatalf("second compile not a cache hit (status %d, cached=%v)", status, second["cached"])
	}
	if second["fingerprint"] != first["fingerprint"] {
		t.Error("fingerprint changed between identical requests")
	}
	metrics := scrapeMetrics(t, base)
	if !strings.Contains(metrics, "cache_hits_total 1") {
		t.Errorf("metrics missing cache_hits_total 1:\n%s", metrics)
	}

	// Saturate the two workers (queue depth 0) with slow compiles; an
	// extra request must bounce with 429 + Retry-After.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Best-effort: these finish after the SIGTERM below, proving
			// drain; errors are checked through the status codes.
			resp, err := http.Post(base+"/v1/compile", "application/json",
				strings.NewReader(`{"benchmark":"QFT-150","no_cache":true}`))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("in-flight compile finished with %d, want 200", resp.StatusCode)
				}
			} else {
				t.Errorf("in-flight compile failed: %v", err)
			}
		}()
	}
	// Wait until both slow compiles are admitted.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(scrapeMetrics(t, base), "service_inflight 2") {
		if time.Now().After(deadline) {
			t.Fatal("slow compiles never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"benchmark":"QFT-100","no_cache":true}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// SIGTERM with two compiles in flight: the daemon must flip
	// readiness, let both finish (asserted in the goroutines above), and
	// exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(2 * time.Minute): // generous: -race slows compiles ~15x
		t.Fatalf("daemon never exited after SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutdown complete") {
		t.Errorf("missing shutdown log:\nstderr: %s", stderr.String())
	}
	// The listener is gone: further requests fail to connect.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

// TestE2EAsyncJobs drives the async path end to end: submit a batch,
// poll to completion, fetch the schedules, then shut down cleanly.
func TestE2EAsyncJobs(t *testing.T) {
	base, stderr, exit := bootDaemon(t)
	waitReady(t, base)

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(
		`{"jobs":[{"benchmark":"QFT-10"},{"benchmark":"CC-11"}],"compact":true}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var sub struct{ ID string }
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			Status  string
			Results []struct {
				Error  string
				Result map[string]any
			}
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad poll body: %s", data)
		}
		if st.Status == "done" {
			for i, r := range st.Results {
				if r.Error != "" || r.Result["schedule"] == nil {
					t.Fatalf("job %d: err=%q", i, r.Error)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Batch lifecycle events reached the log bridge.
	if !strings.Contains(stderr.String(), "kind=job-finish") {
		t.Errorf("stderr missing job lifecycle events:\n%s", stderr.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out syncBuffer
	if code := run([]string{"-bogus"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &out); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}

// metricValue extracts a single metric's value from the Prometheus text
// exposition.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, metrics)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

func stopDaemon(t *testing.T, stderr *syncBuffer, exit chan int) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon never exited after SIGTERM")
	}
}

// TestE2EWireFormats drives the codec layer end to end: binary content
// negotiation on /v1/compile, the streaming mode's first-frame-before-
// compile-finishes guarantee, and the cache holding more entries under
// the binary encoding than the same schedules' JSON bytes would allow.
func TestE2EWireFormats(t *testing.T) {
	benchmarks := []string{"QFT-10", "QFT-16", "BV-10", "CC-11", "Ising-10"}

	// Phase 1: measure each benchmark's JSON schedule and binary payload
	// over the real HTTP surface.
	base, stderr, exit := bootDaemon(t)
	waitReady(t, base)
	var jsonTotal, binTotal int
	for _, b := range benchmarks {
		body := `{"benchmark":"` + b + `"}`
		resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", b, resp.StatusCode, data)
		}
		var env struct {
			Schedule json.RawMessage `json:"schedule"`
		}
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, env.Schedule); err != nil {
			t.Fatal(err)
		}
		jsonTotal += compact.Len()

		req, err := http.NewRequest("POST", base+"/v1/compile", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-hilight-sched")
		bresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		bin, _ := io.ReadAll(bresp.Body)
		bresp.Body.Close()
		if bresp.StatusCode != 200 {
			t.Fatalf("%s: binary status %d", b, bresp.StatusCode)
		}
		if ct := bresp.Header.Get("Content-Type"); ct != "application/x-hilight-sched" {
			t.Fatalf("%s: binary Content-Type %q", b, ct)
		}
		if bresp.Header.Get("X-Hilight-Cached") != "true" {
			t.Errorf("%s: binary follow-up missed the cache the JSON compile filled", b)
		}
		if _, err := wire.Binary.Decode(bin); err != nil {
			t.Fatalf("%s: binary payload undecodable: %v", b, err)
		}
		binTotal += len(bin)
	}
	if binTotal*100 >= jsonTotal*40 {
		t.Errorf("binary payloads %d B not ≤40%% of JSON %d B over Table 1 subset", binTotal, jsonTotal)
	}

	// Streaming: the first layer frame must arrive before the compile
	// finishes. The end-frame trailer carries the compile's runtime on the
	// same process clock, so the comparison is sound: if the first frame
	// beat t0+runtime, it was delivered while the router was still working.
	t0 := time.Now()
	sresp, err := http.Post(base+"/v1/compile?stream=1", "application/json",
		strings.NewReader(`{"benchmark":"QFT-100","no_cache":true}`))
	if err != nil {
		t.Fatal(err)
	}
	dec := wire.NewStreamDecoder(sresp.Body)
	var firstLayer time.Time
	var layers int
	var trailer struct {
		RuntimeNS int64 `json:"runtime_ns"`
		Cached    bool  `json:"cached"`
	}
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream frame: %v", err)
		}
		switch f.Kind {
		case wire.FrameLayer:
			if layers == 0 {
				firstLayer = time.Now()
			}
			layers++
		case wire.FrameEnd:
			if err := json.Unmarshal(f.Payload, &trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
		case wire.FrameError:
			t.Fatalf("stream aborted: %s", f.Payload)
		}
	}
	sresp.Body.Close()
	if layers == 0 || trailer.RuntimeNS == 0 {
		t.Fatalf("stream carried %d layers, runtime %d", layers, trailer.RuntimeNS)
	}
	compileEnd := t0.Add(time.Duration(trailer.RuntimeNS))
	if !firstLayer.Before(compileEnd) {
		t.Errorf("first layer frame at +%v, after the %v compile finished",
			firstLayer.Sub(t0), time.Duration(trailer.RuntimeNS))
	}
	stopDaemon(t, stderr, exit)

	// Phase 2: a cache cap far below the schedules' JSON footprint holds
	// every entry under the binary encoding — the cache-entries win the
	// codec refactor was for, observed through /metrics.
	budget := jsonTotal / 2
	base2, stderr2, exit2 := bootDaemon(t, "-cache-bytes", strconv.Itoa(budget))
	waitReady(t, base2)
	for _, b := range benchmarks {
		status, _ := postCompile(t, base2, `{"benchmark":"`+b+`"}`)
		if status != 200 {
			t.Fatalf("%s: status %d", b, status)
		}
	}
	metrics := scrapeMetrics(t, base2)
	if got := metricValue(t, metrics, "cache_entries"); got != float64(len(benchmarks)) {
		t.Errorf("cache_entries = %v with a %d B cap, want %d (JSON bytes would need %d)",
			got, budget, len(benchmarks), jsonTotal)
	}
	if got := metricValue(t, metrics, "cache_evictions_total"); got != 0 {
		t.Errorf("cache_evictions_total = %v, want 0", got)
	}
	encoded := metricValue(t, metrics, "cache_encoded_bytes")
	if encoded != float64(binTotal) {
		t.Errorf("cache_encoded_bytes = %v, want %d (the binary payload bytes)", encoded, binTotal)
	}
	stopDaemon(t, stderr2, exit2)
}

var coordRe = regexp.MustCompile(`hilightd coordinating \d+ workers on (http://\S+)`)

// TestE2ECoordinator boots two worker daemons and a coordinator over
// them, all in-process: compiles route deterministically on the
// fingerprint (the repeat lands on the same worker and hits its cache),
// the coordinator's JSON matches the single-node shape, and one SIGTERM
// drains the whole trio cleanly.
func TestE2ECoordinator(t *testing.T) {
	w1, _, exit1 := bootDaemon(t, "-node-id", "w1", "-watchdog", "0")
	w2, _, exit2 := bootDaemon(t, "-node-id", "w2", "-watchdog", "0")
	waitReady(t, w1)
	waitReady(t, w2)

	var stdout, stderr syncBuffer
	coExit := make(chan int, 1)
	go func() {
		coExit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-coordinator", w1 + "," + w2,
			"-node-id", "co",
			"-probe-interval", "50ms",
		}, &stdout, &stderr)
	}()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := coordRe.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced itself\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitReady(t, base)

	req, err := http.NewRequest("POST", base+"/v1/compile", strings.NewReader(`{"benchmark": "QFT-10"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	first, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if first.StatusCode != 200 {
		t.Fatalf("compile via coordinator: %d", first.StatusCode)
	}
	if got := first.Header.Get("X-Hilight-Node"); got != "co" {
		t.Errorf("X-Hilight-Node = %q, want coordinator id", got)
	}
	servedBy := first.Header.Get("X-Hilight-Worker")
	if servedBy == "" {
		t.Fatal("coordinator response lacks X-Hilight-Worker")
	}

	status, env := postCompile(t, base, `{"benchmark": "QFT-10"}`)
	if status != 200 {
		t.Fatalf("repeat compile: %d", status)
	}
	if cached, _ := env["cached"].(bool); !cached {
		t.Error("repeat fingerprint missed the sharded worker cache")
	}

	metrics := scrapeMetrics(t, base)
	for _, want := range []string{"cluster_forwards_total 2", "cluster_worker_up 2"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("coordinator metrics lack %q:\n%s", want, metrics)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan int{"coordinator": coExit, "worker1": exit1, "worker2": exit2} {
		select {
		case code := <-ch:
			if code != 0 {
				t.Errorf("%s exited %d", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s never exited after SIGTERM", name)
		}
	}
}
