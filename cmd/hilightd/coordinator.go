package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hilight/internal/cluster"
)

type coordinatorConfig struct {
	addr          string
	workers       []string
	nodeID        string
	probeInterval time.Duration
	maxJobs       int
	drainTimeout  time.Duration
}

// runCoordinator is the -coordinator body: the same listen / serve /
// signal-drain shape as the worker path, around a cluster.Coordinator
// instead of a service.Server.
func runCoordinator(cfg coordinatorConfig, stdout, stderr io.Writer) int {
	var urls []string
	for _, w := range cfg.workers {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	co, err := cluster.New(cluster.Config{
		Workers:       urls,
		NodeID:        cfg.nodeID,
		ProbeInterval: cfg.probeInterval,
		MaxStoredJobs: cfg.maxJobs,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "hilightd coordinating %d workers on http://%s\n", len(urls), ln.Addr())

	hs := &http.Server{Handler: co.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}
	stop()

	fmt.Fprintln(stderr, "hilightd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "hilightd: http drain:", err)
		code = 1
	}
	if err := co.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "hilightd:", err)
		code = 1
	}
	fmt.Fprintln(stderr, "hilightd: shutdown complete")
	return code
}
