// Command hilightd serves the HiLight compiler over HTTP: a
// compile-as-a-service daemon with a content-addressed schedule cache
// and admission control.
//
// Usage:
//
//	hilightd [-addr :8753] [-workers N] [-queue N] [-cache-bytes N]
//	         [-journal DIR] [-watchdog D] [-node-id NAME] [-tenant-quota N]
//	hilightd -coordinator URL1,URL2,... [-addr :8753] [-node-id NAME]
//	         [-probe-interval D]
//
// With -coordinator, hilightd runs as a cluster coordinator instead of
// a compile worker: sync compiles and async batch units are
// consistent-hashed across the listed workers on the request
// fingerprint (so each worker's schedule cache shards naturally), async
// units flow through a work-stealing queue, and workers failing their
// periodic readiness probe are drained out of the hash ring. Client
// JSON is byte-identical either way — node-to-node traffic uses a
// compact binary-payload envelope transcoded back at the coordinator.
//
// With -journal, acknowledged async batches are written to a durable
// append-only journal before the 202 returns; on startup the journal is
// replayed — finished batches are served from the log, unfinished ones
// re-run only their incomplete jobs — and compacted. A kill -9 mid-batch
// therefore loses no acknowledged work. With -watchdog, a compile that
// makes no routing-cycle progress for a full window is aborted (504) so
// a stuck compile cannot pin a worker forever.
//
// Endpoints:
//
//	POST /v1/compile      synchronous compile (cached by fingerprint)
//	POST /v1/jobs         submit an async batch (CompileAll semantics)
//	GET  /v1/jobs/{id}    poll a batch; results once done
//	GET  /v1/methods      mapping methods accepted by "method"
//	GET  /v1/benchmarks   built-in benchmark circuits
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 once draining)
//	GET  /metrics         Prometheus text exposition
//
// SIGINT/SIGTERM trigger a graceful shutdown: readiness flips, new
// compile work is rejected with 503, and in-flight compiles and async
// batches drain (bounded by -drain-timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hilight/internal/obs"
	"hilight/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon body, separated from main so the e2e test can boot
// it in-process on an ephemeral port and drive it with real signals.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hilightd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8753", "listen address (host:port; port 0 picks an ephemeral port)")
		workers      = fs.Int("workers", 0, "max concurrent compiles (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "max compiles queued beyond the workers (negative disables queueing; a full queue answers 429)")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "schedule cache capacity in bytes (negative disables)")
		maxJobs      = fs.Int("max-jobs", 64, "max retained async batches")
		timeout      = fs.Duration("timeout", 60*time.Second, "default per-compile deadline")
		maxTimeout   = fs.Duration("max-timeout", 10*time.Minute, "cap on request-supplied deadlines")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
		logEvents    = fs.Bool("log-events", true, "log async batch job lifecycle events to stderr")
		routeWorkers = fs.Int("route-workers", 0, "route-pass worker pool for *-parallel methods when a request doesn't set route_workers (0 = method preset, negative = GOMAXPROCS); schedules are identical at any setting")
		journalDir   = fs.String("journal", "", "directory for the durable job journal (empty disables; async batches then don't survive restarts)")
		watchdog     = fs.Duration("watchdog", 2*time.Minute, "abort compiles with no routing-cycle progress for this long (0 disables)")
		nodeID       = fs.String("node-id", "", "node name stamped in the X-Hilight-Node response header (cluster deployments)")
		tenantQuota  = fs.Int("tenant-quota", 0, "max concurrently admitted compiles+batches per tenant (X-Hilight-Tenant header; 0 disables)")
		coordinator  = fs.String("coordinator", "", "run as cluster coordinator over this comma-separated worker URL list instead of compiling locally")
		probeIvl     = fs.Duration("probe-interval", 250*time.Millisecond, "coordinator worker readiness probe period")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *coordinator != "" {
		return runCoordinator(coordinatorConfig{
			addr:          *addr,
			workers:       strings.Split(*coordinator, ","),
			nodeID:        *nodeID,
			probeInterval: *probeIvl,
			maxJobs:       *maxJobs,
			drainTimeout:  *drainTimeout,
		}, stdout, stderr)
	}

	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     *cacheBytes,
		MaxStoredJobs:  *maxJobs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RouteWorkers:   *routeWorkers,
		JournalDir:     *journalDir,
		WatchdogWindow: *watchdog,
		NodeID:         *nodeID,
		TenantQuota:    *tenantQuota,
	}
	if *logEvents {
		cfg.Events = obs.NewLogObserver(stderr)
	}
	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}
	// The resolved address line is machine-readable on purpose: with
	// -addr :0 it is how callers (the e2e smoke test, scripts) learn the
	// ephemeral port.
	fmt.Fprintf(stdout, "hilightd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "hilightd:", err)
		return 1
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintln(stderr, "hilightd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Order matters: flip readiness and reject new compile work first,
	// then wait for in-flight HTTP requests, then for async batches.
	srv.Drain()
	code := 0
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "hilightd: http drain:", err)
		code = 1
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "hilightd:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "hilightd:", err)
		code = 1
	}
	fmt.Fprintln(stderr, "hilightd: shutdown complete")
	return code
}
