package sim

import (
	"math/rand"
	"testing"

	"hilight/internal/circuit"
)

func mustStab(t *testing.T, c *circuit.Circuit) *Stabilizer {
	t.Helper()
	s, err := RunStabilizer(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMeasureDeterministicBasis(t *testing.T) {
	c := circuit.New("basis", 2)
	c.Add1(circuit.X, 1)
	s := mustStab(t, c)
	out, det := s.MeasureZ(0, nil)
	if !det || out {
		t.Errorf("q0 = %v det=%v, want 0 deterministic", out, det)
	}
	out, det = s.MeasureZ(1, nil)
	if !det || !out {
		t.Errorf("q1 = %v det=%v, want 1 deterministic", out, det)
	}
}

func TestMeasureRandomThenRepeatable(t *testing.T) {
	for _, forced := range []bool{false, true} {
		c := circuit.New("h", 1)
		c.Add1(circuit.H, 0)
		s := mustStab(t, c)
		out, det := s.MeasureZ(0, func() bool { return forced })
		if det {
			t.Fatal("H|0> measurement should be random")
		}
		if out != forced {
			t.Fatalf("outcome %v, forced %v", out, forced)
		}
		// The state collapsed: re-measuring is deterministic and equal.
		again, det2 := s.MeasureZ(0, nil)
		if !det2 || again != out {
			t.Errorf("re-measure: %v det=%v, want %v deterministic", again, det2, out)
		}
	}
}

func TestMeasureBellCorrelation(t *testing.T) {
	for _, forced := range []bool{false, true} {
		c := circuit.New("bell", 2)
		c.Add1(circuit.H, 0)
		c.Add2(circuit.CX, 0, 1)
		s := mustStab(t, c)
		out0, det0 := s.MeasureZ(0, func() bool { return forced })
		if det0 {
			t.Fatal("first Bell measurement should be random")
		}
		out1, det1 := s.MeasureZ(1, nil)
		if !det1 {
			t.Fatal("second Bell measurement should be deterministic")
		}
		if out1 != out0 {
			t.Errorf("Bell correlation broken: %v vs %v", out0, out1)
		}
	}
}

func TestMeasureGHZCorrelation(t *testing.T) {
	n := 64 // cross the word boundary
	c := circuit.New("ghz", n)
	c.Add1(circuit.H, 0)
	for i := 0; i+1 < n; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	s := mustStab(t, c)
	rng := rand.New(rand.NewSource(2))
	first, det := s.MeasureZ(0, func() bool { return rng.Intn(2) == 1 })
	if det {
		t.Fatal("GHZ first measurement should be random")
	}
	for q := 1; q < n; q++ {
		out, det := s.MeasureZ(q, nil)
		if !det || out != first {
			t.Fatalf("qubit %d: %v det=%v, want %v deterministic", q, out, det, first)
		}
	}
}

func TestMeasureMatchesStatevectorDeterminism(t *testing.T) {
	// Random Clifford circuits: wherever the tableau says an outcome is
	// deterministic, the statevector must put all probability mass there.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		c := randomClifford(rng, n, 25)
		s := mustStab(t, c)
		sv, err := Run(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		q := rng.Intn(n)
		out, det := s.MeasureZ(q, func() bool { return rng.Intn(2) == 1 })
		p1 := 0.0
		for i, amp := range sv.Amps {
			if i&(1<<q) != 0 {
				p1 += real(amp)*real(amp) + imag(amp)*imag(amp)
			}
		}
		switch {
		case det && out && p1 < 0.999:
			t.Fatalf("trial %d: tableau says deterministic 1, statevector P(1)=%g", trial, p1)
		case det && !out && p1 > 0.001:
			t.Fatalf("trial %d: tableau says deterministic 0, statevector P(1)=%g", trial, p1)
		case !det && (p1 < 0.499 || p1 > 0.501):
			t.Fatalf("trial %d: tableau says random, statevector P(1)=%g", trial, p1)
		}
	}
}
