package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
)

func cliffordKinds() []circuit.Kind {
	return []circuit.Kind{circuit.H, circuit.S, circuit.Sdg, circuit.X,
		circuit.Y, circuit.Z, circuit.I}
}

func randomClifford(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("clifford", n)
	k1 := cliffordKinds()
	for i := 0; i < gates; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Add1(k1[rng.Intn(len(k1))], rng.Intn(n))
		default:
			if n < 2 {
				continue
			}
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			c.Add2([]circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP}[rng.Intn(3)], a, b)
		}
	}
	return c
}

func TestStabilizerIdentities(t *testing.T) {
	// Known Clifford identities must produce equal tableaus.
	mk := func(f func(*circuit.Circuit)) *circuit.Circuit {
		c := circuit.New("id", 2)
		f(c)
		return c
	}
	cases := []struct {
		name string
		a, b *circuit.Circuit
	}{
		{"HH=I", mk(func(c *circuit.Circuit) { c.Add1(circuit.H, 0); c.Add1(circuit.H, 0) }),
			mk(func(c *circuit.Circuit) {})},
		{"SSSS=I", mk(func(c *circuit.Circuit) {
			for i := 0; i < 4; i++ {
				c.Add1(circuit.S, 0)
			}
		}), mk(func(c *circuit.Circuit) {})},
		{"HZH=X", mk(func(c *circuit.Circuit) { c.Add1(circuit.H, 0); c.Add1(circuit.Z, 0); c.Add1(circuit.H, 0) }),
			mk(func(c *circuit.Circuit) { c.Add1(circuit.X, 0) })},
		{"CXCX=I", mk(func(c *circuit.Circuit) { c.Add2(circuit.CX, 0, 1); c.Add2(circuit.CX, 0, 1) }),
			mk(func(c *circuit.Circuit) {})},
		{"SWAP=3CX", mk(func(c *circuit.Circuit) { c.Add2(circuit.SWAP, 0, 1) }),
			mk(func(c *circuit.Circuit) {
				c.Add2(circuit.CX, 0, 1)
				c.Add2(circuit.CX, 1, 0)
				c.Add2(circuit.CX, 0, 1)
			})},
		{"CZ symmetric", mk(func(c *circuit.Circuit) { c.Add2(circuit.CZ, 0, 1) }),
			mk(func(c *circuit.Circuit) { c.Add2(circuit.CZ, 1, 0) })},
	}
	for _, tc := range cases {
		eq, err := CliffordEquivalent(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !eq {
			t.Errorf("%s: not equivalent", tc.name)
		}
	}
}

func TestStabilizerDetectsDifference(t *testing.T) {
	a := circuit.New("a", 2)
	a.Add2(circuit.CX, 0, 1)
	b := circuit.New("b", 2)
	b.Add2(circuit.CX, 1, 0)
	eq, err := CliffordEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("reversed CX reported equivalent")
	}
}

func TestStabilizerRejectsNonClifford(t *testing.T) {
	c := circuit.New("t", 1)
	c.Add1(circuit.T, 0)
	if _, err := RunStabilizer(c, nil); err == nil {
		t.Error("T gate accepted")
	}
}

// Property: the tableau oracle agrees with the statevector oracle on
// random small Clifford circuits, both for equivalent pairs (a circuit
// vs itself plus an inserted identity pair) and for perturbed ones.
func TestStabilizerMatchesStatevector(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomClifford(rng, n, 30)

		// Equivalent variant: insert a cancelling pair at a random spot.
		b := a.Clone()
		pos := rng.Intn(len(b.Gates) + 1)
		q := rng.Intn(n)
		pair := []circuit.Gate{circuit.NewGate1(circuit.H, q), circuit.NewGate1(circuit.H, q)}
		b.Gates = append(b.Gates[:pos:pos], append(pair, b.Gates[pos:]...)...)

		eqTab, err := CliffordEquivalent(a, b)
		if err != nil || !eqTab {
			return false
		}
		// Perturbed variant: append one extra S somewhere.
		d := a.Clone()
		d.Add1(circuit.S, rng.Intn(n))
		eqTab, err = CliffordEquivalent(a, d)
		if err != nil {
			return false
		}
		// Cross-check against statevector fidelity on both probes.
		svEq := statevectorCliffordEq(a, d)
		return eqTab == svEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// statevectorCliffordEq compares two circuits on |0..0> and |+..+> up to
// global phase via fidelity.
func statevectorCliffordEq(a, b *circuit.Circuit) bool {
	preps := []func(*State){
		nil,
		func(s *State) {
			for q := 0; q < s.N; q++ {
				_ = s.Apply(circuit.NewGate1(circuit.H, q))
			}
		},
	}
	for _, prep := range preps {
		sa, err1 := Run(a, prep)
		sb, err2 := Run(b, prep)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(sa.Fidelity(sb)-1) > 1e-9 {
			return false
		}
	}
	return true
}

// TestStabilizerScales runs a 512-qubit Clifford circuit — far beyond
// the statevector's reach — through the tableau in reasonable time.
func TestStabilizerScales(t *testing.T) {
	n := 512
	rng := rand.New(rand.NewSource(9))
	c := randomClifford(rng, n, 4000)
	s, err := RunStabilizer(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != n {
		t.Fatal("tableau size wrong")
	}
	// Self-equivalence sanity.
	eq, err := CliffordEquivalent(c, c)
	if err != nil || !eq {
		t.Errorf("self-equivalence failed: %v %v", eq, err)
	}
}
