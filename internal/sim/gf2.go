package sim

import (
	"fmt"

	"hilight/internal/circuit"
)

// GF2Matrix is the F2-linear map computed by a CX-only circuit: output
// bit i equals the XOR of input bits j with Rows[i] bit j set. The
// identity map has Rows[i] = 1<<i. Limited to 64 qubits by the uint64
// row representation, which covers every benchmark in the paper except
// the large QFT sweeps (which are not CX-only anyway).
type GF2Matrix struct {
	N    int
	Rows []uint64
}

// NewGF2Identity returns the identity map on n ≤ 64 bits.
func NewGF2Identity(n int) (*GF2Matrix, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("sim: GF(2) map supports 1..64 qubits, got %d", n)
	}
	m := &GF2Matrix{N: n, Rows: make([]uint64, n)}
	for i := range m.Rows {
		m.Rows[i] = 1 << i
	}
	return m, nil
}

// ApplyCX composes a CNOT with control c and target t: row[t] ^= row[c].
func (m *GF2Matrix) ApplyCX(c, t int) { m.Rows[t] ^= m.Rows[c] }

// Equal reports whether two maps are identical.
func (m *GF2Matrix) Equal(o *GF2Matrix) bool {
	if m.N != o.N {
		return false
	}
	for i := range m.Rows {
		if m.Rows[i] != o.Rows[i] {
			return false
		}
	}
	return true
}

// GF2Of computes the linear map of the CX skeleton of c — all non-CX
// gates are ignored. Use only when the non-CX gates are diagonal or
// single-qubit gates whose reordering is separately justified; for a
// CX-only circuit this is the complete semantics.
func GF2Of(c *circuit.Circuit) (*GF2Matrix, error) {
	m, err := NewGF2Identity(c.NumQubits)
	if err != nil {
		return nil, err
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.CX {
			m.ApplyCX(g.Q0, g.Q1)
		}
	}
	return m, nil
}
