package sim

import (
	"fmt"

	"hilight/internal/circuit"
)

// Stabilizer is an Aaronson–Gottesman CHP tableau: it tracks the
// stabilizer group of the state under Clifford gates (H, S, CX and
// everything expressible in them) in O(n²) space, so Clifford circuits
// verify at widths far beyond the statevector oracle. Rows 0..n−1 are
// the destabilizers, rows n..2n−1 the stabilizers; each row is a Pauli
// string over n qubits plus a sign bit.
type Stabilizer struct {
	N int
	// x[i][j], z[i][j] are bit j of row i's X/Z parts, packed in uint64
	// words; r[i] is the sign bit.
	x, z [][]uint64
	r    []bool
}

// NewStabilizer returns the tableau of |0...0⟩ on n qubits.
func NewStabilizer(n int) (*Stabilizer, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: stabilizer needs at least one qubit")
	}
	words := (n + 63) / 64
	s := &Stabilizer{
		N: n,
		x: make([][]uint64, 2*n),
		z: make([][]uint64, 2*n),
		r: make([]bool, 2*n),
	}
	for i := range s.x {
		s.x[i] = make([]uint64, words)
		s.z[i] = make([]uint64, words)
	}
	for i := 0; i < n; i++ {
		s.x[i][i/64] |= 1 << (i % 64)   // destabilizer X_i
		s.z[n+i][i/64] |= 1 << (i % 64) // stabilizer Z_i
	}
	return s, nil
}

// ApplyClifford applies a Clifford gate to the tableau. Non-Clifford
// kinds (T, rotations, measure, ...) return an error.
func (s *Stabilizer) ApplyClifford(g circuit.Gate) error {
	switch g.Kind {
	case circuit.I:
		return nil
	case circuit.H:
		s.hadamard(g.Q0)
	case circuit.S:
		s.phase(g.Q0)
	case circuit.Sdg:
		// S† = S·S·S.
		s.phase(g.Q0)
		s.phase(g.Q0)
		s.phase(g.Q0)
	case circuit.Z:
		s.phase(g.Q0)
		s.phase(g.Q0)
	case circuit.X:
		// X = H Z H.
		s.hadamard(g.Q0)
		s.phase(g.Q0)
		s.phase(g.Q0)
		s.hadamard(g.Q0)
	case circuit.Y:
		// Y = S X S† (up to global phase, which the tableau ignores).
		s.phase(g.Q0)
		s.hadamard(g.Q0)
		s.phase(g.Q0)
		s.phase(g.Q0)
		s.hadamard(g.Q0)
		s.phase(g.Q0)
		s.phase(g.Q0)
		s.phase(g.Q0)
	case circuit.CX:
		s.cnot(g.Q0, g.Q1)
	case circuit.CZ:
		// CZ = (I⊗H) CX (I⊗H).
		s.hadamard(g.Q1)
		s.cnot(g.Q0, g.Q1)
		s.hadamard(g.Q1)
	case circuit.SWAP:
		s.cnot(g.Q0, g.Q1)
		s.cnot(g.Q1, g.Q0)
		s.cnot(g.Q0, g.Q1)
	default:
		return fmt.Errorf("sim: gate %v is not Clifford", g.Kind)
	}
	return nil
}

// hadamard: X_a ↔ Z_a, r ^= x·z.
func (s *Stabilizer) hadamard(a int) {
	w, b := a/64, uint64(1)<<(a%64)
	for i := 0; i < 2*s.N; i++ {
		xa, za := s.x[i][w]&b != 0, s.z[i][w]&b != 0
		if xa && za {
			s.r[i] = !s.r[i]
		}
		if xa != za {
			s.x[i][w] ^= b
			s.z[i][w] ^= b
		}
	}
}

// phase: Z_a ^= X_a, r ^= x·z.
func (s *Stabilizer) phase(a int) {
	w, b := a/64, uint64(1)<<(a%64)
	for i := 0; i < 2*s.N; i++ {
		xa, za := s.x[i][w]&b != 0, s.z[i][w]&b != 0
		if xa && za {
			s.r[i] = !s.r[i]
		}
		if xa {
			s.z[i][w] ^= b
		}
	}
}

// cnot with control a, target b:
// x_b ^= x_a, z_a ^= z_b, r ^= x_a·z_b·(x_b ⊕ z_a ⊕ 1).
func (s *Stabilizer) cnot(a, b int) {
	wa, ba := a/64, uint64(1)<<(a%64)
	wb, bb := b/64, uint64(1)<<(b%64)
	for i := 0; i < 2*s.N; i++ {
		xa, za := s.x[i][wa]&ba != 0, s.z[i][wa]&ba != 0
		xb, zb := s.x[i][wb]&bb != 0, s.z[i][wb]&bb != 0
		if xa && zb && (xb == za) {
			s.r[i] = !s.r[i]
		}
		if xa {
			s.x[i][wb] ^= bb
		}
		if zb {
			s.z[i][wa] ^= ba
		}
	}
}

// MeasureZ performs a computational-basis measurement of qubit a using
// the CHP procedure. It returns the outcome bit and whether the outcome
// was deterministic (no stabilizer anticommutes with Z_a). For random
// outcomes, rnd supplies the coin flip (called once); it must not be nil
// when the outcome can be random.
func (s *Stabilizer) MeasureZ(a int, rnd func() bool) (outcome bool, deterministic bool) {
	w, bit := a/64, uint64(1)<<(a%64)
	// Find a stabilizer row (n..2n−1) with X on qubit a.
	p := -1
	for i := s.N; i < 2*s.N; i++ {
		if s.x[i][w]&bit != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome: every other row with X_a gets multiplied by
		// row p; row p becomes the new stabilizer Z_a with a random sign,
		// and its old value moves to the destabilizer slot.
		for i := 0; i < 2*s.N; i++ {
			if i != p && s.x[i][w]&bit != 0 {
				s.rowMult(i, p)
			}
		}
		s.copyRow(p-s.N, p)
		s.zeroRow(p)
		s.z[p][w] |= bit
		out := rnd()
		s.r[p] = out
		return out, false
	}
	// Deterministic outcome: accumulate the product of destabilizer
	// partners into a scratch row.
	scratch := s.scratchRow()
	for i := 0; i < s.N; i++ {
		if s.x[i][w]&bit != 0 {
			s.rowMultInto(scratch, i+s.N)
		}
	}
	out := scratch.r
	return out, true
}

// pauliRow is a standalone Pauli accumulator for deterministic
// measurement.
type pauliRow struct {
	x, z []uint64
	r    bool
}

func (s *Stabilizer) scratchRow() *pauliRow {
	words := len(s.x[0])
	return &pauliRow{x: make([]uint64, words), z: make([]uint64, words)}
}

// phaseExp returns the exponent of i (0..3) contributed by multiplying
// single-qubit Paulis (x1,z1)·(x2,z2).
func phaseExp(x1, z1, x2, z2 bool) int {
	// Aaronson–Gottesman g function.
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		if z2 {
			if x2 {
				return 0
			}
			return 1
		}
		if x2 {
			return -1
		}
		return 0
	case x1 && !z1: // X
		if z2 {
			if x2 {
				return 1
			}
			return -1
		}
		return 0
	default: // Z
		if x2 {
			if z2 {
				return -1
			}
			return 1
		}
		return 0
	}
}

// rowMult multiplies row i by row j (i ← i·j), tracking signs.
func (s *Stabilizer) rowMult(i, j int) {
	exp := 0
	for q := 0; q < s.N; q++ {
		w, bit := q/64, uint64(1)<<(q%64)
		exp += phaseExp(s.x[j][w]&bit != 0, s.z[j][w]&bit != 0,
			s.x[i][w]&bit != 0, s.z[i][w]&bit != 0)
	}
	if s.r[i] {
		exp += 2
	}
	if s.r[j] {
		exp += 2
	}
	s.r[i] = ((exp%4)+4)%4 == 2
	for w := range s.x[i] {
		s.x[i][w] ^= s.x[j][w]
		s.z[i][w] ^= s.z[j][w]
	}
}

// rowMultInto multiplies the scratch row by tableau row j.
func (s *Stabilizer) rowMultInto(dst *pauliRow, j int) {
	exp := 0
	for q := 0; q < s.N; q++ {
		w, bit := q/64, uint64(1)<<(q%64)
		exp += phaseExp(s.x[j][w]&bit != 0, s.z[j][w]&bit != 0,
			dst.x[w]&bit != 0, dst.z[w]&bit != 0)
	}
	if dst.r {
		exp += 2
	}
	if s.r[j] {
		exp += 2
	}
	dst.r = ((exp%4)+4)%4 == 2
	for w := range dst.x {
		dst.x[w] ^= s.x[j][w]
		dst.z[w] ^= s.z[j][w]
	}
}

func (s *Stabilizer) copyRow(dst, src int) {
	copy(s.x[dst], s.x[src])
	copy(s.z[dst], s.z[src])
	s.r[dst] = s.r[src]
}

func (s *Stabilizer) zeroRow(i int) {
	for w := range s.x[i] {
		s.x[i][w] = 0
		s.z[i][w] = 0
	}
	s.r[i] = false
}

// Equal reports whether two tableaus are identical (same stabilizer
// rows and signs). Circuits producing identical tableaus from |0…0⟩
// implement the same map on that input up to global phase; combined with
// a second fixed product-state probe this is the Clifford analogue of
// Equivalent.
func (s *Stabilizer) Equal(o *Stabilizer) bool {
	if s.N != o.N {
		return false
	}
	for i := 0; i < 2*s.N; i++ {
		if s.r[i] != o.r[i] {
			return false
		}
		for w := range s.x[i] {
			if s.x[i][w] != o.x[i][w] || s.z[i][w] != o.z[i][w] {
				return false
			}
		}
	}
	return true
}

// RunStabilizer applies all gates of a Clifford circuit to |0...0⟩,
// optionally prefixed by prep gates (e.g. an H layer to probe a second
// input state).
func RunStabilizer(c *circuit.Circuit, prep []circuit.Gate) (*Stabilizer, error) {
	s, err := NewStabilizer(c.NumQubits)
	if err != nil {
		return nil, err
	}
	for _, g := range prep {
		if err := s.ApplyClifford(g); err != nil {
			return nil, err
		}
	}
	for i, g := range c.Gates {
		if err := s.ApplyClifford(g); err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return s, nil
}

// CliffordEquivalent reports whether two Clifford circuits act
// identically (up to global phase) on |0…0⟩ and on |+…+⟩ — a strong
// equivalence probe that scales to thousands of qubits. It errors on
// non-Clifford gates.
func CliffordEquivalent(a, b *circuit.Circuit) (bool, error) {
	if a.NumQubits != b.NumQubits {
		return false, nil
	}
	var hLayer []circuit.Gate
	for q := 0; q < a.NumQubits; q++ {
		hLayer = append(hLayer, circuit.NewGate1(circuit.H, q))
	}
	for _, prep := range [][]circuit.Gate{nil, hLayer} {
		sa, err := RunStabilizer(a, prep)
		if err != nil {
			return false, err
		}
		sb, err := RunStabilizer(b, prep)
		if err != nil {
			return false, err
		}
		if !sa.Equal(sb) {
			return false, nil
		}
	}
	return true, nil
}
