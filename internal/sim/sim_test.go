package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
)

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0 qubits accepted")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("oversized state accepted")
	}
	s, err := NewState(3)
	if err != nil || len(s.Amps) != 8 || s.Amps[0] != 1 {
		t.Fatalf("NewState(3) = %v, %v", s, err)
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New("bell", 2)
	c.Add1(circuit.H, 0)
	c.Add2(circuit.CX, 0, 1)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	inv := 1 / math.Sqrt2
	if math.Abs(real(s.Amps[0])-inv) > 1e-12 || math.Abs(real(s.Amps[3])-inv) > 1e-12 {
		t.Errorf("bell amplitudes: %v", s.Amps)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm = %g", s.Norm())
	}
}

func TestGHZState(t *testing.T) {
	n := 5
	c := circuit.New("ghz", n)
	c.Add1(circuit.H, 0)
	for i := 0; i < n-1; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	inv := 1 / math.Sqrt2
	last := (1 << n) - 1
	if math.Abs(real(s.Amps[0])-inv) > 1e-12 || math.Abs(real(s.Amps[last])-inv) > 1e-12 {
		t.Errorf("GHZ amplitudes wrong")
	}
	for i := 1; i < last; i++ {
		if s.Amps[i] != 0 {
			t.Fatalf("amplitude %d nonzero", i)
		}
	}
}

func TestPauliIdentities(t *testing.T) {
	// HZH = X, HXH = Z, S^2 = Z, T^2 = S.
	pairs := []struct {
		name string
		a, b func(c *circuit.Circuit)
	}{
		{"HZH=X",
			func(c *circuit.Circuit) { c.Add1(circuit.H, 0); c.Add1(circuit.Z, 0); c.Add1(circuit.H, 0) },
			func(c *circuit.Circuit) { c.Add1(circuit.X, 0) }},
		{"HXH=Z",
			func(c *circuit.Circuit) { c.Add1(circuit.H, 0); c.Add1(circuit.X, 0); c.Add1(circuit.H, 0) },
			func(c *circuit.Circuit) { c.Add1(circuit.Z, 0) }},
		{"SS=Z",
			func(c *circuit.Circuit) { c.Add1(circuit.S, 0); c.Add1(circuit.S, 0) },
			func(c *circuit.Circuit) { c.Add1(circuit.Z, 0) }},
		{"TT=S",
			func(c *circuit.Circuit) { c.Add1(circuit.T, 0); c.Add1(circuit.T, 0) },
			func(c *circuit.Circuit) { c.Add1(circuit.S, 0) }},
		{"SdgS=I",
			func(c *circuit.Circuit) { c.Add1(circuit.Sdg, 0); c.Add1(circuit.S, 0) },
			func(c *circuit.Circuit) { c.Add1(circuit.I, 0) }},
		{"YY=I",
			func(c *circuit.Circuit) { c.Add1(circuit.Y, 0); c.Add1(circuit.Y, 0) },
			func(c *circuit.Circuit) {}},
	}
	for _, p := range pairs {
		a := circuit.New(p.name, 2)
		b := circuit.New(p.name, 2)
		p.a(a)
		p.b(b)
		eq, err := Equivalent(a, b, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if !eq {
			t.Errorf("%s: not equivalent", p.name)
		}
	}
}

func TestSwapEqualsThreeCX(t *testing.T) {
	a := circuit.New("swap", 3)
	a.Add2(circuit.SWAP, 0, 2)
	b := a.DecomposeSWAPs()
	eq, err := Equivalent(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("SWAP != CX·CX·CX")
	}
}

func TestCZSymmetric(t *testing.T) {
	a := circuit.New("cz", 2)
	a.Add2(circuit.CZ, 0, 1)
	b := circuit.New("cz", 2)
	b.Add2(circuit.CZ, 1, 0)
	eq, err := Equivalent(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("CZ not symmetric")
	}
}

func TestRotationComposition(t *testing.T) {
	// RZ(a) RZ(b) = RZ(a+b); RX(pi) = X up to phase (compare fidelity).
	a := circuit.New("rz", 1)
	a.AddRot(circuit.RZ, 0, 0.3)
	a.AddRot(circuit.RZ, 0, 0.4)
	b := circuit.New("rz", 1)
	b.AddRot(circuit.RZ, 0, 0.7)
	eq, err := Equivalent(a, b, 1e-12)
	if err != nil || !eq {
		t.Errorf("RZ composition failed: %v %v", eq, err)
	}

	x := circuit.New("x", 1)
	x.Add1(circuit.X, 0)
	rx := circuit.New("rx", 1)
	rx.AddRot(circuit.RX, 0, math.Pi)
	sx, _ := Run(x, nil)
	srx, _ := Run(rx, nil)
	if math.Abs(sx.Fidelity(srx)-1) > 1e-12 {
		t.Errorf("RX(pi) fidelity with X = %g", sx.Fidelity(srx))
	}
	if sx.MaxAmpDiff(srx) < 0.5 {
		t.Error("RX(pi) should differ from X by a global phase")
	}
}

func TestU2U3Definitions(t *testing.T) {
	// u2(0,pi) = H; u3(pi,0,pi) = X.
	h := circuit.New("h", 1)
	h.Add1(circuit.H, 0)
	u2 := circuit.New("u2", 1)
	g := circuit.NewGate1(circuit.U2, 0)
	g.Params[0], g.Params[1] = 0, math.Pi
	u2.Append(g)
	eq, err := Equivalent(h, u2, 1e-12)
	if err != nil || !eq {
		t.Errorf("u2(0,pi) != H: %v %v", eq, err)
	}
	x := circuit.New("x", 1)
	x.Add1(circuit.X, 0)
	u3 := circuit.New("u3", 1)
	g = circuit.NewGate1(circuit.U3, 0)
	g.Params[0], g.Params[1], g.Params[2] = math.Pi, 0, math.Pi
	u3.Append(g)
	eq, err = Equivalent(x, u3, 1e-12)
	if err != nil || !eq {
		t.Errorf("u3(pi,0,pi) != X: %v %v", eq, err)
	}
}

func TestMeasureRejected(t *testing.T) {
	c := circuit.New("m", 1)
	c.Add1(circuit.Measure, 0)
	if _, err := Run(c, nil); err == nil {
		t.Error("measure accepted by statevector oracle")
	}
}

// Property: unitarity — every supported gate preserves the norm.
func TestNormPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := circuit.New("norm", n)
		kinds := []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z,
			circuit.S, circuit.Sdg, circuit.T, circuit.Tdg}
		for i := 0; i < 30; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Add1(kinds[rng.Intn(len(kinds))], rng.Intn(n))
			case 1:
				c.AddRot([]circuit.Kind{circuit.RX, circuit.RY, circuit.RZ}[rng.Intn(3)],
					rng.Intn(n), rng.NormFloat64())
			default:
				if n < 2 {
					continue
				}
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				c.Add2([]circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP}[rng.Intn(3)], a, b)
			}
		}
		s, err := Run(c, nil)
		return err == nil && math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGF2Basics(t *testing.T) {
	m, err := NewGF2Identity(4)
	if err != nil {
		t.Fatal(err)
	}
	m.ApplyCX(0, 1) // row1 ^= row0
	if m.Rows[1] != 0b0011 {
		t.Errorf("row1 = %b", m.Rows[1])
	}
	m.ApplyCX(0, 1) // undoes it
	id, _ := NewGF2Identity(4)
	if !m.Equal(id) {
		t.Error("CX twice != identity")
	}
	if _, err := NewGF2Identity(65); err == nil {
		t.Error("65 qubits accepted")
	}
}

// Property: GF(2) semantics agree with the statevector on basis states
// for CX-only circuits.
func TestGF2MatchesStatevector(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New("cx", n)
		for i := 0; i < 25; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		m, err := GF2Of(c)
		if err != nil {
			return false
		}
		// Pick a random basis state, run both engines.
		input := rng.Intn(1 << n)
		s, err := NewState(n)
		if err != nil {
			return false
		}
		s.Amps[0] = 0
		s.Amps[input] = 1
		for _, g := range c.Gates {
			if err := s.Apply(g); err != nil {
				return false
			}
		}
		// GF(2) output label.
		var out int
		for i := 0; i < n; i++ {
			bit := 0
			for j := 0; j < n; j++ {
				if m.Rows[i]&(1<<j) != 0 && input&(1<<j) != 0 {
					bit ^= 1
				}
			}
			out |= bit << i
		}
		return math.Abs(real(s.Amps[out])-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
