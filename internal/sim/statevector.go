// Package sim provides two circuit-semantics engines used to verify that
// program-level optimization preserves meaning:
//
//   - a dense statevector simulator (exact, up to ~20 qubits), and
//   - a GF(2) linear simulator for CX-only circuits (exact at any size:
//     a CX circuit is a linear map over F2 on computational basis labels).
//
// Neither engine is on the mapping hot path; they are correctness
// oracles for tests, examples, and the QCO rewrite.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"hilight/internal/circuit"
)

// MaxQubits bounds the statevector size (2^20 amplitudes ≈ 16 MiB).
const MaxQubits = 20

// State is a dense statevector over n qubits. Qubit 0 is the least
// significant bit of the basis index.
type State struct {
	N    int
	Amps []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d outside [1,%d]", n, MaxQubits)
	}
	s := &State{N: n, Amps: make([]complex128, 1<<n)}
	s.Amps[0] = 1
	return s, nil
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	return &State{N: s.N, Amps: append([]complex128(nil), s.Amps...)}
}

// Norm returns the 2-norm of the state (1 for any valid evolution).
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.Amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Fidelity returns |⟨s|o⟩| — 1 when the states agree up to global phase.
func (s *State) Fidelity(o *State) float64 {
	var ip complex128
	for i := range s.Amps {
		ip += cmplx.Conj(s.Amps[i]) * o.Amps[i]
	}
	return cmplx.Abs(ip)
}

// MaxAmpDiff returns the largest amplitude difference between two states
// (exact equality check, sensitive to global phase).
func (s *State) MaxAmpDiff(o *State) float64 {
	worst := 0.0
	for i := range s.Amps {
		if d := cmplx.Abs(s.Amps[i] - o.Amps[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// apply1 applies the 2x2 matrix m to qubit q.
func (s *State) apply1(q int, m [2][2]complex128) {
	bit := 1 << q
	for i := 0; i < len(s.Amps); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.Amps[i], s.Amps[j]
		s.Amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.Amps[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// Apply applies gate g to the state. Measure and Reset are rejected: the
// oracles compare pure-state evolutions.
func (s *State) Apply(g circuit.Gate) error {
	inv := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.I:
		return nil
	case circuit.H:
		s.apply1(g.Q0, [2][2]complex128{{inv, inv}, {inv, -inv}})
	case circuit.X:
		s.apply1(g.Q0, [2][2]complex128{{0, 1}, {1, 0}})
	case circuit.Y:
		s.apply1(g.Q0, [2][2]complex128{{0, -1i}, {1i, 0}})
	case circuit.Z:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, -1}})
	case circuit.S:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, 1i}})
	case circuit.Sdg:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, -1i}})
	case circuit.T:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}})
	case circuit.Tdg:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}})
	case circuit.RX:
		th := g.Params[0] / 2
		c, sn := complex(math.Cos(th), 0), complex(0, -math.Sin(th))
		s.apply1(g.Q0, [2][2]complex128{{c, sn}, {sn, c}})
	case circuit.RY:
		th := g.Params[0] / 2
		c, sn := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		s.apply1(g.Q0, [2][2]complex128{{c, -sn}, {sn, c}})
	case circuit.RZ:
		th := g.Params[0] / 2
		s.apply1(g.Q0, [2][2]complex128{
			{cmplx.Exp(complex(0, -th)), 0},
			{0, cmplx.Exp(complex(0, th))},
		})
	case circuit.U1:
		s.apply1(g.Q0, [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, g.Params[0]))}})
	case circuit.U2:
		phi, lam := g.Params[0], g.Params[1]
		s.apply1(g.Q0, [2][2]complex128{
			{inv, -inv * cmplx.Exp(complex(0, lam))},
			{inv * cmplx.Exp(complex(0, phi)), inv * cmplx.Exp(complex(0, phi+lam))},
		})
	case circuit.U3:
		th, phi, lam := g.Params[0]/2, g.Params[1], g.Params[2]
		c, sn := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		s.apply1(g.Q0, [2][2]complex128{
			{c, -sn * cmplx.Exp(complex(0, lam))},
			{sn * cmplx.Exp(complex(0, phi)), c * cmplx.Exp(complex(0, phi+lam))},
		})
	case circuit.CX:
		cbit, tbit := 1<<g.Q0, 1<<g.Q1
		for i := range s.Amps {
			if i&cbit != 0 && i&tbit == 0 {
				j := i | tbit
				s.Amps[i], s.Amps[j] = s.Amps[j], s.Amps[i]
			}
		}
	case circuit.CZ:
		b0, b1 := 1<<g.Q0, 1<<g.Q1
		for i := range s.Amps {
			if i&b0 != 0 && i&b1 != 0 {
				s.Amps[i] = -s.Amps[i]
			}
		}
	case circuit.SWAP:
		b0, b1 := 1<<g.Q0, 1<<g.Q1
		for i := range s.Amps {
			if i&b0 != 0 && i&b1 == 0 {
				j := i&^b0 | b1
				s.Amps[i], s.Amps[j] = s.Amps[j], s.Amps[i]
			}
		}
	default:
		return fmt.Errorf("sim: gate %v not supported by the statevector oracle", g.Kind)
	}
	return nil
}

// Run applies every gate of c to a fresh |0...0⟩ state prepared by prep
// (prep may be nil). It returns the final state.
func Run(c *circuit.Circuit, prep func(*State)) (*State, error) {
	s, err := NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	if prep != nil {
		prep(s)
	}
	for i, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return s, nil
}

// Equivalent reports whether two circuits implement the same operator, by
// comparing their action on |0...0⟩ and on a fixed pseudo-random product
// state. tol bounds the allowed max amplitude difference. Circuits of
// different width are never equivalent.
func Equivalent(a, b *circuit.Circuit, tol float64) (bool, error) {
	if a.NumQubits != b.NumQubits {
		return false, nil
	}
	preps := []func(*State){
		nil,
		func(s *State) {
			// Deterministic non-trivial product state: rotate each qubit
			// by angles derived from its index.
			for q := 0; q < s.N; q++ {
				th := 0.37*float64(q+1) + 0.11
				s.apply1(q, [2][2]complex128{
					{complex(math.Cos(th), 0), complex(-math.Sin(th), 0)},
					{complex(math.Sin(th), 0), complex(math.Cos(th), 0)},
				})
				s.apply1(q, [2][2]complex128{
					{1, 0}, {0, cmplx.Exp(complex(0, 0.53*float64(q+1)))},
				})
			}
		},
	}
	for _, prep := range preps {
		sa, err := Run(a, prep)
		if err != nil {
			return false, err
		}
		sb, err := Run(b, prep)
		if err != nil {
			return false, err
		}
		if sa.MaxAmpDiff(sb) > tol {
			return false, nil
		}
	}
	return true, nil
}
