package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hilight/internal/service"
)

// clusterBatch is one async batch accepted by the coordinator: its
// units fan out through the steal queue and land back in outcomes.
type clusterBatch struct {
	id  string
	fps []string

	mu       sync.Mutex
	outcomes []service.UnitOutcome
	pending  int           // units without a terminal outcome
	done     chan struct{} // closed when pending reaches zero
	finished atomic.Int64  // terminal outcomes, for running polls
}

// settle records unit idx's terminal outcome, closing done on the last
// one. Exactly one settle per unit — the dispatch path retries
// internally and only settles when the outcome is final.
func (b *clusterBatch) settle(idx int, o service.UnitOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.outcomes[idx] = o
	b.finished.Add(1)
	if b.pending--; b.pending == 0 {
		close(b.done)
	}
}

// view snapshots the batch for a status poll.
func (b *clusterBatch) view() (finished int, done bool, outcomes []service.UnitOutcome) {
	select {
	case <-b.done:
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.outcomes), true, b.outcomes
	default:
		return int(b.finished.Load()), false, nil
	}
}

// batchStore owns the coordinator's accepted batches, mirroring the
// single-node job store's id scheme and oldest-first eviction of
// completed batches.
type batchStore struct {
	mu        sync.Mutex
	seq       int
	jobs      map[string]*clusterBatch
	order     []string
	maxStored int
}

func newBatchStore(maxStored int) *batchStore {
	return &batchStore{jobs: make(map[string]*clusterBatch), maxStored: maxStored}
}

// add registers a new batch over fps and returns it.
func (s *batchStore) add(fps []string) *clusterBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	b := &clusterBatch{
		id:       fmt.Sprintf("job-%06d", s.seq),
		fps:      fps,
		outcomes: make([]service.UnitOutcome, len(fps)),
		pending:  len(fps),
		done:     make(chan struct{}),
	}
	s.jobs[b.id] = b
	s.order = append(s.order, b.id)
	s.evictLocked()
	return b
}

func (s *batchStore) get(id string) (*clusterBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.jobs[id]
	return b, ok
}

// evictLocked drops the oldest completed batches beyond maxStored;
// running batches are never evicted.
func (s *batchStore) evictLocked() {
	for len(s.jobs) > s.maxStored {
		evicted := false
		for i, id := range s.order {
			b := s.jobs[id]
			select {
			case <-b.done:
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return
		}
	}
}
