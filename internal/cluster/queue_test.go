package cluster

import (
	"testing"
	"time"
)

func task() *unitTask { return &unitTask{} }

// popAsync runs pop in a goroutine and returns a channel carrying the
// result, so tests can assert both "returns promptly" and "blocks".
func popAsync(q *stealQueue, w string) <-chan struct {
	t      *unitTask
	stolen bool
} {
	ch := make(chan struct {
		t      *unitTask
		stolen bool
	}, 1)
	go func() {
		t, stolen := q.pop(w)
		ch <- struct {
			t      *unitTask
			stolen bool
		}{t, stolen}
	}()
	return ch
}

func TestQueueOwnWorkPriorityAndOrder(t *testing.T) {
	q := newStealQueue([]string{"a", "b"})
	lo1, lo2, hi1 := task(), task(), task()
	q.push("a", lo1, false)
	q.push("a", lo2, false)
	q.push("a", hi1, true)

	got, stolen := q.pop("a")
	if got != hi1 || stolen {
		t.Fatalf("first pop = %p stolen=%v, want hi unit %p from own lane", got, stolen, hi1)
	}
	if got, _ := q.pop("a"); got != lo1 {
		t.Fatalf("lo lane not FIFO: got %p want %p", got, lo1)
	}
	if got, _ := q.pop("a"); got != lo2 {
		t.Fatalf("lo lane not FIFO: got %p want %p", got, lo2)
	}
}

func TestQueueStealsFromLongestBacklog(t *testing.T) {
	q := newStealQueue([]string{"a", "b", "c"})
	a1, a2, a3 := task(), task(), task()
	q.push("a", a1, false)
	q.push("a", a2, false)
	q.push("a", a3, false)
	q.push("b", task(), false)
	q.push("b", task(), false)

	got, stolen := q.pop("c")
	if !stolen {
		t.Fatal("idle worker did not steal")
	}
	// Tail theft from the longest backlog: a's newest unit moves, a's
	// warm head stays put.
	if got != a3 {
		t.Fatalf("stole %p, want tail of longest backlog %p", got, a3)
	}
	if got, _ := q.pop("a"); got != a1 || q.depth() != 3 {
		t.Fatalf("victim lost its head unit (got %p, depth %d)", got, q.depth())
	}
}

func TestQueueLeavesLoneUnitWithLiveOwner(t *testing.T) {
	q := newStealQueue([]string{"a", "b"})
	q.push("a", task(), false)

	ch := popAsync(q, "b")
	select {
	case r := <-ch:
		t.Fatalf("stole a live worker's lone unit: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	// A second unit makes a a legitimate victim; the blocked thief wakes.
	q.push("a", task(), false)
	select {
	case r := <-ch:
		if !r.stolen {
			t.Fatal("woken pop did not report a steal")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("thief stayed asleep after victim backlog reached 2")
	}
}

func TestQueuePauseDrainsAndBlocksOwner(t *testing.T) {
	q := newStealQueue([]string{"a", "b"})
	u1, u2 := task(), task()
	q.push("a", u1, true)
	q.push("a", u2, false)

	drained := q.pause("a")
	if len(drained) != 2 || drained[0] != u1 || drained[1] != u2 {
		t.Fatalf("pause drained %d units, want hi-then-lo pair", len(drained))
	}
	// The paused worker's dispatcher idles even with work elsewhere.
	q.push("a", task(), false)
	ch := popAsync(q, "a")
	select {
	case r := <-ch:
		t.Fatalf("paused worker's pop returned %+v", r)
	case <-time.After(50 * time.Millisecond):
	}
	q.resume("a")
	select {
	case r := <-ch:
		if r.t == nil {
			t.Fatal("resume delivered nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resume did not wake the paused dispatcher")
	}
}

// TestQueueStragglerOnPausedWorkerIsStealable covers the race where a
// unit lands in a worker's lanes concurrently with its pause: a lone
// unit on a paused worker must still be stealable, or it would strand.
func TestQueueStragglerOnPausedWorkerIsStealable(t *testing.T) {
	q := newStealQueue([]string{"a", "b"})
	q.pause("a")
	straggler := task()
	q.push("a", straggler, false)

	got, stolen := q.pop("b")
	if got != straggler || !stolen {
		t.Fatalf("straggler on paused worker not stolen (got %p stolen=%v)", got, stolen)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := newStealQueue([]string{"a"})
	ch := popAsync(q, "a")
	q.close()
	select {
	case r := <-ch:
		if r.t != nil {
			t.Fatalf("closed pop returned a unit: %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock pop")
	}
}
