// Package cluster turns a fleet of hilightd workers into one logical
// compile service: a coordinator consistent-hashes sync compiles and
// async batch units across workers on the public schedule fingerprint
// (so each worker's byte-capped cache shards naturally and hit rates
// survive scale-out), async units flow through a work-stealing queue so
// a hot worker sheds load to idle peers, and periodic readiness probes
// drain a dying or SIGTERM'd worker the same way one process drains
// itself. Node-to-node responses travel as binary-payload envelopes
// (application/x-hilight-sched+json) and are transcoded at the
// coordinator edge, so client-visible JSON stays byte-identical to a
// single node's.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the virtual-node count per worker. 64 points per node
// keeps the expected ownership imbalance for small fleets (3-16
// workers) under a few percent while a membership change still only
// moves ~1/N of the keyspace.
const ringVnodes = 64

// ring is an immutable consistent-hash ring over worker names. Rebuild
// a new ring on membership change; owner lookups are lock-free reads.
type ring struct {
	hashes []uint64 // sorted vnode positions
	nodes  []string // nodes[i] owns hashes[i]
}

// buildRing places vnodes points per node on the 64-bit ring. An empty
// node list yields an empty ring whose owner is always "".
func buildRing(nodes []string, vnodes int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(nodes)*vnodes),
		nodes:  make([]string, 0, len(nodes)*vnodes),
	}
	type pt struct {
		h    uint64
		node string
	}
	pts := make([]pt, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			pts = append(pts, pt{ringHash(n + "#" + strconv.Itoa(i)), n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// Ties (astronomically rare) break on the node name so the ring
		// is deterministic regardless of input order.
		return pts[i].node < pts[j].node
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.nodes = append(r.nodes, p.node)
	}
	return r
}

// owner returns the node owning key: the first vnode clockwise of the
// key's hash. Deterministic for a given membership — the property the
// fingerprint-sharded cache rides on.
func (r *ring) owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest point
	}
	return r.nodes[i]
}

// moved estimates, over n sampled probe keys, how many keys changed
// owner between two rings — the cluster/hash-moves accounting. The
// probe keys are fixed strings, so the estimate is deterministic.
func moved(old, new *ring, n int) int {
	if old == nil || new == nil {
		return 0
	}
	m := 0
	for i := 0; i < n; i++ {
		k := "probe-key-" + strconv.Itoa(i)
		if old.owner(k) != new.owner(k) {
			m++
		}
	}
	return m
}

// ringHash is 64-bit FNV-1a with an avalanche finalizer. Raw FNV-1a
// output on short, near-identical keys ("w2#17") is badly correlated —
// a 3-node ring measured 49/3/48 ownership — so the finalizer (the
// MurmurHash3 fmix64 constants) diffuses every input bit across the
// whole word before the point lands on the ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
