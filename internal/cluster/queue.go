package cluster

import "sync"

// unitTask is one async batch unit in flight through the coordinator: a
// pointer back to its batch slot plus the request that reproduces the
// compile on any worker.
type unitTask struct {
	batch  *clusterBatch
	idx    int    // slot in batch.outcomes
	fp     string // public fingerprint; the sharding key
	body   []byte // self-contained POST /v1/compile body
	tenant string // X-Hilight-Tenant passthrough
	// attempts counts dispatch failures; the coordinator gives up (and
	// records an error outcome) once every live worker has had a turn.
	attempts int
}

// stealQueue is the coordinator's per-worker dispatch queue with
// receiver-initiated work stealing. Each worker has two FIFO lanes —
// interactive-priority units ahead of batch ones — and an idle worker
// whose lanes are empty steals from the peer with the longest backlog.
// One mutex + condvar covers the whole structure: dispatch decisions
// need a global view for victim selection anyway, and queue operations
// are microseconds next to the compiles they schedule.
type stealQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  map[string]*workerLanes
	paused map[string]bool // down workers: their dispatchers idle here
	closed bool
}

type workerLanes struct {
	hi, lo []*unitTask
}

func newStealQueue(workers []string) *stealQueue {
	q := &stealQueue{
		lanes:  make(map[string]*workerLanes, len(workers)),
		paused: make(map[string]bool),
	}
	for _, w := range workers {
		q.lanes[w] = &workerLanes{}
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues t for worker w (its home at enqueue time). hi selects
// the interactive lane.
func (q *stealQueue) push(w string, t *unitTask, hi bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l := q.lanes[w]
	if l == nil {
		l = &workerLanes{}
		q.lanes[w] = l
	}
	if hi {
		l.hi = append(l.hi, t)
	} else {
		l.lo = append(l.lo, t)
	}
	// Broadcast, not Signal: a single wakeup could land on a dispatcher
	// that cannot take this unit (steals need a backlog of two), leaving
	// the one that could still asleep.
	q.cond.Broadcast()
}

// pop returns the next task for worker w, blocking until one is
// available or the queue closes (nil). stolen reports whether the task
// came from another worker's lanes. Own work is taken in FIFO order,
// high lane first; a steal targets the victim with the longest backlog
// and only victims with at least two queued units — stealing a lone
// unit just moves the imbalance around and forfeits its cache
// affinity for nothing.
func (q *stealQueue) pop(w string) (t *unitTask, stolen bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if q.paused[w] {
			// The worker is down: its dispatchers idle instead of pulling
			// work they would only fail to place.
			q.cond.Wait()
			continue
		}
		if l := q.lanes[w]; l != nil {
			if len(l.hi) > 0 {
				t, l.hi = l.hi[0], l.hi[1:]
				return t, false
			}
			if len(l.lo) > 0 {
				t, l.lo = l.lo[0], l.lo[1:]
				return t, false
			}
		}
		if t := q.stealLocked(w); t != nil {
			return t, true
		}
		q.cond.Wait()
	}
}

// stealLocked takes one unit from the tail of the longest peer backlog
// (length >= 2). Tail theft leaves the victim its oldest — most likely
// already-warm — work.
func (q *stealQueue) stealLocked(thief string) *unitTask {
	var victim *workerLanes
	best := 0
	for w, l := range q.lanes {
		if w == thief {
			continue
		}
		n := len(l.hi) + len(l.lo)
		if n < 2 && !q.paused[w] {
			// A live victim keeps a lone unit (stealing it only moves the
			// imbalance and forfeits cache affinity); a paused worker's
			// stragglers are always fair game — nobody else will run them.
			continue
		}
		if n > best {
			best, victim = n, l
		}
	}
	if victim == nil {
		return nil
	}
	if n := len(victim.lo); n > 0 {
		t := victim.lo[n-1]
		victim.lo = victim.lo[:n-1]
		return t
	}
	n := len(victim.hi)
	t := victim.hi[n-1]
	victim.hi = victim.hi[:n-1]
	return t
}

// pause marks worker w down: its dispatchers stop pulling work, and
// every unit queued for it is returned for redistribution.
func (q *stealQueue) pause(w string) []*unitTask {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.paused[w] = true
	l := q.lanes[w]
	if l == nil {
		return nil
	}
	out := append(append([]*unitTask{}, l.hi...), l.lo...)
	l.hi, l.lo = nil, nil
	return out
}

// resume marks worker w up again and wakes its dispatchers.
func (q *stealQueue) resume(w string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.paused, w)
	q.cond.Broadcast()
}

// depth reports the total queued units across all workers.
func (q *stealQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, l := range q.lanes {
		n += len(l.hi) + len(l.lo)
	}
	return n
}

// close wakes every blocked pop with nil. Idempotent.
func (q *stealQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
