package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"hilight/internal/service"
)

// LocalWorker is one in-process hilightd worker on a loopback listener
// — the building block for cluster tests, the chaos soak, and the
// cluster-smoke make target.
type LocalWorker struct {
	URL string
	Srv *service.Server

	hs *http.Server
	ln net.Listener
}

// StartLocalWorker boots a worker on 127.0.0.1:0 with the given
// config (NodeID defaulted to id when unset).
func StartLocalWorker(id string, cfg service.Config) (*LocalWorker, error) {
	if cfg.NodeID == "" {
		cfg.NodeID = id
	}
	s, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(sctx)
		return nil, err
	}
	w := &LocalWorker{
		URL: fmt.Sprintf("http://%s", ln.Addr()),
		Srv: s,
		hs:  &http.Server{Handler: s.Handler()},
		ln:  ln,
	}
	go func() { _ = w.hs.Serve(ln) }()
	return w, nil
}

// Close drains the worker the way a SIGTERM would: readiness flips to
// 503, in-flight work finishes, then the listener and service stop.
func (w *LocalWorker) Close() error {
	w.Srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := w.hs.Shutdown(ctx)
	_ = w.Srv.Shutdown(ctx)
	return err
}

// Kill drops the worker abruptly — the listener closes mid-connection
// and nothing drains. This is the crash the coordinator's probes and
// requeues exist for.
func (w *LocalWorker) Kill() {
	_ = w.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = w.Srv.Shutdown(ctx)
}
