package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hilight"
	"hilight/internal/obs"
	"hilight/internal/service"
	"hilight/internal/wire"
)

// Config sizes a Coordinator.
type Config struct {
	// Workers lists the worker base URLs (http://host:port). At least
	// one is required.
	Workers []string
	// NodeID names the coordinator in the X-Hilight-Node response
	// header (default "coordinator").
	NodeID string
	// ProbeInterval is the worker readiness probe period (default
	// 250ms). A worker failing a probe is marked down — the ring
	// reshards and its queued units move — within one interval.
	ProbeInterval time.Duration
	// DispatchPerWorker bounds concurrent async unit dispatches per
	// worker (default 2). Sync compiles are forwarded inline and are
	// bounded by the workers' own admission control.
	DispatchPerWorker int
	// MaxBodyBytes caps request bodies (default 8 MiB, matching the
	// single-node default).
	MaxBodyBytes int64
	// MaxStoredJobs bounds retained async batches (default 64).
	MaxStoredJobs int
	// Metrics receives the cluster/... families. Nil creates a private
	// registry; either way it is served at GET /metrics.
	Metrics *obs.Registry
	// Client performs node-to-node requests. Nil uses a client with no
	// global timeout (compiles are long); probes always use a separate
	// short-timeout client.
	Client *http.Client
}

func (c *Config) fillDefaults() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("cluster: no workers configured")
	}
	for _, w := range c.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: worker %q is not a base URL (http://host:port)", w)
		}
	}
	if c.NodeID == "" {
		c.NodeID = "coordinator"
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.DispatchPerWorker <= 0 {
		c.DispatchPerWorker = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxStoredJobs <= 0 {
		c.MaxStoredJobs = 64
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return nil
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url  string
	name string // host:port; the per-worker metric label
	up   bool   // guarded by Coordinator.mu
	// upGauge mirrors up as cluster/up/<name> so tests and dashboards
	// see placement change the moment a probe does.
	upGauge *obs.Gauge
}

// Coordinator fronts a fleet of hilightd workers with the single-node
// HTTP API: sync compiles are consistent-hash-forwarded on the request
// fingerprint, async batches split into units that flow through the
// work-stealing queue, and the client-visible JSON stays byte-identical
// to a single node's. Create with New, expose via Handler, stop with
// Shutdown.
type Coordinator struct {
	cfg         Config
	mux         *http.ServeMux
	client      *http.Client
	probeClient *http.Client

	mu       sync.Mutex
	workers  map[string]*workerState
	order    []string // stable worker order (config order)
	ring     *ring    // over up workers only
	affinity map[string]string // fingerprint -> worker URL that served it

	queue    *stealQueue
	store    *batchStore
	draining atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup

	forwards      *obs.Counter
	forwardRetry  *obs.Counter
	steals        *obs.Counter
	requeues      *obs.Counter
	hashMoves       *obs.Counter
	affinityHits    *obs.Counter
	sessionForwards *obs.Counter
	sessionAffinity *obs.Counter
	unitCacheHits *obs.Counter
	unitsDone     *obs.Counter
	batches       *obs.Counter
	upCount       *obs.Gauge
	queueDepth    *obs.Gauge
}

// New returns a running Coordinator: the readiness prober and the
// per-worker dispatchers start immediately. All workers are assumed up
// until the first probe says otherwise, so traffic flows from the
// first request.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	m := cfg.Metrics
	c := &Coordinator{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		client: cfg.Client,
		probeClient: &http.Client{
			Timeout: min(cfg.ProbeInterval, time.Second),
		},
		workers:  make(map[string]*workerState, len(cfg.Workers)),
		affinity: make(map[string]string),
		queue:    newStealQueue(cfg.Workers),
		store:    newBatchStore(cfg.MaxStoredJobs),
		stop:     make(chan struct{}),

		forwards:      m.Counter("cluster/forwards"),
		forwardRetry:  m.Counter("cluster/forward-retries"),
		steals:        m.Counter("cluster/steals"),
		requeues:      m.Counter("cluster/requeues"),
		hashMoves:       m.Counter("cluster/hash-moves"),
		affinityHits:    m.Counter("cluster/affinity-hits"),
		sessionForwards: m.Counter("cluster/session-forwards"),
		sessionAffinity: m.Counter("cluster/session-affinity-hits"),
		unitCacheHits: m.Counter("cluster/unit-cache-hits"),
		unitsDone:     m.Counter("cluster/units-done"),
		batches:       m.Counter("cluster/batches"),
		upCount:       m.Gauge("cluster/worker-up"),
		queueDepth:    m.Gauge("cluster/queue-depth"),
	}
	for _, w := range cfg.Workers {
		u, _ := url.Parse(w)
		ws := &workerState{
			url: w, name: u.Host, up: true,
			upGauge: m.Gauge("cluster/up/" + u.Host),
		}
		ws.upGauge.Set(1)
		c.workers[w] = ws
		c.order = append(c.order, w)
	}
	c.ring = buildRing(c.order, ringVnodes)
	c.upCount.Set(int64(len(c.order)))

	c.mux.HandleFunc("POST /v1/compile", c.handleCompile)
	c.mux.HandleFunc("POST /v1/defects", c.handleDefects)
	c.mux.HandleFunc("POST /v1/jobs", c.handleJobsSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobsStatus)
	c.mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"methods": hilight.Methods()})
	})
	c.mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"benchmarks": hilight.BenchmarkNames()})
	})
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteMetrics(w)
	})

	c.wg.Add(1)
	go c.probeLoop()
	for _, w := range cfg.Workers {
		for i := 0; i < cfg.DispatchPerWorker; i++ {
			c.wg.Add(1)
			go c.dispatcher(w)
		}
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler, stamping every
// response with the coordinator's node id.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hilight-Node", c.cfg.NodeID)
		c.mux.ServeHTTP(w, r)
	})
}

// Shutdown stops the prober and dispatchers. In-flight unit dispatches
// finish; queued units are abandoned (the coordinator is going away —
// clients resubmit against the fingerprints the ack returned).
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	close(c.stop)
	c.queue.close()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: shutdown cut short: %w", ctx.Err())
	}
}

// liveWorkers returns the up worker count.
func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ws := range c.workers {
		if ws.up {
			n++
		}
	}
	return n
}

// pickWorker routes a fingerprint: the worker that last served it when
// still up (affinity — so a unit a steal moved keeps hitting the warm
// cache it filled), otherwise the ring owner among up workers. The
// second return reports whether the affinity map (not the ring) decided
// — session routing meters that separately.
func (c *Coordinator) pickWorker(fp string) (*workerState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.affinity[fp]; ok {
		if ws := c.workers[w]; ws != nil && ws.up {
			c.affinityHits.Inc()
			return ws, true
		}
	}
	owner := c.ring.owner(fp)
	if owner == "" {
		return nil, false
	}
	return c.workers[owner], false
}

// noteServed records that worker w served fingerprint fp, steering
// repeats of fp back to w's now-warm cache.
func (c *Coordinator) noteServed(fp, w string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.affinity) >= 1<<16 {
		// Bound the map; losing affinity only costs a cache miss on the
		// ring owner, never correctness.
		clear(c.affinity)
	}
	c.affinity[fp] = w
}

// markDown transitions a worker to down: the ring reshards (counted in
// cluster/hash-moves over sampled probe keys), its dispatchers pause,
// and its queued units requeue to their new owners.
func (c *Coordinator) markDown(w string) {
	c.mu.Lock()
	ws := c.workers[w]
	if ws == nil || !ws.up {
		c.mu.Unlock()
		return
	}
	ws.up = false
	ws.upGauge.Set(0)
	c.rebuildRingLocked()
	c.mu.Unlock()

	for _, t := range c.queue.pause(w) {
		c.requeue(t, fmt.Sprintf("worker %s went down", ws.name))
	}
}

// markUp transitions a worker back to up and reshards the ring.
func (c *Coordinator) markUp(w string) {
	c.mu.Lock()
	ws := c.workers[w]
	if ws == nil || ws.up {
		c.mu.Unlock()
		return
	}
	ws.up = true
	ws.upGauge.Set(1)
	c.rebuildRingLocked()
	c.mu.Unlock()
	c.queue.resume(w)
}

// rebuildRingLocked rebuilds the ring over up workers and accounts the
// ownership churn. Caller holds mu.
func (c *Coordinator) rebuildRingLocked() {
	var up []string
	for _, w := range c.order {
		if c.workers[w].up {
			up = append(up, w)
		}
	}
	old := c.ring
	c.ring = buildRing(up, ringVnodes)
	c.hashMoves.Add(int64(moved(old, c.ring, 256)))
	c.upCount.Set(int64(len(up)))
}

// probeLoop polls every worker's /readyz each interval. A worker
// answering anything but 200 — draining (503), dead (connection
// refused), wedged (timeout) — is marked down; a 200 from a down
// worker brings it back.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, w := range c.order {
				req, err := http.NewRequest("GET", w+"/readyz", nil)
				if err != nil {
					continue
				}
				resp, err := c.probeClient.Do(req)
				if err != nil {
					c.markDown(w)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					c.markUp(w)
				} else {
					c.markDown(w)
				}
			}
		}
	}
}

// maxAttempts bounds a unit's or forward's tries: every worker gets a
// turn, plus slack for a ring that reshards mid-retry.
func (c *Coordinator) maxAttempts() int { return len(c.cfg.Workers) + 2 }

// writeJSON mirrors the single-node encoder settings so coordinator
// responses are byte-identical to a worker's.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the canonical JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(service.ErrorBody(msg))
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() || c.liveWorkers() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// readBody buffers the request body under the size cap.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, err
	}
	return body, nil
}

// passthrough reports whether the client negotiated a non-default
// response (binary, envelope, or a layer stream) that the coordinator
// relays verbatim instead of transcoding.
func passthrough(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if mt == wire.BinaryEnvelopeContentType || mt == wire.Binary.ContentType() {
				return true
			}
		}
	}
	return false
}

// handleCompile forwards a sync compile to the fingerprint's worker.
// The node-to-node response is the binary-payload envelope; the
// coordinator transcodes it back to the canonical JSON for default
// clients, so the body is byte-identical to a single node's. Clients
// that negotiated binary or streaming get the worker bytes relayed
// untouched.
func (c *Coordinator) handleCompile(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := c.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp, err := service.DigestCompile(body)
	if err != nil {
		status, msg := service.HTTPStatus(err)
		writeError(w, status, msg)
		return
	}
	pass := passthrough(r)
	c.forwards.Inc()

	// A session recompile routes on its *parent* fingerprint: the warm
	// start only pays off on the worker whose cache holds the parent, and
	// the affinity map knows which worker served it. The child lands in
	// that worker's cache too, so its affinity entry follows from
	// noteServed below.
	routeFP := fp
	if parent := r.Header.Get("If-Fingerprint-Match"); parent != "" {
		routeFP = parent
		c.sessionForwards.Inc()
	}

	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		ws, viaAffinity := c.pickWorker(routeFP)
		if routeFP != fp && viaAffinity {
			c.sessionAffinity.Inc()
		}
		if ws == nil {
			writeError(w, http.StatusServiceUnavailable, "no live workers")
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), "POST",
			ws.url+"/v1/compile?"+r.URL.RawQuery, bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req.Header.Set("Content-Type", "application/json")
		copyRequestHeaders(req, r)
		if pass {
			req.Header["Accept"] = r.Header.Values("Accept")
		} else {
			req.Header.Set("Accept", wire.BinaryEnvelopeContentType)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away; nothing to retry for.
				return
			}
			lastErr = err
			c.forwardRetry.Inc()
			c.markDown(ws.url)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The worker is draining; the prober will confirm, but don't
			// wait for it — reshard now and retry elsewhere.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("worker %s draining", ws.name)
			c.forwardRetry.Inc()
			c.markDown(ws.url)
			continue
		}
		c.relayCompile(w, resp, ws, fp, pass)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Sprintf("no worker could serve the compile: %v", lastErr))
}

// relayCompile writes a worker compile response to the client —
// transcoded for default JSON clients, verbatim for negotiated ones.
func (c *Coordinator) relayCompile(w http.ResponseWriter, resp *http.Response, ws *workerState, fp string, pass bool) {
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		c.noteServed(fp, ws.url)
	}
	w.Header().Set("X-Hilight-Worker", ws.name)
	if pass {
		for _, h := range relayedHeaders {
			if vs := resp.Header.Values(h); len(vs) > 0 {
				w.Header()[h] = vs
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(newFlushWriter(w), resp.Body)
		return
	}
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("worker %s: %v", ws.name, err))
		return
	}
	if resp.StatusCode != http.StatusOK {
		// Worker error envelopes are already the canonical JSON; relay
		// status and body untouched.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(respBody)
		return
	}
	out, meta, err := service.TranscodeEnvelope(respBody)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("worker %s envelope: %v", ws.name, err))
		return
	}
	if meta.Cached {
		c.unitCacheHits.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// relayedHeaders are the envelope-metadata headers a passthrough relay
// preserves.
var relayedHeaders = []string{
	"Content-Type", "Content-Length",
	"X-Hilight-Fingerprint", "X-Hilight-Cached", "X-Hilight-Method",
	"X-Hilight-Latency-Cycles", "X-Hilight-Fallback-Method",
}

// copyRequestHeaders forwards the admission-relevant client headers plus
// the session precondition (a worker missing the parent answers 412,
// which relays to the client untouched).
func copyRequestHeaders(dst *http.Request, src *http.Request) {
	for _, h := range []string{"X-Hilight-Tenant", "X-Hilight-Priority", "If-Fingerprint-Match"} {
		if v := src.Header.Get(h); v != "" {
			dst.Header.Set(h, v)
		}
	}
}

// newFlushWriter pushes relayed bytes to the client as they arrive —
// passthrough streams must not buffer whole frames.
func newFlushWriter(w http.ResponseWriter) io.Writer {
	if f, ok := w.(http.Flusher); ok {
		return flushWriter{w, f}
	}
	return w
}

type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// handleDefects broadcasts a defect feed to every live worker — each
// worker sweeps and recompiles its own cache shard — and answers the
// aggregated sweep. Per-worker failures degrade the aggregate (counted
// in failed_workers) instead of failing the feed: the next level-
// triggered update repairs whatever a down worker missed.
func (c *Coordinator) handleDefects(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := c.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c.mu.Lock()
	var targets []*workerState
	for _, wu := range c.order {
		if ws := c.workers[wu]; ws.up {
			targets = append(targets, ws)
		}
	}
	c.mu.Unlock()
	if len(targets) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no live workers")
		return
	}

	type sweep struct {
		Checked      int               `json:"checked"`
		Conflicting  int               `json:"conflicting"`
		Evicted      int               `json:"evicted"`
		Recompiled   int               `json:"recompiled"`
		Failed       int               `json:"failed,omitempty"`
		Fingerprints map[string]string `json:"fingerprints,omitempty"`
	}
	total := sweep{Fingerprints: map[string]string{}}
	failedWorkers := 0
	for _, ws := range targets {
		req, err := http.NewRequestWithContext(r.Context(), "POST",
			ws.url+"/v1/defects", bytes.NewReader(body))
		if err != nil {
			failedWorkers++
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			c.markDown(ws.url)
			failedWorkers++
			continue
		}
		var one sweep
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&one)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			failedWorkers++
			continue
		}
		total.Checked += one.Checked
		total.Conflicting += one.Conflicting
		total.Evicted += one.Evicted
		total.Recompiled += one.Recompiled
		total.Failed += one.Failed
		for old, nw := range one.Fingerprints {
			total.Fingerprints[old] = nw
		}
	}
	if len(total.Fingerprints) == 0 {
		total.Fingerprints = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checked": total.Checked, "conflicting": total.Conflicting,
		"evicted": total.Evicted, "recompiled": total.Recompiled,
		"failed": total.Failed, "fingerprints": total.Fingerprints,
		"workers": len(targets), "failed_workers": failedWorkers,
	})
}

// handleJobsSubmit splits a batch into units, acks with the same body a
// single node would, and fans the units out through the steal queue.
func (c *Coordinator) handleJobsSubmit(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, err := c.readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	units, err := service.SplitJobs(body)
	if err != nil {
		status, msg := service.HTTPStatus(err)
		writeError(w, status, msg)
		return
	}
	fps := make([]string, len(units))
	for i, u := range units {
		fps[i] = u.Fingerprint
	}
	b := c.store.add(fps)
	c.batches.Inc()
	tenant := r.Header.Get("X-Hilight-Tenant")
	hi := r.Header.Get("X-Hilight-Priority") != "batch" && r.Header.Get("X-Hilight-Priority") != "low"
	for i, u := range units {
		t := &unitTask{batch: b, idx: i, fp: u.Fingerprint, body: u.Body, tenant: tenant}
		c.enqueue(t, hi)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": b.id, "count": len(units), "fingerprints": fps,
	})
}

// enqueue routes a unit to its current owner's lanes.
func (c *Coordinator) enqueue(t *unitTask, hi bool) {
	ws, _ := c.pickWorker(t.fp)
	if ws == nil {
		t.batch.settle(t.idx, service.UnitOutcome{Err: "no live workers"})
		return
	}
	c.queue.push(ws.url, t, hi)
	c.queueDepth.Set(int64(c.queue.depth()))
}

// requeue sends a unit back through the queue after a dispatch
// failure, settling a terminal error once every worker has had a turn.
func (c *Coordinator) requeue(t *unitTask, reason string) {
	t.attempts++
	if t.attempts >= c.maxAttempts() {
		t.batch.settle(t.idx, service.UnitOutcome{
			Err: fmt.Sprintf("unit failed after %d attempts: %s", t.attempts, reason),
		})
		return
	}
	c.requeues.Inc()
	c.enqueue(t, true)
}

// dispatcher executes async units against one worker until the queue
// closes. Stolen units (taken from a hot peer's backlog) are counted;
// the affinity map then routes repeats of that fingerprint to wherever
// it actually ran.
func (c *Coordinator) dispatcher(worker string) {
	defer c.wg.Done()
	for {
		t, stolen := c.queue.pop(worker)
		if t == nil {
			return
		}
		if stolen {
			c.steals.Inc()
		}
		c.queueDepth.Set(int64(c.queue.depth()))
		c.execute(t, worker)
	}
}

// execute runs one unit against worker via the node-to-node envelope
// form and settles or requeues it.
func (c *Coordinator) execute(t *unitTask, worker string) {
	c.mu.Lock()
	ws := c.workers[worker]
	c.mu.Unlock()

	req, err := http.NewRequest("POST", worker+"/v1/compile", bytes.NewReader(t.body))
	if err != nil {
		t.batch.settle(t.idx, service.UnitOutcome{Err: err.Error()})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.BinaryEnvelopeContentType)
	if t.tenant != "" {
		req.Header.Set("X-Hilight-Tenant", t.tenant)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// The worker died (or the connection did) mid-unit: take it out
		// of the ring and let the unit retry elsewhere. The unit was
		// acked, so it must not be lost.
		c.markDown(worker)
		c.requeue(t, err.Error())
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		env, err := io.ReadAll(resp.Body)
		if err != nil {
			c.markDown(worker)
			c.requeue(t, err.Error())
			return
		}
		c.noteServed(t.fp, worker)
		c.unitsDone.Inc()
		if cached := resp.Header.Get("X-Hilight-Cached"); cached == "true" {
			c.unitCacheHits.Inc()
		} else if gjson := envelopeCached(env); gjson {
			c.unitCacheHits.Inc()
		}
		t.batch.settle(t.idx, service.UnitOutcome{Envelope: env})
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		c.markDown(worker)
		c.requeue(t, fmt.Sprintf("worker %s draining", ws.name))
	case resp.StatusCode == http.StatusTooManyRequests:
		// Backpressure, not death: the worker stays up, the unit goes
		// back in the queue (someone else may steal it).
		io.Copy(io.Discard, resp.Body)
		c.requeue(t, fmt.Sprintf("worker %s backpressured", ws.name))
	default:
		// A semantic failure (422, 400) is deterministic — retrying it
		// elsewhere would fail identically. Record it like the
		// single-node batch would.
		msg := readErrorMessage(resp.Body)
		if msg == "" {
			msg = fmt.Sprintf("worker %s answered %d", ws.name, resp.StatusCode)
		}
		t.batch.settle(t.idx, service.UnitOutcome{Err: msg})
	}
}

// envelopeCached peeks the cached flag out of an envelope body.
func envelopeCached(env []byte) bool {
	var e struct {
		Cached bool `json:"cached"`
	}
	return json.Unmarshal(env, &e) == nil && e.Cached
}

// readErrorMessage extracts the message from a JSON error envelope.
func readErrorMessage(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&e); err != nil {
		return ""
	}
	return e.Error
}

// handleJobsStatus composes the canonical poll body from the batch's
// unit outcomes.
func (c *Coordinator) handleJobsStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := c.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	finished, done, outcomes := b.view()
	body, err := service.ComposeJobStatus(b.id, len(b.fps), finished, done, outcomes)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
