package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := buildRing([]string{"w1", "w2", "w3"}, ringVnodes)
	b := buildRing([]string{"w3", "w1", "w2"}, ringVnodes)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("fp-%d", i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %q: owner depends on input order (%q vs %q)", k, a.owner(k), b.owner(k))
		}
	}
}

func TestRingEmptyOwnsNothing(t *testing.T) {
	r := buildRing(nil, ringVnodes)
	if got := r.owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	nodes := []string{"w1", "w2", "w3"}
	r := buildRing(nodes, ringVnodes)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("fp-%d", i))]++
	}
	for _, n := range nodes {
		if counts[n] < keys/10 {
			t.Errorf("node %s owns %d/%d keys — ring badly unbalanced: %v", n, counts[n], keys, counts)
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing property the
// sharded cache depends on: removing one node must not move any key
// between the surviving nodes.
func TestRingMinimalDisruption(t *testing.T) {
	old := buildRing([]string{"w1", "w2", "w3"}, ringVnodes)
	shrunk := buildRing([]string{"w1", "w3"}, ringVnodes)
	movedKeys, orphans := 0, 0
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("fp-%d", i)
		was, is := old.owner(k), shrunk.owner(k)
		if was == "w2" {
			orphans++
			continue
		}
		if was != is {
			movedKeys++
		}
	}
	if movedKeys != 0 {
		t.Errorf("%d keys moved between surviving nodes on member removal", movedKeys)
	}
	if orphans == 0 {
		t.Error("removed node owned no keys — spread test should have caught this")
	}
}

func TestMovedAccounting(t *testing.T) {
	r3 := buildRing([]string{"w1", "w2", "w3"}, ringVnodes)
	r2 := buildRing([]string{"w1", "w3"}, ringVnodes)
	if got := moved(r3, r3, 256); got != 0 {
		t.Errorf("moved(r, r) = %d, want 0", got)
	}
	if got := moved(r3, r2, 256); got == 0 {
		t.Error("moved across a membership change reported 0")
	}
}
