package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hilight"

	"hilight/internal/obs"
	"hilight/internal/service"
	"hilight/internal/wire"
)

// testCluster is a coordinator fronting n in-process workers.
type testCluster struct {
	co      *Coordinator
	ts      *httptest.Server
	workers []*LocalWorker
	metrics *obs.Registry
}

func startCluster(t *testing.T, n int, wcfg service.Config, probe time.Duration) *testCluster {
	t.Helper()
	tc := &testCluster{metrics: obs.NewRegistry()}
	var urls []string
	for i := 0; i < n; i++ {
		w, err := StartLocalWorker(fmt.Sprintf("w%d", i+1), wcfg)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		tc.workers = append(tc.workers, w)
		urls = append(urls, w.URL)
	}
	co, err := New(Config{
		Workers:       urls,
		ProbeInterval: probe,
		Metrics:       tc.metrics,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	tc.co = co
	tc.ts = httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		tc.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = co.Shutdown(ctx)
		for _, w := range tc.workers {
			w.Kill()
		}
	})
	return tc
}

// post sends a JSON body and returns the response plus buffered body.
func post(t *testing.T, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// pollJob polls GET /v1/jobs/{id} until status done and returns the
// final body.
func pollJob(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d: %s", id, resp.StatusCode, body)
		}
		var st struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("poll %s: %v: %s", id, err, body)
		}
		if st.Status == "done" {
			return body
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// TestClusterCompileDeterminism is the cross-node determinism check:
// the same fingerprint through the coordinator twice lands on the same
// worker (the second serve is that worker's cache hit, visible in its
// /metrics), and the coordinator's JSON is byte-identical to a
// single node serving the same request.
func TestClusterCompileDeterminism(t *testing.T) {
	tc := startCluster(t, 3, service.Config{}, 100*time.Millisecond)
	reqBody := map[string]any{"benchmark": "QFT-10", "seed": 7}

	r1, b1 := post(t, tc.ts.URL+"/v1/compile", reqBody, nil)
	if r1.StatusCode != 200 {
		t.Fatalf("cluster compile: %d: %s", r1.StatusCode, b1)
	}
	w1 := r1.Header.Get("X-Hilight-Worker")
	if w1 == "" {
		t.Fatal("no X-Hilight-Worker header")
	}

	// Reference: the same request straight to the worker that served it.
	// It answers from its cache — a cached response is deterministic
	// (runtime and trace come from the stored compile), so these bytes
	// are exactly what a direct client of that node would see.
	var serving *LocalWorker
	for _, w := range tc.workers {
		if u, _ := url.Parse(w.URL); u.Host == w1 {
			serving = w
		}
	}
	if serving == nil {
		t.Fatalf("X-Hilight-Worker %q matches no worker", w1)
	}
	refResp, refJSON := post(t, serving.URL+"/v1/compile", reqBody, nil)
	if refResp.StatusCode != 200 {
		t.Fatalf("direct worker compile: %d: %s", refResp.StatusCode, refJSON)
	}

	r2, b2 := post(t, tc.ts.URL+"/v1/compile", reqBody, nil)
	if r2.StatusCode != 200 {
		t.Fatalf("repeat compile: %d: %s", r2.StatusCode, b2)
	}
	if w2 := r2.Header.Get("X-Hilight-Worker"); w2 != w1 {
		t.Errorf("repeat fingerprint moved workers: %s then %s", w1, w2)
	}
	var env struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(b2, &env); err != nil || !env.Cached {
		t.Errorf("repeat compile missed the sharded cache (err=%v): %s", err, b2[:min(200, len(b2))])
	}
	// The coordinator transcodes the node-to-node envelope back to the
	// canonical JSON: byte-identical to the worker's own response.
	if !bytes.Equal(b2, refJSON) {
		t.Errorf("coordinator JSON differs from the serving worker's JSON:\n%s\nvs\n%s", b2, refJSON)
	}

	// The serving worker's own /metrics shows both cache hits (the
	// direct reference request and the coordinator repeat).
	_, metrics := get(t, serving.URL+"/metrics")
	if !strings.Contains(string(metrics), "cache_hits_total 2") {
		t.Errorf("serving worker metrics lack the cache hits:\n%s", metrics)
	}
}

// dropTimings removes the wall-clock fields (runtime_ns, trace) from
// every batch result so two independent executions become comparable.
func dropTimings(t *testing.T, body []byte) []byte {
	t.Helper()
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("dropTimings: %v: %s", err, body)
	}
	results, _ := st["results"].([]any)
	for _, r := range results {
		entry, _ := r.(map[string]any)
		if res, ok := entry["result"].(map[string]any); ok {
			delete(res, "runtime_ns")
			delete(res, "trace")
		}
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterJobsByteIdentical runs the same async batch through a
// single node and through the coordinator and requires the poll bodies
// to match byte for byte.
func TestClusterJobsByteIdentical(t *testing.T) {
	batch := map[string]any{
		"jobs": []any{
			map[string]any{"benchmark": "QFT-10"},
			map[string]any{"benchmark": "QFT-10", "grid": map[string]any{"w": 7, "h": 7}},
			map[string]any{"benchmark": "QFT-10", "grid": map[string]any{"w": 8, "h": 8}},
			map[string]any{"benchmark": "QFT-10", "grid": map[string]any{"w": 9, "h": 9}},
		},
		"seed": 11,
	}

	ref, err := StartLocalWorker("ref", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Kill()
	refResp, refAck := post(t, ref.URL+"/v1/jobs", batch, nil)
	if refResp.StatusCode != http.StatusAccepted {
		t.Fatalf("reference submit: %d: %s", refResp.StatusCode, refAck)
	}
	var refSub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(refAck, &refSub); err != nil {
		t.Fatal(err)
	}
	refFinal := pollJob(t, ref.URL, refSub.ID)

	tc := startCluster(t, 3, service.Config{}, 100*time.Millisecond)
	resp, ack := post(t, tc.ts.URL+"/v1/jobs", batch, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cluster submit: %d: %s", resp.StatusCode, ack)
	}
	if !bytes.Equal(ack, refAck) {
		t.Errorf("ack bodies differ:\n%s\nvs\n%s", ack, refAck)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(ack, &sub); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, tc.ts.URL, sub.ID)
	// runtime_ns and the per-stage trace timings are wall-clock — no two
	// executions agree on them, cluster or not. Everything else (ids,
	// ordering, fingerprints, schedules, status shape) must match byte
	// for byte after dropping those fields on both sides.
	if got, want := dropTimings(t, final), dropTimings(t, refFinal); !bytes.Equal(got, want) {
		t.Errorf("final poll bodies differ beyond timings:\ncluster: %s\nsingle:  %s", got, want)
	}
	snap := tc.metrics.Snapshot()
	if v, _ := snap.Counter("cluster/units-done"); v != 4 {
		t.Errorf("cluster/units-done = %d, want 4", v)
	}
	if v, _ := snap.Counter("cluster/batches"); v != 1 {
		t.Errorf("cluster/batches = %d, want 1", v)
	}
}

// TestClusterWorkerDeathReshards kills a worker and requires the
// coordinator to stop routing to it within a probe interval or two:
// the up gauge drops, the ring reshards (hash-moves counts it), and
// compiles keep succeeding.
func TestClusterWorkerDeathReshards(t *testing.T) {
	tc := startCluster(t, 3, service.Config{}, 50*time.Millisecond)

	tc.workers[1].Kill()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, _ := tc.metrics.Snapshot().Gauge("cluster/worker-up"); v == 2 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := tc.metrics.Snapshot().Gauge("cluster/worker-up")
			t.Fatalf("worker-up still %d long after the kill", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v, _ := tc.metrics.Snapshot().Counter("cluster/hash-moves"); v == 0 {
		t.Error("ring reshard reported no hash moves")
	}

	// Fingerprints spread across the ring; all must still serve. The dead
	// worker's share either fails over inline (conn error -> retry) or is
	// routed around after the probe.
	for i := 0; i < 6; i++ {
		resp, body := post(t, tc.ts.URL+"/v1/compile",
			map[string]any{"benchmark": "QFT-10", "seed": i}, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("compile %d after worker death: %d: %s", i, resp.StatusCode, body)
		}
		if w := resp.Header.Get("X-Hilight-Worker"); strings.Contains(tc.workers[1].URL, w) {
			t.Errorf("compile %d routed to the dead worker %s", i, w)
		}
	}
}

// TestClusterPassthroughEndpoints pins /v1/methods and /v1/benchmarks
// to the single-node bodies, and /readyz to the aggregate worker
// health.
func TestClusterPassthroughEndpoints(t *testing.T) {
	ref, err := StartLocalWorker("ref", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Kill()
	tc := startCluster(t, 2, service.Config{}, 50*time.Millisecond)

	for _, ep := range []string{"/v1/methods", "/v1/benchmarks"} {
		_, refBody := get(t, ref.URL+ep)
		_, coBody := get(t, tc.ts.URL+ep)
		if !bytes.Equal(refBody, coBody) {
			t.Errorf("%s differs:\n%s\nvs\n%s", ep, coBody, refBody)
		}
	}

	if resp, _ := get(t, tc.ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz %d with live workers", resp.StatusCode)
	}
	for _, w := range tc.workers {
		w.Kill()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, _ := get(t, tc.ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz stayed 200 with every worker dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterTenantQuotaSpansBatch checks the tenant header rides along
// to workers: a worker-side tenant quota rejects the second concurrent
// unit of the same tenant, and the coordinator requeues instead of
// failing the unit.
func TestClusterStreamPassthrough(t *testing.T) {
	tc := startCluster(t, 2, service.Config{}, 100*time.Millisecond)
	data, _ := json.Marshal(map[string]any{"benchmark": "QFT-10"})
	req, _ := http.NewRequest("POST", tc.ts.URL+"/v1/compile?stream=1", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "stream") {
		t.Errorf("stream Content-Type %q relayed wrong", ct)
	}
	if resp.Header.Get("X-Hilight-Worker") == "" {
		t.Error("stream relay lost the worker attribution header")
	}
	if _, _, err := wire.ReadStream(bytes.NewReader(body)); err != nil {
		t.Errorf("relayed stream undecodable: %v", err)
	}
}

// dropCompileTimings removes the wall-clock fields from a compile
// response body so responses from independent daemons compare equal.
func dropCompileTimings(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("dropCompileTimings: %v: %s", err, body)
	}
	delete(m, "runtime_ns")
	delete(m, "trace")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterSessionAffinity drives a session recompile through the
// coordinator: a bogus parent fingerprint relays the worker's 412, a
// real one routes the child to the worker whose cache holds the parent
// (counted as a session affinity hit), the coordinator's cached bytes
// match the serving worker's own, and the session response agrees with
// a fresh single-node daemon serving the same edit.
func TestClusterSessionAffinity(t *testing.T) {
	tc := startCluster(t, 3, service.Config{}, 100*time.Millisecond)

	c := hilight.QFT(8)
	parentQASM := hilight.FormatQASM(c)
	child := c.Clone()
	child.Add2(hilight.CX, 0, 7)
	childQASM := hilight.FormatQASM(child)

	r1, b1 := post(t, tc.ts.URL+"/v1/compile", map[string]any{"qasm": parentQASM}, nil)
	if r1.StatusCode != 200 {
		t.Fatalf("cold compile: %d: %s", r1.StatusCode, b1)
	}
	var cold struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(b1, &cold); err != nil {
		t.Fatal(err)
	}
	w1 := r1.Header.Get("X-Hilight-Worker")
	if w1 == "" {
		t.Fatal("no X-Hilight-Worker header on the cold compile")
	}

	// A parent nobody holds: the worker's 412 relays untouched.
	rMiss, bMiss := post(t, tc.ts.URL+"/v1/compile", map[string]any{"qasm": childQASM},
		map[string]string{"If-Fingerprint-Match": "sha256:deadbeef"})
	if rMiss.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("bogus parent: status %d, want 412: %s", rMiss.StatusCode, bMiss)
	}

	// The real session routes on the parent fingerprint to the worker
	// that served it.
	rS, bS := post(t, tc.ts.URL+"/v1/compile", map[string]any{"qasm": childQASM},
		map[string]string{"If-Fingerprint-Match": cold.Fingerprint})
	if rS.StatusCode != 200 {
		t.Fatalf("session compile: %d: %s", rS.StatusCode, bS)
	}
	if got := rS.Header.Get("X-Hilight-Worker"); got != w1 {
		t.Errorf("session landed on %q, parent lives on %q", got, w1)
	}
	var warm struct {
		Fingerprint string `json:"fingerprint"`
		WarmCycles  int    `json:"warm_cycles"`
		Parent      string `json:"parent"`
	}
	if err := json.Unmarshal(bS, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.WarmCycles == 0 {
		t.Error("session through coordinator produced no warm cycles")
	}
	if warm.Parent != cold.Fingerprint {
		t.Errorf("session parent = %q, want %q", warm.Parent, cold.Fingerprint)
	}
	if got := tc.co.sessionAffinity.Value(); got != 1 {
		t.Errorf("cluster/session-affinity-hits = %d, want 1", got)
	}
	if got := tc.co.sessionForwards.Value(); got != 2 {
		t.Errorf("cluster/session-forwards = %d, want 2 (miss + hit)", got)
	}

	// The child is now cached on the serving worker; the coordinator's
	// transcoded bytes for it must match that worker's own JSON exactly.
	var serving *LocalWorker
	for _, w := range tc.workers {
		if u, _ := url.Parse(w.URL); u.Host == w1 {
			serving = w
		}
	}
	if serving == nil {
		t.Fatalf("X-Hilight-Worker %q matches no worker", w1)
	}
	rRep, bRep := post(t, tc.ts.URL+"/v1/compile", map[string]any{"qasm": childQASM},
		map[string]string{"If-Fingerprint-Match": cold.Fingerprint})
	if rRep.StatusCode != 200 {
		t.Fatalf("repeat session: %d: %s", rRep.StatusCode, bRep)
	}
	refResp, refJSON := post(t, serving.URL+"/v1/compile", map[string]any{"qasm": childQASM}, nil)
	if refResp.StatusCode != 200 {
		t.Fatalf("direct worker repeat: %d: %s", refResp.StatusCode, refJSON)
	}
	if !bytes.Equal(bRep, refJSON) {
		t.Errorf("coordinator session JSON differs from the serving worker's:\n%s\nvs\n%s", bRep, refJSON)
	}

	// And the whole exchange matches a single-node daemon running the
	// same edit, modulo wall-clock fields.
	ref, err := StartLocalWorker("ref", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Kill()
	rc, bc := post(t, ref.URL+"/v1/compile", map[string]any{"qasm": parentQASM}, nil)
	if rc.StatusCode != 200 {
		t.Fatalf("single-node cold: %d: %s", rc.StatusCode, bc)
	}
	var refCold struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(bc, &refCold); err != nil {
		t.Fatal(err)
	}
	if refCold.Fingerprint != cold.Fingerprint {
		t.Fatalf("fingerprint diverged across daemons: %q vs %q", refCold.Fingerprint, cold.Fingerprint)
	}
	rw, bw := post(t, ref.URL+"/v1/compile", map[string]any{"qasm": childQASM},
		map[string]string{"If-Fingerprint-Match": refCold.Fingerprint})
	if rw.StatusCode != 200 {
		t.Fatalf("single-node session: %d: %s", rw.StatusCode, bw)
	}
	if a, b := dropCompileTimings(t, bS), dropCompileTimings(t, bw); !bytes.Equal(a, b) {
		t.Errorf("coordinator session disagrees with single-node daemon:\n%s\nvs\n%s", a, b)
	}
}
