package hwopt

import (
	"testing"

	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/core"
)

func TestCandidateFactoryGrids(t *testing.T) {
	cands, err := CandidateFactoryGrids(9, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 4 {
		t.Fatalf("only %d candidates", len(cands))
	}
	seen := map[[2]int]bool{}
	for _, c := range cands {
		if c.Grid.Capacity() < 9 {
			t.Errorf("candidate (%d,%d) cannot hold 9 qubits", c.X, c.Y)
		}
		key := [2]int{c.X, c.Y}
		if seen[key] {
			t.Errorf("duplicate position (%d,%d)", c.X, c.Y)
		}
		seen[key] = true
		if !c.Grid.Reserved(c.Grid.TileAt(c.X, c.Y)) {
			t.Errorf("position (%d,%d) not actually reserved", c.X, c.Y)
		}
	}
	if _, err := CandidateFactoryGrids(4, 0, 1, false); err == nil {
		t.Error("invalid factory size accepted")
	}
}

func TestCandidateFactoryGridsBigRegion(t *testing.T) {
	cands, err := CandidateFactoryGrids(12, 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		reserved := c.Grid.Tiles() - c.Grid.Capacity()
		if reserved != 4 {
			t.Errorf("candidate (%d,%d) reserved %d tiles, want 4", c.X, c.Y, reserved)
		}
	}
}

func TestBestFactoryPlacement(t *testing.T) {
	e, ok := bench.ByName("sqrt8_260")
	if !ok {
		t.Fatal("benchmark missing")
	}
	c := e.Build()
	placements, err := BestFactoryPlacement(c, 1, 1, false, core.Spec{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) < 4 {
		t.Fatalf("placements = %d", len(placements))
	}
	best := placements[0]
	for _, p := range placements[1:] {
		if p.Latency < best.Latency {
			t.Errorf("winner latency %d beaten by (%d,%d) at %d", best.Latency, p.X, p.Y, p.Latency)
		}
	}
	if best.Latency <= 0 {
		t.Error("degenerate winner")
	}
}

func TestBestFactoryPlacementTinyCircuit(t *testing.T) {
	c := circuit.New("pair", 2)
	c.Add2(circuit.CX, 0, 1)
	placements, err := BestFactoryPlacement(c, 1, 1, true, core.Spec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Latency != 1 {
		t.Errorf("latency = %d, want 1", placements[0].Latency)
	}
}
