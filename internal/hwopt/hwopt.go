// Package hwopt implements the hardware-level optimization of §3.4: the
// ResUtil resource-utilization metric (Eq. 1), grid-shape selection
// between the M×M square and the diminished M×(M−1) rectangle, and
// magic-state-factory reservation (the factory is encapsulated as a
// singular, non-braiding logical qubit region).
package hwopt

import (
	"fmt"

	"hilight/internal/grid"
	"hilight/internal/sched"
)

// ResUtil computes Eq. 1: total braiding path length divided by grid area
// times latency. Zero latency yields zero.
func ResUtil(totalPathLen, gridTiles, latency int) float64 {
	if latency <= 0 || gridTiles <= 0 {
		return 0
	}
	return float64(totalPathLen) / (float64(gridTiles) * float64(latency))
}

// ResUtilOf computes Eq. 1 for a schedule.
func ResUtilOf(s *sched.Schedule) float64 {
	return ResUtil(s.TotalPathLength(), s.Grid.Tiles(), s.Latency())
}

// PerLayerUtilization returns, per braiding cycle, the fraction of the
// grid's tiles worth of channel length consumed — the balance profile the
// paper's hardware-level optimization targets.
func PerLayerUtilization(s *sched.Schedule) []float64 {
	out := make([]float64, len(s.Layers))
	tiles := float64(s.Grid.Tiles())
	for i, layer := range s.Layers {
		total := 0
		for _, b := range layer {
			total += len(b.Path) // occupied vertices, as in Eq. 1's numerator
		}
		out[i] = float64(total) / tiles
	}
	return out
}

// GridFor returns the hardware grid for n program qubits: the M×M square
// by default, or the paper's diminished M×(M−1) rectangle when hwOpt is
// set (falling back to M×M when the rectangle cannot hold n qubits).
func GridFor(n int, hwOpt bool) *grid.Grid {
	if hwOpt {
		return grid.Rect(n)
	}
	return grid.Square(n)
}

// GridWithFactory returns a grid for n program qubits with fw×fh tiles
// reserved in the bottom-right corner for the magic-state factory. The
// grid is grown just enough to keep capacity ≥ n.
func GridWithFactory(n, fw, fh int, hwOpt bool) (*grid.Grid, error) {
	if fw < 1 || fh < 1 {
		return nil, fmt.Errorf("hwopt: factory dimensions %dx%d invalid", fw, fh)
	}
	for extra := 0; ; extra++ {
		g := GridFor(n+fw*fh+extra, hwOpt)
		if g.W < fw || g.H < fh {
			continue
		}
		if err := g.Reserve(g.W-fw, g.H-fh, g.W-1, g.H-1); err != nil {
			return nil, err
		}
		if g.Capacity() >= n {
			return g, nil
		}
	}
}

// BalanceReport summarizes how evenly braiding load spreads over the
// schedule: the mean per-layer utilization, its peak, and the ratio
// (1.0 = perfectly flat). The paper tunes the grid shape so utilization
// stays balanced while shrinking hardware.
type BalanceReport struct {
	Mean float64
	Peak float64
	// Flatness is Mean/Peak (0 when the schedule is empty).
	Flatness float64
}

// Balance computes the BalanceReport of a schedule.
func Balance(s *sched.Schedule) BalanceReport {
	util := PerLayerUtilization(s)
	var r BalanceReport
	if len(util) == 0 {
		return r
	}
	for _, u := range util {
		r.Mean += u
		if u > r.Peak {
			r.Peak = u
		}
	}
	r.Mean /= float64(len(util))
	if r.Peak > 0 {
		r.Flatness = r.Mean / r.Peak
	}
	return r
}
