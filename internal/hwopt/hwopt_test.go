package hwopt

import (
	"math"
	"math/rand"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sched"
)

func TestResUtil(t *testing.T) {
	if got := ResUtil(24, 12, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ResUtil = %g, want 0.5", got)
	}
	if ResUtil(10, 12, 0) != 0 {
		t.Error("zero latency should give zero")
	}
	if ResUtil(10, 0, 5) != 0 {
		t.Error("zero tiles should give zero")
	}
}

func TestGridFor(t *testing.T) {
	g := GridFor(12, false)
	if g.W != 4 || g.H != 4 {
		t.Errorf("square = %dx%d", g.W, g.H)
	}
	g = GridFor(12, true)
	if g.W != 4 || g.H != 3 {
		t.Errorf("rect = %dx%d", g.W, g.H)
	}
}

func TestGridWithFactory(t *testing.T) {
	g, err := GridWithFactory(12, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Capacity() < 12 {
		t.Errorf("capacity %d < 12", g.Capacity())
	}
	if !g.Reserved(g.TileAt(g.W-1, g.H-1)) {
		t.Error("factory corner not reserved")
	}
	if _, err := GridWithFactory(4, 0, 1, false); err == nil {
		t.Error("invalid factory size accepted")
	}
	// Bigger factory block.
	g2, err := GridWithFactory(9, 2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Capacity() < 9 {
		t.Errorf("capacity %d < 9", g2.Capacity())
	}
	reserved := g2.Tiles() - g2.Capacity()
	if reserved != 4 {
		t.Errorf("reserved = %d, want 4", reserved)
	}
}

func mapQFT(t *testing.T, n int, g *grid.Grid) *core.Result {
	t.Helper()
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResUtilOfMatchesCore(t *testing.T) {
	res := mapQFT(t, 10, grid.Rect(10))
	if got := ResUtilOf(res.Schedule); math.Abs(got-res.ResUtil) > 1e-12 {
		t.Errorf("ResUtilOf = %g, core computed %g", got, res.ResUtil)
	}
}

func TestRectRaisesUtilization(t *testing.T) {
	// Same circuit on the smaller rectangle should use the hardware more
	// intensively (ResUtil up) without catastrophic latency loss — the
	// §4.6 effect. QFT pattern matching randomizes the layout, so average
	// over seeds.
	c := circuit.New("qft", 12)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	var sqU, rcU float64
	var sqL, rcL int
	const trials = 25
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sq, err := core.Run(c, grid.Square(12), core.MustMethod("hilight-map"), core.RunOptions{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		rng = rand.New(rand.NewSource(seed))
		rc, err := core.Run(c, grid.Rect(12), core.MustMethod("hilight-map"), core.RunOptions{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		sqU += sq.ResUtil
		rcU += rc.ResUtil
		sqL += sq.Latency
		rcL += rc.Latency
	}
	// The rectangle drops a full row of hardware; utilization must hold
	// (within 10% of the square's) and latency must stay close (the paper
	// reports +0.5%; allow 20% for the small instance).
	if rcU < 0.9*sqU {
		t.Errorf("rect mean ResUtil %.3f collapsed vs square %.3f", rcU/trials, sqU/trials)
	}
	if float64(rcL) > 1.2*float64(sqL) {
		t.Errorf("rect latency %d blew up vs square %d", rcL, sqL)
	}
	if grid.Rect(12).Tiles() >= grid.Square(12).Tiles() {
		t.Error("rectangle did not shrink hardware")
	}
}

func TestPerLayerAndBalance(t *testing.T) {
	res := mapQFT(t, 9, grid.Square(9))
	util := PerLayerUtilization(res.Schedule)
	if len(util) != res.Latency {
		t.Fatalf("per-layer length %d != latency %d", len(util), res.Latency)
	}
	sum := 0.0
	for _, u := range util {
		sum += u
	}
	if math.Abs(sum/float64(len(util))-res.ResUtil) > 1e-9 {
		t.Errorf("mean per-layer %g != ResUtil %g", sum/float64(len(util)), res.ResUtil)
	}
	b := Balance(res.Schedule)
	if b.Peak < b.Mean || b.Flatness < 0 || b.Flatness > 1 {
		t.Errorf("balance report inconsistent: %+v", b)
	}
	empty := Balance(&sched.Schedule{Grid: res.Grid})
	if empty.Mean != 0 || empty.Peak != 0 || empty.Flatness != 0 {
		t.Errorf("empty schedule balance = %+v", empty)
	}
}
