package hwopt

import (
	"fmt"
	"math/rand"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
)

// FactoryPlacement is one evaluated factory position.
type FactoryPlacement struct {
	Grid    *grid.Grid
	X, Y    int // top-left tile of the factory region
	Latency int
	ResUtil float64
}

// CandidateFactoryGrids returns grids for n program qubits with an fw×fh
// factory region reserved at each distinct candidate position: the four
// corners, the four edge midpoints, and the center. Grids too small for
// n qubits after reservation are grown exactly like GridWithFactory.
func CandidateFactoryGrids(n, fw, fh int, hwOpt bool) ([]FactoryPlacement, error) {
	if fw < 1 || fh < 1 {
		return nil, fmt.Errorf("hwopt: factory dimensions %dx%d invalid", fw, fh)
	}
	// Size the base grid once (same growth rule as GridWithFactory).
	var base *grid.Grid
	for extra := 0; ; extra++ {
		g := GridFor(n+fw*fh+extra, hwOpt)
		if g.W < fw || g.H < fh {
			continue
		}
		if g.Tiles()-fw*fh >= n {
			base = g
			break
		}
	}
	maxX, maxY := base.W-fw, base.H-fh
	positions := [][2]int{
		{0, 0}, {maxX, 0}, {0, maxY}, {maxX, maxY}, // corners
		{maxX / 2, 0}, {maxX / 2, maxY}, {0, maxY / 2}, {maxX, maxY / 2}, // edges
		{maxX / 2, maxY / 2}, // center
	}
	seen := map[[2]int]bool{}
	var out []FactoryPlacement
	for _, pos := range positions {
		if seen[pos] {
			continue
		}
		seen[pos] = true
		g := grid.New(base.W, base.H)
		if err := g.Reserve(pos[0], pos[1], pos[0]+fw-1, pos[1]+fh-1); err != nil {
			return nil, err
		}
		if g.Capacity() < n {
			continue
		}
		out = append(out, FactoryPlacement{Grid: g, X: pos[0], Y: pos[1]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hwopt: no feasible factory position for %d qubits with a %dx%d region", n, fw, fh)
	}
	return out, nil
}

// BestFactoryPlacement maps the circuit on every candidate factory
// position and returns all evaluated placements sorted answer-first: the
// winner (lowest latency, ties by lowest ResUtil then position order)
// is element 0. sp selects the compile pipeline per attempt; the zero
// Spec is the "hilight-map" stack. Every candidate compiles with a
// fresh rng seeded from seed, so positions are compared under identical
// random streams.
func BestFactoryPlacement(c *circuit.Circuit, fw, fh int, hwOpt bool, sp core.Spec, seed int64) ([]FactoryPlacement, error) {
	cands, err := CandidateFactoryGrids(c.NumQubits, fw, fh, hwOpt)
	if err != nil {
		return nil, err
	}
	for i := range cands {
		res, err := core.Run(c, cands[i].Grid, sp, core.RunOptions{
			Rng: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return nil, fmt.Errorf("hwopt: factory at (%d,%d): %w", cands[i].X, cands[i].Y, err)
		}
		cands[i].Latency = res.Latency
		cands[i].ResUtil = res.ResUtil
	}
	// Stable selection sort: small candidate count, clarity over speed.
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].Latency < cands[best].Latency ||
				(cands[j].Latency == cands[best].Latency && cands[j].ResUtil < cands[best].ResUtil) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	return cands, nil
}
