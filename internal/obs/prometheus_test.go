package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// The exposition format is pinned byte-for-byte: dashboards and scrapers
// parse it, so a change here is a breaking change to the exposition and
// must be deliberate.
func TestWriteMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline/route/cycles").Add(7)
	r.Counter("batch/jobs").Add(12)
	r.Gauge("batch/inflight").Set(2)
	h := r.Histogram("batch/job-seconds", []float64{0.1, 1})
	h.Observe(0.0625) // binary-exact values keep the _sum stable
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE batch_jobs_total counter
batch_jobs_total 12
# TYPE pipeline_route_cycles_total counter
pipeline_route_cycles_total 7
# TYPE batch_inflight gauge
batch_inflight 2
# TYPE batch_job_seconds histogram
batch_job_seconds_bucket{le="0.1"} 1
batch_job_seconds_bucket{le="1"} 2
batch_job_seconds_bucket{le="+Inf"} 3
batch_job_seconds_sum 5.5625
batch_job_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"pipeline/route/cycles": "pipeline_route_cycles",
		"batch/queue-wait":      "batch_queue_wait",
		"simple":                "simple",
		"0leading":              "_0leading",
		"a:b_c9":                "a:b_c9",
		"π/τ":                   "___", // multi-byte runes collapse to one underscore each
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteMetricsParsesAsPrometheus validates the output of a realistic
// registry against the text-format grammar: every sample line is
// `name[{le="bound"}] value`, every family is announced by a single
// `# TYPE` line before its samples, histogram buckets are cumulative and
// end in a +Inf bucket equal to _count.
func TestWriteMetricsParsesAsPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline/route/braids").Add(41)
	r.Counter("route/astar-pops").Add(1234)
	r.Gauge("pipeline/qco/cx-delta").Add(-5)
	h := r.Histogram("pipeline/route/seconds", DurationBuckets)
	for _, v := range []float64{1e-6, 3e-4, 0.02, 0.7, 42} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}

	types := map[string]string{} // family -> declared type
	bucketCum := map[string]int64{}
	lastLine := ""
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		lastLine = line
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("family %s declared twice", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("sample line %q does not split into name and value", line)
		}
		val, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := f[0]
		switch {
		case strings.Contains(name, "_bucket{le="):
			base := name[:strings.Index(name, "_bucket{")]
			if types[base] != "histogram" {
				t.Fatalf("bucket sample %q has no histogram TYPE declaration", line)
			}
			le := name[strings.Index(name, `{le="`)+5 : len(name)-2]
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("unparseable le bound in %q", line)
				}
			}
			if int64(val) < bucketCum[base] {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			bucketCum[base] = int64(val)
		case strings.HasSuffix(name, "_sum"):
			if types[strings.TrimSuffix(name, "_sum")] != "histogram" {
				t.Fatalf("_sum sample %q outside a histogram family", line)
			}
		case strings.HasSuffix(name, "_count"):
			base := strings.TrimSuffix(name, "_count")
			if types[base] != "histogram" {
				t.Fatalf("_count sample %q outside a histogram family", line)
			}
			if int64(val) != bucketCum[base] {
				t.Fatalf("%s_count %d != +Inf bucket %d", base, int64(val), bucketCum[base])
			}
		default:
			if _, ok := types[name]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lastLine, "pipeline_route_seconds_count ") {
		t.Errorf("unexpected final line %q", lastLine)
	}
	if types["route_astar_pops_total"] != "counter" {
		t.Error("route/astar-pops not exposed as a counter")
	}
	if types["pipeline_qco_cx_delta"] != "gauge" {
		t.Error("pipeline/qco/cx-delta not exposed as a gauge")
	}
}
