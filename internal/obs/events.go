package obs

import (
	"fmt"
	"time"
)

// EventKind enumerates the structured events the batch compiler emits.
type EventKind uint8

// Batch job lifecycle. Every job ends with exactly one terminal event —
// JobFinish (Err nil or not) or JobPanic — and JobStart is emitted only
// for jobs a worker actually picked up (a job failed by the dispatcher
// after cancellation reports JobFinish with no preceding JobStart and a
// zero Duration). JobDegraded is emitted in addition to JobFinish when a
// WithFallback method produced the job's result.
//
// WatchdogFired and HandlerPanic are service-level events (hilightd):
// they describe the serving process rather than one batch job, and carry
// Job = -1.
const (
	JobStart EventKind = iota + 1
	JobFinish
	JobPanic
	JobDegraded
	// WatchdogFired reports that the compile watchdog observed no
	// routing-cycle progress for a full window and aborted the stuck
	// compile. Method carries the watchdog's label (the endpoint or
	// batch id), Duration the stall window, Err the abort cause.
	WatchdogFired
	// HandlerPanic reports a recovered HTTP-handler panic. Method
	// carries "METHOD /path", Err the panic value (with stack).
	HandlerPanic
)

// String returns the kind's stable lowercase name.
func (k EventKind) String() string {
	switch k {
	case JobStart:
		return "job-start"
	case JobFinish:
		return "job-finish"
	case JobPanic:
		return "job-panic"
	case JobDegraded:
		return "job-degraded"
	case WatchdogFired:
		return "watchdog-fired"
	case HandlerPanic:
		return "handler-panic"
	default:
		return fmt.Sprintf("event-kind-%d", uint8(k))
	}
}

// Event is one structured observation of a long compile: a batch job
// starting, finishing, panicking, or degrading to a fallback method —
// or, for the service-level kinds, a watchdog abort or a recovered
// handler panic.
type Event struct {
	Kind EventKind
	// Job is the job's index in the CompileAll slice; -1 for
	// service-level events that describe no single job.
	Job int
	// Method names the compile method involved: the fallback method that
	// produced a degraded result for JobDegraded, "" otherwise.
	Method string
	// Err is the job's error for terminal events (nil on success).
	Err error
	// QueueWait is how long the job sat in the batch queue before a
	// worker picked it up (JobStart and terminal events of started jobs).
	QueueWait time.Duration
	// Duration is the job's compile wall-clock time (terminal events;
	// zero for jobs the dispatcher failed without starting).
	Duration time.Duration
}

// EventObserver receives structured events as a batch runs. Observers may
// be invoked concurrently from multiple worker goroutines and must be
// safe for concurrent use; they should return quickly — a slow observer
// stalls its worker.
type EventObserver interface {
	OnEvent(Event)
}

// EventObserverFunc adapts a function to the EventObserver interface.
type EventObserverFunc func(Event)

// OnEvent implements EventObserver.
func (f EventObserverFunc) OnEvent(e Event) { f(e) }
