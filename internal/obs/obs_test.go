package obs

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var r Registry // zero value must be usable
	c := r.Counter("batch/jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("batch/jobs") != c {
		t.Fatal("second lookup returned a different counter handle")
	}

	g := r.Gauge("batch/inflight")
	g.Add(3)
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Counter.Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

// Bucket boundaries follow Prometheus le semantics: a value equal to a
// bound lands in that bound's bucket, the first value above it in the
// next, and values above every bound in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2.5, 5})

	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.999, 0}, {1, 0}, // at the bound → that bucket
		{math.Nextafter(1, 2), 1}, {2.5, 1},
		{2.500001, 2}, {5, 2},
		{5.000001, 3}, {1e9, 3}, // above every bound → +Inf
	}
	want := make([]int64, 4)
	var wantSum float64
	for _, tc := range cases {
		h.Observe(tc.v)
		want[tc.bucket]++
		wantSum += tc.v
	}

	hs, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if hs.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", hs.Count, len(cases))
	}
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", hs.Sum, wantSum)
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewRegistry().Histogram("d", DurationBuckets)
	h.ObserveDuration(30 * time.Millisecond) // between 2.5e-2 and 5e-2
	hs := findBucket(t, h, 30e-3)
	if hs != 11 { // DurationBuckets[11] == 5e-2 is the first bound ≥ 0.03
		t.Fatalf("0.03s landed in bucket %d, want 11", hs)
	}
}

// findBucket returns the index of the single non-empty bucket.
func findBucket(t *testing.T, h *Histogram, v float64) int {
	t.Helper()
	idx := -1
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if idx != -1 {
				t.Fatalf("multiple non-empty buckets (%d and %d)", idx, i)
			}
			idx = i
		}
	}
	if idx == -1 {
		t.Fatal("no bucket recorded the observation")
	}
	return idx
}

func TestHistogramBoundsPinnedAtCreation(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", nil) // later callers may pass nil
	if h1 != h2 {
		t.Fatal("second lookup returned a different histogram")
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}, {math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewRegistry().Histogram("bad", bounds)
		}()
	}
}

func TestSnapshotSortedAndLookup(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z/last", "a/first", "m/middle"} {
		r.Counter(name).Inc()
		r.Gauge(name + "/g").Set(2)
	}
	r.Histogram("b/h", []float64{1}).Observe(0.5)

	s := r.Snapshot()
	if !sort.SliceIsSorted(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name }) {
		t.Error("counters not sorted")
	}
	if !sort.SliceIsSorted(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name }) {
		t.Error("gauges not sorted")
	}
	if v, ok := s.Counter("m/middle"); !ok || v != 1 {
		t.Errorf("Counter lookup = %d,%v", v, ok)
	}
	if v, ok := s.Gauge("a/first/g"); !ok || v != 2 {
		t.Errorf("Gauge lookup = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("missing counter reported present")
	}
	if _, ok := s.Histogram("missing"); ok {
		t.Error("missing histogram reported present")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		JobStart: "job-start", JobFinish: "job-finish",
		JobPanic: "job-panic", JobDegraded: "job-degraded",
		EventKind(99): "event-kind-99",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
