package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// LogObserver bridges structured events onto a log stream: every event
// becomes one logfmt-style line (`kind=job-finish job=3 duration=1.2ms`)
// on the underlying writer. It is safe for concurrent use — lines from
// concurrent workers never interleave — which makes it directly usable
// as the EventObserver of a CompileAll batch or of the hilightd daemon.
type LogObserver struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test hook; nil means time.Now
}

// NewLogObserver returns a LogObserver writing to w. A nil w discards
// every event.
func NewLogObserver(w io.Writer) *LogObserver {
	if w == nil {
		w = io.Discard
	}
	return &LogObserver{w: w}
}

// OnEvent implements EventObserver: it renders e as one line. Fields
// that carry no information for the event kind (zero durations on a
// start, empty methods, nil errors) are omitted.
func (l *LogObserver) OnEvent(e Event) {
	var b strings.Builder
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	fmt.Fprintf(&b, "ts=%s kind=%s", now().UTC().Format(time.RFC3339Nano), e.Kind)
	if e.Job >= 0 {
		fmt.Fprintf(&b, " job=%d", e.Job)
	}
	if e.Method != "" {
		fmt.Fprintf(&b, " method=%s", e.Method)
	}
	if e.QueueWait > 0 {
		fmt.Fprintf(&b, " queue_wait=%s", e.QueueWait)
	}
	if e.Duration > 0 {
		fmt.Fprintf(&b, " duration=%s", e.Duration)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%q", e.Err.Error())
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}
