package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers one registry from many writers
// (counters, gauges, histograms — mixing cached handles and by-name
// lookups) while readers snapshot and expose it concurrently. Run under
// -race this is the registry's data-race proof; the final totals prove
// no increment was lost.
func TestRegistryConcurrentAccess(t *testing.T) {
	const (
		writers = 8
		iters   = 2000
	)
	r := NewRegistry()
	hot := r.Counter("hot") // shared cached handle

	// Readers: snapshot and expose continuously while the writers run.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				if v, ok := s.Counter("hot"); ok && (v < 0 || v > writers*iters) {
					t.Errorf("impossible mid-run counter value %d", v)
					return
				}
				if err := s.WriteMetrics(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
			for i := 0; i < iters; i++ {
				hot.Inc()
				r.Counter("by-name").Inc() // exercises the lookup path
				r.Gauge("inflight").Add(1)
				r.Gauge("inflight").Add(-1)
				h.Observe(float64(i%200) / 1000)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if v, _ := s.Counter("hot"); v != writers*iters {
		t.Errorf("hot = %d, want %d", v, writers*iters)
	}
	if v, _ := s.Counter("by-name"); v != writers*iters {
		t.Errorf("by-name = %d, want %d", v, writers*iters)
	}
	if v, _ := s.Gauge("inflight"); v != 0 {
		t.Errorf("inflight = %d, want 0", v)
	}
	hs, ok := s.Histogram("lat")
	if !ok || hs.Count != writers*iters {
		t.Errorf("histogram count = %d (ok=%v), want %d", hs.Count, ok, writers*iters)
	}
}
