package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` comment per metric family followed
// by its samples, counters first, then gauges, then histograms, each
// sorted by name. Registry names are sanitized into legal Prometheus
// metric names — every character outside [a-zA-Z0-9_:] becomes an
// underscore — and counters gain the conventional `_total` suffix.
// Histograms expand into cumulative `_bucket{le="..."}` samples plus
// `_sum` and `_count`, with the +Inf bucket equal to `_count`.
func (r *Registry) WriteMetrics(w io.Writer) error {
	return r.Snapshot().WriteMetrics(w)
}

// WriteMetrics renders the snapshot in the Prometheus text format; see
// Registry.WriteMetrics.
func (s Snapshot) WriteMetrics(w io.Writer) error {
	for _, c := range s.Counters {
		name := SanitizeMetricName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := SanitizeMetricName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := SanitizeMetricName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, cum); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SanitizeMetricName maps a registry name onto a legal Prometheus metric
// name: characters outside [a-zA-Z0-9_:] become underscores, and a
// leading digit gains an underscore prefix.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
