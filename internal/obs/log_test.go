package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogObserverRendering(t *testing.T) {
	var sb strings.Builder
	l := NewLogObserver(&sb)
	l.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l.OnEvent(Event{Kind: JobStart, Job: 3, QueueWait: 2 * time.Millisecond})
	l.OnEvent(Event{Kind: JobFinish, Job: 3, Duration: 5 * time.Millisecond, Err: errors.New("boom \"q\"")})
	l.OnEvent(Event{Kind: JobDegraded, Job: 4, Method: "autobraid-sp"})
	got := sb.String()
	want := `ts=1970-01-01T00:00:00Z kind=job-start job=3 queue_wait=2ms
ts=1970-01-01T00:00:00Z kind=job-finish job=3 duration=5ms err="boom \"q\""
ts=1970-01-01T00:00:00Z kind=job-degraded job=4 method=autobraid-sp
`
	if got != want {
		t.Errorf("log output:\n%s\nwant:\n%s", got, want)
	}
}

func TestLogObserverConcurrent(t *testing.T) {
	var sb safeBuilder
	l := NewLogObserver(&sb)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.OnEvent(Event{Kind: JobFinish, Job: i, Duration: time.Millisecond})
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 32 {
		t.Fatalf("got %d lines, want 32", len(lines))
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "kind=job-finish") || !strings.Contains(ln, "duration=1ms") {
			t.Errorf("interleaved or malformed line: %q", ln)
		}
	}
}

func TestLogObserverNilWriter(t *testing.T) {
	NewLogObserver(nil).OnEvent(Event{Kind: JobStart}) // must not panic
}

// safeBuilder is a mutex-guarded strings.Builder: LogObserver serializes
// its own writes, but the test's final read still needs the fence.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
