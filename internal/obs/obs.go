// Package obs is the process-wide observability layer: a concurrency-safe
// metrics registry (counters, gauges and fixed-bucket histograms) plus a
// structured event API for batch compilation.
//
// The registry is built for hot compile loops: an increment on a Counter,
// Gauge or Histogram handle is a single atomic operation and performs no
// allocation, so metering the router or the batch worker pool never
// perturbs the allocation-free steady state the performance architecture
// guarantees. Handle lookup (Registry.Counter and friends) takes a
// read-locked map hit; callers on a hot path should look a handle up once
// and increment through it.
//
// Metric names are free-form slash-separated paths ("pipeline/route/cycles",
// "batch/jobs"). The Prometheus exposition (WriteMetrics) sanitizes them
// into legal metric names (slashes and dashes become underscores, counters
// gain the conventional _total suffix); Snapshot reports the raw names.
//
// Reads are weakly consistent: a Snapshot taken while writers are active
// is a near-point-in-time view — each individual value is atomically read,
// but values observed together may straddle a concurrent update. Histogram
// bucket counts are read with the same guarantee, and the exposition
// derives _count from the bucket sum so the Prometheus invariant
// (cumulative +Inf bucket == count) always holds.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default histogram bounds for wall-clock
// latencies, in seconds: 10 µs to 10 s on a rough 1-2.5-5 logarithmic
// ladder. Values above the last bound land in the implicit +Inf bucket.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a cumulative monotone total. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Negative deltas are a programming
// error (use a Gauge for signed totals) and panic.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: negative Counter.Add(%d); use a Gauge for signed totals", d))
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous signed value (in-flight jobs, signed deltas).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution with Prometheus "le"
// (less-or-equal) semantics: an observation v lands in the first bucket
// whose upper bound is ≥ v; observations above every bound land in the
// implicit +Inf bucket. Bounds are fixed at creation — there is no
// resizing, so Observe is a lock-free binary search plus two atomic adds.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum     atomic.Uint64  // float64 bits of the running sum
}

// newHistogram validates bounds (non-empty, strictly ascending, finite)
// and builds the bucket array.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite histogram bound %g", b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %g", b))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Inline binary search (first bound ≥ v) so the hot path stays
	// allocation-free regardless of how sort.SearchFloat64s is compiled.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (sum over buckets).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Registry is a named collection of counters, gauges and histograms.
// All methods are safe for concurrent use; the zero value is ready.
// Handles returned by Counter/Gauge/Histogram remain valid for the life
// of the registry and may be cached and incremented from any goroutine.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. An existing histogram is returned as-is —
// the first creation pins the bounds; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Sample is one named counter or gauge value of a Snapshot.
type Sample struct {
	Name  string
	Value int64
}

// HistogramSample is one histogram of a Snapshot. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSample struct {
	Name   string
	Bounds []float64
	Counts []int64
	Count  int64 // total observations (sum of Counts)
	Sum    float64
}

// Snapshot is a stable, name-sorted view of a registry's current values.
type Snapshot struct {
	Counters   []Sample
	Gauges     []Sample
	Histograms []HistogramSample
}

// Counter returns the snapshotted value of the named counter.
func (s Snapshot) Counter(name string) (int64, bool) { return findSample(s.Counters, name) }

// Gauge returns the snapshotted value of the named gauge.
func (s Snapshot) Gauge(name string) (int64, bool) { return findSample(s.Gauges, name) }

// Histogram returns the snapshotted state of the named histogram.
func (s Snapshot) Histogram(name string) (HistogramSample, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramSample{}, false
}

func findSample(samples []Sample, name string) (int64, bool) {
	i := sort.Search(len(samples), func(i int) bool { return samples[i].Name >= name })
	if i < len(samples) && samples[i].Name == name {
		return samples[i].Value, true
	}
	return 0, false
}

// Snapshot captures every metric, sorted by name within each kind.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	s.Counters = make([]Sample, 0, len(r.counters))
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Sample{Name: name, Value: c.Value()})
	}
	s.Gauges = make([]Sample, 0, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Sample{Name: name, Value: g.Value()})
	}
	s.Histograms = make([]HistogramSample, 0, len(r.histograms))
	for name, h := range r.histograms {
		hs := HistogramSample{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
			hs.Count += hs.Counts[i]
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
