package qco

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/sim"
)

func TestCommuteRules(t *testing.T) {
	cx := circuit.NewGate2
	g1 := circuit.NewGate1
	cases := []struct {
		a, b circuit.Gate
		want bool
	}{
		// Fig. 6a: shared control.
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 0, 2), true},
		// Fig. 6b: shared target.
		{cx(circuit.CX, 1, 0), cx(circuit.CX, 2, 0), true},
		// Control of one is target of the other: no.
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 1, 2), false},
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 2, 0), false},
		// Same gate twice commutes (would cancel, but ordering-wise fine).
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 0, 1), true},
		// Reversed CX does not.
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 1, 0), false},
		// Disjoint gates commute.
		{cx(circuit.CX, 0, 1), cx(circuit.CX, 2, 3), true},
		// Z-diagonal 1Q on the control commutes.
		{g1(circuit.Z, 0), cx(circuit.CX, 0, 1), true},
		{g1(circuit.T, 0), cx(circuit.CX, 0, 1), true},
		// Z on the target does not.
		{g1(circuit.Z, 1), cx(circuit.CX, 0, 1), false},
		// X on the target commutes; X on the control does not.
		{g1(circuit.X, 1), cx(circuit.CX, 0, 1), true},
		{g1(circuit.X, 0), cx(circuit.CX, 0, 1), false},
		// H blocks on either side.
		{g1(circuit.H, 0), cx(circuit.CX, 0, 1), false},
		{g1(circuit.H, 1), cx(circuit.CX, 0, 1), false},
		// CZ commutes with CZ and with CX on the control side.
		{cx(circuit.CZ, 0, 1), cx(circuit.CZ, 1, 2), true},
		{cx(circuit.CZ, 0, 1), cx(circuit.CX, 1, 2), true},
		{cx(circuit.CZ, 0, 1), cx(circuit.CX, 2, 1), false},
	}
	for i, c := range cases {
		if got := Commute(c.a, c.b); got != c.want {
			t.Errorf("case %d: Commute(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := Commute(c.b, c.a); got != c.want {
			t.Errorf("case %d: Commute not symmetric", i)
		}
	}
}

func TestOptimizeHoistsSharedControlChain(t *testing.T) {
	// CX(0,1); CX(0,2); CX(0,3): all share control 0 and commute, but one
	// braid per qubit per cycle keeps depth 3. Insert an independent pair
	// blocked behind the chain by a shared target:
	//   CX(0,1); CX(0,2); CX(4,5) — depth 2 already. Use the shape from
	// Fig. 6: g1=CX(0,1), g2=CX(0,2), g3=CX(2,3). Naively g3 waits for
	// g2 (qubit 2); QCO may run g2 before g1, letting g3 start earlier
	// only if order changes help. Check depth does not increase and
	// semantics hold.
	c := circuit.New("fig6", 4)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 0, 2)
	c.Add2(circuit.CX, 2, 3)
	o := Optimize(c)
	if got, want := o.Len(), c.Len(); got != want {
		t.Fatalf("gate count changed: %d -> %d", want, got)
	}
	if Depth(o) > Depth(c) {
		t.Errorf("depth increased: %d -> %d", Depth(c), Depth(o))
	}
	eq, err := sim.Equivalent(c, o, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("optimized circuit not equivalent")
	}
}

func TestOptimizeReducesDepthOnFanPattern(t *testing.T) {
	// Program order: CX(0,1); CX(0,2); CX(3,1).
	// Naive ASAP: CX(3,1) waits for CX(0,1) on qubit 1 -> depth 2 with
	// layers {g0,?}, but g1 shares qubit 0 with g0 so naive depth is
	// 2: [g0, g1 after], g2 after g0. Actually naive: g0 layer0,
	// g1 layer1 (qubit0), g2 layer1 (qubit1 free at 1). Depth 2.
	// With commutation, g1 commutes with g0 (shared control) but still
	// cannot share a cycle (qubit 0 braids once per cycle). No change.
	// Instead use targets: CX(1,0); CX(2,0) share target 0: still one
	// braid per qubit per cycle. Depth cannot drop below serialization.
	// The real win: reordering lets an unrelated gate fill the bubble:
	//   g0=CX(0,1) g1=CX(2,3) g2=CX(0,3)
	// Naive: g2 waits on g0 (q0) and g1 (q3): depth 2. Commutation: g2
	// shares control 0 with g0 and target 3 with g1 -> commutes with
	// both! It can go to layer 0? No: q0 braids in layer 0 (g0).
	// Construct a case where QCO strictly wins:
	//   g0=CX(0,1) g1=CX(0,2) g2=CX(3,2)
	// Naive: g1 layer1 (q0 busy l0), g2 layer2 (q2 busy l1). Depth 3.
	// QCO: g1 and g2 share target 2 and commute; g2 can run at layer 0
	// (q3,q2 free), g1 at layer 1. Depth 2.
	c := circuit.New("win", 4)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 0, 2)
	c.Add2(circuit.CX, 3, 2)
	if Depth(c) != 3 {
		t.Fatalf("naive depth = %d, want 3", Depth(c))
	}
	o := Optimize(c)
	if Depth(o) != 2 {
		t.Fatalf("optimized depth = %d, want 2 (%v)", Depth(o), o.Gates)
	}
	eq, err := sim.Equivalent(c, o, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("optimized circuit not equivalent")
	}
}

func TestOptimizePreservesGateMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(rng, 6, 60)
	o := Optimize(c)
	count := map[circuit.Gate]int{}
	for _, g := range c.Gates {
		count[g]++
	}
	for _, g := range o.Gates {
		count[g]--
	}
	for g, n := range count {
		if n != 0 {
			t.Errorf("gate %v multiset changed by %d", g, n)
		}
	}
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	oneQ := []circuit.Kind{circuit.H, circuit.X, circuit.Z, circuit.S, circuit.T, circuit.RZ}
	for i := 0; i < gates; i++ {
		switch rng.Intn(3) {
		case 0:
			k := oneQ[rng.Intn(len(oneQ))]
			if k == circuit.RZ {
				c.AddRot(k, rng.Intn(n), rng.Float64())
			} else {
				c.Add1(k, rng.Intn(n))
			}
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			c.Add2(circuit.CX, a, b)
		}
	}
	return c
}

// Property: Optimize never increases depth and always preserves exact
// semantics (statevector equality on two probe states).
func TestOptimizeSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 40)
		o := Optimize(c)
		if o.Len() != c.Len() {
			return false
		}
		if Depth(o) > Depth(c) {
			return false
		}
		eq, err := sim.Equivalent(c, o, 1e-9)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for CX-only circuits the GF(2) map is preserved at widths the
// statevector cannot reach.
func TestOptimizeGF2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		c := circuit.New("cx", n)
		for i := 0; i < 200; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		o := Optimize(c)
		ma, err1 := sim.GF2Of(c)
		mb, err2 := sim.GF2Of(o)
		return err1 == nil && err2 == nil && ma.Equal(mb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: at Clifford-circuit widths far beyond the statevector
// oracle, both QCO passes preserve semantics exactly (tableau check).
func TestOptimizeCliffordAtScale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(150)
		c := circuit.New("clifford", n)
		kinds := []circuit.Kind{circuit.H, circuit.S, circuit.Z, circuit.X}
		for i := 0; i < 400; i++ {
			if rng.Intn(3) == 0 {
				c.Add1(kinds[rng.Intn(len(kinds))], rng.Intn(n))
				continue
			}
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2([]circuit.Kind{circuit.CX, circuit.CZ}[rng.Intn(2)], a, b)
			}
		}
		for _, rewrite := range []*circuit.Circuit{Optimize(c), Compress(c)} {
			eq, err := sim.CliffordEquivalent(c, rewrite)
			if err != nil || !eq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeEmptyAndSingleGate(t *testing.T) {
	e := circuit.New("empty", 3)
	if o := Optimize(e); o.Len() != 0 || o.NumQubits != 3 {
		t.Error("empty circuit mangled")
	}
	s := circuit.New("one", 2)
	s.Add2(circuit.CX, 0, 1)
	if o := Optimize(s); o.Len() != 1 || o.Gates[0] != s.Gates[0] {
		t.Error("single gate mangled")
	}
}
