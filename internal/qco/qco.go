// Package qco implements HiLight's program-level quantum-circuit
// optimization (§3.3): reordering commuting CX gates — the two rules of
// Fig. 6, exchanging sequential CXs that share a control or share a
// target — to raise braiding parallelism before mapping.
//
// The optimizer builds a commutation-aware dependency DAG (gates on the
// same qubit depend on each other only when they do not commute) and
// re-emits the circuit in ASAP layer order. The paper folds this into
// gate-list generation; performing it as a standalone rewrite is
// equivalent and lets the schedule validator check the result against the
// rewritten circuit.
package qco

import "hilight/internal/circuit"

// role classifies how a gate touches a qubit for commutation analysis.
type role uint8

const (
	roleNone    role = iota
	roleControl      // Z-basis side of a CX, or a Z-diagonal 1Q gate
	roleTarget       // X-basis side of a CX, or an X-axis 1Q gate
	roleBarrier      // anything else: blocks reordering on this qubit
)

// gateRole returns how g acts on qubit q.
func gateRole(g circuit.Gate, q int) role {
	switch g.Kind {
	case circuit.CX:
		if g.Q0 == q {
			return roleControl
		}
		return roleTarget
	case circuit.CZ:
		return roleControl // CZ is Z-diagonal on both qubits
	case circuit.Z, circuit.S, circuit.Sdg, circuit.T, circuit.Tdg,
		circuit.RZ, circuit.U1:
		return roleControl
	case circuit.X, circuit.RX:
		return roleTarget
	case circuit.I:
		return roleNone
	}
	return roleBarrier
}

// Commute reports whether adjacent gates a and b may be exchanged: on
// every qubit they share, both must act in the same commuting role
// (control/Z-diagonal or target/X-axis). Gates sharing no qubit trivially
// commute.
func Commute(a, b circuit.Gate) bool {
	for _, q := range a.Qubits() {
		if !b.ActsOn(q) {
			continue
		}
		ra, rb := gateRole(a, q), gateRole(b, q)
		if ra == roleNone || rb == roleNone {
			continue
		}
		if ra == roleBarrier || rb == roleBarrier || ra != rb {
			return false
		}
	}
	return true
}

// Optimize rewrites c by hoisting commuting CX gates into the earliest
// layer available, preserving circuit semantics. The result is a new
// circuit; c is unmodified. Gates within a layer keep their original
// relative order, so the rewrite is deterministic.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	n := len(c.Gates)
	// Earliest layer per gate under commutation-aware dependencies.
	// For each qubit, track the open "commuting group": consecutive gates
	// acting in the same role can share or reorder layers; a role change
	// closes the group and forces a dependency on all its members.
	type qubitState struct {
		groupRole  role
		groupFloor int // earliest layer the open group may start at
		groupMax   int // latest layer used inside the open group
	}
	states := make([]qubitState, c.NumQubits)
	for i := range states {
		states[i] = qubitState{groupRole: roleNone, groupFloor: 0, groupMax: -1}
	}
	layerOf := make([]int, n)

	// Two-qubit gates consume a braiding slot: two gates in the same
	// layer cannot share a qubit even when they commute (one braid per
	// qubit per cycle). Track per qubit the set of layers already holding
	// a 2Q gate via a last-used bitmap per qubit in slices.
	used := make([]map[int]bool, c.NumQubits)
	for i := range used {
		used[i] = map[int]bool{}
	}

	for i, g := range c.Gates {
		qs := g.Qubits()
		floor := 0
		for _, q := range qs {
			st := &states[q]
			r := gateRole(g, q)
			if r == roleNone {
				continue
			}
			if st.groupRole == roleNone || r != st.groupRole || r == roleBarrier {
				// Close the previous group: new gate must come after it.
				newFloor := st.groupMax + 1
				if st.groupRole == roleNone {
					newFloor = st.groupFloor
				}
				st.groupRole = r
				st.groupFloor = newFloor
				st.groupMax = newFloor - 1
			}
			if st.groupFloor > floor {
				floor = st.groupFloor
			}
		}
		if g.TwoQubit() {
			// Find the earliest layer ≥ floor where neither qubit already
			// braids.
			l := floor
			for used[g.Q0][l] || used[g.Q1][l] {
				l++
			}
			layerOf[i] = l
			used[g.Q0][l] = true
			used[g.Q1][l] = true
		} else {
			layerOf[i] = floor
		}
		for _, q := range qs {
			st := &states[q]
			if gateRole(g, q) == roleNone {
				continue
			}
			if layerOf[i] > st.groupMax {
				st.groupMax = layerOf[i]
			}
		}
	}

	// Emit in (layer, original index) order.
	maxLayer := 0
	for _, l := range layerOf {
		if l > maxLayer {
			maxLayer = l
		}
	}
	buckets := make([][]int, maxLayer+1)
	for i, l := range layerOf {
		buckets[l] = append(buckets[l], i)
	}
	out := circuit.New(c.Name, c.NumQubits)
	for _, b := range buckets {
		for _, i := range b {
			out.Gates = append(out.Gates, c.Gates[i])
		}
	}
	// Greedy hoisting can occasionally block a later non-commuting gate
	// and deepen the circuit; the paper's QCO "explores multiple branches
	// to find the best option", which here reduces to keeping the rewrite
	// only when it does not lose to the original order.
	if Depth(out) > Depth(c) {
		return c.Clone()
	}
	return out
}

// Depth returns the commutation-unaware two-qubit ASAP depth of c, the
// quantity Optimize tries to shrink. Exposed for tests and ablations.
func Depth(c *circuit.Circuit) int {
	_, d := circuit.Layers(c)
	return d
}
