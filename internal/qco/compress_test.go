package qco

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/sim"
)

func TestCompressCancelsSelfInversePairs(t *testing.T) {
	c := circuit.New("cancel", 3)
	c.Add1(circuit.X, 0)
	c.Add1(circuit.X, 0)
	c.Add1(circuit.H, 1)
	c.Add1(circuit.H, 1)
	c.Add2(circuit.CX, 0, 2)
	c.Add2(circuit.CX, 0, 2)
	o := Compress(c)
	if o.Len() != 0 {
		t.Errorf("residual gates: %v", o.Gates)
	}
}

func TestCompressRespectsIntervening(t *testing.T) {
	c := circuit.New("blocked", 2)
	c.Add1(circuit.X, 0)
	c.Add1(circuit.H, 0) // blocks the X pair
	c.Add1(circuit.X, 0)
	o := Compress(c)
	if o.Len() != 3 {
		t.Errorf("gates removed across a blocker: %v", o.Gates)
	}
	// A gate on ANOTHER qubit does not block.
	d := circuit.New("free", 2)
	d.Add1(circuit.X, 0)
	d.Add1(circuit.H, 1)
	d.Add1(circuit.X, 0)
	od := Compress(d)
	if od.Len() != 1 || od.Gates[0].Kind != circuit.H {
		t.Errorf("pair across unrelated gate not cancelled: %v", od.Gates)
	}
}

func TestCompressCXRequiresSameOrientation(t *testing.T) {
	c := circuit.New("cxrev", 2)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 1, 0) // reversed: not an inverse pair
	o := Compress(c)
	if o.Len() != 2 {
		t.Errorf("reversed CX pair wrongly cancelled: %v", o.Gates)
	}
}

func TestCompressSymmetricTwoQubit(t *testing.T) {
	c := circuit.New("cz", 2)
	c.Add2(circuit.CZ, 0, 1)
	c.Add2(circuit.CZ, 1, 0) // CZ is symmetric: cancels
	o := Compress(c)
	if o.Len() != 0 {
		t.Errorf("symmetric CZ pair not cancelled: %v", o.Gates)
	}
	s := circuit.New("swap", 2)
	s.Add2(circuit.SWAP, 0, 1)
	s.Add2(circuit.SWAP, 1, 0)
	if got := Compress(s); got.Len() != 0 {
		t.Errorf("symmetric SWAP pair not cancelled: %v", got.Gates)
	}
}

func TestCompressMergesRotations(t *testing.T) {
	c := circuit.New("rz", 1)
	c.AddRot(circuit.RZ, 0, 0.3)
	c.AddRot(circuit.RZ, 0, 0.5)
	o := Compress(c)
	if o.Len() != 1 {
		t.Fatalf("gates = %v", o.Gates)
	}
	if math.Abs(o.Gates[0].Params[0]-0.8) > 1e-12 {
		t.Errorf("merged angle = %g", o.Gates[0].Params[0])
	}
	// Chain of three merges to one.
	d := circuit.New("rz3", 1)
	d.AddRot(circuit.RX, 0, 0.1)
	d.AddRot(circuit.RX, 0, 0.2)
	d.AddRot(circuit.RX, 0, 0.3)
	od := Compress(d)
	if od.Len() != 1 || math.Abs(od.Gates[0].Params[0]-0.6) > 1e-12 {
		t.Errorf("triple merge wrong: %v", od.Gates)
	}
}

func TestCompressDropsFullRotations(t *testing.T) {
	c := circuit.New("full", 1)
	c.AddRot(circuit.RZ, 0, 2*math.Pi)
	c.AddRot(circuit.RZ, 0, 2*math.Pi)
	o := Compress(c)
	if o.Len() != 0 {
		t.Errorf("4π rotation kept: %v", o.Gates)
	}
	// 2π alone is -I (global phase) and is conservatively kept.
	d := circuit.New("half", 1)
	d.AddRot(circuit.RZ, 0, math.Pi)
	d.AddRot(circuit.RZ, 0, math.Pi)
	od := Compress(d)
	if od.Len() != 1 {
		t.Errorf("2π rotation dropped: %v", od.Gates)
	}
}

func TestCompressPromotesPhases(t *testing.T) {
	c := circuit.New("tt", 1)
	c.Add1(circuit.T, 0)
	c.Add1(circuit.T, 0)
	o := Compress(c)
	if o.Len() != 1 || o.Gates[0].Kind != circuit.S {
		t.Errorf("T·T != S: %v", o.Gates)
	}
	// Four Ts collapse to Z (T·T→S twice, S·S→Z).
	d := circuit.New("tttt", 1)
	for i := 0; i < 4; i++ {
		d.Add1(circuit.T, 0)
	}
	od := Compress(d)
	if od.Len() != 1 || od.Gates[0].Kind != circuit.Z {
		t.Errorf("T^4 != Z: %v", od.Gates)
	}
	// Eight Ts collapse to nothing (Z·Z).
	e := circuit.New("t8", 1)
	for i := 0; i < 8; i++ {
		e.Add1(circuit.T, 0)
	}
	oe := Compress(e)
	if oe.Len() != 0 {
		t.Errorf("T^8 != I: %v", oe.Gates)
	}
}

func TestCompressInversePhasePairs(t *testing.T) {
	c := circuit.New("sdg", 1)
	c.Add1(circuit.S, 0)
	c.Add1(circuit.Sdg, 0)
	c.Add1(circuit.Tdg, 0)
	c.Add1(circuit.T, 0)
	if o := Compress(c); o.Len() != 0 {
		t.Errorf("inverse phases kept: %v", o.Gates)
	}
}

// Property: Compress preserves exact semantics and never grows the gate
// count.
func TestCompressSemanticsProperty(t *testing.T) {
	kinds := []circuit.Kind{circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		c := circuit.New("rand", n)
		for i := 0; i < 50; i++ {
			switch rng.Intn(5) {
			case 0, 1:
				c.Add1(kinds[rng.Intn(len(kinds))], rng.Intn(n))
			case 2:
				c.AddRot([]circuit.Kind{circuit.RX, circuit.RY, circuit.RZ}[rng.Intn(3)],
					rng.Intn(n), float64(rng.Intn(5))*math.Pi/4)
			default:
				if n < 2 {
					continue
				}
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				c.Add2([]circuit.Kind{circuit.CX, circuit.CZ}[rng.Intn(2)], a, b)
			}
		}
		o := Compress(c)
		if o.Len() > c.Len() {
			return false
		}
		eq, err := sim.Equivalent(c, o, 1e-9)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Compress is idempotent.
func TestCompressIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		c := circuit.New("rand", n)
		kinds := []circuit.Kind{circuit.X, circuit.H, circuit.T, circuit.S}
		for i := 0; i < 40; i++ {
			if rng.Intn(3) == 0 && n >= 2 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Add2(circuit.CX, a, b)
				}
				continue
			}
			c.Add1(kinds[rng.Intn(len(kinds))], rng.Intn(n))
		}
		once := Compress(c)
		twice := Compress(once)
		if once.Len() != twice.Len() {
			return false
		}
		for i := range once.Gates {
			if once.Gates[i] != twice.Gates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
