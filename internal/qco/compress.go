package qco

import (
	"math"

	"hilight/internal/circuit"
)

// Compress applies the §3.3 QCO gate-compression and cancellation rules
// until a fixpoint:
//
//   - adjacent self-inverse pairs cancel: X·X, Y·Y, Z·Z, H·H, CZ·CZ,
//     SWAP·SWAP, and CX·CX with identical control/target;
//   - adjacent inverse pairs cancel: S·S†, T·T†(either order);
//   - adjacent rotations of the same kind merge: RZ(a)·RZ(b) → RZ(a+b)
//     (likewise RX, RY, U1), and a merged angle of 0 (mod 2π) drops;
//   - adjacent phase pairs promote: S·S → Z, T·T → S, S†·S† → Z,
//     T†·T† → S†.
//
// "Adjacent" means no intervening gate touches any shared qubit; for
// two-qubit pairs both qubits must be free in between. Compress preserves
// circuit semantics exactly (no global-phase tricks are used) and returns
// a new circuit.
func Compress(c *circuit.Circuit) *circuit.Circuit {
	gates := append([]circuit.Gate(nil), c.Gates...)
	for {
		next, changed := compressOnce(gates, c.NumQubits)
		gates = next
		if !changed {
			break
		}
	}
	out := circuit.New(c.Name, c.NumQubits)
	out.Gates = gates
	return out
}

// compressOnce performs one left-to-right pass, applying the first
// applicable rule at each position.
func compressOnce(gates []circuit.Gate, numQubits int) ([]circuit.Gate, bool) {
	// nextOn[q] tracking is rebuilt per pass: for each gate, find the next
	// gate index sharing a qubit.
	alive := make([]bool, len(gates))
	for i := range alive {
		alive[i] = true
	}
	changed := false
	for i := 0; i < len(gates); i++ {
		if !alive[i] {
			continue
		}
		j, ok := nextAdjacent(gates, alive, i)
		if !ok {
			continue
		}
		a, b := gates[i], gates[j]
		switch {
		case cancels(a, b):
			alive[i], alive[j] = false, false
			changed = true
		case a.Kind == b.Kind && a.Q0 == b.Q0 && !a.TwoQubit() && isAxisRotation(a.Kind):
			sum := a.Params[0] + b.Params[0]
			alive[j] = false
			if zeroAngle(sum) {
				alive[i] = false
			} else {
				merged := a
				merged.Params[0] = sum
				gates[i] = merged
			}
			changed = true
		default:
			if promoted, okP := promote(a, b); okP {
				gates[i] = promoted
				alive[j] = false
				changed = true
			}
		}
	}
	if !changed {
		return gates, false
	}
	out := gates[:0:0]
	for i, g := range gates {
		if alive[i] {
			out = append(out, g)
		}
	}
	return out, true
}

// nextAdjacent finds the next alive gate j > i such that j is the very
// next alive gate on every qubit of gate i (no intervening gate touches
// any of them).
func nextAdjacent(gates []circuit.Gate, alive []bool, i int) (int, bool) {
	qs := gates[i].Qubits()
	for j := i + 1; j < len(gates); j++ {
		if !alive[j] {
			continue
		}
		shares := false
		for _, q := range qs {
			if gates[j].ActsOn(q) {
				shares = true
				break
			}
		}
		if !shares {
			continue
		}
		// j is the first alive gate sharing a qubit with i. Adjacent only
		// if j covers ALL of i's qubits or the rest of i's qubits have no
		// earlier successor — since j is the first sharing gate, any qubit
		// of i not in j is still untouched, so i and j are adjacent on
		// their common qubits. For cancellation of 2Q pairs we addition-
		// ally need identical operand sets, checked by the rules.
		return j, true
	}
	return 0, false
}

// cancels reports whether adjacent gates a and b compose to identity.
func cancels(a, b circuit.Gate) bool {
	sameOperands := a.Q0 == b.Q0 && a.Q1 == b.Q1
	switch a.Kind {
	case circuit.X, circuit.Y, circuit.Z, circuit.H:
		return b.Kind == a.Kind && sameOperands
	case circuit.CX:
		return b.Kind == circuit.CX && sameOperands
	case circuit.CZ, circuit.SWAP:
		if b.Kind != a.Kind {
			return false
		}
		return sameOperands || (a.Q0 == b.Q1 && a.Q1 == b.Q0) // symmetric gates
	case circuit.S:
		return b.Kind == circuit.Sdg && sameOperands
	case circuit.Sdg:
		return b.Kind == circuit.S && sameOperands
	case circuit.T:
		return b.Kind == circuit.Tdg && sameOperands
	case circuit.Tdg:
		return b.Kind == circuit.T && sameOperands
	}
	return false
}

// promote merges adjacent equal phase gates into the next gate up the
// ladder: T·T → S, T†·T† → S†, S·S → Z, S†·S† → Z.
func promote(a, b circuit.Gate) (circuit.Gate, bool) {
	if a.Kind != b.Kind || a.Q0 != b.Q0 || a.TwoQubit() {
		return circuit.Gate{}, false
	}
	switch a.Kind {
	case circuit.T:
		return circuit.NewGate1(circuit.S, a.Q0), true
	case circuit.Tdg:
		return circuit.NewGate1(circuit.Sdg, a.Q0), true
	case circuit.S, circuit.Sdg:
		return circuit.NewGate1(circuit.Z, a.Q0), true
	}
	return circuit.Gate{}, false
}

// isAxisRotation reports whether the kind merges by angle addition.
func isAxisRotation(k circuit.Kind) bool {
	switch k {
	case circuit.RX, circuit.RY, circuit.RZ, circuit.U1:
		return true
	}
	return false
}

// zeroAngle reports whether theta is 0 modulo 2π within float tolerance.
// RX/RY/RZ(2π) = −I (a pure global phase), which is unobservable, but we
// only drop exact multiples of 4π for rotations to keep the statevector
// oracle's exact-amplitude comparison happy; U1(2π) = I exactly.
func zeroAngle(theta float64) bool {
	const tol = 1e-12
	m := math.Mod(theta, 4*math.Pi)
	return math.Abs(m) < tol || math.Abs(m-4*math.Pi) < tol || math.Abs(m+4*math.Pi) < tol
}
