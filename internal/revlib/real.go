// Package revlib parses the RevLib ".real" reversible-circuit format —
// the native format of the paper's building-block benchmarks (4gt11_82,
// sqrt8_260, urf*, ...; Wille et al., ISMVL 2008). Supporting the real
// files lets users run the actual RevLib suite through the mapper instead
// of the calibrated synthetic stand-ins in internal/bench.
//
// Supported subset (what the benchmark corpus uses):
//
//	.version / .mode / comments (#)  — ignored
//	.numvars N                       — qubit count
//	.variables a b c ...             — variable names, in qubit order
//	.inputs / .outputs / .constants / .garbage — recorded but unused
//	.begin ... .end                  — the gate list
//	t1 a          — NOT (X) on a
//	t2 a b        — CNOT with control a, target b
//	tN c1 .. t    — Toffoli with N−1 controls, decomposed recursively
//	f2 a b        — swap (Fredkin family f3 = controlled swap)
//	f3 c a b      — controlled swap, decomposed to CX + Toffoli
//	v/v+ lines    — controlled-V gates, mapped to the CX skeleton
//
// Multi-control Toffolis (t3 and above) expand with the standard
// no-ancilla recursive construction into the 6-CX t3 network, exactly as
// the compilation flows the paper builds on do.
package revlib

import (
	"fmt"
	"strings"

	"hilight/internal/circuit"
)

// Parse reads .real source and returns the expanded circuit.
func Parse(name, src string) (*circuit.Circuit, error) {
	p := &parser{vars: map[string]int{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("revlib: line %d: %w", lineNo+1, err)
		}
	}
	if p.circ == nil {
		return nil, fmt.Errorf("revlib: missing .numvars declaration")
	}
	if !p.ended && p.begun {
		return nil, fmt.Errorf("revlib: missing .end")
	}
	p.circ.Name = name
	return p.circ, nil
}

type parser struct {
	circ  *circuit.Circuit
	vars  map[string]int
	begun bool
	ended bool
}

func (p *parser) line(line string) error {
	fields := strings.Fields(line)
	key := strings.ToLower(fields[0])
	switch {
	case key == ".version", key == ".mode", key == ".inputbus", key == ".outputbus":
		return nil
	case key == ".numvars":
		if len(fields) != 2 {
			return fmt.Errorf(".numvars wants one argument")
		}
		var n int
		if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n <= 0 {
			return fmt.Errorf("bad .numvars %q", fields[1])
		}
		p.circ = circuit.New("", n)
		return nil
	case key == ".variables":
		if p.circ == nil {
			return fmt.Errorf(".variables before .numvars")
		}
		if len(fields)-1 != p.circ.NumQubits {
			return fmt.Errorf(".variables lists %d names for %d qubits", len(fields)-1, p.circ.NumQubits)
		}
		for i, v := range fields[1:] {
			if _, dup := p.vars[v]; dup {
				return fmt.Errorf("variable %q repeated", v)
			}
			p.vars[v] = i
		}
		return nil
	case key == ".inputs", key == ".outputs", key == ".constants", key == ".garbage":
		return nil
	case key == ".begin":
		if p.circ == nil {
			return fmt.Errorf(".begin before .numvars")
		}
		p.begun = true
		return nil
	case key == ".end":
		p.ended = true
		return nil
	}
	if !p.begun || p.ended {
		return fmt.Errorf("gate %q outside .begin/.end", line)
	}
	return p.gate(fields)
}

// resolve maps a variable token to its qubit index.
func (p *parser) resolve(tok string) (int, error) {
	if q, ok := p.vars[tok]; ok {
		return q, nil
	}
	// Files without .variables use x0, x1, ... or bare indices.
	var q int
	if _, err := fmt.Sscanf(tok, "x%d", &q); err == nil && q >= 0 && q < p.circ.NumQubits {
		return q, nil
	}
	if _, err := fmt.Sscanf(tok, "%d", &q); err == nil && q >= 0 && q < p.circ.NumQubits {
		return q, nil
	}
	return 0, fmt.Errorf("unknown variable %q", tok)
}

func (p *parser) operands(toks []string) ([]int, error) {
	out := make([]int, len(toks))
	seen := map[int]bool{}
	for i, tok := range toks {
		q, err := p.resolve(tok)
		if err != nil {
			return nil, err
		}
		if seen[q] {
			return nil, fmt.Errorf("operand %q repeated", tok)
		}
		seen[q] = true
		out[i] = q
	}
	return out, nil
}

func (p *parser) gate(fields []string) error {
	kind := strings.ToLower(fields[0])
	ops, err := p.operands(fields[1:])
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(kind, "t"):
		var n int
		if _, err := fmt.Sscanf(kind, "t%d", &n); err != nil || n < 1 {
			return fmt.Errorf("bad gate %q", kind)
		}
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", kind, n, len(ops))
		}
		p.toffoli(ops[:n-1], ops[n-1])
		return nil
	case strings.HasPrefix(kind, "f"):
		var n int
		if _, err := fmt.Sscanf(kind, "f%d", &n); err != nil || n < 2 {
			return fmt.Errorf("bad gate %q", kind)
		}
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", kind, n, len(ops))
		}
		// fN: swap the last two lines under N−2 controls.
		a, b := ops[n-2], ops[n-1]
		controls := ops[:n-2]
		// CSWAP(c...; a,b) = CX(b,a) · Toffoli(c...,a; b) · CX(b,a).
		p.circ.Add2(circuit.CX, b, a)
		p.toffoli(append(append([]int{}, controls...), a), b)
		p.circ.Add2(circuit.CX, b, a)
		return nil
	case kind == "v", kind == "v+":
		// Controlled-V (square root of X): braiding sees its CX skeleton.
		if len(ops) != 2 {
			return fmt.Errorf("%s wants 2 operands", kind)
		}
		p.circ.Add2(circuit.CX, ops[0], ops[1])
		return nil
	}
	return fmt.Errorf("unsupported gate %q", fields[0])
}

// toffoli emits an n-control NOT. 0 controls = X, 1 = CX, 2 = the 6-CX
// Clifford+T network, n>2 = recursive no-ancilla expansion
// (C^nX = C^(n−1)X conjugated into two halves via t3 blocks).
func (p *parser) toffoli(controls []int, target int) {
	switch len(controls) {
	case 0:
		p.circ.Add1(circuit.X, target)
	case 1:
		p.circ.Add2(circuit.CX, controls[0], target)
	case 2:
		p.ccx(controls[0], controls[1], target)
	default:
		// Standard recursion without ancillas (Barenco et al. Lemma 7.5
		// shape, specialized): C^n X(c1..cn; t) =
		//   t3(c_{n}, t') ... — implemented as the textbook two-level
		// split using the last control as the pivot:
		//   C^{n}X = C^{n-1}X(c1..c_{n-1}; t) conjugated by
		//            t3(c_n, t-helpers) — avoided here; instead use the
		// V / V† construction:
		//   C^nX(c1..cn;t) = CV(cn,t) · C^{n-1}X(c1..c_{n-1};cn) ·
		//                    CV†(cn,t) · C^{n-1}X(c1..c_{n-1};cn) ·
		//                    C^{n-1}V(c1..c_{n-1};t)
		// For mapping purposes the braiding structure is what matters, so
		// controlled-V blocks contribute their CX skeletons.
		cn := controls[len(controls)-1]
		rest := controls[:len(controls)-1]
		p.circ.Add2(circuit.CX, cn, target) // CV skeleton
		p.toffoli(rest, cn)
		p.circ.Add2(circuit.CX, cn, target) // CV† skeleton
		p.toffoli(rest, cn)
		p.toffoli(rest, target) // C^{n-1}V skeleton
	}
}

// ccx emits the 6-CX Clifford+T Toffoli network.
func (p *parser) ccx(a, b, t int) {
	c := p.circ
	c.Add1(circuit.H, t)
	c.Add2(circuit.CX, b, t)
	c.Add1(circuit.Tdg, t)
	c.Add2(circuit.CX, a, t)
	c.Add1(circuit.T, t)
	c.Add2(circuit.CX, b, t)
	c.Add1(circuit.Tdg, t)
	c.Add2(circuit.CX, a, t)
	c.Add1(circuit.T, b)
	c.Add1(circuit.T, t)
	c.Add1(circuit.H, t)
	c.Add2(circuit.CX, a, b)
	c.Add1(circuit.T, a)
	c.Add1(circuit.Tdg, b)
	c.Add2(circuit.CX, a, b)
}
