package revlib

import (
	"os"
	"path/filepath"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sim"
)

func TestParseToyFile(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "toy3.real"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Parse("toy3", string(data))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// t1 -> X (1 gate), t2 -> CX (1), t3 -> 15-gate network, f2 -> 3 CX.
	if got := c.Len(); got != 1+1+15+3 {
		t.Errorf("gates = %d, want 20", got)
	}
}

func TestParseGateSemantics(t *testing.T) {
	// t1/t2/t3 compose to the expected reversible function; compare the
	// .real circuit against a hand-built equivalent on the statevector.
	src := `
.numvars 3
.variables a b c
.begin
t2 a c
t3 a b c
.end`
	got, err := Parse("sem", src)
	if err != nil {
		t.Fatal(err)
	}
	want := circuit.New("ref", 3)
	want.Add2(circuit.CX, 0, 2)
	// Same Toffoli network the parser emits.
	want.Append(toffoliRef(0, 1, 2)...)
	eq, err := sim.Equivalent(got, want, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("parsed circuit not equivalent to reference")
	}
}

func toffoliRef(a, b, tg int) []circuit.Gate {
	c := circuit.New("", tg+1)
	(&parser{circ: c}).ccx(a, b, tg)
	return c.Gates
}

func TestParseSwapExpansion(t *testing.T) {
	src := `
.numvars 2
.variables a b
.begin
f2 a b
.end`
	c, err := Parse("swap", src)
	if err != nil {
		t.Fatal(err)
	}
	want := circuit.New("ref", 2)
	want.Add2(circuit.SWAP, 0, 1)
	eq, err := sim.Equivalent(c, want.DecomposeSWAPs(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("f2 expansion wrong: %v", c.Gates)
	}
}

func TestParseMultiControlToffoli(t *testing.T) {
	src := `
.numvars 5
.variables a b c d e
.begin
t5 a b c d e
.end`
	c, err := Parse("t5", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CXCount() == 0 {
		t.Error("no CX structure emitted")
	}
	// The expansion must be mappable end to end.
	res, err := core.Run(c, grid.Rect(5), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestParseWithoutVariables(t *testing.T) {
	// Files may omit .variables; x0..xN and bare indices both resolve.
	src := `
.numvars 3
.begin
t2 x0 x2
t2 0 1
.end`
	c, err := Parse("anon", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Q1 != 2 || c.Gates[1].Q1 != 1 {
		t.Errorf("operand resolution wrong: %v", c.Gates)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                   // no numvars
		`.numvars 0`,                         // bad count
		`.numvars 2` + "\nt2 a b",            // gate outside .begin
		".numvars 2\n.variables a\n",         // variable count mismatch
		".numvars 2\n.variables a a\n",       // duplicate variable
		".numvars 2\n.begin\nt2 a a\n.end",   // repeated operand
		".numvars 2\n.begin\nt2 a z\n.end",   // unknown variable (no .variables)
		".numvars 2\n.begin\nq2 x0 x1\n.end", // unsupported gate
		".numvars 2\n.begin\nt3 x0 x1\n.end", // arity mismatch
		".numvars 2\n.begin\nt2 x0 x1",       // missing .end
		".variables a b",                     // variables before numvars
	}
	for i, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestParseCommentsAndDirectives(t *testing.T) {
	src := `
# full header
.version 2.0
.mode garbage
.numvars 2
.variables a b
.inputs a b
.outputs a b
.constants --
.garbage --
.begin
t2 a b # inline comment
.end`
	c, err := Parse("hdr", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || c.Gates[0].Kind != circuit.CX {
		t.Errorf("gates = %v", c.Gates)
	}
}
