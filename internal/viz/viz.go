// Package viz renders surface-code grids, layouts and braiding layers as
// ASCII diagrams — the debugging view for everything the mapper produces.
//
// A tile is drawn as a 4×2-character cell; routing vertices are the `+`
// corners and braiding paths overdraw the lattice edges between them.
// Example (one braid between tiles 0 and 5 of a 3×2 grid):
//
//	+***+---+---+
//	| 0 * 1 | 2 |
//	+---+***+---+
//	| 3 | 4 * 5 |
//	+---+---+***+
package viz

import (
	"fmt"
	"strings"

	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// canvas is a mutable character grid.
type canvas struct {
	w, h  int
	cells [][]byte
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h, cells: make([][]byte, h)}
	for i := range c.cells {
		c.cells[i] = []byte(strings.Repeat(" ", w))
	}
	return c
}

func (c *canvas) set(x, y int, ch byte) {
	if x >= 0 && x < c.w && y >= 0 && y < c.h {
		c.cells[y][x] = ch
	}
}

func (c *canvas) text(x, y int, s string) {
	for i := 0; i < len(s); i++ {
		c.set(x+i, y, s[i])
	}
}

func (c *canvas) String() string {
	var b strings.Builder
	for _, row := range c.cells {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// cellW is the character width of one tile cell (excluding its shared
// right border); cellH the height excluding the shared bottom border.
const (
	cellW = 4
	cellH = 2
)

// vertexPos returns the canvas position of routing vertex (vx, vy).
func vertexPos(vx, vy int) (x, y int) { return vx * cellW, vy * cellH }

// baseGrid draws the lattice: corners, channels, tile labels.
func baseGrid(g *grid.Grid, l *grid.Layout) *canvas {
	c := newCanvas(g.W*cellW+1, g.H*cellH+1)
	for vy := 0; vy <= g.H; vy++ {
		for vx := 0; vx <= g.W; vx++ {
			x, y := vertexPos(vx, vy)
			c.set(x, y, '+')
			if vx < g.W {
				for i := 1; i < cellW; i++ {
					c.set(x+i, y, '-')
				}
			}
			if vy < g.H {
				c.set(x, y+1, '|')
			}
		}
	}
	for t := 0; t < g.Tiles(); t++ {
		tx, ty := g.TileXY(t)
		x, y := vertexPos(tx, ty)
		label := " . "
		switch {
		case g.Reserved(t):
			label = "###"
		case l != nil && l.TileQubit[t] != -1:
			label = fmt.Sprintf("%3d", l.TileQubit[t])
		}
		c.text(x+1, y+1, label)
	}
	return c
}

// Layout renders the grid with each tile showing its program qubit
// (".” for empty, "###" for reserved/factory tiles).
func Layout(g *grid.Grid, l *grid.Layout) string {
	return baseGrid(g, l).String()
}

// pathGlyphs overdraws one braiding path using the given glyph for its
// vertices and channel midpoints.
func pathGlyphs(c *canvas, g *grid.Grid, p route.Path, glyph byte) {
	for i, v := range p {
		vx, vy := g.VertexXY(v)
		x, y := vertexPos(vx, vy)
		c.set(x, y, glyph)
		if i == 0 {
			continue
		}
		ux, uy := g.VertexXY(p[i-1])
		px, py := vertexPos(ux, uy)
		switch {
		case uy == vy: // horizontal channel
			lo := px
			if x < px {
				lo = x
			}
			for k := 1; k < cellW; k++ {
				c.set(lo+k, y, glyph)
			}
		default: // vertical channel
			lo := py
			if y < py {
				lo = y
			}
			c.set(x, lo+1, glyph)
		}
	}
}

// braidGlyph returns the glyph for braid index i within a layer.
func braidGlyph(i int) byte {
	const glyphs = "*abcdefghijklmnopqrstuvwxyz"
	return glyphs[i%len(glyphs)]
}

// Layer renders one braiding cycle over the layout: each braid's path is
// overdrawn with its own glyph ('*', then 'a', 'b', ...).
func Layer(g *grid.Grid, l *grid.Layout, layer sched.Layer) string {
	c := baseGrid(g, l)
	for i, b := range layer {
		pathGlyphs(c, g, b.Path, braidGlyph(i))
	}
	return c.String()
}

// Schedule renders every cycle of a schedule, replaying layout changes
// from inserted SWAP braids so each frame shows where qubits actually
// are. maxLayers bounds the output (≤0 means all layers).
func Schedule(s *sched.Schedule, maxLayers int) string {
	if maxLayers <= 0 || maxLayers > len(s.Layers) {
		maxLayers = len(s.Layers)
	}
	layout := s.Initial.Clone()
	var b strings.Builder
	for i := 0; i < maxLayers; i++ {
		fmt.Fprintf(&b, "cycle %d (%d braids):\n", i, len(s.Layers[i]))
		b.WriteString(Layer(s.Grid, layout, s.Layers[i]))
		for _, br := range s.Layers[i] {
			if br.Gate < 0 && br.SwapTiles {
				layout.Swap(br.CtlTile, br.TgtTile)
			}
		}
	}
	if maxLayers < len(s.Layers) {
		fmt.Fprintf(&b, "... %d more cycles\n", len(s.Layers)-maxLayers)
	}
	return b.String()
}
