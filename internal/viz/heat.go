package viz

import (
	"fmt"
	"strings"

	"hilight/internal/sched"
)

// heatGlyphs ramps from unused to hottest.
const heatGlyphs = " .:-=+*#%@"

// Heat renders a channel-usage heat map of the whole schedule: every
// routing channel is drawn with an intensity glyph proportional to how
// many cycles braids crossed it, and every routing vertex likewise. The
// map shows where the grid congests — the hot rows/columns placement and
// ordering exist to cool down.
func Heat(s *sched.Schedule) string {
	g := s.Grid
	vertexUse := make([]int, g.NumVertices())
	edgeUse := map[[2]int]int{} // canonical (min,max) vertex pair
	maxUse := 1
	for _, layer := range s.Layers {
		for _, b := range layer {
			for i, v := range b.Path {
				vertexUse[v]++
				if vertexUse[v] > maxUse {
					maxUse = vertexUse[v]
				}
				if i == 0 {
					continue
				}
				u := b.Path[i-1]
				key := [2]int{u, v}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				edgeUse[key]++
				if edgeUse[key] > maxUse {
					maxUse = edgeUse[key]
				}
			}
		}
	}
	glyph := func(use int) byte {
		if use == 0 {
			return heatGlyphs[0]
		}
		idx := 1 + use*(len(heatGlyphs)-2)/maxUse
		if idx >= len(heatGlyphs) {
			idx = len(heatGlyphs) - 1
		}
		return heatGlyphs[idx]
	}

	c := newCanvas(g.W*cellW+1, g.H*cellH+1)
	for vy := 0; vy <= g.H; vy++ {
		for vx := 0; vx <= g.W; vx++ {
			v := g.VertexID(vx, vy)
			x, y := vertexPos(vx, vy)
			c.set(x, y, glyph(vertexUse[v]))
			if vx < g.W {
				u := g.VertexID(vx+1, vy)
				key := [2]int{v, u}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				gl := glyph(edgeUse[key])
				for i := 1; i < cellW; i++ {
					c.set(x+i, y, gl)
				}
			}
			if vy < g.H {
				u := g.VertexID(vx, vy+1)
				key := [2]int{v, u}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				c.set(x, y+1, glyph(edgeUse[key]))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "channel heat over %d cycles (max use %d):\n", s.Latency(), maxUse)
	b.WriteString(c.String())
	fmt.Fprintf(&b, "scale: '%s' = idle ... '%c' = %d uses\n",
		string(heatGlyphs[0]), heatGlyphs[len(heatGlyphs)-1], maxUse)
	return b.String()
}
