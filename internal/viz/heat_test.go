package viz

import (
	"strings"
	"testing"

	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

func TestHeatRendersUsage(t *testing.T) {
	c := bench.BV(10)
	g := grid.Rect(10)
	res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := Heat(res.Schedule)
	if !strings.Contains(out, "channel heat") || !strings.Contains(out, "scale:") {
		t.Errorf("header/scale missing:\n%s", out)
	}
	// BV's star pattern reuses the hub's corners: the hottest glyph must
	// appear somewhere.
	if !strings.Contains(out, string(heatGlyphs[len(heatGlyphs)-1])) {
		t.Errorf("no hot spot rendered:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	wantWidth := g.W*cellW + 1
	for _, line := range lines[1 : 1+g.H*cellH+1] {
		if len(line) != wantWidth {
			t.Fatalf("canvas line width %d, want %d:\n%s", len(line), wantWidth, out)
		}
	}
}

func TestHeatEmptySchedule(t *testing.T) {
	g := grid.New(2, 2)
	l := grid.NewLayout(0, g)
	s := &sched.Schedule{Grid: g, Initial: l}
	out := Heat(s)
	lines := strings.Split(out, "\n")
	canvas := strings.Join(lines[1:1+g.H*cellH+1], "\n")
	if strings.ContainsAny(canvas, "@%#.:-=+*") {
		t.Errorf("idle grid rendered hot:\n%s", out)
	}
}

func TestHeatCountsRepeatedUse(t *testing.T) {
	g := grid.New(2, 1)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	shared := g.VertexID(1, 0)
	var layers []sched.Layer
	for i := 0; i < 5; i++ {
		layers = append(layers, sched.Layer{{Gate: i, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}}})
	}
	s := &sched.Schedule{Grid: g, Initial: l, Layers: layers}
	out := Heat(s)
	if !strings.Contains(out, "max use 5") {
		t.Errorf("max use wrong:\n%s", out)
	}
}
