package viz

import (
	"strings"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

func TestLayoutRendering(t *testing.T) {
	g := grid.New(3, 2)
	l := grid.NewLayout(3, g)
	l.Assign(0, 0, g)
	l.Assign(1, 4, g)
	l.Assign(2, 5, g)
	out := Layout(g, l)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2*2+1 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	wantWidth := 3*4 + 1
	for i, line := range lines {
		if len(line) != wantWidth {
			t.Errorf("line %d width = %d, want %d", i, len(line), wantWidth)
		}
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Errorf("qubit labels missing:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("empty tile marker missing:\n%s", out)
	}
}

func TestLayoutShowsReserved(t *testing.T) {
	g := grid.New(2, 2)
	g.ReserveTile(3)
	l := grid.NewLayout(1, g)
	l.Assign(0, 0, g)
	out := Layout(g, l)
	if !strings.Contains(out, "###") {
		t.Errorf("reserved tile marker missing:\n%s", out)
	}
}

func TestLayerOverdrawsPath(t *testing.T) {
	g := grid.New(3, 2)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 5, g)
	// A braid along the top: vertices (1,0)->(2,0)->(3,0)->(3,1).
	p := route.Path{g.VertexID(1, 0), g.VertexID(2, 0), g.VertexID(3, 0), g.VertexID(3, 1)}
	layer := sched.Layer{{Gate: 0, CtlTile: 0, TgtTile: 5, Path: p}}
	out := Layer(g, l, layer)
	if strings.Count(out, "*") < len(p) {
		t.Errorf("path glyphs missing:\n%s", out)
	}
}

func TestLayerDistinctGlyphsPerBraid(t *testing.T) {
	g := grid.New(2, 2)
	l := grid.NewLayout(4, g)
	for q := 0; q < 4; q++ {
		l.Assign(q, q, g)
	}
	layer := sched.Layer{
		{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}},
		{Gate: 1, CtlTile: 2, TgtTile: 3, Path: route.Path{g.VertexID(1, 2)}},
	}
	out := Layer(g, l, layer)
	if !strings.Contains(out, "*") || !strings.Contains(out, "a") {
		t.Errorf("braids not distinguished:\n%s", out)
	}
}

func TestScheduleRendersEndToEnd(t *testing.T) {
	c := circuit.New("viz", 6)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 2, 3)
	c.Add2(circuit.CX, 4, 5)
	g := grid.Rect(6)
	res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := Schedule(res.Schedule, 0)
	if !strings.Contains(out, "cycle 0") {
		t.Errorf("missing cycle header:\n%s", out)
	}
	// Truncation note appears when capped.
	if res.Latency > 1 {
		capped := Schedule(res.Schedule, 1)
		if !strings.Contains(capped, "more cycles") {
			t.Errorf("truncation note missing:\n%s", capped)
		}
	}
}

func TestScheduleReplaysSwaps(t *testing.T) {
	g := grid.New(2, 1)
	c := circuit.New("swap", 2)
	c.Add2(circuit.CX, 0, 1)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	shared := g.VertexID(1, 0)
	s := &sched.Schedule{Grid: g, Initial: l, Layers: []sched.Layer{
		{{Gate: -1, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}}},
		{{Gate: -1, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}}},
		{{Gate: -1, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}, SwapTiles: true}},
		{{Gate: 0, CtlTile: 1, TgtTile: 0, Path: route.Path{shared}}},
	}}
	if err := s.Validate(c); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	out := Schedule(s, 0)
	// After the swap, cycle 3's frame must show qubit 0 on tile 1 (the
	// right cell) — i.e. the last frame differs from the first.
	frames := strings.Split(out, "cycle ")
	if len(frames) < 5 {
		t.Fatalf("expected 4 frames:\n%s", out)
	}
	if frames[1] == frames[4] {
		t.Error("layout did not change after swap braid")
	}
}
