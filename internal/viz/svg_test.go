package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sched"
)

func compileFixture(t *testing.T) *core.Result {
	t.Helper()
	c := bench.QFT(9)
	res, err := core.Run(c, grid.Rect(9), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSVGIsWellFormedXML(t *testing.T) {
	res := compileFixture(t)
	out := SVG(res.Schedule, 3)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("missing svg element")
	}
	if !strings.Contains(out, "polyline") && !strings.Contains(out, "circle") {
		t.Error("no braid geometry rendered")
	}
	if strings.Count(out, "cycle ") != 3 {
		t.Errorf("frame count wrong:\n%s", out[:200])
	}
}

func TestSVGHandlesFactoryAndEmpty(t *testing.T) {
	g := grid.New(2, 2)
	g.ReserveTile(3)
	l := grid.NewLayout(1, g)
	l.Assign(0, 0, g)
	s := &sched.Schedule{Grid: g, Initial: l}
	out := SVG(s, 0)
	if !strings.Contains(out, "MSF") {
		t.Error("factory tile not marked")
	}
	if !strings.Contains(out, "initial layout") {
		t.Error("empty schedule missing caption")
	}
	if !strings.Contains(out, "q0") {
		t.Error("qubit label missing")
	}
}

func TestSVGAllLayersDefault(t *testing.T) {
	res := compileFixture(t)
	out := SVG(res.Schedule, 0)
	if got := strings.Count(out, "cycle "); got != res.Latency {
		t.Errorf("frames = %d, want %d", got, res.Latency)
	}
}
