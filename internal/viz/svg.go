package viz

import (
	"fmt"
	"strings"

	"hilight/internal/grid"
	"hilight/internal/sched"
)

// SVG rendering constants: tile edge length and frame padding in user
// units, and the palette braids cycle through.
const (
	svgTile = 48
	svgPad  = 16
)

var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#17becf", "#e377c2", "#8c564b", "#bcbd22", "#7f7f7f",
}

// SVG renders up to maxLayers braiding cycles as a single standalone SVG
// document: one frame per cycle laid out vertically, tiles as squares
// with qubit labels, braiding paths as colored polylines along the
// routing lattice, factory tiles hatched. maxLayers ≤ 0 renders all.
func SVG(s *sched.Schedule, maxLayers int) string {
	g := s.Grid
	if maxLayers <= 0 || maxLayers > len(s.Layers) {
		maxLayers = len(s.Layers)
	}
	frameW := g.W*svgTile + 2*svgPad
	frameH := g.H*svgTile + 2*svgPad + 18 // caption strip
	totalW := frameW
	totalH := frameH * maxInt(maxLayers, 1)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		totalW, totalH, totalW, totalH)
	b.WriteString(`<style>text{font-family:monospace;font-size:11px}.cap{font-size:12px;font-weight:bold}</style>` + "\n")

	layout := s.Initial.Clone()
	frames := maxLayers
	if frames == 0 {
		frames = 1
	}
	for f := 0; f < frames; f++ {
		oy := f * frameH
		fmt.Fprintf(&b, `<g transform="translate(0,%d)">`+"\n", oy)
		if len(s.Layers) > 0 {
			fmt.Fprintf(&b, `<text class="cap" x="%d" y="13">cycle %d (%d braids)</text>`+"\n",
				svgPad, f, len(s.Layers[f]))
		} else {
			fmt.Fprintf(&b, `<text class="cap" x="%d" y="13">initial layout</text>`+"\n", svgPad)
		}
		// Tiles.
		for t := 0; t < g.Tiles(); t++ {
			tx, ty := g.TileXY(t)
			x := svgPad + tx*svgTile
			y := svgPad + 18 + ty*svgTile
			fill := "#f8f8f8"
			if g.Reserved(t) {
				fill = "#dddddd"
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#999"/>`+"\n",
				x, y, svgTile, svgTile, fill)
			switch {
			case g.Reserved(t):
				fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#666">MSF</text>`+"\n",
					x+svgTile/2, y+svgTile/2+4)
			case layout.TileQubit[t] != -1:
				fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">q%d</text>`+"\n",
					x+svgTile/2, y+svgTile/2+4, layout.TileQubit[t])
			}
		}
		// Braids of this cycle.
		if f < len(s.Layers) {
			for bi, br := range s.Layers[f] {
				color := svgPalette[bi%len(svgPalette)]
				b.WriteString(svgPath(g, br, color))
			}
			// Apply SWAP layout changes for the next frame.
			for _, br := range s.Layers[f] {
				if br.Gate < 0 && br.SwapTiles {
					layout.Swap(br.CtlTile, br.TgtTile)
				}
			}
		}
		b.WriteString("</g>\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// svgPath renders one braid as a polyline over the routing lattice with
// dot markers at its endpoints.
func svgPath(g *grid.Grid, br sched.Braid, color string) string {
	var pts []string
	for _, v := range br.Path {
		vx, vy := g.VertexXY(v)
		pts = append(pts, fmt.Sprintf("%d,%d", svgPad+vx*svgTile, svgPad+18+vy*svgTile))
	}
	var b strings.Builder
	if len(pts) > 1 {
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="3" stroke-linecap="round"/>`+"\n",
			strings.Join(pts, " "), color)
	}
	// Endpoint markers (single-vertex braids get one dot).
	first := br.Path[0]
	last := br.Path[len(br.Path)-1]
	for _, v := range []int{first, last} {
		vx, vy := g.VertexXY(v)
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n",
			svgPad+vx*svgTile, svgPad+18+vy*svgTile, color)
		if first == last {
			break
		}
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
