package session

import (
	"errors"
	"math/rand"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
)

func qft(n int) *circuit.Circuit {
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		c.Add1(circuit.H, i)
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	return c
}

func TestApplyEdits(t *testing.T) {
	base := circuit.New("base", 3)
	base.Add2(circuit.CX, 0, 1)
	base.Add2(circuit.CX, 1, 2)

	t.Run("append", func(t *testing.T) {
		out, err := ApplyEdits(base, []Edit{{Op: OpAppend, Gate: circuit.NewGate2(circuit.CX, 0, 2)}})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Gates) != 3 || out.Gates[2] != circuit.NewGate2(circuit.CX, 0, 2) {
			t.Fatalf("append produced %v", out.Gates)
		}
		if len(base.Gates) != 2 {
			t.Fatal("input circuit mutated")
		}
	})
	t.Run("insert", func(t *testing.T) {
		out, err := ApplyEdits(base, []Edit{{Op: OpInsert, Index: 1, Gate: circuit.NewGate1(circuit.H, 0)}})
		if err != nil {
			t.Fatal(err)
		}
		want := []circuit.Gate{base.Gates[0], circuit.NewGate1(circuit.H, 0), base.Gates[1]}
		for i, g := range want {
			if out.Gates[i] != g {
				t.Fatalf("gate %d = %v, want %v", i, out.Gates[i], g)
			}
		}
	})
	t.Run("remove", func(t *testing.T) {
		out, err := ApplyEdits(base, []Edit{{Op: OpRemove, Index: 0}})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Gates) != 1 || out.Gates[0] != base.Gates[1] {
			t.Fatalf("remove produced %v", out.Gates)
		}
	})
	t.Run("replace", func(t *testing.T) {
		out, err := ApplyEdits(base, []Edit{{Op: OpReplace, Index: 1, Gate: circuit.NewGate2(circuit.CZ, 0, 2)}})
		if err != nil {
			t.Fatal(err)
		}
		if out.Gates[1] != circuit.NewGate2(circuit.CZ, 0, 2) {
			t.Fatalf("replace produced %v", out.Gates)
		}
	})
	t.Run("errors", func(t *testing.T) {
		cases := [][]Edit{
			{{Op: OpInsert, Index: 5, Gate: circuit.NewGate1(circuit.H, 0)}},
			{{Op: OpRemove, Index: -1}},
			{{Op: OpReplace, Index: 2, Gate: circuit.NewGate1(circuit.H, 0)}},
			{{Op: Op("mangle")}},
			{{Op: OpAppend, Gate: circuit.NewGate2(circuit.CX, 0, 9)}}, // out-of-range qubit
		}
		for i, edits := range cases {
			if _, err := ApplyEdits(base, edits); err == nil {
				t.Errorf("case %d: edits %v accepted, want error", i, edits)
			}
		}
	})
}

func TestCommonPrefixGates(t *testing.T) {
	a := qft(5)
	b := a.Clone()
	if got := CommonPrefixGates(a, b); got != len(a.Gates) {
		t.Fatalf("identical circuits: prefix %d, want %d", got, len(a.Gates))
	}
	b.Gates[7] = circuit.NewGate2(circuit.CZ, 0, 4)
	if got := CommonPrefixGates(a, b); got != 7 {
		t.Fatalf("divergence at 7: prefix %d", got)
	}
	w := circuit.New("wide", a.NumQubits+1)
	if got := CommonPrefixGates(a, w); got != 0 {
		t.Fatalf("width change: prefix %d, want 0", got)
	}
}

// compile is a minimal cold compile through the core pipeline for plan
// tests (the public package depends on this one, so tests drive core
// directly).
func compile(t *testing.T, c *circuit.Circuit, g *grid.Grid) *core.Result {
	t.Helper()
	res, err := core.Run(c, g, core.MustMethod("hilight"), core.RunOptions{
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	return res
}

func TestPlanPrefixAppendReplaysEverything(t *testing.T) {
	c := qft(8)
	g := grid.Rect(c.NumQubits)
	parent := compile(t, c, g)

	// An append touches nothing before the end: the whole parent
	// schedule must be replayable.
	edited, err := ApplyEdits(c, []Edit{{Op: OpAppend, Gate: circuit.NewGate2(circuit.CX, 0, 7)}})
	if err != nil {
		t.Fatal(err)
	}
	p := CommonPrefixGates(WorkingCircuit(c, true), WorkingCircuit(edited, true))
	plan := PlanPrefix(parent.Schedule, p, g)
	if plan.PrefixLen != len(parent.Schedule.Layers) {
		t.Fatalf("append: prefix %d layers, want all %d", plan.PrefixLen, len(parent.Schedule.Layers))
	}

	// Warm-run the edited circuit and check the replay really is
	// byte-identical layer by layer.
	res, err := core.Run(edited, g, core.MustMethod("hilight"), core.RunOptions{
		Rng:  rand.New(rand.NewSource(1)),
		Warm: &core.WarmStart{Initial: plan.Initial, Prefix: plan.Prefix},
	})
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if res.WarmCycles != plan.PrefixLen {
		t.Fatalf("WarmCycles = %d, want %d", res.WarmCycles, plan.PrefixLen)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("warm schedule invalid: %v", err)
	}
	for li := 0; li < plan.PrefixLen; li++ {
		a, b := parent.Schedule.Layers[li], res.Schedule.Layers[li]
		if len(a) != len(b) {
			t.Fatalf("layer %d: %d braids vs %d", li, len(a), len(b))
		}
		for bi := range a {
			if a[bi].Gate != b[bi].Gate || a[bi].CtlTile != b[bi].CtlTile || a[bi].TgtTile != b[bi].TgtTile {
				t.Fatalf("layer %d braid %d diverged: %+v vs %+v", li, bi, a[bi], b[bi])
			}
			if len(a[bi].Path) != len(b[bi].Path) {
				t.Fatalf("layer %d braid %d path length diverged", li, bi)
			}
			for pi := range a[bi].Path {
				if a[bi].Path[pi] != b[bi].Path[pi] {
					t.Fatalf("layer %d braid %d path diverged at %d", li, bi, pi)
				}
			}
		}
	}
}

func TestPlanPrefixDefectDeltaStopsAtConflict(t *testing.T) {
	c := qft(8)
	g := grid.Rect(c.NumQubits)
	parent := compile(t, c, g)

	// Kill the vertex the very first braid routes through: no layer
	// containing that path may replay.
	firstPath := parent.Schedule.Layers[0][0].Path
	dm := &grid.DefectMap{Vertices: []int{firstPath[len(firstPath)/2]}}
	dg := g.Clone()
	if err := dg.ApplyDefects(dm); err != nil {
		t.Fatal(err)
	}
	p := len(WorkingCircuit(c, true).Gates)
	plan := PlanPrefix(parent.Schedule, p, dg)
	if plan.PrefixLen != 0 {
		t.Fatalf("defect on layer 0 path: prefix %d, want 0", plan.PrefixLen)
	}

	// A defect nothing routes through leaves the full schedule
	// replayable (pick a tile no braid touches, if one exists).
	used := map[int]bool{}
	for _, l := range parent.Schedule.Layers {
		for _, b := range l {
			used[b.CtlTile] = true
			used[b.TgtTile] = true
		}
	}
	free := -1
	for ti := 0; ti < g.Tiles(); ti++ {
		if !used[ti] && g.Usable(ti) {
			free = ti
			break
		}
	}
	if free >= 0 {
		dg2 := g.Clone()
		if err := dg2.ApplyDefects(&grid.DefectMap{Tiles: []int{free}}); err != nil {
			t.Fatal(err)
		}
		plan2 := PlanPrefix(parent.Schedule, p, dg2)
		// Paths may still cross the free tile's corners; the plan just
		// must not be trivially empty because of an unrelated defect.
		if plan2.PrefixLen == 0 && parent.Schedule.Initial.Validate(dg2) == nil {
			ok := false
			for _, b := range parent.Schedule.Layers[0] {
				if b.Path.Validate(dg2) != nil {
					ok = true
				}
			}
			if !ok {
				t.Fatal("unrelated defect emptied the plan")
			}
		}
	}
}

func TestWarmStartMismatchFallsOut(t *testing.T) {
	c := qft(6)
	g := grid.Rect(c.NumQubits)
	parent := compile(t, c, g)

	// Hand the router a prefix that references gates beyond the edited
	// circuit's end: it must fail with ErrWarmStart, not emit a broken
	// schedule.
	edited := c.Clone()
	edited.Gates = edited.Gates[:1]
	bad := &core.WarmStart{Initial: parent.Schedule.Initial, Prefix: parent.Schedule.Layers}
	_, err := core.Run(edited, g, core.MustMethod("hilight"), core.RunOptions{
		Rng:  rand.New(rand.NewSource(1)),
		Warm: bad,
	})
	if !errors.Is(err, core.ErrWarmStart) {
		t.Fatalf("divergent prefix: err = %v, want ErrWarmStart", err)
	}
}
