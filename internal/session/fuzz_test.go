package session

import (
	"math/rand"
	"sync"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sched"
)

// fuzzParent caches one cold compile shared by every fuzz execution —
// the corpus mutates deltas, not the parent.
var fuzzParent struct {
	once sync.Once
	c    *circuit.Circuit
	g    *grid.Grid
	res  *core.Result
}

func fuzzSetup(f *testing.F) (*circuit.Circuit, *grid.Grid, *core.Result) {
	fuzzParent.once.Do(func() {
		c := qft(6)
		g := grid.Rect(c.NumQubits)
		res, err := core.Run(c, g, core.MustMethod("hilight"), core.RunOptions{
			Rng: rand.New(rand.NewSource(1)),
		})
		if err != nil {
			f.Fatalf("fuzz parent compile: %v", err)
		}
		fuzzParent.c, fuzzParent.g, fuzzParent.res = c, g, res
	})
	return fuzzParent.c, fuzzParent.g, fuzzParent.res
}

// decodeEdits turns fuzz bytes into an edit list: 5 bytes per edit
// (op, index lo/hi, kind, operand byte). Hostile on purpose — indices
// and kinds are unclamped, so invalid edits exercise the error paths.
func decodeEdits(data []byte) []Edit {
	var edits []Edit
	for len(data) >= 5 && len(edits) < 16 {
		op := []Op{OpAppend, OpInsert, OpRemove, OpReplace, Op("bogus")}[int(data[0])%5]
		idx := int(int16(uint16(data[1]) | uint16(data[2])<<8))
		kind := circuit.Kind(data[3])
		q0 := int(data[4]) % 8
		q1 := (q0 + 1 + int(data[4])>>3) % 8
		edits = append(edits, Edit{Op: op, Index: idx, Gate: circuit.Gate{Kind: kind, Q0: q0, Q1: q1}})
		data = data[5:]
	}
	return edits
}

// FuzzDelta throws hostile delta inputs at the whole session path:
// edits are applied (or rejected), the plan is computed, and when a
// warm start is possible the pipeline must either fail cleanly or
// produce a schedule that fully validates — an invalid schedule is the
// one outcome that must never happen.
func FuzzDelta(f *testing.F) {
	f.Add([]byte{0, 0, 0, 9, 3})                 // append CX
	f.Add([]byte{1, 2, 0, 9, 5, 2, 1, 0, 0, 0})  // insert + remove
	f.Add([]byte{3, 255, 255, 200, 7})           // replace at -1 with bogus kind
	f.Add([]byte{4, 0, 0, 0, 0})                 // unknown op
	f.Add([]byte{2, 0, 0, 0, 0, 2, 0, 0, 0, 0})  // remove head twice

	c, g, parent := fuzzSetup(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		edits := decodeEdits(data)
		edited, err := ApplyEdits(c, edits)
		if err != nil {
			return // rejected deltas are fine; panics are not
		}
		if err := edited.Validate(); err != nil {
			t.Fatalf("ApplyEdits accepted an invalid circuit: %v", err)
		}
		p := CommonPrefixGates(WorkingCircuit(c, true), WorkingCircuit(edited, true))
		plan := PlanPrefix(parent.Schedule, p, g)
		if plan.PrefixLen > len(parent.Schedule.Layers) {
			t.Fatalf("plan prefix %d exceeds parent layers %d", plan.PrefixLen, len(parent.Schedule.Layers))
		}
		if plan.PrefixLen == 0 {
			return
		}
		res, err := core.Run(edited, g, core.MustMethod("hilight"), core.RunOptions{
			Rng:  rand.New(rand.NewSource(1)),
			Warm: &core.WarmStart{Initial: plan.Initial, Prefix: plan.Prefix},
		})
		if err != nil {
			return // a clean warm failure degrades to cold in the public API
		}
		if err := res.Schedule.Validate(res.Circuit); err != nil {
			t.Fatalf("warm schedule invalid after edits %v: %v", edits, err)
		}
		if res.WarmCycles != plan.PrefixLen {
			t.Fatalf("WarmCycles %d != plan %d", res.WarmCycles, plan.PrefixLen)
		}
		checkPrefixIdentical(t, parent.Schedule, res.Schedule, plan.PrefixLen)
	})
}

// checkPrefixIdentical asserts the first n layers of b equal a's.
func checkPrefixIdentical(t *testing.T, a, b *sched.Schedule, n int) {
	t.Helper()
	for li := 0; li < n; li++ {
		la, lb := a.Layers[li], b.Layers[li]
		if len(la) != len(lb) {
			t.Fatalf("prefix layer %d: %d braids vs %d", li, len(la), len(lb))
		}
		for bi := range la {
			if la[bi].Gate != lb[bi].Gate || la[bi].CtlTile != lb[bi].CtlTile ||
				la[bi].TgtTile != lb[bi].TgtTile || la[bi].SwapTiles != lb[bi].SwapTiles {
				t.Fatalf("prefix layer %d braid %d diverged", li, bi)
			}
			if len(la[bi].Path) != len(lb[bi].Path) {
				t.Fatalf("prefix layer %d braid %d path diverged", li, bi)
			}
			for pi := range la[bi].Path {
				if la[bi].Path[pi] != lb[bi].Path[pi] {
					t.Fatalf("prefix layer %d braid %d path vertex %d diverged", li, bi, pi)
				}
			}
		}
	}
}
