// Package session is the incremental-recompilation engine behind the
// public hilight.Recompile: it turns a (previous result, delta) pair
// into a warm-start plan the core pipeline can replay.
//
// The model: a Delta is either a circuit edit (append / insert / remove
// / replace of gates, applied to the parent's input circuit) or a
// DefectMap change (a full replacement map applied to the parent's
// pristine grid). Both reduce to the same question — how much of the
// parent's schedule is still exactly right? The answer has two parts:
//
//  1. The gate prefix. Schedules validate against the working circuit
//     (input after SWAP decomposition and QCO), so the engine rebuilds
//     both working circuits deterministically and takes their longest
//     common gate prefix P. Every braid for a gate with index < P is
//     routing work the edit cannot have changed.
//  2. The layer prefix. The replayable schedule prefix is the longest
//     run of whole layers whose braids all execute gates below P, carry
//     no inserted SWAPs (SWAPs move the layout, invalidating later
//     tiles), and whose paths still avoid the current defect map. The
//     run stops at the first layer violating any of these — layers are
//     atomic, since a half-replayed cycle would change the deferral
//     pattern of everything after it.
//
// The plan is handed to core.RunOptions.Warm; the router re-verifies
// every braid as it replays (defense in depth — a stale or hostile plan
// degrades to a cold compile, never to an invalid schedule).
package session

import (
	"fmt"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/qco"
	"hilight/internal/sched"
)

// Op enumerates circuit-edit operations.
type Op string

// The edit operations a Delta may carry. Append ignores Index; the
// others address a gate position in the parent's input circuit.
const (
	OpAppend  Op = "append"
	OpInsert  Op = "insert"
	OpRemove  Op = "remove"
	OpReplace Op = "replace"
)

// Edit is one circuit edit: an operation, the gate position it applies
// to (in the circuit as it stands after the preceding edits of the same
// Delta), and the gate payload for append/insert/replace.
type Edit struct {
	Op    Op           `json:"op"`
	Index int          `json:"index,omitempty"`
	Gate  circuit.Gate `json:"gate"`
}

// ApplyEdits returns a copy of c with the edits applied in order. The
// input circuit is never mutated. Out-of-range indices, unknown ops and
// edits that leave the circuit structurally invalid fail with an error.
func ApplyEdits(c *circuit.Circuit, edits []Edit) (*circuit.Circuit, error) {
	if c == nil {
		return nil, fmt.Errorf("session: nil circuit")
	}
	out := c.Clone()
	appendOnly := true
	for i, e := range edits {
		switch e.Op {
		case OpAppend:
			out.Gates = append(out.Gates, e.Gate)
		case OpInsert:
			appendOnly = false
			if e.Index < 0 || e.Index > len(out.Gates) {
				return nil, fmt.Errorf("session: edit %d: insert index %d out of range [0,%d]", i, e.Index, len(out.Gates))
			}
			out.Gates = append(out.Gates, circuit.Gate{})
			copy(out.Gates[e.Index+1:], out.Gates[e.Index:])
			out.Gates[e.Index] = e.Gate
		case OpRemove:
			appendOnly = false
			if e.Index < 0 || e.Index >= len(out.Gates) {
				return nil, fmt.Errorf("session: edit %d: remove index %d out of range [0,%d)", i, e.Index, len(out.Gates))
			}
			out.Gates = append(out.Gates[:e.Index], out.Gates[e.Index+1:]...)
		case OpReplace:
			appendOnly = false
			if e.Index < 0 || e.Index >= len(out.Gates) {
				return nil, fmt.Errorf("session: edit %d: replace index %d out of range [0,%d)", i, e.Index, len(out.Gates))
			}
			out.Gates[e.Index] = e.Gate
		default:
			return nil, fmt.Errorf("session: edit %d: unknown op %q", i, e.Op)
		}
	}
	if appendOnly {
		// Append-only deltas — the session hot path — only need the new
		// gates checked: the parent prefix was validated when the parent
		// compiled, and re-walking it would cost O(circuit) per edit.
		probe := circuit.New(out.Name, out.NumQubits)
		probe.Gates = out.Gates[len(c.Gates):]
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("session: appended gates invalid: %w", err)
		}
		return out, nil
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("session: edited circuit invalid: %w", err)
	}
	return out, nil
}

// WorkingCircuit rebuilds the circuit the router actually schedules:
// the input after SWAP decomposition and, when the method enables it,
// the program-level QCO rewrite. Both transforms are deterministic, so
// the parent's working circuit can be reconstructed from its input
// circuit alone — which is what lets the service warm-start from a
// cached QASM string instead of persisting the rewritten gate list.
func WorkingCircuit(c *circuit.Circuit, qcoOn bool) *circuit.Circuit {
	w := c.DecomposeSWAPs()
	if qcoOn {
		w = qco.Optimize(w)
	}
	return w
}

// AppendWorking extends a parent working circuit with freshly appended
// input gates, transformed the way the pipeline would (SWAP
// decomposition). QCO is deliberately NOT re-run across the seam: the
// result is a valid — at worst slightly less optimized — working
// circuit for the edited input whose parent prefix is intact by
// construction, which is exactly what a warm start wants. Recomputing
// the transforms from the full edited input instead would cost O(gates)
// and could let QCO weave the appended gate into the middle, shrinking
// the replayable prefix to wherever the weave landed.
func AppendWorking(parentWorking *circuit.Circuit, appended []circuit.Gate) *circuit.Circuit {
	tail := circuit.New(parentWorking.Name, parentWorking.NumQubits)
	tail.Append(appended...)
	tail = tail.DecomposeSWAPs()
	out := circuit.New(parentWorking.Name, parentWorking.NumQubits)
	out.Gates = make([]circuit.Gate, 0, len(parentWorking.Gates)+len(tail.Gates))
	out.Gates = append(append(out.Gates, parentWorking.Gates...), tail.Gates...)
	return out
}

// CommonPrefixGates returns the length of the longest common gate
// prefix of two working circuits, or 0 when the qubit counts differ
// (a width change invalidates placement outright).
func CommonPrefixGates(a, b *circuit.Circuit) int {
	if a == nil || b == nil || a.NumQubits != b.NumQubits {
		return 0
	}
	n := len(a.Gates)
	if len(b.Gates) < n {
		n = len(b.Gates)
	}
	for i := 0; i < n; i++ {
		if a.Gates[i] != b.Gates[i] {
			return i
		}
	}
	return n
}

// Plan is a computed warm start: the parent schedule layers to replay
// and the working-circuit gate prefix they came from. A zero PrefixLen
// means the delta reaches into the first cycle and the compile should
// run cold.
type Plan struct {
	// GatePrefix is the common working-circuit gate prefix length P.
	GatePrefix int
	// PrefixLen is the number of whole parent layers to replay.
	PrefixLen int
	// Prefix aliases the parent schedule's first PrefixLen layers; the
	// router copies paths out, never mutating them.
	Prefix []sched.Layer
	// Initial is the parent's initial layout (validated against the
	// current grid when PrefixLen > 0).
	Initial *grid.Layout
}

// PlanPrefix computes the replayable layer prefix of the parent
// schedule for gate prefix P on grid g (g carries the *current* defect
// map). The parent's initial layout must also survive on g — a program
// qubit on a newly dead tile rules the warm start out entirely.
func PlanPrefix(parent *sched.Schedule, p int, g *grid.Grid) Plan {
	plan := Plan{GatePrefix: p}
	if parent == nil || parent.Initial == nil || g == nil || p <= 0 {
		return plan
	}
	if parent.Initial.Validate(g) != nil {
		return plan
	}
	for _, layer := range parent.Layers {
		if !layerReplayable(layer, p, g) {
			break
		}
		plan.PrefixLen++
	}
	plan.Prefix = parent.Layers[:plan.PrefixLen]
	plan.Initial = parent.Initial
	return plan
}

// layerReplayable reports whether every braid of the layer executes a
// gate below the common prefix, moves no qubits, and still routes clear
// of g's defects. Within-layer disjointness and corner anchoring are
// inherited from the parent's validity and re-checked by the router.
func layerReplayable(layer sched.Layer, p int, g *grid.Grid) bool {
	if len(layer) == 0 {
		return false
	}
	for _, b := range layer {
		if b.Gate < 0 || b.Gate >= p || b.SwapTiles {
			return false
		}
		if !g.Usable(b.CtlTile) || !g.Usable(b.TgtTile) {
			return false
		}
		if b.Path.Validate(g) != nil {
			return false
		}
	}
	return true
}
