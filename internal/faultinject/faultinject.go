// Package faultinject samples random defect maps for robustness testing:
// dead tiles, dead routing vertices and broken routing channels at
// configurable rates, deterministically per seed. It drives the yield
// study (internal/exp, examples/defects) that measures how compile
// success, latency and fallback frequency degrade as hardware quality
// drops.
package faultinject

import (
	"math/rand"

	"hilight/internal/grid"
)

// Rates sets the per-resource defect probabilities. The zero value
// disables everything; Uniform builds the common single-rate profile.
type Rates struct {
	Tile    float64 // each unreserved tile dies independently
	Channel float64 // each routable channel breaks independently
	Vertex  float64 // each routing vertex dies independently
}

// Uniform is the profile the yield study uses for "an r% defect rate":
// tiles and channels fail at r, vertices at r/4 (a dead vertex already
// kills its four incident channels, so full-rate vertex kills would
// double-count lattice damage).
func Uniform(r float64) Rates {
	return Rates{Tile: r, Channel: r, Vertex: r / 4}
}

// Sample draws a random defect map for g at the given rates,
// deterministically for a fixed (grid, rates, seed). Reserved tiles are
// never sampled (they are already closed), and only currently-routable
// channels are candidates.
func Sample(g *grid.Grid, r Rates, seed int64) *grid.DefectMap {
	rng := rand.New(rand.NewSource(seed))
	d := &grid.DefectMap{}
	for t := 0; t < g.Tiles(); t++ {
		if g.Reserved(t) {
			continue
		}
		if rng.Float64() < r.Tile {
			d.Tiles = append(d.Tiles, t)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if rng.Float64() < r.Vertex {
			d.Vertices = append(d.Vertices, v)
		}
	}
	// Channels in canonical order: each vertex's east then south edge.
	for v := 0; v < g.NumVertices(); v++ {
		x, y := g.VertexXY(v)
		if x+1 < g.VW() {
			u := g.VertexID(x+1, y)
			if g.EdgeRoutable(v, u) && rng.Float64() < r.Channel {
				d.Channels = append(d.Channels, [2]int{v, u})
			}
		}
		if y+1 < g.VH() {
			u := g.VertexID(x, y+1)
			if g.EdgeRoutable(v, u) && rng.Float64() < r.Channel {
				d.Channels = append(d.Channels, [2]int{v, u})
			}
		}
	}
	return d
}

// Inject clones g, applies a defect map sampled at the uniform rate, and
// returns the degraded grid with the map. Sample output is valid for g by
// construction, so Inject cannot fail.
func Inject(g *grid.Grid, rate float64, seed int64) (*grid.Grid, *grid.DefectMap) {
	d := Sample(g, Uniform(rate), seed)
	out := g.Clone()
	if err := out.ApplyDefects(d); err != nil {
		panic("faultinject: sampled defect map invalid: " + err.Error())
	}
	return out, d
}
