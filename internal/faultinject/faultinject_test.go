package faultinject

import (
	"reflect"
	"testing"

	"hilight/internal/grid"
)

func TestSampleDeterministic(t *testing.T) {
	g := grid.New(6, 6)
	a := Sample(g, Uniform(0.1), 7)
	b := Sample(g, Uniform(0.1), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (grid, rates, seed) produced different maps")
	}
	c := Sample(g, Uniform(0.1), 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical maps (astronomically unlikely)")
	}
}

func TestSampleValidAndRespectsRates(t *testing.T) {
	g := grid.New(8, 8)
	for seed := int64(1); seed <= 10; seed++ {
		d := Sample(g, Uniform(0.1), seed)
		if err := d.Validate(g); err != nil {
			t.Fatalf("seed %d: sampled map invalid: %v", seed, err)
		}
	}
	if !Sample(g, Rates{}, 1).Empty() {
		t.Fatal("zero rates produced defects")
	}
	// Rate 1 kills every unreserved tile.
	d := Sample(g, Rates{Tile: 1}, 1)
	if len(d.Tiles) != g.Tiles() {
		t.Fatalf("tile rate 1 killed %d/%d tiles", len(d.Tiles), g.Tiles())
	}
	// Reserved tiles are never sampled.
	gr := grid.New(4, 4)
	gr.ReserveTile(5)
	d = Sample(gr, Rates{Tile: 1}, 1)
	for _, tile := range d.Tiles {
		if tile == 5 {
			t.Fatal("reserved tile sampled as defect")
		}
	}
	if len(d.Tiles) != gr.Tiles()-1 {
		t.Fatalf("expected all %d unreserved tiles dead, got %d", gr.Tiles()-1, len(d.Tiles))
	}
}

func TestInject(t *testing.T) {
	g := grid.New(6, 6)
	dg, d := Inject(g, 0.2, 3)
	if g.HasDefects() {
		t.Fatal("Inject mutated the input grid")
	}
	if d.Empty() {
		t.Fatal("20% rate on 36 tiles produced no defects (astronomically unlikely)")
	}
	if dg.Capacity() != g.Capacity()-len(d.Tiles) {
		t.Fatalf("capacity %d, want %d minus %d dead tiles", dg.Capacity(), g.Capacity(), len(d.Tiles))
	}
	if !reflect.DeepEqual(dg.Defects(), d) {
		t.Fatalf("injected grid reports %+v, sampled %+v", dg.Defects(), d)
	}
}
