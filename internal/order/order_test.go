package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
)

func readySet(g *grid.Grid, pairs [][2]int) []Ready {
	out := make([]Ready, len(pairs))
	for i, p := range pairs {
		out[i] = Ready{Gate: i, CtlTile: p[0], TgtTile: p[1]}
	}
	return out
}

func isPermutation(orig, got []Ready) bool {
	if len(orig) != len(got) {
		return false
	}
	seen := map[int]int{}
	for _, r := range orig {
		seen[r.Gate]++
	}
	for _, r := range got {
		seen[r.Gate]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestProposedShortestFirst(t *testing.T) {
	g := grid.New(3, 3)
	// Gate 0 spans the grid (distance 4), gate 1 is adjacent (1), gate 2
	// medium (2): proposed attempts 1, 2, 0.
	ready := readySet(g, [][2]int{{0, 8}, {4, 5}, {0, 2}})
	got := Proposed{}.Order(append([]Ready(nil), ready...), g)
	want := []int{1, 2, 0}
	for i := range got {
		if got[i].Gate != want[i] {
			t.Fatalf("order = %v, want gates %v", got, want)
		}
	}
	// Ties resolve in program order.
	tied := readySet(g, [][2]int{{4, 5}, {0, 1}, {7, 8}})
	got = Proposed{}.Order(append([]Ready(nil), tied...), g)
	for i := range got {
		if got[i].Gate != i {
			t.Fatalf("tie-break not program order: %v", got)
		}
	}
}

func TestAscendingDescending(t *testing.T) {
	g := grid.New(3, 3)
	ready := []Ready{{Gate: 5}, {Gate: 1}, {Gate: 3}}
	asc := Ascending{}.Order(append([]Ready(nil), ready...), g)
	if asc[0].Gate != 1 || asc[1].Gate != 3 || asc[2].Gate != 5 {
		t.Errorf("ascending = %v", asc)
	}
	desc := Descending{}.Order(append([]Ready(nil), ready...), g)
	if desc[0].Gate != 5 || desc[1].Gate != 3 || desc[2].Gate != 1 {
		t.Errorf("descending = %v", desc)
	}
}

func TestRandomIsPermutation(t *testing.T) {
	g := grid.New(3, 3)
	r := Random{Rng: rand.New(rand.NewSource(1))}
	ready := readySet(g, [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 0}})
	got := r.Order(append([]Ready(nil), ready...), g)
	if !isPermutation(ready, got) {
		t.Fatalf("not a permutation: %v", got)
	}
}

func TestLLGGroupsNonConflictingFirst(t *testing.T) {
	g := grid.New(4, 4)
	// Gates 0 and 1 are in disjoint rows (no box overlap); gate 2 overlaps
	// both (spans the whole grid).
	ready := []Ready{
		{Gate: 0, CtlTile: g.TileAt(0, 0), TgtTile: g.TileAt(1, 0)},
		{Gate: 1, CtlTile: g.TileAt(0, 3), TgtTile: g.TileAt(1, 3)},
		{Gate: 2, CtlTile: g.TileAt(0, 0), TgtTile: g.TileAt(3, 3)},
	}
	got := LLG{}.Order(append([]Ready(nil), ready...), g)
	if !isPermutation(ready, got) {
		t.Fatalf("not a permutation: %v", got)
	}
	// Gate 2 is longest so it leads its group, but gates 0 and 1 conflict
	// with it; the greedy set around gate 2 is {2} alone, then {0,1}.
	if got[0].Gate != 2 {
		t.Errorf("longest braid should lead: %v", got)
	}
	pos := map[int]int{}
	for i, r := range got {
		pos[r.Gate] = i
	}
	if pos[0] > 2 || pos[1] > 2 {
		t.Errorf("non-conflicting pair split: %v", got)
	}
}

func TestAllStrategiesReturnPermutations(t *testing.T) {
	g := grid.New(5, 5)
	strategies := []Strategy{
		Proposed{}, Ascending{}, Descending{},
		Random{Rng: rand.New(rand.NewSource(42))}, LLG{}, CriticalPath{},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12)
		ready := make([]Ready, n)
		for i := range ready {
			ready[i] = Ready{
				Gate:    i,
				CtlTile: rng.Intn(g.Tiles()),
				TgtTile: rng.Intn(g.Tiles()),
			}
		}
		for _, s := range strategies {
			got := s.Order(append([]Ready(nil), ready...), g)
			if !isPermutation(ready, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCriticalPathPrefersTallGates(t *testing.T) {
	g := grid.New(3, 3)
	ready := []Ready{
		{Gate: 0, CtlTile: 0, TgtTile: 1, Height: 0},
		{Gate: 1, CtlTile: 3, TgtTile: 4, Height: 7},
		{Gate: 2, CtlTile: 6, TgtTile: 7, Height: 3},
	}
	got := CriticalPath{}.Order(append([]Ready(nil), ready...), g)
	if got[0].Gate != 1 || got[1].Gate != 2 || got[2].Gate != 0 {
		t.Errorf("order = %v", got)
	}
	// Equal heights fall back to shortest braid.
	tied := []Ready{
		{Gate: 0, CtlTile: 0, TgtTile: 8, Height: 2}, // distance 4
		{Gate: 1, CtlTile: 3, TgtTile: 4, Height: 2}, // distance 1
	}
	got = CriticalPath{}.Order(append([]Ready(nil), tied...), g)
	if got[0].Gate != 1 {
		t.Errorf("tie-break wrong: %v", got)
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]Strategy{
		"proposed":      Proposed{},
		"ascending":     Ascending{},
		"descending":    Descending{},
		"random":        Random{},
		"llg":           LLG{},
		"critical-path": CriticalPath{},
	}
	for name, s := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}
