// Package order implements the gate-ordering strategies the paper
// compares in Fig. 8b. Each cycle the router collects the ready set — the
// two-qubit gates whose both operands have reached the gate at the front
// of their per-qubit lists — and asks a Strategy in which order to attempt
// braiding them. Order matters: earlier gates grab the uncongested lattice.
//
//   - Proposed — HiLight's fast ordering: the ASAP ready set discovered by
//     scanning the per-qubit gate lists (Alg. 2), attempted shortest braid
//     first (ties in program order). Short braids consume the least
//     lattice, so packing them first maximizes the braids per cycle; the
//     sort is a single O(k log k) pass, no auxiliary graph is built, and
//     that is where the runtime win over LLG comes from.
//   - Ascending / Descending — sort the ready set by gate index.
//   - Random — shuffle (the paper averages 100 trials).
//   - LLG — the AutoBraid-style ordering: build a conflict graph between
//     ready gates (braids whose tile bounding boxes overlap cannot
//     coexist), extract greedy maximal independent sets, longest braids
//     first. The recurrent graph construction is what the paper blames for
//     AutoBraid's runtime.
package order

import (
	"math/rand"
	"sort"

	"hilight/internal/graph"
	"hilight/internal/grid"
)

// Ready describes one executable two-qubit gate for ordering purposes.
type Ready struct {
	Gate    int // index into the circuit's gate slice
	CtlTile int
	TgtTile int
	// Height is the length of the longest chain of dependent two-qubit
	// gates hanging below this one (0 = nothing depends on it). The
	// router fills it from a one-time backward sweep; only the
	// CriticalPath strategy consumes it.
	Height int
}

// Strategy orders the ready set. Implementations must return a
// permutation of ready (they may reorder in place and return the slice).
type Strategy interface {
	Order(ready []Ready, g *grid.Grid) []Ready
	Name() string
}

// Proposed is HiLight's ordering: shortest braid first, ties broken by
// program order ("the shortest path between qubits can be an optimal path
// to minimize routing congestion", §3.2.2).
type Proposed struct{}

// Name implements Strategy.
func (Proposed) Name() string { return "proposed" }

// Order implements Strategy. The sort is a hand-rolled binary-insertion
// sort rather than sort.SliceStable: it is allocation-free (this runs in
// the router's per-cycle hot loop), produces the identical stable
// ordering, and ready sets are small enough (threshold 4 up to a few
// dozen) that insertion sort also wins on time.
func (Proposed) Order(ready []Ready, g *grid.Grid) []Ready {
	less := func(a, b Ready) bool {
		da := g.Dist(a.CtlTile, a.TgtTile)
		db := g.Dist(b.CtlTile, b.TgtTile)
		if da != db {
			return da < db
		}
		return a.Gate < b.Gate
	}
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0 && less(ready[j], ready[j-1]); j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}
	return ready
}

// Ascending sorts the ready set by ascending gate index.
type Ascending struct{}

// Name implements Strategy.
func (Ascending) Name() string { return "ascending" }

// Order implements Strategy.
func (Ascending) Order(ready []Ready, _ *grid.Grid) []Ready {
	sort.Slice(ready, func(i, j int) bool { return ready[i].Gate < ready[j].Gate })
	return ready
}

// Descending sorts the ready set by descending gate index.
type Descending struct{}

// Name implements Strategy.
func (Descending) Name() string { return "descending" }

// Order implements Strategy.
func (Descending) Order(ready []Ready, _ *grid.Grid) []Ready {
	sort.Slice(ready, func(i, j int) bool { return ready[i].Gate > ready[j].Gate })
	return ready
}

// Random shuffles the ready set. Rng must be non-nil; pass a seeded
// source for reproducible schedules.
type Random struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Order implements Strategy.
func (r Random) Order(ready []Ready, _ *grid.Grid) []Ready {
	r.Rng.Shuffle(len(ready), func(i, j int) { ready[i], ready[j] = ready[j], ready[i] })
	return ready
}

// CriticalPath is an extension strategy beyond the paper: attempt gates
// with the longest dependent chain first (ties: shortest braid, then
// program order). Gates on the circuit's critical path cannot afford to
// be deferred — every deferral stretches the whole schedule — while
// leaf gates can wait for a sparser cycle.
type CriticalPath struct{}

// Name implements Strategy.
func (CriticalPath) Name() string { return "critical-path" }

// Order implements Strategy.
func (CriticalPath) Order(ready []Ready, g *grid.Grid) []Ready {
	sort.SliceStable(ready, func(i, j int) bool {
		if ready[i].Height != ready[j].Height {
			return ready[i].Height > ready[j].Height
		}
		di := g.Dist(ready[i].CtlTile, ready[i].TgtTile)
		dj := g.Dist(ready[j].CtlTile, ready[j].TgtTile)
		if di != dj {
			return di < dj
		}
		return ready[i].Gate < ready[j].Gate
	})
	return ready
}

// LLG is the AutoBraid-style ordering. For every invocation it constructs
// a fresh conflict graph over the ready gates — two gates conflict when
// the bounding boxes of their tile pairs (expanded to the routing lattice)
// overlap — and emits greedy maximal independent sets, preferring longer
// braids, until the ready set is exhausted.
type LLG struct{}

// Name implements Strategy.
func (LLG) Name() string { return "llg" }

// Order implements Strategy.
func (LLG) Order(ready []Ready, g *grid.Grid) []Ready {
	n := len(ready)
	if n <= 1 {
		return ready
	}
	// Bounding box of each braid on the tile lattice.
	type box struct{ x0, y0, x1, y1 int }
	boxes := make([]box, n)
	length := make([]int, n)
	for i, r := range ready {
		ax, ay := g.TileXY(r.CtlTile)
		bx, by := g.TileXY(r.TgtTile)
		boxes[i] = box{min(ax, bx), min(ay, by), max(ax, bx), max(ay, by)}
		length[i] = g.Dist(r.CtlTile, r.TgtTile)
	}
	// Conflict graph, rebuilt every call (the cost the paper measures).
	cg := graph.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Boxes sharing a tile row/column boundary still conflict:
			// braids hug tile corners, so expand by nothing but compare
			// with closed intervals.
			if boxes[i].x0 <= boxes[j].x1 && boxes[j].x0 <= boxes[i].x1 &&
				boxes[i].y0 <= boxes[j].y1 && boxes[j].y0 <= boxes[i].y1 {
				cg.AddEdge(i, j, 1)
			}
		}
	}
	// Preference: longest braids first (they are hardest to place late).
	pref := make([]int, n)
	for i := range pref {
		pref[i] = i
	}
	sort.Slice(pref, func(a, b int) bool {
		if length[pref[a]] != length[pref[b]] {
			return length[pref[a]] > length[pref[b]]
		}
		return ready[pref[a]].Gate < ready[pref[b]].Gate
	})
	var out []Ready
	taken := make([]bool, n)
	remaining := n
	for remaining > 0 {
		var cand []int
		for _, i := range pref {
			if !taken[i] {
				cand = append(cand, i)
			}
		}
		set := cg.GreedyIndependentSet(cand)
		if len(set) == 0 {
			// Conflict graph says nothing fits together; emit one.
			set = cand[:1]
		}
		for _, i := range set {
			if !taken[i] {
				taken[i] = true
				remaining--
				out = append(out, ready[i])
			}
		}
	}
	return out
}
