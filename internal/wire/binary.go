package wire

import (
	"encoding/binary"
	"fmt"

	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// Binary wire format v1.
//
// Every payload opens with a 4-byte header: the magic bytes 'H' 'L', a
// kind byte, and a format version byte. Kinds:
//
//	'S'  full schedule
//	'D'  standalone defect map
//	'T'  layer stream (see stream.go)
//
// All integers are varints (unsigned where the value is a count or a
// non-negative id by construction, zigzag-signed where -1 or deltas can
// occur). Schedule body, in order:
//
//	uvarint gridW, uvarint gridH
//	uvarint #reserved, then reserved tile ids as zigzag deltas
//	defects presence byte (0|1); if 1, three bitsets (LSB-first, sized
//	  from the grid dims): tiles, vertices, edges-by-EdgeID
//	uvarint #qubits, then per qubit uvarint(tile+1)  (0 means unplaced)
//	uvarint #layers, then each layer
//
// Layer body: uvarint #braids, then per braid a flag byte (bit0 =
// swap-tiles), varint gate, varint ctl tile, varint tgt tile, uvarint
// path length, then the path as varint first-vertex plus zigzag deltas —
// consecutive path vertices are lattice neighbours (±1 or ±(W+1)), so
// deltas are 1-byte almost always.
//
// Standalone defect-map body: three delta lists (uvarint count + zigzag
// deltas) for tiles and vertices, then uvarint #channels with per
// channel varint(u−prevU), varint(v−u). Lists round-trip exactly —
// order and duplicates included — because a standalone map has no grid
// to canonicalize against.
//
// Version bumps are append-only: a v2 decoder must keep decoding v1
// payloads; a v1 decoder rejects v2 with an "unsupported version" error
// rather than guessing.
const (
	magic0 = 'H'
	magic1 = 'L'

	kindSchedule = 'S'
	kindDefects  = 'D'
	kindStream   = 'T'

	binaryVersion = 1

	headerLen = 4
)

// binaryCodec implements the compact format. Registered as wire.Binary.
type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return "application/x-hilight-sched" }

func header(kind byte) []byte { return []byte{magic0, magic1, kind, binaryVersion} }

// checkHeader strips and validates the 4-byte header, returning the body.
func checkHeader(data []byte, kind byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("wire: truncated header (%d bytes)", len(data))
	}
	if data[0] != magic0 || data[1] != magic1 {
		return nil, fmt.Errorf("wire: bad magic %#x %#x", data[0], data[1])
	}
	if data[2] != kind {
		return nil, fmt.Errorf("wire: payload kind %q, want %q", data[2], kind)
	}
	if data[3] != binaryVersion {
		return nil, fmt.Errorf("wire: unsupported version %d", data[3])
	}
	return data[headerLen:], nil
}

// Encode serializes the schedule in binary form.
func (binaryCodec) Encode(s *sched.Schedule) ([]byte, error) {
	if s.Grid == nil || s.Initial == nil {
		return nil, fmt.Errorf("wire: schedule missing grid or initial layout")
	}
	b := header(kindSchedule)
	var err error
	if b, err = appendPreamble(b, s.Grid, s.Initial); err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(len(s.Layers)))
	for _, layer := range s.Layers {
		b = appendLayer(b, layer)
	}
	return b, nil
}

// appendPreamble encodes everything but the layers: grid shape, reserved
// tiles, defect bitsets, and the initial layout. The stream encoder
// reuses it as the 'G' frame payload.
func appendPreamble(b []byte, g *grid.Grid, initial *grid.Layout) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(g.W))
	b = binary.AppendUvarint(b, uint64(g.H))

	var reserved []int
	for t := 0; t < g.Tiles(); t++ {
		if g.Reserved(t) {
			reserved = append(reserved, t)
		}
	}
	b = appendDeltaList(b, reserved)

	d := g.Defects()
	if d.Empty() {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		tiles := newBitset(g.Tiles())
		for _, t := range d.Tiles {
			tiles.set(t)
		}
		verts := newBitset(g.NumVertices())
		for _, v := range d.Vertices {
			verts.set(v)
		}
		edges := newBitset(g.NumEdges())
		for _, ch := range d.Channels {
			edges.set(g.EdgeID(ch[0], ch[1]))
		}
		b = append(b, tiles...)
		b = append(b, verts...)
		b = append(b, edges...)
	}

	b = binary.AppendUvarint(b, uint64(len(initial.QubitTile)))
	for _, t := range initial.QubitTile {
		if t < -1 {
			return nil, fmt.Errorf("wire: qubit tile %d invalid", t)
		}
		b = binary.AppendUvarint(b, uint64(t+1))
	}
	return b, nil
}

// appendLayer encodes one braiding layer. Shared by the full-schedule
// encoder and the stream encoder's 'L' frames.
func appendLayer(b []byte, layer sched.Layer) []byte {
	b = binary.AppendUvarint(b, uint64(len(layer)))
	for _, br := range layer {
		var flags byte
		if br.SwapTiles {
			flags |= 1
		}
		b = append(b, flags)
		b = binary.AppendVarint(b, int64(br.Gate))
		b = binary.AppendVarint(b, int64(br.CtlTile))
		b = binary.AppendVarint(b, int64(br.TgtTile))
		b = binary.AppendUvarint(b, uint64(len(br.Path)))
		prev := int64(0)
		for i, v := range br.Path {
			if i == 0 {
				b = binary.AppendVarint(b, int64(v))
			} else {
				b = binary.AppendVarint(b, int64(v)-prev)
			}
			prev = int64(v)
		}
	}
	return b
}

// Decode reconstructs a schedule from Encode output, sharing validation
// with the JSON decoder via sched.Assemble. Counts are bounded by the
// remaining input before any allocation, so truncated or hostile data
// fails with an error instead of a panic or a giant make().
func (binaryCodec) Decode(data []byte) (*sched.Schedule, error) {
	body, err := checkHeader(data, kindSchedule)
	if err != nil {
		return nil, err
	}
	r := &reader{b: body}
	pre, err := decodePreamble(r)
	if err != nil {
		return nil, err
	}
	nLayers, err := r.count("layers")
	if err != nil {
		return nil, err
	}
	var layers []sched.Layer
	for i := 0; i < nLayers; i++ {
		layer, err := decodeLayer(r)
		if err != nil {
			return nil, fmt.Errorf("wire: layer %d: %w", i, err)
		}
		layers = append(layers, layer)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes", r.remaining())
	}
	return sched.Assemble(pre.gridW, pre.gridH, pre.reserved, pre.defects, pre.qubits, pre.initial, layers)
}

// preamble is the decoded grid/layout portion of a schedule.
type preamble struct {
	gridW, gridH int
	reserved     []int
	defects      *grid.DefectMap
	qubits       int
	initial      []int
}

func decodePreamble(r *reader) (preamble, error) {
	var pre preamble
	w, err := r.uvarint()
	if err != nil {
		return pre, err
	}
	h, err := r.uvarint()
	if err != nil {
		return pre, err
	}
	if w == 0 || h == 0 || w > sched.MaxGridTiles || h > sched.MaxGridTiles || w*h > sched.MaxGridTiles {
		return pre, fmt.Errorf("wire: bad grid dimensions %dx%d", w, h)
	}
	pre.gridW, pre.gridH = int(w), int(h)

	if pre.reserved, err = r.deltaList("reserved"); err != nil {
		return pre, err
	}

	flag, err := r.byte()
	if err != nil {
		return pre, err
	}
	switch flag {
	case 0:
	case 1:
		d, err := decodeDefectBitsets(r, pre.gridW, pre.gridH)
		if err != nil {
			return pre, err
		}
		pre.defects = d
	default:
		return pre, fmt.Errorf("wire: bad defects flag %d", flag)
	}

	nq, err := r.count("qubits")
	if err != nil {
		return pre, err
	}
	pre.qubits = nq
	pre.initial = make([]int, nq)
	for q := range pre.initial {
		t, err := r.uvarint()
		if err != nil {
			return pre, err
		}
		if t > uint64(sched.MaxGridTiles) {
			return pre, fmt.Errorf("wire: qubit %d tile %d out of range", q, t)
		}
		pre.initial[q] = int(t) - 1
	}
	return pre, nil
}

// decodeDefectBitsets reads the three fixed-size masks and converts them
// back into the sorted list form grid.Defects() produces. Ascending
// bit/edge-id order matches that sort, so a round-tripped schedule
// re-encodes to byte-identical JSON.
func decodeDefectBitsets(r *reader, gridW, gridH int) (*grid.DefectMap, error) {
	nTiles := gridW * gridH
	vw, vh := gridW+1, gridH+1
	nVerts := vw * vh
	nEdges := 2 * nVerts

	tiles, err := r.bytes(bitsetLen(nTiles))
	if err != nil {
		return nil, err
	}
	verts, err := r.bytes(bitsetLen(nVerts))
	if err != nil {
		return nil, err
	}
	edges, err := r.bytes(bitsetLen(nEdges))
	if err != nil {
		return nil, err
	}
	d := &grid.DefectMap{}
	for t := 0; t < nTiles; t++ {
		if bitset(tiles).get(t) {
			d.Tiles = append(d.Tiles, t)
		}
	}
	if err := checkBitsetTail(tiles, nTiles, "tile"); err != nil {
		return nil, err
	}
	for v := 0; v < nVerts; v++ {
		if bitset(verts).get(v) {
			d.Vertices = append(d.Vertices, v)
		}
	}
	if err := checkBitsetTail(verts, nVerts, "vertex"); err != nil {
		return nil, err
	}
	for id := 0; id < nEdges; id++ {
		if !bitset(edges).get(id) {
			continue
		}
		u := id / 2
		ux, uy := u%vw, u/vw
		var v int
		if id%2 == 0 { // horizontal
			if ux >= gridW {
				return nil, fmt.Errorf("wire: defect edge %d off lattice", id)
			}
			v = u + 1
		} else { // vertical
			if uy >= gridH {
				return nil, fmt.Errorf("wire: defect edge %d off lattice", id)
			}
			v = u + vw
		}
		d.Channels = append(d.Channels, [2]int{u, v})
	}
	if err := checkBitsetTail(edges, nEdges, "edge"); err != nil {
		return nil, err
	}
	if d.Empty() {
		return nil, fmt.Errorf("wire: defects flag set but all masks empty")
	}
	return d, nil
}

func decodeLayer(r *reader) (sched.Layer, error) {
	nBraids, err := r.count("braids")
	if err != nil {
		return nil, err
	}
	layer := make(sched.Layer, nBraids)
	for i := range layer {
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, fmt.Errorf("wire: braid %d: bad flags %#x", i, flags)
		}
		gate, err := r.varint()
		if err != nil {
			return nil, err
		}
		ctl, err := r.varint()
		if err != nil {
			return nil, err
		}
		tgt, err := r.varint()
		if err != nil {
			return nil, err
		}
		pathLen, err := r.count("path vertices")
		if err != nil {
			return nil, err
		}
		var path route.Path
		if pathLen > 0 {
			path = make(route.Path, pathLen)
			prev := int64(0)
			for j := range path {
				dv, err := r.varint()
				if err != nil {
					return nil, err
				}
				v := dv
				if j > 0 {
					v += prev
				}
				if v < -1 || v > int64(2*(sched.MaxGridTiles+1)*(sched.MaxGridTiles+1)) {
					return nil, fmt.Errorf("wire: braid %d: path vertex %d out of range", i, v)
				}
				path[j] = int(v)
				prev = v
			}
		}
		layer[i] = sched.Braid{
			Gate: int(gate), CtlTile: int(ctl), TgtTile: int(tgt),
			Path: path, SwapTiles: flags&1 != 0,
		}
	}
	return layer, nil
}

// EncodeDefects serializes a standalone defect map. Unlike the bitset
// masks embedded in a schedule, a standalone map has no grid dims, so it
// uses delta lists that preserve element order and duplicates exactly.
func (binaryCodec) EncodeDefects(d *grid.DefectMap) ([]byte, error) {
	if d == nil {
		d = &grid.DefectMap{}
	}
	b := header(kindDefects)
	b = appendDeltaList(b, d.Tiles)
	b = appendDeltaList(b, d.Vertices)
	b = binary.AppendUvarint(b, uint64(len(d.Channels)))
	prevU := int64(0)
	for _, ch := range d.Channels {
		u, v := int64(ch[0]), int64(ch[1])
		b = binary.AppendVarint(b, u-prevU)
		b = binary.AppendVarint(b, v-u)
		prevU = u
	}
	return b, nil
}

// DecodeDefects reconstructs a defect map from EncodeDefects output.
func (binaryCodec) DecodeDefects(data []byte) (*grid.DefectMap, error) {
	body, err := checkHeader(data, kindDefects)
	if err != nil {
		return nil, err
	}
	r := &reader{b: body}
	d := &grid.DefectMap{}
	if d.Tiles, err = r.deltaList("defect tiles"); err != nil {
		return nil, err
	}
	if d.Vertices, err = r.deltaList("defect vertices"); err != nil {
		return nil, err
	}
	nCh, err := r.count("defect channels")
	if err != nil {
		return nil, err
	}
	if nCh > 0 {
		d.Channels = make([][2]int, nCh)
		prevU := int64(0)
		for i := range d.Channels {
			du, err := r.varint()
			if err != nil {
				return nil, err
			}
			dv, err := r.varint()
			if err != nil {
				return nil, err
			}
			u := prevU + du
			v := u + dv
			if u < 0 || v < 0 || u > int64(sched.MaxGridTiles)*4 || v > int64(sched.MaxGridTiles)*4 {
				return nil, fmt.Errorf("wire: defect channel %d endpoints out of range", i)
			}
			d.Channels[i] = [2]int{int(u), int(v)}
			prevU = u
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes", r.remaining())
	}
	return d, nil
}

// appendDeltaList writes a zigzag delta list: uvarint count, then each
// element minus its predecessor (first minus zero).
func appendDeltaList(b []byte, list []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(list)))
	prev := int64(0)
	for _, x := range list {
		b = binary.AppendVarint(b, int64(x)-prev)
		prev = int64(x)
	}
	return b
}

// bitset is an LSB-first bit mask.
type bitset []byte

func bitsetLen(n int) int { return (n + 7) / 8 }

func newBitset(n int) bitset { return make(bitset, bitsetLen(n)) }

func (s bitset) set(i int)      { s[i/8] |= 1 << (i % 8) }
func (s bitset) get(i int) bool { return s[i/8]&(1<<(i%8)) != 0 }

// checkBitsetTail rejects set bits beyond the logical size — the only
// way to smuggle undecodable state through a fixed-size mask.
func checkBitsetTail(s []byte, n int, what string) error {
	for i := n; i < len(s)*8; i++ {
		if bitset(s).get(i) {
			return fmt.Errorf("wire: %s bitset has bit %d beyond size %d", what, i, n)
		}
	}
	return nil
}

// reader decodes varints from a byte slice with explicit bounds errors —
// no panics, no reading past the end.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("wire: truncated input at byte %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("wire: truncated input: need %d bytes at %d, have %d", n, r.off, r.remaining())
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads an element count and bounds it by the remaining input —
// every element costs at least one byte, so a count larger than the
// bytes left is provably hostile and rejected BEFORE any allocation.
func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("wire: %s count %d exceeds %d remaining bytes", what, v, r.remaining())
	}
	return int(v), nil
}

// deltaList reads an appendDeltaList-encoded list with full bounds
// checks; elements must stay non-negative and under the grid bound.
func (r *reader) deltaList(what string) ([]int, error) {
	n, err := r.count(what)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	prev := int64(0)
	for i := range out {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		x := prev + d
		if x < 0 || x > int64(sched.MaxGridTiles)*4 {
			return nil, fmt.Errorf("wire: %s element %d out of range", what, i)
		}
		out[i] = int(x)
		prev = x
	}
	return out, nil
}
