package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"hilight/internal/grid"
	"hilight/internal/sched"
)

// Layer stream format v1.
//
// A stream opens with the 4-byte header 'H' 'L' 'T' <version> and then
// carries self-delimiting frames:
//
//	kind byte | uvarint payload length | payload
//
// Frame kinds:
//
//	'G'  grid preamble — the schedule minus its layers (appendPreamble
//	     payload). Always the first frame, exactly once.
//	'L'  one braiding layer (appendLayer payload), in cycle order. The
//	     router emits these as it seals each cycle, so a client holds
//	     layer 0 before the compile finishes.
//	'E'  end of stream; payload is free-form metadata (the service puts
//	     the compile metrics JSON here). Terminal.
//	'X'  abort; payload is a UTF-8 error message. Terminal — emitted
//	     when the compile fails after frames were already flushed, since
//	     HTTP status is long gone by then.
//
// A well-formed stream is G L* (E|X).
const (
	FrameGrid  byte = 'G'
	FrameLayer byte = 'L'
	FrameEnd   byte = 'E'
	FrameError byte = 'X'

	// maxFramePayload bounds a single frame so a hostile length prefix
	// cannot force a giant allocation. The largest real payload is a
	// preamble for a MaxGridTiles grid, far below this.
	maxFramePayload = 1 << 26
)

// StreamContentType is the MIME type of a layer stream.
const StreamContentType = "application/x-hilight-sched-stream"

// StreamEncoder writes a layer stream. It is not safe for concurrent
// use; the router's emit hook calls it from a single goroutine. Every
// frame is written with a single Write call so an http.Flusher can push
// whole frames. The first error sticks: later calls return it unchanged.
type StreamEncoder struct {
	w       io.Writer
	started bool
	done    bool
	err     error
}

// NewStreamEncoder returns an encoder writing to w. Nothing is written
// until Start.
func NewStreamEncoder(w io.Writer) *StreamEncoder { return &StreamEncoder{w: w} }

func (e *StreamEncoder) frame(kind byte, payload []byte) error {
	if e.err != nil {
		return e.err
	}
	if e.done {
		e.err = fmt.Errorf("wire: frame %q after stream end", kind)
		return e.err
	}
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload))
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	if _, err := e.w.Write(buf); err != nil {
		e.err = err
	}
	return e.err
}

// Start writes the stream header and the 'G' preamble frame.
func (e *StreamEncoder) Start(g *grid.Grid, initial *grid.Layout) error {
	if e.err != nil {
		return e.err
	}
	if e.started {
		e.err = fmt.Errorf("wire: stream started twice")
		return e.err
	}
	payload, err := appendPreamble(nil, g, initial)
	if err != nil {
		e.err = err
		return err
	}
	if _, err := e.w.Write(header(kindStream)); err != nil {
		e.err = err
		return err
	}
	e.started = true
	return e.frame(FrameGrid, payload)
}

// Layer writes one 'L' frame. The layer is encoded before returning, so
// the caller (the router, whose layer buffers are arena-backed and
// reused) may invalidate it afterwards.
func (e *StreamEncoder) Layer(layer sched.Layer) error {
	if e.err == nil && !e.started {
		e.err = fmt.Errorf("wire: layer frame before start")
		return e.err
	}
	return e.frame(FrameLayer, appendLayer(nil, layer))
}

// End terminates the stream with an 'E' frame carrying meta (may be nil).
func (e *StreamEncoder) End(meta []byte) error {
	if e.err == nil && !e.started {
		e.err = fmt.Errorf("wire: end frame before start")
		return e.err
	}
	if err := e.frame(FrameEnd, meta); err != nil {
		return err
	}
	e.done = true
	return nil
}

// Abort terminates the stream with an 'X' frame carrying msg. Valid even
// before Start (the header is written first if needed) so transport
// errors are always expressible in-band.
func (e *StreamEncoder) Abort(msg string) error {
	if e.err != nil {
		return e.err
	}
	if !e.started {
		if _, err := e.w.Write(header(kindStream)); err != nil {
			e.err = err
			return err
		}
		e.started = true
	}
	if err := e.frame(FrameError, []byte(msg)); err != nil {
		return err
	}
	e.done = true
	return nil
}

// Err returns the sticky error, if any.
func (e *StreamEncoder) Err() error { return e.err }

// Started reports whether the stream header has been written — once true,
// errors can only be delivered in-band via Abort, not as an HTTP status.
func (e *StreamEncoder) Started() bool { return e.started }

// OnStart and OnLayer make a StreamEncoder a core.ScheduleSink (and a
// hilight.ScheduleSink), so it plugs straight into the router's emit
// hook: frames flow to the writer while the compile is still routing.
// The cycle argument is implied by frame order and dropped.

// OnStart implements the schedule-sink interface via Start.
func (e *StreamEncoder) OnStart(g *grid.Grid, initial *grid.Layout) error {
	return e.Start(g, initial)
}

// OnLayer implements the schedule-sink interface via Layer.
func (e *StreamEncoder) OnLayer(cycle int, layer sched.Layer) error {
	return e.Layer(layer)
}

// Frame is one decoded stream frame.
type Frame struct {
	Kind    byte
	Payload []byte
}

// StreamDecoder reads a layer stream incrementally from r.
type StreamDecoder struct {
	r      io.Reader
	header bool
	done   bool
}

// NewStreamDecoder returns a decoder reading from r.
func NewStreamDecoder(r io.Reader) *StreamDecoder { return &StreamDecoder{r: r} }

// Next returns the next frame, validating the stream header on first
// call. After a terminal frame ('E' or 'X') it returns io.EOF.
func (d *StreamDecoder) Next() (Frame, error) {
	if d.done {
		return Frame{}, io.EOF
	}
	if !d.header {
		var h [headerLen]byte
		if _, err := io.ReadFull(d.r, h[:]); err != nil {
			return Frame{}, fmt.Errorf("wire: stream header: %w", err)
		}
		if _, err := checkHeader(h[:], kindStream); err != nil {
			return Frame{}, err
		}
		d.header = true
	}
	var kb [1]byte
	if _, err := io.ReadFull(d.r, kb[:]); err != nil {
		if err == io.EOF {
			return Frame{}, fmt.Errorf("wire: stream truncated before terminal frame")
		}
		return Frame{}, err
	}
	kind := kb[0]
	switch kind {
	case FrameGrid, FrameLayer, FrameEnd, FrameError:
	default:
		return Frame{}, fmt.Errorf("wire: bad frame kind %#x", kind)
	}
	n, err := readUvarint(d.r)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: frame %q length: %w", kind, err)
	}
	if n > maxFramePayload {
		return Frame{}, fmt.Errorf("wire: frame %q payload %d exceeds limit", kind, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: frame %q payload: %w", kind, err)
	}
	if kind == FrameEnd || kind == FrameError {
		d.done = true
	}
	return Frame{Kind: kind, Payload: payload}, nil
}

// readUvarint reads a varint byte-by-byte (frames are length-prefixed so
// the reader must not over-read past the varint).
func readUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		c := b[0]
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, fmt.Errorf("uvarint overflow")
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("uvarint overflow")
}

// DecodeGridFrame decodes a 'G' payload into the grid and initial layout
// (as a partial schedule with no layers).
func DecodeGridFrame(payload []byte) (*sched.Schedule, error) {
	r := &reader{b: payload}
	pre, err := decodePreamble(r)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in grid frame", r.remaining())
	}
	return sched.Assemble(pre.gridW, pre.gridH, pre.reserved, pre.defects, pre.qubits, pre.initial, nil)
}

// DecodeLayerFrame decodes an 'L' payload.
func DecodeLayerFrame(payload []byte) (sched.Layer, error) {
	r := &reader{b: payload}
	layer, err := decodeLayer(r)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in layer frame", r.remaining())
	}
	return layer, nil
}

// ReadStream consumes an entire layer stream and reassembles the
// schedule, returning the 'E' frame's metadata alongside. An 'X' frame
// becomes an error carrying the remote message.
func ReadStream(r io.Reader) (*sched.Schedule, []byte, error) {
	d := NewStreamDecoder(r)
	var s *sched.Schedule
	var meta []byte
	for {
		f, err := d.Next()
		if err == io.EOF {
			return s, meta, nil
		}
		if err != nil {
			return nil, nil, err
		}
		switch f.Kind {
		case FrameGrid:
			if s != nil {
				return nil, nil, fmt.Errorf("wire: duplicate grid frame")
			}
			if s, err = DecodeGridFrame(f.Payload); err != nil {
				return nil, nil, err
			}
		case FrameLayer:
			if s == nil {
				return nil, nil, fmt.Errorf("wire: layer frame before grid frame")
			}
			layer, err := DecodeLayerFrame(f.Payload)
			if err != nil {
				return nil, nil, err
			}
			s.Layers = append(s.Layers, layer)
		case FrameEnd:
			if s == nil {
				return nil, nil, fmt.Errorf("wire: end frame before grid frame")
			}
			meta = f.Payload
		case FrameError:
			return nil, nil, fmt.Errorf("wire: remote error: %s", f.Payload)
		}
	}
}

// StreamSchedule replays an already-complete schedule as a stream —
// the service uses it to serve ?stream=1 on a cache hit, where no live
// router is producing layers.
func StreamSchedule(e *StreamEncoder, s *sched.Schedule, meta []byte) error {
	if err := e.Start(s.Grid, s.Initial); err != nil {
		return err
	}
	for _, layer := range s.Layers {
		if err := e.Layer(layer); err != nil {
			return err
		}
	}
	return e.End(meta)
}
