package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// testSchedule builds a schedule exercising every encoder branch:
// reserved tiles, all three defect kinds, an unplaced qubit, swap
// braids, negative gate ids, and multi-vertex paths.
func testSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	defects := &grid.DefectMap{
		Tiles:    []int{5},
		Vertices: []int{14},
		Channels: [][2]int{{0, 1}, {1, 8}},
	}
	layers := []sched.Layer{
		{
			{Gate: 0, CtlTile: 0, TgtTile: 3, Path: route.Path{0, 1, 2, 3, 10, 17}},
			{Gate: 1, CtlTile: 8, TgtTile: 10, Path: route.Path{28, 29, 30, 31}, SwapTiles: true},
		},
		{
			{Gate: -1, CtlTile: 2, TgtTile: 2, Path: route.Path{9}},
		},
		{},
	}
	s, err := sched.Assemble(6, 4, []int{11, 23}, defects, 5, []int{0, 3, 8, -1, 10}, layers)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return s
}

func TestBinaryRoundTrip(t *testing.T) {
	s := testSchedule(t)
	wantJSON, err := sched.EncodeJSON(s)
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}

	bin, err := Binary.Encode(s)
	if err != nil {
		t.Fatalf("Binary.Encode: %v", err)
	}
	back, err := Binary.Decode(bin)
	if err != nil {
		t.Fatalf("Binary.Decode: %v", err)
	}
	gotJSON, err := sched.EncodeJSON(back)
	if err != nil {
		t.Fatalf("EncodeJSON(round-trip): %v", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("round-tripped schedule re-encodes differently:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	if len(bin) >= len(wantJSON) {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bin), len(wantJSON))
	}
	// Byte stability: encoding the decoded schedule again must match.
	bin2, err := Binary.Encode(back)
	if err != nil {
		t.Fatalf("Binary.Encode(round-trip): %v", err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Errorf("binary encoding not byte-stable across a round trip")
	}
}

func TestBinaryRoundTripMinimal(t *testing.T) {
	s, err := sched.Assemble(2, 2, nil, nil, 1, []int{0}, nil)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bin, err := Binary.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Binary.Decode(bin)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Grid.W != 2 || back.Grid.H != 2 || len(back.Layers) != 0 {
		t.Errorf("minimal schedule mangled: %dx%d, %d layers", back.Grid.W, back.Grid.H, len(back.Layers))
	}
}

func TestJSONCodecDelegates(t *testing.T) {
	s := testSchedule(t)
	want, err := sched.EncodeJSON(s)
	if err != nil {
		t.Fatalf("sched.EncodeJSON: %v", err)
	}
	got, err := JSON.Encode(s)
	if err != nil {
		t.Fatalf("JSON.Encode: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON codec bytes differ from sched.EncodeJSON")
	}
	back, err := JSON.Decode(got)
	if err != nil {
		t.Fatalf("JSON.Decode: %v", err)
	}
	re, err := JSON.Encode(back)
	if err != nil {
		t.Fatalf("JSON.Encode(round-trip): %v", err)
	}
	if !bytes.Equal(re, want) {
		t.Errorf("JSON round trip not byte-stable")
	}
}

func TestDefectMapRoundTrip(t *testing.T) {
	cases := []*grid.DefectMap{
		nil,
		{},
		{Tiles: []int{3, 1, 1}, Vertices: []int{0, 7}, Channels: [][2]int{{5, 4}, {2, 3}, {2, 3}}},
		{Channels: [][2]int{{100, 93}}},
	}
	for i, d := range cases {
		b, err := Binary.EncodeDefects(d)
		if err != nil {
			t.Fatalf("case %d: EncodeDefects: %v", i, err)
		}
		back, err := Binary.DecodeDefects(b)
		if err != nil {
			t.Fatalf("case %d: DecodeDefects: %v", i, err)
		}
		want := d
		if want == nil {
			want = &grid.DefectMap{}
		}
		// Standalone maps must round-trip exactly: order and duplicates.
		wantJSON, _ := grid.EncodeDefects(want)
		gotJSON, _ := grid.EncodeDefects(back)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("case %d: round trip changed map:\nwant %s\ngot  %s", i, wantJSON, gotJSON)
		}
	}
}

func TestDecodeHostileInput(t *testing.T) {
	s := testSchedule(t)
	bin, err := Binary.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(bin); n++ {
		if _, err := Binary.Decode(bin[:n]); err == nil {
			t.Fatalf("truncated input (%d/%d bytes) decoded without error", n, len(bin))
		}
	}
	// Trailing garbage.
	if _, err := Binary.Decode(append(append([]byte(nil), bin...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Wrong magic / kind / version.
	mut := func(idx int, val byte) []byte {
		out := append([]byte(nil), bin...)
		out[idx] = val
		return out
	}
	if _, err := Binary.Decode(mut(0, 'X')); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
	if _, err := Binary.Decode(mut(2, 'D')); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("wrong kind: err = %v", err)
	}
	if _, err := Binary.Decode(mut(3, 99)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v", err)
	}
	// A huge claimed count must be rejected before allocation.
	hostile := header(kindSchedule)
	hostile = append(hostile, 2, 2) // W=2 H=2
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Binary.Decode(hostile); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	meta := []byte(`{"latency":3}`)
	if err := StreamSchedule(enc, s, meta); err != nil {
		t.Fatalf("StreamSchedule: %v", err)
	}
	back, gotMeta, err := ReadStream(&buf)
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if !bytes.Equal(gotMeta, meta) {
		t.Errorf("meta = %q, want %q", gotMeta, meta)
	}
	wantJSON, _ := sched.EncodeJSON(s)
	gotJSON, err := sched.EncodeJSON(back)
	if err != nil {
		t.Fatalf("EncodeJSON(streamed): %v", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("streamed schedule differs from original")
	}
}

func TestStreamIncremental(t *testing.T) {
	// Layers must be decodable frame-by-frame, before the stream ends.
	s := testSchedule(t)
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	if err := enc.Start(s.Grid, s.Initial); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := enc.Layer(s.Layers[0]); err != nil {
		t.Fatalf("Layer: %v", err)
	}
	// Decode what's written so far: header + G + one L, no terminal yet.
	dec := NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	f, err := dec.Next()
	if err != nil || f.Kind != FrameGrid {
		t.Fatalf("first frame = %q, %v; want G", f.Kind, err)
	}
	partial, err := DecodeGridFrame(f.Payload)
	if err != nil {
		t.Fatalf("DecodeGridFrame: %v", err)
	}
	if partial.Grid.W != s.Grid.W || partial.Grid.H != s.Grid.H {
		t.Errorf("grid frame dims %dx%d, want %dx%d", partial.Grid.W, partial.Grid.H, s.Grid.W, s.Grid.H)
	}
	f, err = dec.Next()
	if err != nil || f.Kind != FrameLayer {
		t.Fatalf("second frame = %q, %v; want L", f.Kind, err)
	}
	layer, err := DecodeLayerFrame(f.Payload)
	if err != nil {
		t.Fatalf("DecodeLayerFrame: %v", err)
	}
	if len(layer) != len(s.Layers[0]) {
		t.Errorf("layer has %d braids, want %d", len(layer), len(s.Layers[0]))
	}
	if !reflect.DeepEqual([]sched.Braid(layer), []sched.Braid(s.Layers[0])) {
		t.Errorf("layer frame braids differ from source layer")
	}
}

func TestStreamAbort(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	if err := enc.Start(s.Grid, s.Initial); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := enc.Abort("compile exploded"); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	_, _, err := ReadStream(&buf)
	if err == nil || !strings.Contains(err.Error(), "compile exploded") {
		t.Errorf("ReadStream after abort: err = %v", err)
	}
}

func TestStreamTruncated(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	enc := NewStreamEncoder(&buf)
	if err := StreamSchedule(enc, s, nil); err != nil {
		t.Fatalf("StreamSchedule: %v", err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 3, 4, 5, len(full) / 2, len(full) - 1} {
		if _, _, err := ReadStream(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated stream (%d/%d bytes) read without error", n, len(full))
		}
	}
}

func TestRegistry(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, []string{"binary", "json"}) {
		t.Errorf("Names() = %v", got)
	}
	for _, c := range []Codec{JSON, Binary} {
		byName, ok := Lookup(c.Name())
		if !ok || byName.Name() != c.Name() {
			t.Errorf("Lookup(%q) = %v, %v", c.Name(), byName, ok)
		}
		byType, ok := ByContentType(c.ContentType())
		if !ok || byType.Name() != c.Name() {
			t.Errorf("ByContentType(%q) = %v, %v", c.ContentType(), byType, ok)
		}
	}
	if _, ok := Lookup("protobuf"); ok {
		t.Error("Lookup of unregistered codec succeeded")
	}
}

func TestBinaryMuchSmallerThanJSON(t *testing.T) {
	// Build a schedule with paper-plausible shape: many layers of long
	// paths. The 40%-of-JSON acceptance bound is asserted on real Table 1
	// circuits at the root package; this pins the same property on a
	// synthetic workload so the wire package stands alone.
	var layers []sched.Layer
	for l := 0; l < 40; l++ {
		var layer sched.Layer
		for b := 0; b < 6; b++ {
			path := make(route.Path, 20)
			path[0] = b * 9
			for i := 1; i < len(path); i++ {
				path[i] = path[i-1] + 1
			}
			layer = append(layer, sched.Braid{Gate: l*6 + b, CtlTile: b, TgtTile: b + 1, Path: path})
		}
		layers = append(layers, layer)
	}
	initial := make([]int, 16)
	for i := range initial {
		initial[i] = i
	}
	s, err := sched.Assemble(16, 16, nil, nil, 16, initial, layers)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bin, err := Binary.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	js, err := JSON.Encode(s)
	if err != nil {
		t.Fatalf("JSON.Encode: %v", err)
	}
	if ratio := float64(len(bin)) / float64(len(js)); ratio > 0.40 {
		t.Errorf("binary/JSON ratio = %.2f (%d/%d bytes), want <= 0.40", ratio, len(bin), len(js))
	}
}

func ExampleCodec() {
	s, _ := sched.Assemble(2, 2, nil, nil, 1, []int{0}, nil)
	bin, _ := Binary.Encode(s)
	fmt.Println(string(bin[:2]), bin[2:4])
	// Output: HL [83 1]
}
