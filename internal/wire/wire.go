// Package wire is the serialization layer of the HiLight stack: an
// explicit codec registry that every tier — the service schedule cache,
// the job journal, the HTTP API, and the CLIs — routes schedule and
// defect-map bytes through, instead of hard-coding one encoding.
//
// Two codecs are registered:
//
//   - "json": the verbose, human-readable debug/interop format. It
//     delegates to the original sched/grid JSON encoders, so its bytes
//     are exactly what the repo has always produced (the golden fixtures
//     pin this).
//   - "binary": a compact, versioned, schema-assumed binary format
//     (magic+version header, varint integers, delta-encoded braiding
//     path vertices, bitset defect masks; no embedded compression) — the
//     LightWeight-objective encoding for caches and high-volume clients.
//
// The package also defines the frame-based streaming form of a schedule
// (see stream.go): braiding layers encoded and emitted one frame at a
// time while the router produces them, so a client can consume cycle 0
// before the compile finishes.
package wire

import (
	"fmt"
	"sort"
	"sync"

	"hilight/internal/grid"
	"hilight/internal/sched"
)

// Codec is one schedule/defect-map serialization. Implementations must
// be stateless and safe for concurrent use; Encode must be byte-stable
// (equal inputs yield equal bytes) because cache keys, goldens, and the
// chaos harness's determinism ledger all rely on it.
type Codec interface {
	// Name is the registry key ("json", "binary") — also the value of
	// the CLI -format flag and the service's ?format= parameter.
	Name() string
	// ContentType is the MIME type used for HTTP content negotiation.
	ContentType() string
	// Encode serializes a schedule (with its grid, reserved tiles,
	// defects, and initial layout).
	Encode(s *sched.Schedule) ([]byte, error)
	// Decode reconstructs a schedule from Encode output. The result
	// still needs sched.Validate against the matching circuit before
	// being trusted.
	Decode(data []byte) (*sched.Schedule, error)
	// EncodeDefects serializes a standalone defect map.
	EncodeDefects(d *grid.DefectMap) ([]byte, error)
	// DecodeDefects reconstructs a defect map from EncodeDefects output.
	DecodeDefects(data []byte) (*grid.DefectMap, error)
}

// BinaryEnvelopeContentType is the node-to-node negotiation form: the
// JSON response envelope (full metadata, exactly the historical field
// set) carrying the schedule as the binary payload (schedule_bin)
// instead of inline JSON. It is not a Codec — the envelope belongs to
// the service layer — but the content type lives here beside its
// binary sibling so the wire contract has one home.
const BinaryEnvelopeContentType = "application/x-hilight-sched+json"

// The registered codecs, also reachable by name via Lookup.
var (
	// JSON is the debug/interop codec: byte-identical to the historical
	// sched.EncodeJSON / grid.EncodeDefects output.
	JSON Codec = jsonCodec{}
	// Binary is the versioned compact codec (see binary.go for the frame
	// layout).
	Binary Codec = binaryCodec{}
)

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
	byCT     = map[string]Codec{}
)

func init() {
	Register(JSON)
	Register(Binary)
}

// Register adds a codec under its Name and ContentType. Registering a
// duplicate name or content type panics — codec identity is a wire
// contract, not something to silently overwrite.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("wire: duplicate codec name %q", c.Name()))
	}
	if _, dup := byCT[c.ContentType()]; dup {
		panic(fmt.Sprintf("wire: duplicate codec content type %q", c.ContentType()))
	}
	registry[c.Name()] = c
	byCT[c.ContentType()] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// ByContentType returns the codec whose ContentType matches ct exactly
// (parameters stripped by the caller).
func ByContentType(ct string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byCT[ct]
	return c, ok
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// jsonCodec adapts the historical JSON encoders to the Codec interface.
// Its bytes are pinned by the existing golden fixtures: it MUST stay a
// pure delegation.
type jsonCodec struct{}

func (jsonCodec) Name() string        { return "json" }
func (jsonCodec) ContentType() string { return "application/json" }

func (jsonCodec) Encode(s *sched.Schedule) ([]byte, error) { return sched.EncodeJSON(s) }
func (jsonCodec) Decode(data []byte) (*sched.Schedule, error) {
	return sched.DecodeJSON(data)
}
func (jsonCodec) EncodeDefects(d *grid.DefectMap) ([]byte, error) { return grid.EncodeDefects(d) }
func (jsonCodec) DecodeDefects(data []byte) (*grid.DefectMap, error) {
	return grid.DecodeDefects(data)
}
