package wire

import (
	"bytes"
	"testing"

	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// FuzzDecodeWire throws hostile bytes at every binary decode surface —
// the schedule codec, the defect-map codec, and the frame-stream reader.
// Each must reject cleanly (no panic, no runaway allocation), and
// anything the schedule decoder accepts must re-encode byte-identically:
// v1 has exactly one encoding per schedule, so decode∘encode is the
// identity on every accepted input. Run the seed corpus with `go test`;
// extend with `go test -fuzz=FuzzDecodeWire` (wired into `make fuzz`).
func FuzzDecodeWire(f *testing.F) {
	// Valid payloads of all three kinds seed the corpus, so mutations
	// start from deep inside the format rather than dying at the header.
	s, err := sampleSchedule()
	if err != nil {
		f.Fatal(err)
	}
	if bin, err := Binary.Encode(s); err == nil {
		f.Add(bin)
		f.Add(bin[:len(bin)/2])  // truncated mid-payload
		f.Add(append(bin, 0xff)) // trailing garbage
		mut := bytes.Clone(bin)
		mut[3] ^= 0xff // wrong version
		f.Add(mut)
	}
	if db, err := Binary.EncodeDefects(s.Grid.Defects()); err == nil {
		f.Add(db)
	}
	var stream bytes.Buffer
	if err := StreamSchedule(NewStreamEncoder(&stream), s, []byte(`{"ok":true}`)); err == nil {
		f.Add(stream.Bytes())
		f.Add(stream.Bytes()[:stream.Len()-3]) // stream cut before the trailer
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{magic0, magic1, kindSchedule, binaryVersion})
	f.Add([]byte{magic0, magic1, kindDefects, binaryVersion})
	f.Add([]byte{magic0, magic1, kindStream, binaryVersion})
	// A count claiming far more elements than the payload holds: the
	// decoder must bound allocations by the remaining bytes.
	f.Add(append([]byte{magic0, magic1, kindSchedule, binaryVersion}, 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := Binary.Decode(data); err == nil {
			out, err := Binary.Encode(s)
			if err != nil {
				t.Fatalf("accepted input failed to re-encode: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("decode∘encode not identity: %d in, %d out", len(data), len(out))
			}
		}
		if d, err := Binary.DecodeDefects(data); err == nil {
			if _, err := Binary.EncodeDefects(d); err != nil {
				t.Fatalf("accepted defect map failed to re-encode: %v", err)
			}
		}
		// The stream reader consumes the same bytes through the framed
		// path; acceptance only requires a well-formed G L* (E|X) sequence.
		if s, _, err := ReadStream(bytes.NewReader(data)); err == nil && s != nil {
			if _, err := Binary.Encode(s); err != nil {
				t.Fatalf("reassembled stream schedule failed to encode: %v", err)
			}
		}
	})
}

// sampleSchedule builds a small but branch-covering schedule for the
// seed corpus: defects of all three kinds, a swap braid, an unplaced
// qubit, and an empty layer.
func sampleSchedule() (*sched.Schedule, error) {
	defects := &grid.DefectMap{
		Tiles:    []int{5},
		Vertices: []int{14},
		Channels: [][2]int{{0, 1}},
	}
	layers := []sched.Layer{
		{
			{Gate: 0, CtlTile: 0, TgtTile: 3, Path: route.Path{0, 1, 2, 3}},
			{Gate: -1, CtlTile: 1, TgtTile: 2, Path: route.Path{9, 10}, SwapTiles: true},
		},
		{},
	}
	return sched.Assemble(4, 3, []int{11}, defects, 4, []int{0, 3, -1, 2}, layers)
}
