package surgery

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/grid"
)

func mapDiluted(t *testing.T, c *circuit.Circuit) *Result {
	t.Helper()
	g := DilutedGrid(c.NumQubits)
	l, err := DilutedPlace(c, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(c, g, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("invalid surgery schedule: %v", err)
	}
	return res
}

func TestDilutedGridSizing(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 50} {
		g := DilutedGrid(n)
		cells := 0
		for tile := 0; tile < g.Tiles(); tile++ {
			x, y := g.TileXY(tile)
			if x%2 == 0 && y%2 == 0 {
				cells++
			}
		}
		if cells < n {
			t.Errorf("DilutedGrid(%d) = %s with %d cells", n, g, cells)
		}
	}
}

func TestDilutedPlaceCheckerboard(t *testing.T) {
	c := circuit.New("cb", 6)
	c.Add2(circuit.CX, 0, 1)
	g := DilutedGrid(6)
	l, err := DilutedPlace(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	for q, tile := range l.QubitTile {
		x, y := g.TileXY(tile)
		if x%2 != 0 || y%2 != 0 {
			t.Errorf("qubit %d on lane tile (%d,%d)", q, x, y)
		}
	}
	// Too many qubits for the board errors out.
	small := grid.New(2, 2)
	big := circuit.New("big", 4)
	if _, err := DilutedPlace(big, small); err == nil {
		t.Error("overfull checkerboard accepted")
	}
}

func TestMapSerialChain(t *testing.T) {
	n := 6
	c := circuit.New("chain", n)
	for i := 0; i+1 < n; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	res := mapDiluted(t, c)
	// The chain serializes: n-1 layers, each CyclesPerOp cycles.
	if res.Latency != CyclesPerOp*(n-1) {
		t.Errorf("latency = %d, want %d", res.Latency, CyclesPerOp*(n-1))
	}
}

func TestMapParallelPairs(t *testing.T) {
	c := circuit.New("pairs", 8)
	for i := 0; i < 8; i += 2 {
		c.Add2(circuit.CX, i, i+1)
	}
	res := mapDiluted(t, c)
	// Ancilla-lane contention may split the four ops across layers, but
	// some parallelism must survive (full serialization would be 4).
	if got := len(res.Schedule.Layers); got >= 4 {
		t.Errorf("layers = %d, want < 4 (lane contention fully serialized)", got)
	}
}

func TestMapFailsOnDenseLayout(t *testing.T) {
	// A full grid with no free tiles cannot route non-adjacent surgery.
	c := circuit.New("dense", 9)
	c.Add2(circuit.CX, 0, 8) // corners of a 3x3
	g := grid.New(3, 3)
	l := grid.NewLayout(9, g)
	for q := 0; q < 9; q++ {
		l.Assign(q, q, g)
	}
	_, err := Map(c, g, l)
	if err == nil || !strings.Contains(err.Error(), "ancilla") {
		t.Fatalf("dense layout should fail with ancilla error, got %v", err)
	}
}

func TestMapAdjacentOnFullGrid(t *testing.T) {
	// Adjacent qubits merge directly: works even with zero free tiles.
	c := circuit.New("adj", 4)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 2, 3)
	g := grid.New(2, 2)
	l := grid.NewLayout(4, g)
	for q := 0; q < 4; q++ {
		l.Assign(q, q, g)
	}
	res, err := Map(c, g, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
	if res.Latency != CyclesPerOp {
		t.Errorf("latency = %d, want %d (both ops parallel)", res.Latency, CyclesPerOp)
	}
}

func TestValidateCatchesTileOverlap(t *testing.T) {
	c := circuit.New("v", 4)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 2, 3)
	g := grid.New(2, 2)
	l := grid.NewLayout(4, g)
	for q := 0; q < 4; q++ {
		l.Assign(q, q, g)
	}
	s := &Schedule{Grid: g, Layout: l, Layers: [][]Op{{
		{Gate: 0, Tiles: []int{0, 1}},
		{Gate: 1, Tiles: []int{2, 3, 1}}, // overlaps tile 1
	}}}
	if err := s.Validate(c); err == nil {
		t.Error("overlapping tiles accepted")
	}
}

func TestValidateCatchesDisconnectedRegion(t *testing.T) {
	c := circuit.New("v", 2)
	c.Add2(circuit.CX, 0, 1)
	g := grid.New(3, 1)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 2, g)
	s := &Schedule{Grid: g, Layout: l, Layers: [][]Op{{
		{Gate: 0, Tiles: []int{0, 2}}, // endpoints not adjacent, no ancilla
	}}}
	if err := s.Validate(c); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("disconnected region accepted: %v", err)
	}
	// With the middle ancilla it validates.
	s.Layers[0][0].Tiles = []int{0, 2, 1}
	if err := s.Validate(c); err != nil {
		t.Fatalf("connected region rejected: %v", err)
	}
}

func TestValidateCatchesOrderViolation(t *testing.T) {
	c := circuit.New("ord", 2)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 1, 0)
	g := grid.New(2, 1)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	s := &Schedule{Grid: g, Layout: l, Layers: [][]Op{
		{{Gate: 1, Tiles: []int{1, 0}}},
		{{Gate: 0, Tiles: []int{0, 1}}},
	}}
	if err := s.Validate(c); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("order violation accepted: %v", err)
	}
}

// Property: random circuits on diluted boards always produce valid
// schedules, with latency bounded by CyclesPerOp × CX count.
func TestSurgeryScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := circuit.New("rand", n)
		for i := 0; i < 1+rng.Intn(25); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := DilutedGrid(n)
		l, err := DilutedPlace(c, g)
		if err != nil {
			return false
		}
		res, err := Map(c, g, l)
		if err != nil {
			return false
		}
		if res.Schedule.Validate(res.Circuit) != nil {
			return false
		}
		return res.Latency <= CyclesPerOp*res.Circuit.CXCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
