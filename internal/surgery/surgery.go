// Package surgery implements a lattice-surgery execution model for the
// same workloads the braiding mapper handles — the other surface-code
// mode the paper's §2.3 contrasts (Javadi-Abhari et al. MICRO'17, Lao et
// al. QST'19). It exists as a comparator: downstream users can measure,
// on identical circuits and grids, how the double-defect braiding mode
// and the lattice-surgery mode trade hardware for latency.
//
// Model. A lattice-surgery CNOT merges the control and target patches
// through a connected region of *free ancilla tiles*: the operation
// occupies both endpoint tiles plus a tile path between them for one
// merge/split round pair (two cycles in braiding-cycle units). Unlike
// braiding — which routes on the tile-corner lattice and coexists with
// any tile occupancy — surgery paths consume whole tiles, so mapped
// qubits are obstacles and the layout must keep ancilla lanes free.
// DilutedGrid/DilutedPlace provide the standard checkerboard layout
// (qubits on even-parity tiles, odd-parity tiles as routing lanes).
package surgery

import (
	"fmt"
	"time"

	"hilight/internal/circuit"
	"hilight/internal/graph"
	"hilight/internal/grid"
)

// CyclesPerOp is the duration of one merge/split round pair in
// braiding-cycle units: a ZZ merge plus a split.
const CyclesPerOp = 2

// Op is one scheduled lattice-surgery operation: the gate it implements
// and the tiles it occupies (endpoints first, then the ancilla path).
type Op struct {
	Gate  int
	Tiles []int // control, target, then connecting ancilla tiles
}

// Schedule is a sequence of layers of tile-disjoint surgery operations.
type Schedule struct {
	Grid   *grid.Grid
	Layout *grid.Layout
	Layers [][]Op
}

// Latency returns the total latency in braiding-cycle units.
func (s *Schedule) Latency() int { return CyclesPerOp * len(s.Layers) }

// TileTime returns the total tile⋅cycles consumed (the surgery analogue
// of the ResUtil numerator).
func (s *Schedule) TileTime() int {
	total := 0
	for _, layer := range s.Layers {
		for _, op := range layer {
			total += len(op.Tiles) * CyclesPerOp
		}
	}
	return total
}

// Validate replays the schedule: every op's tile set must be a connected
// region containing both endpoint tiles, free of other qubits along the
// ancilla section, disjoint from the other ops of its layer, and gates
// must respect per-qubit program order and completeness.
func (s *Schedule) Validate(c *circuit.Circuit) error {
	perQubit := make([][]int, c.NumQubits)
	for gi, g := range c.Gates {
		if g.TwoQubit() {
			perQubit[g.Q0] = append(perQubit[g.Q0], gi)
			perQubit[g.Q1] = append(perQubit[g.Q1], gi)
		}
	}
	cursor := make([]int, c.NumQubits)
	executed := map[int]bool{}
	for li, layer := range s.Layers {
		used := map[int]bool{}
		for oi, op := range layer {
			g := c.Gates[op.Gate]
			if !g.TwoQubit() {
				return fmt.Errorf("surgery: layer %d op %d: gate %d not two-qubit", li, oi, op.Gate)
			}
			if executed[op.Gate] {
				return fmt.Errorf("surgery: gate %d executed twice", op.Gate)
			}
			if len(op.Tiles) < 2 {
				return fmt.Errorf("surgery: layer %d op %d: too few tiles", li, oi)
			}
			ctl, tgt := s.Layout.QubitTile[g.Q0], s.Layout.QubitTile[g.Q1]
			if op.Tiles[0] != ctl || op.Tiles[1] != tgt {
				return fmt.Errorf("surgery: layer %d gate %d: endpoints (%d,%d) do not match layout (%d,%d)",
					li, op.Gate, op.Tiles[0], op.Tiles[1], ctl, tgt)
			}
			for _, t := range op.Tiles {
				if t < 0 || t >= s.Grid.Tiles() {
					return fmt.Errorf("surgery: layer %d op %d: tile %d out of range", li, oi, t)
				}
				if used[t] {
					return fmt.Errorf("surgery: layer %d: tile %d used by two ops", li, t)
				}
				used[t] = true
				if !s.Grid.Usable(t) {
					return fmt.Errorf("surgery: layer %d op %d: unusable (reserved/defective) tile %d", li, oi, t)
				}
			}
			for _, t := range op.Tiles[2:] {
				if q := s.Layout.TileQubit[t]; q != -1 {
					return fmt.Errorf("surgery: layer %d op %d: ancilla tile %d holds qubit %d", li, oi, t, q)
				}
			}
			if err := s.checkConnected(op); err != nil {
				return fmt.Errorf("surgery: layer %d op %d: %w", li, oi, err)
			}
			for _, q := range [2]int{g.Q0, g.Q1} {
				lst := perQubit[q]
				if cursor[q] >= len(lst) || lst[cursor[q]] != op.Gate {
					return fmt.Errorf("surgery: layer %d: gate %d out of order on qubit %d", li, op.Gate, q)
				}
			}
			cursor[g.Q0]++
			cursor[g.Q1]++
			executed[op.Gate] = true
		}
	}
	for gi, g := range c.Gates {
		if g.TwoQubit() && !executed[gi] {
			return fmt.Errorf("surgery: gate %d never executed", gi)
		}
	}
	return nil
}

// checkConnected verifies the op's tiles form a connected region under
// 4-adjacency.
func (s *Schedule) checkConnected(op Op) error {
	in := make(map[int]bool, len(op.Tiles))
	for _, t := range op.Tiles {
		in[t] = true
	}
	stack := []int{op.Tiles[0]}
	seen := map[int]bool{op.Tiles[0]: true}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := s.Grid.TileXY(t)
		for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			nx, ny := x+d[0], y+d[1]
			if !s.Grid.InBounds(nx, ny) {
				continue
			}
			nt := s.Grid.TileAt(nx, ny)
			if in[nt] && !seen[nt] {
				seen[nt] = true
				stack = append(stack, nt)
			}
		}
	}
	if len(seen) != len(in) {
		return fmt.Errorf("tile region disconnected (%d of %d reachable)", len(seen), len(in))
	}
	return nil
}

// Result carries the surgery schedule and its metrics.
type Result struct {
	Schedule *Schedule
	Circuit  *circuit.Circuit
	Latency  int
	TileTime int
	Runtime  time.Duration
}

// DilutedGrid returns a grid big enough to hold n qubits at quarter
// density (qubits on even-column, even-row tiles). The remaining tiles —
// every odd row and odd column — form a connected ancilla sea, so any
// qubit pair is routable no matter where the other qubits sit. This 4×
// tile overhead versus braiding's compact grids is precisely the
// hardware cost the braiding-vs-surgery comparison measures.
func DilutedGrid(n int) *grid.Grid {
	side := 1
	for side*side < n {
		side++
	}
	w := 2*side - 1
	if w < 2 {
		w = 2
	}
	return grid.New(w, w)
}

// DilutedPlace places qubits on the even-column, even-row tiles of g,
// ordering qubits by the interaction-queue heuristic of Alg. 1 and
// filling cells in a center-out sweep so heavy qubits sit centrally.
func DilutedPlace(c *circuit.Circuit, g *grid.Grid) (*grid.Layout, error) {
	var cells []int
	for t := 0; t < g.Tiles(); t++ {
		x, y := g.TileXY(t)
		if x%2 == 0 && y%2 == 0 && g.Usable(t) {
			cells = append(cells, t)
		}
	}
	if len(cells) < c.NumQubits {
		return nil, fmt.Errorf("surgery: grid %s has %d checkerboard cells for %d qubits", g, len(cells), c.NumQubits)
	}
	// Center-out order of the checkerboard cells.
	center := g.Center()
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && g.Dist(cells[j], center) < g.Dist(cells[j-1], center); j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
	m := circuit.NewInteractionMatrix(c)
	queue := m.QueueByDegree()
	l := grid.NewLayout(c.NumQubits, g)
	for i, q := range queue {
		l.Assign(q, cells[i], g)
	}
	return l, nil
}

// Map schedules the circuit's two-qubit gates as lattice-surgery
// operations on g under the given layout (use DilutedPlace, or any
// layout leaving routing lanes free). Single-qubit gates are free, as in
// the braiding model.
func Map(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout) (*Result, error) {
	start := time.Now()
	work := c.DecomposeSWAPs()
	s := &Schedule{Grid: g, Layout: layout}

	ql := circuit.NewQubitLists(work)
	cursor := make([]int, work.NumQubits)
	skip1Q := func(q int) {
		lst := ql.Lists[q]
		for cursor[q] < len(lst) && !work.Gates[lst[cursor[q]]].TwoQubit() {
			cursor[q]++
		}
	}
	for q := 0; q < work.NumQubits; q++ {
		skip1Q(q)
	}
	remaining := work.CXCount()
	guard := 0
	for remaining > 0 {
		if guard++; guard > 4*remaining+2*len(work.Gates)+64 {
			return nil, fmt.Errorf("surgery: scheduler stalled with %d gates left", remaining)
		}
		usedTiles := map[int]bool{}
		var layer []Op
		for q := 0; q < work.NumQubits; q++ {
			lst := ql.Lists[q]
			if cursor[q] >= len(lst) {
				continue
			}
			gi := lst[cursor[q]]
			gate := work.Gates[gi]
			if q != gate.Q0 {
				continue
			}
			tq := gate.Q1
			if cursor[tq] >= len(ql.Lists[tq]) || ql.Lists[tq][cursor[tq]] != gi {
				continue
			}
			ctl, tgt := layout.QubitTile[gate.Q0], layout.QubitTile[gate.Q1]
			if usedTiles[ctl] || usedTiles[tgt] {
				continue
			}
			path, ok := routeTiles(g, layout, usedTiles, ctl, tgt)
			if !ok {
				continue
			}
			op := Op{Gate: gi, Tiles: append([]int{ctl, tgt}, path...)}
			for _, t := range op.Tiles {
				usedTiles[t] = true
			}
			layer = append(layer, op)
			cursor[gate.Q0]++
			cursor[gate.Q1]++
			skip1Q(gate.Q0)
			skip1Q(gate.Q1)
			remaining--
		}
		if len(layer) == 0 {
			return nil, fmt.Errorf("surgery: no routable operation among %d pending gates — layout leaves no ancilla lanes", remaining)
		}
		s.Layers = append(s.Layers, layer)
	}
	return &Result{
		Schedule: s,
		Circuit:  work,
		Latency:  s.Latency(),
		TileTime: s.TileTime(),
		Runtime:  time.Since(start),
	}, nil
}

// routeTiles finds a tile path from a neighbor of ctl to a neighbor of
// tgt through free, unused ancilla tiles (excluded: tiles holding qubits,
// reserved tiles, tiles used this layer). Adjacent endpoint tiles need no
// ancilla. Returns the intermediate tiles only.
func routeTiles(g *grid.Grid, layout *grid.Layout, used map[int]bool, ctl, tgt int) ([]int, bool) {
	if g.Dist(ctl, tgt) == 1 {
		return nil, true
	}
	// BFS over free tiles using the shared min-heap for deterministic
	// shortest paths (uniform weights make it Dijkstra ≡ BFS).
	free := func(t int) bool {
		return g.Usable(t) && layout.TileQubit[t] == -1 && !used[t]
	}
	prev := make(map[int]int)
	var h graph.MinHeap
	x, y := g.TileXY(ctl)
	for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
		nx, ny := x+d[0], y+d[1]
		if !g.InBounds(nx, ny) {
			continue
		}
		t := g.TileAt(nx, ny)
		if t == tgt {
			return nil, true
		}
		if free(t) {
			if _, seen := prev[t]; !seen {
				prev[t] = ctl
				h.Push(t, g.Dist(t, tgt))
			}
		}
	}
	for h.Len() > 0 {
		t, _ := h.Pop()
		tx, ty := g.TileXY(t)
		for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			nx, ny := tx+d[0], ty+d[1]
			if !g.InBounds(nx, ny) {
				continue
			}
			nt := g.TileAt(nx, ny)
			if nt == tgt {
				// Reconstruct intermediate tiles.
				var rev []int
				for cur := t; cur != ctl; cur = prev[cur] {
					rev = append(rev, cur)
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			if !free(nt) {
				continue
			}
			if _, seen := prev[nt]; !seen {
				prev[nt] = t
				h.Push(nt, g.Dist(nt, tgt))
			}
		}
	}
	return nil, false
}
