// Package chaos is hilightd's crash/soak harness: it runs a real
// in-process daemon through randomized fault schedules — kill -9-style
// crashes and graceful restarts over one shared journal, mid-request
// client disconnects, slow-loris bodies, injected pass panics and
// stalls (via service.SetChaosHooks) — and asserts the resilience
// invariants the journal, watchdog and recovery middleware promise:
//
//   - no acknowledged job is ever lost: every 202-acked batch reaches
//     "done" with a full result set in some later life;
//   - no acknowledged job is duplicated: the journal never holds two
//     completion records for one (batch, job);
//   - results are deterministic: every sighting of a fingerprint, in
//     any process life, carries byte-identical schedule JSON;
//   - metrics reconcile after every life: requests == ok + failed,
//     batch jobs == succeeded + failed + panicked + canceled, and no
//     gauge is left dangling;
//   - nothing leaks: goroutines return to baseline when the run ends.
//
// Faults are injected through the real HTTP surface and the real
// compile pipeline, never through mocks, so the harness exercises the
// same code paths a production incident would.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"hilight"
	"hilight/internal/obs"
	"hilight/internal/service"
)

// Config shapes one soak run. The zero value is not runnable; use
// Defaults (or the cmd/chaos flags) as a baseline.
type Config struct {
	// Seed fixes the fault schedule; equal seeds give equal schedules.
	Seed int64
	// Cycles is the number of daemon lives (boot ... stop). Each life
	// ends in a crash (probability KillProb) or a graceful shutdown;
	// the final life always stops gracefully after verifying everything.
	Cycles int
	// BatchesPerCycle async batches are submitted per life, each with
	// JobsPerBatch jobs drawn from the small Table 1 benchmarks.
	BatchesPerCycle int
	JobsPerBatch    int
	// JournalDir is the journal shared by every life.
	JournalDir string
	// KillProb is the per-cycle probability of a crash stop.
	KillProb float64
	// StallEvery / PanicEvery inject a watchdog stall / pass panic on
	// every Nth cycle (0 disables that fault).
	StallEvery int
	PanicEvery int
	// WatchdogWindow is the service's stall-detection window.
	WatchdogWindow time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Defaults returns the short-soak configuration used by `make
// chaos-short`: bounded (~30 s with -race), fixed seed, every fault
// class exercised.
func Defaults(journalDir string) Config {
	return Config{
		Seed:            1,
		Cycles:          22,
		BatchesPerCycle: 2,
		JobsPerBatch:    2,
		JournalDir:      journalDir,
		KillProb:        0.5,
		StallEvery:      7,
		PanicEvery:      5,
		// Generous window: under -race with a life's worth of resurrected
		// batches re-running concurrently, a single routing cycle can take
		// a surprising while — a tight window makes the watchdog abort
		// healthy compiles and the soak then measures its own impatience.
		WatchdogWindow: time.Second,
	}
}

// Report is the outcome of a Run. A clean soak has an empty Violations.
type Report struct {
	Cycles, Crashes, Graceful          int
	BatchesAcked, JobsAcked            int
	Stalls, Panics, Disconnects, Loris int
	// Resurrected totals the unfinished batches later lives picked back
	// up from the journal — proof the crash schedule actually interrupted
	// work rather than always landing between batches.
	Resurrected int64
	// Transient counts canceled job outcomes observed in done batches:
	// legitimate (the batch stays unsealed and re-runs next life), but
	// excluded from the determinism ledger.
	Transient int
	// Violations lists every broken invariant, empty when the soak held.
	Violations []string
}

func (r *Report) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// ackedBatch is what a client knows after a 202: the id and the
// fingerprints the ack promised. Everything the harness later verifies
// is phrased against this knowledge.
type ackedBatch struct {
	id  string
	fps []string
}

// outcome is the ledger value for one fingerprint: "ok:" + schedule
// JSON for a success, "err:" + message for a deterministic failure.
type outcome string

// benchPool is the job population: the smallest Table 1 circuits, so a
// soak cycle costs milliseconds of compile time, not seconds.
var benchPool = []string{"rd32_270", "4gt11_82", "4gt5_75", "alu-v0_26"}

// life is one daemon incarnation.
type life struct {
	srv    *service.Server
	hs     *http.Server
	base   string
	m      *obs.Registry
	client *http.Client
}

func boot(cfg *Config) (*life, error) {
	m := obs.NewRegistry()
	srv, err := service.New(service.Config{
		Workers:        2,
		MaxStoredJobs:  4096, // retain everything: the soak verifies old ids
		JournalDir:     cfg.JournalDir,
		WatchdogWindow: cfg.WatchdogWindow,
		Metrics:        m,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: boot: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &life{
		srv: srv, hs: hs,
		base:   "http://" + ln.Addr().String(),
		m:      m,
		client: &http.Client{},
	}, nil
}

// crash emulates kill -9: connections dropped, no drain, journal tail
// beyond the last fsync lost.
func (l *life) crash() {
	l.hs.Close()
	l.srv.Kill()
	l.client.CloseIdleConnections()
}

// stop is the graceful path the real daemon takes on SIGTERM.
func (l *life) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	l.srv.Drain()
	herr := l.hs.Shutdown(ctx)
	serr := l.srv.Shutdown(ctx)
	l.client.CloseIdleConnections()
	if herr != nil {
		return herr
	}
	return serr
}

func (l *life) post(path string, body any) (*http.Response, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := l.client.Post(l.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out, err
}

func (l *life) get(path string) (*http.Response, []byte, error) {
	resp, err := l.client.Get(l.base + path)
	if err != nil {
		return nil, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out, err
}

// pollStatus is the decoded GET /v1/jobs/{id} body.
type pollStatus struct {
	Status  string `json:"status"`
	Count   int    `json:"count"`
	Results []struct {
		Error  string `json:"error"`
		Result *struct {
			Fingerprint string          `json:"fingerprint"`
			Schedule    json.RawMessage `json:"schedule"`
		} `json:"result"`
	} `json:"results"`
}

// Run executes the soak and returns its report. Violations are
// collected, not fatal: the full schedule runs so one broken invariant
// doesn't mask others. Run installs process-global chaos hooks; it must
// not race with another Run in the same process.
func Run(cfg Config) (*Report, error) {
	if cfg.Cycles <= 0 || cfg.JournalDir == "" {
		return nil, fmt.Errorf("chaos: config needs Cycles > 0 and a JournalDir")
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{}
	baseline := runtime.NumGoroutine()

	// The hooks stay installed for the whole run; individual faults arm
	// them for exactly one routing cycle. Arms are only set while the
	// job store is quiesced, so the fault always hits the sync request
	// that armed it.
	var stallArm, panicArm atomic.Int64
	stallFor := 3 * cfg.WatchdogWindow
	service.SetChaosHooks(&service.ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		if panicArm.CompareAndSwap(1, 0) {
			panic("chaos: injected pass panic")
		}
		if stallArm.CompareAndSwap(1, 0) {
			time.Sleep(stallFor)
		}
	}})
	defer service.SetChaosHooks(nil)

	var acked []ackedBatch
	recentFrom := 0 // index in acked of the first batch from the previous life
	ledger := map[string]outcome{} // fingerprint -> first-seen outcome

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		cycleStart := time.Now()
		l, err := boot(&cfg)
		if err != nil {
			return rep, err
		}
		rep.Cycles++
		if fi, err := os.Stat(filepath.Join(cfg.JournalDir, "journal.jsonl")); err == nil {
			logf("cycle %d: boot %s (journal %d KiB)", cycle, time.Since(cycleStart).Round(time.Millisecond), fi.Size()/1024)
		}

		// Replay integrity: the journal a crash left behind must never
		// hold two completions for one job.
		if v, _ := l.m.Snapshot().Counter("journal/duplicate-completions"); v != 0 {
			rep.violatef("cycle %d: journal replay found %d duplicate completions", cycle, v)
		}

		// Phase 0 — settle. Batches acked in the previous life (the ones a
		// crash could have interrupted) are always verified: each must
		// reach "done" in this life with nothing lost and nothing
		// diverging. Older batches are spot-checked — re-downloading every
		// schedule every life would make the soak quadratic — and the
		// final cycle verifies everything ever acknowledged. This also
		// drains resurrected batches, quiescing the store before any
		// fault is armed.
		final := cycle == cfg.Cycles-1
		for idx, ab := range acked {
			if final || idx >= recentFrom || rng.Intn(8) == 0 {
				verifyBatch(l, ab, ledger, rep, cycle)
			}
		}
		recentFrom = len(acked)

		// Phase A — faults against the sync endpoint.
		if cfg.PanicEvery > 0 && cycle%cfg.PanicEvery == cfg.PanicEvery-1 {
			injectPanic(l, &panicArm, rep, cycle)
		}
		if cfg.StallEvery > 0 && cycle%cfg.StallEvery == cfg.StallEvery-1 {
			injectStall(l, &stallArm, rep, cycle)
		}
		switch rng.Intn(3) {
		case 0:
			injectDisconnect(l, rep)
		case 1:
			injectSlowLoris(l, rep, cycle)
		}
		if resp, _, err := l.get("/healthz"); err != nil || resp.StatusCode != http.StatusOK {
			rep.violatef("cycle %d: daemon unhealthy after faults: %v", cycle, err)
		}

		// Phase B — submit fresh batches; the ack (id + fingerprints) is
		// everything the harness remembers, exactly like a real client.
		for b := 0; b < cfg.BatchesPerCycle; b++ {
			ab, ok := submitBatch(l, rng, cfg.JobsPerBatch, rep, cycle)
			if ok {
				acked = append(acked, ab)
				rep.BatchesAcked++
				rep.JobsAcked += len(ab.fps)
			}
		}

		// Phase C — stop. The last cycle always stops gracefully so the
		// journal ends flushed; earlier cycles crash with KillProb.
		if v, _ := l.m.Snapshot().Counter("journal/resurrected-batches"); v > 0 {
			rep.Resurrected += v
		}
		if cycle < cfg.Cycles-1 && rng.Float64() < cfg.KillProb {
			// A victim batch right before the kill: a circuit slow enough
			// (tens to hundreds of ms) that the crash — which lands within
			// a few ms of the fsynced ack — interrupts it mid-compile,
			// forcing the next life to resurrect the batch from the
			// journal. Kept deliberately mid-size: every completed victim
			// schedule lives in the journal forever, and multi-MB journals
			// turn each subsequent boot's replay into seconds.
			victim := []string{"sqrt8_260", "sqrt8_260", "urf2_277"}[rng.Intn(3)]
			req := map[string]any{
				"jobs":    []map[string]any{{"benchmark": victim}},
				"compact": true,
				"seed":    1 + rng.Int63n(4),
			}
			if resp, body, err := l.post("/v1/jobs", req); err == nil && resp.StatusCode == http.StatusAccepted {
				var ack struct {
					ID           string   `json:"id"`
					Fingerprints []string `json:"fingerprints"`
				}
				if json.Unmarshal(body, &ack) == nil && ack.ID != "" {
					acked = append(acked, ackedBatch{id: ack.ID, fps: ack.Fingerprints})
					rep.BatchesAcked++
					rep.JobsAcked += len(ack.Fingerprints)
				}
			}
			l.crash()
			rep.Crashes++
			logf("cycle %d: crash (victim batch %s in flight) [%s]", cycle, victim, time.Since(cycleStart).Round(time.Millisecond))
		} else {
			if err := l.stop(); err != nil {
				rep.violatef("cycle %d: graceful stop failed: %v", cycle, err)
			}
			rep.Graceful++
			logf("cycle %d: graceful stop [%s]", cycle, time.Since(cycleStart).Round(time.Millisecond))
		}
		checkMetricIdentities(l.m, rep, cycle)
	}

	scanJournalForDuplicates(cfg.JournalDir, rep)
	checkGoroutines(baseline, rep)
	logf("soak done: %d cycles (%d crashes, %d graceful), %d batches/%d jobs acked, %d violations",
		rep.Cycles, rep.Crashes, rep.Graceful, rep.BatchesAcked, rep.JobsAcked, len(rep.Violations))
	return rep, nil
}

// verifyBatch polls one acknowledged batch to "done" and checks the
// no-loss and determinism invariants against the ack and the ledger.
func verifyBatch(l *life, ab ackedBatch, ledger map[string]outcome, rep *Report, cycle int) {
	deadline := time.Now().Add(60 * time.Second)
	var st pollStatus
	for {
		resp, body, err := l.get("/v1/jobs/" + ab.id)
		if err != nil {
			rep.violatef("cycle %d: poll %s: %v", cycle, ab.id, err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			rep.violatef("cycle %d: acked batch %s lost: %d %s", cycle, ab.id, resp.StatusCode, body)
			return
		}
		if err := json.Unmarshal(body, &st); err != nil {
			rep.violatef("cycle %d: poll %s: bad body %s", cycle, ab.id, body)
			return
		}
		if st.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			rep.violatef("cycle %d: acked batch %s never finished", cycle, ab.id)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Count != len(ab.fps) || len(st.Results) != len(ab.fps) {
		rep.violatef("cycle %d: batch %s has %d/%d results, acked %d jobs",
			cycle, ab.id, len(st.Results), st.Count, len(ab.fps))
		return
	}
	for i, r := range st.Results {
		var got outcome
		switch {
		case r.Result != nil:
			if r.Result.Fingerprint != ab.fps[i] {
				rep.violatef("cycle %d: batch %s job %d fingerprint %q, acked %q",
					cycle, ab.id, i, r.Result.Fingerprint, ab.fps[i])
				continue
			}
			got = outcome("ok:" + string(r.Result.Schedule))
		case strings.Contains(r.Error, "canceled"):
			// A canceled outcome is transient by contract: the service
			// reports it to live pollers but never journals it, the batch
			// stays unsealed, and the next life re-runs the job. It is an
			// answer, not THE answer — keep it out of the ledger.
			rep.Transient++
			continue
		case r.Error != "":
			got = outcome("err:" + r.Error)
		default:
			rep.violatef("cycle %d: batch %s job %d has no outcome", cycle, ab.id, i)
			continue
		}
		if first, seen := ledger[ab.fps[i]]; !seen {
			ledger[ab.fps[i]] = got
		} else if first != got {
			rep.violatef("cycle %d: fingerprint %s diverged: %s vs first-seen %s",
				cycle, ab.fps[i], clip(got), clip(first))
		}
	}
}

// submitBatch posts a randomized batch — benchmarks from the pool, a
// random seed, sometimes an explicit grid with a random dead tile (the
// defect-churn fault) — and returns what the ack promised.
func submitBatch(l *life, rng *rand.Rand, n int, rep *Report, cycle int) (ackedBatch, bool) {
	if n <= 0 {
		n = 1
	}
	jobs := make([]map[string]any, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, map[string]any{"benchmark": benchPool[rng.Intn(len(benchPool))]})
	}
	req := map[string]any{
		"jobs":    jobs,
		"compact": true,
		"seed":    1 + rng.Int63n(4),
	}
	if rng.Intn(2) == 0 {
		// Defect churn: a 3×3 grid with one random dead tile still fits
		// every 5-qubit pool circuit; the outcome (success or a
		// deterministic routing failure) must be stable per fingerprint.
		for _, j := range jobs {
			j["grid"] = map[string]any{"w": 3, "h": 3}
		}
		req["defects"] = map[string]any{"tiles": []int{rng.Intn(9)}}
	}
	resp, body, err := l.post("/v1/jobs", req)
	if err != nil {
		rep.violatef("cycle %d: submit: %v", cycle, err)
		return ackedBatch{}, false
	}
	if resp.StatusCode != http.StatusAccepted {
		rep.violatef("cycle %d: submit rejected: %d %s", cycle, resp.StatusCode, body)
		return ackedBatch{}, false
	}
	var ack struct {
		ID           string   `json:"id"`
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.ID == "" || len(ack.Fingerprints) != len(jobs) {
		rep.violatef("cycle %d: malformed ack %s", cycle, body)
		return ackedBatch{}, false
	}
	return ackedBatch{id: ack.ID, fps: ack.Fingerprints}, true
}

// injectPanic arms the pass-panic hook and drives a sync compile into
// it: the recovery middleware must answer a 500 JSON envelope and the
// daemon must keep serving.
func injectPanic(l *life, arm *atomic.Int64, rep *Report, cycle int) {
	rep.Panics++
	arm.Store(1)
	resp, body, err := l.post("/v1/compile", map[string]any{"benchmark": benchPool[0], "no_cache": true})
	if !arm.CompareAndSwap(1, 0) { // the hook consumed the arm: the panic really fired
		if err != nil {
			rep.violatef("cycle %d: panic fault: transport error %v (want a 500 envelope)", cycle, err)
			return
		}
		if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "injected pass panic") {
			rep.violatef("cycle %d: panic fault answered %d %s, want 500 envelope", cycle, resp.StatusCode, body)
		}
		return
	}
	// Arm never consumed (compile failed before routing); disarmed above.
	rep.violatef("cycle %d: panic fault never reached a routing cycle (%v, %d)", cycle, err, statusOf(resp))
}

// injectStall arms the stall hook (a sleep several watchdog windows
// long) and asserts the watchdog aborts the compile with 504.
func injectStall(l *life, arm *atomic.Int64, rep *Report, cycle int) {
	rep.Stalls++
	arm.Store(1)
	resp, body, err := l.post("/v1/compile", map[string]any{"benchmark": benchPool[1], "no_cache": true})
	if !arm.CompareAndSwap(1, 0) {
		if err != nil {
			rep.violatef("cycle %d: stall fault: transport error %v (want 504)", cycle, err)
			return
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			rep.violatef("cycle %d: stall fault answered %d %s, want 504", cycle, resp.StatusCode, body)
		}
		if v, _ := l.m.Snapshot().Counter("service/watchdog/fired"); v < 1 {
			rep.violatef("cycle %d: watchdog never fired on a stalled compile", cycle)
		}
		return
	}
	rep.violatef("cycle %d: stall fault never reached a routing cycle (%v, %d)", cycle, err, statusOf(resp))
}

// injectDisconnect opens a sync compile and walks away mid-request: the
// server must classify it (499 internally) and carry on.
func injectDisconnect(l *life, rep *Report) {
	rep.Disconnects++
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(map[string]any{"benchmark": "urf1_278", "no_cache": true})
	req, _ := http.NewRequestWithContext(ctx, "POST", l.base+"/v1/compile", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if resp, err := l.client.Do(req); err == nil {
		// The compile beat the 2 ms fuse; fine, nothing to assert.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// injectSlowLoris dribbles half a request body over a raw connection
// and hangs up: the server must shed the connection without wedging.
func injectSlowLoris(l *life, rep *Report, cycle int) {
	rep.Loris++
	conn, err := net.DialTimeout("tcp", strings.TrimPrefix(l.base, "http://"), time.Second)
	if err != nil {
		rep.violatef("cycle %d: slow-loris dial: %v", cycle, err)
		return
	}
	fmt.Fprintf(conn, "POST /v1/compile HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 512\r\n\r\n{\"benchm")
	time.Sleep(20 * time.Millisecond)
	conn.Close()
}

// checkMetricIdentities asserts the counter algebra after a life ended:
// every request and batch job landed in exactly one terminal bucket,
// and no in-flight gauge dangles.
func checkMetricIdentities(m *obs.Registry, rep *Report, cycle int) {
	snap := m.Snapshot()
	reqs, _ := snap.Counter("service/requests")
	ok, _ := snap.Counter("service/requests-ok")
	failed, _ := snap.Counter("service/requests-failed")
	if reqs != ok+failed {
		rep.violatef("cycle %d: requests %d != ok %d + failed %d", cycle, reqs, ok, failed)
	}
	jobs, _ := snap.Counter("batch/jobs")
	var sum int64
	for _, name := range []string{"batch/jobs-succeeded", "batch/jobs-failed", "batch/jobs-panicked", "batch/jobs-canceled"} {
		v, _ := snap.Counter(name)
		sum += v
	}
	if jobs != sum {
		rep.violatef("cycle %d: batch/jobs %d != terminal sum %d", cycle, jobs, sum)
	}
	if v, _ := snap.Gauge("batch/inflight"); v != 0 {
		rep.violatef("cycle %d: batch/inflight = %d after stop", cycle, v)
	}
	if v, _ := snap.Gauge("jobs/batches-active"); v != 0 {
		rep.violatef("cycle %d: jobs/batches-active = %d after stop", cycle, v)
	}
}

// scanJournalForDuplicates parses the final journal file directly (as
// generic JSON, independent of the service's own reader) and asserts at
// most one completion record per (batch, job).
func scanJournalForDuplicates(dir string, rep *Report) {
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		rep.violatef("final journal unreadable: %v", err)
		return
	}
	seen := map[string]int{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // a torn tail is legal; duplicates are not
		}
		if rec["kind"] == "job" {
			job, _ := rec["job"].(float64)
			seen[fmt.Sprintf("%v#%d", rec["id"], int(job))]++
		}
	}
	for key, n := range seen {
		if n > 1 {
			rep.violatef("journal holds %d completion records for %s", n, key)
		}
	}
}

// checkGoroutines waits for the process to settle back to its baseline
// goroutine count (small slack for runtime helpers).
func checkGoroutines(baseline int, rep *Report) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			rep.violatef("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf[:m])
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// clip truncates an outcome for a violation message.
func clip(o outcome) string {
	if len(o) > 120 {
		return string(o[:120]) + "..."
	}
	return string(o)
}

func statusOf(resp *http.Response) int {
	if resp == nil {
		return 0
	}
	return resp.StatusCode
}
