package chaos

import (
	"testing"
)

// TestChaosShort is the bounded soak behind `make chaos-short`: the
// default fault schedule (fixed seed, ≥ 20 kill/restart cycles, every
// fault class) over a throwaway journal, meant to run in ~30 s under
// -race. Any violated invariant fails the test with the full list.
func TestChaosShort(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := Defaults(t.TempDir())
	if testing.Verbose() {
		cfg.Log = testWriter{t}
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak did not run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Crashes == 0 || rep.Graceful == 0 {
		t.Errorf("schedule exercised %d crashes / %d graceful stops; want both > 0", rep.Crashes, rep.Graceful)
	}
	if rep.Cycles < 20 {
		t.Errorf("soak ran %d cycles, want ≥ 20", rep.Cycles)
	}
	if rep.Crashes > 0 && rep.Resurrected == 0 {
		t.Error("crashes never interrupted a batch: journal resurrection was not exercised")
	}
	if rep.Stalls == 0 || rep.Panics == 0 || rep.Disconnects+rep.Loris == 0 {
		t.Errorf("fault classes missed: %d stalls, %d panics, %d disconnects, %d loris",
			rep.Stalls, rep.Panics, rep.Disconnects, rep.Loris)
	}
	t.Logf("soak: %d cycles (%d crashes), %d batches / %d jobs acked, %d batches resurrected",
		rep.Cycles, rep.Crashes, rep.BatchesAcked, rep.JobsAcked, rep.Resurrected)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestSessionChurn is the bounded defect-churn session soak behind
// `make session-smoke`: one editing session streams gate appends and
// defect-map updates at a daemon that keeps getting kill -9'd over a
// shared journal. Any violated invariant fails the test.
func TestSessionChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("session soak skipped in -short mode")
	}
	cfg := SessionDefaults(t.TempDir())
	if testing.Verbose() {
		cfg.Log = testWriter{t}
	}
	rep, err := RunSessions(cfg)
	if err != nil {
		t.Fatalf("session soak did not run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Edits == 0 || rep.Warm == 0 {
		t.Errorf("soak made %d edits with %d warm replays; want both > 0", rep.Edits, rep.Warm)
	}
	if rep.Feeds == 0 || rep.FeedRecompiles == 0 {
		t.Errorf("soak fed %d defect maps with %d recompiles; want both > 0", rep.Feeds, rep.FeedRecompiles)
	}
	if rep.Crashes > 0 && rep.Resurrections == 0 {
		t.Error("crashes never forced a journal-resurrected session parent")
	}
	t.Logf("session soak: %d cycles (%d crashes), %d edits (%d warm/%d cold), %d feeds (%d recompiles), %d resurrections",
		rep.Cycles, rep.Crashes, rep.Edits, rep.Warm, rep.ColdFallbacks, rep.Feeds, rep.FeedRecompiles, rep.Resurrections)
}
