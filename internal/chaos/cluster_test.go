package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hilight"
	"hilight/internal/cluster"
	"hilight/internal/obs"
	"hilight/internal/service"
)

// TestClusterSoak is the multi-node soak behind `make cluster-smoke`:
// one coordinator over three in-process workers, a worker killed in the
// middle of an acked batch. Invariants:
//
//   - no acked job is lost — every unit of every acked batch reaches a
//     terminal result even though the worker running some of them died;
//   - the coordinator stops routing to the dead worker within a probe
//     interval or two (the worker-up gauge drops, the ring reshards);
//   - repeated fingerprints hit the sharded caches at least as often as
//     a single node serving the same sequence — scaling out does not
//     cost hit rate.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short mode")
	}
	const probe = 50 * time.Millisecond

	// Slow every routing cycle a little so batches are reliably still in
	// flight when the kill lands. Applies to every in-process node —
	// cluster workers and the single-node reference alike.
	service.SetChaosHooks(&service.ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		time.Sleep(200 * time.Microsecond)
	}})
	t.Cleanup(func() { service.SetChaosHooks(nil) })

	// Three workers, each with its own registry so per-node cache
	// traffic is observable the same way /metrics exposes it.
	var workers []*cluster.LocalWorker
	var regs []*obs.Registry
	var urls []string
	for i := 0; i < 3; i++ {
		reg := obs.NewRegistry()
		w, err := cluster.StartLocalWorker(fmt.Sprintf("w%d", i+1), service.Config{Metrics: reg})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		defer w.Kill()
		workers = append(workers, w)
		regs = append(regs, reg)
		urls = append(urls, w.URL)
	}
	cm := obs.NewRegistry()
	co, err := cluster.New(cluster.Config{Workers: urls, ProbeInterval: probe, Metrics: cm})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = co.Shutdown(ctx)
	}()

	batch := func(n, seed int) map[string]any {
		jobs := make([]any, n)
		for i := range jobs {
			jobs[i] = map[string]any{
				"benchmark": "QFT-10",
				"grid":      map[string]any{"w": 7 + i%6, "h": 7 + i%5},
			}
		}
		return map[string]any{"jobs": jobs, "seed": seed}
	}

	// Phase 1 — hit-rate parity. The same batch twice through the
	// cluster: run one misses everywhere, run two must be all hits even
	// though the units scattered across three caches, because routing is
	// deterministic on the fingerprint.
	const units = 12
	submit := func(base string, body map[string]any) string {
		t.Helper()
		resp, ack := soakPost(t, base+"/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d: %s", resp.StatusCode, ack)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(ack, &sub); err != nil {
			t.Fatal(err)
		}
		return sub.ID
	}
	waitDone := func(base, id string) []byte {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			resp, body := soakGet(t, base+"/v1/jobs/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll %s: %d: %s", id, resp.StatusCode, body)
			}
			var st struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			if st.Status == "done" {
				return body
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", id)
		return nil
	}
	clusterHits := func() int64 {
		var n int64
		for _, reg := range regs {
			if v, ok := reg.Snapshot().Counter("cache/hits"); ok {
				n += v
			}
		}
		return n
	}

	waitDone(ts.URL, submit(ts.URL, batch(units, 1)))
	before := clusterHits()
	waitDone(ts.URL, submit(ts.URL, batch(units, 1)))
	clusterRepeatHits := clusterHits() - before

	// The single-node reference for the same sequence.
	refReg := obs.NewRegistry()
	ref, err := cluster.StartLocalWorker("ref", service.Config{Metrics: refReg})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Kill()
	waitDone(ref.URL, submit(ref.URL, batch(units, 1)))
	refBefore, _ := refReg.Snapshot().Counter("cache/hits")
	waitDone(ref.URL, submit(ref.URL, batch(units, 1)))
	refAfter, _ := refReg.Snapshot().Counter("cache/hits")
	if refRepeatHits := refAfter - refBefore; clusterRepeatHits < refRepeatHits {
		t.Errorf("repeat-batch cache hits: cluster %d < single node %d — sharding lost hit rate",
			clusterRepeatHits, refRepeatHits)
	}

	// Phase 2 — kill a worker mid-batch. Fresh fingerprints so every
	// unit really compiles (and therefore takes long enough to be in
	// flight when the worker dies).
	id := submit(ts.URL, batch(24, 99))
	time.Sleep(30 * time.Millisecond) // let dispatch start
	killedAt := time.Now()
	workers[1].Kill()

	final := waitDone(ts.URL, id)
	var st struct {
		Results []struct {
			Error  string          `json:"error,omitempty"`
			Result json.RawMessage `json:"result,omitempty"`
		} `json:"results"`
	}
	if err := json.Unmarshal(final, &st); err != nil {
		t.Fatalf("final poll: %v: %s", err, final)
	}
	if len(st.Results) != 24 {
		t.Fatalf("acked 24 units, final poll has %d results", len(st.Results))
	}
	for i, r := range st.Results {
		if r.Error != "" {
			t.Errorf("acked unit %d lost to the kill: %s", i, r.Error)
		}
		if len(r.Result) == 0 && r.Error == "" {
			t.Errorf("acked unit %d has neither result nor error", i)
		}
	}

	// The coordinator noticed within the probe budget. waitDone already
	// bounded the wall clock; here we pin the detection itself.
	deadline := killedAt.Add(10 * probe)
	for {
		if v, _ := cm.Snapshot().Gauge("cluster/worker-up"); v == 2 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := cm.Snapshot().Gauge("cluster/worker-up")
			t.Fatalf("worker-up still %d well past the probe budget", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := cm.Snapshot()
	if v, _ := snap.Counter("cluster/hash-moves"); v == 0 {
		t.Error("ring never resharded after the kill")
	}
	if v, _ := snap.Counter("cluster/requeues"); v == 0 {
		t.Log("note: kill landed between dispatches (no requeues needed)")
	}
	req, _ := snap.Counter("cluster/requeues")
	steals, _ := snap.Counter("cluster/steals")
	done, _ := snap.Counter("cluster/units-done")
	t.Logf("soak: %d units done, %d requeues, %d steals, repeat hits cluster=%d single=%d",
		done, req, steals, clusterRepeatHits, refAfter-refBefore)
}

func soakPost(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func soakGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}
