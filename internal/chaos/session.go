// Defect-churn session soak: one logical editing session — a client
// appending gates and streaming full-replacement defect maps — runs
// against a live daemon across kill -9 crashes over one shared journal.
// The invariants are the session engine's promises:
//
//   - every recompiled schedule validates against the circuit the
//     client actually sent (rebuilt client-side through the same
//     SWAP-decomposition + QCO the daemon applies);
//   - every schedule routes around every defect in the current map —
//     no braid path through a dead vertex or channel, no endpoint or
//     placed qubit on a dead tile;
//   - no acknowledged session is lost: a 200 session response is
//     fsynced to the journal before the ack, so the child fingerprint
//     must resolve as a parent in every later life, crash or not;
//   - a defect feed never silently drops the session head: the old
//     fingerprint appears in the feed's mapping, and the session
//     continues from the remapped head.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"hilight"
	"hilight/internal/session"
)

// SessionConfig shapes a defect-churn session soak. The zero value is
// not runnable; use SessionDefaults as a baseline.
type SessionConfig struct {
	// Seed fixes the edit/defect/crash schedule.
	Seed int64
	// Cycles is the number of daemon lives over the shared journal.
	Cycles int
	// EditsPerCycle session recompiles (one appended gate each) are
	// issued per life; FeedsPerCycle defect-map updates interleave.
	EditsPerCycle int
	FeedsPerCycle int
	// JournalDir is the journal shared by every life.
	JournalDir string
	// KillProb is the per-cycle probability of a crash stop.
	KillProb float64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// SessionDefaults returns the bounded configuration used by `make
// session-smoke`: fixed seed, every life edits and feeds, about half
// the lives end in a crash.
func SessionDefaults(journalDir string) SessionConfig {
	return SessionConfig{
		Seed:          1,
		Cycles:        6,
		EditsPerCycle: 4,
		FeedsPerCycle: 2,
		JournalDir:    journalDir,
		KillProb:      0.5,
	}
}

// SessionReport is the outcome of RunSessions. A clean soak has an
// empty Violations.
type SessionReport struct {
	Cycles, Crashes, Graceful int
	// Edits counts 200-acked session recompiles; Warm the subset that
	// replayed parent layers, ColdFallbacks the subset the engine
	// silently recompiled cold.
	Edits, Warm, ColdFallbacks int
	// Feeds counts defect-map updates, FeedRecompiles the cache entries
	// the daemon recompiled under new maps, FeedFailures the entries it
	// evicted but could not recompile (reported, then recovered cold).
	Feeds, FeedRecompiles, FeedFailures int
	// Resurrections counts lives that successfully continued a session
	// whose parent fingerprint only survived through the journal.
	Resurrections int
	Violations    []string
}

func (r *SessionReport) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// sessionState is everything the soak client carries across lives:
// exactly what a real editor process would hold.
type sessionState struct {
	circ    *hilight.Circuit   // current edited circuit (input form)
	headFP  string             // fingerprint of its latest compile
	acked   bool               // headFP was acked by a session response (journaled)
	defects *hilight.DefectMap // current full-replacement defect map
	sched   *hilight.Schedule  // latest schedule (source of dead-vertex picks)
}

// sessionResp is the subset of the compile response the soak inspects.
type sessionResp struct {
	Fingerprint string          `json:"fingerprint"`
	Cached      bool            `json:"cached"`
	WarmCycles  int             `json:"warm_cycles"`
	Parent      string          `json:"parent"`
	Schedule    json.RawMessage `json:"schedule"`
}

// feedResp mirrors the daemon's /v1/defects sweep summary.
type feedResp struct {
	Checked      int               `json:"checked"`
	Conflicting  int               `json:"conflicting"`
	Recompiled   int               `json:"recompiled"`
	Failed       int               `json:"failed"`
	Fingerprints map[string]string `json:"fingerprints"`
}

// RunSessions executes the defect-churn session soak and returns its
// report. Violations are collected, not fatal, so one broken invariant
// doesn't mask others.
func RunSessions(cfg SessionConfig) (*SessionReport, error) {
	if cfg.Cycles <= 0 || cfg.EditsPerCycle <= 0 || cfg.JournalDir == "" {
		return nil, fmt.Errorf("chaos: session config needs Cycles > 0, EditsPerCycle > 0 and a JournalDir")
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &SessionReport{}
	st := &sessionState{circ: hilight.QFT(6)}
	// The soak reuses the crash harness's daemon lifecycle; the session
	// traffic is all sync, so the watchdog window just needs headroom.
	bootCfg := &Config{JournalDir: cfg.JournalDir, WatchdogWindow: time.Second}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		start := time.Now()
		l, err := boot(bootCfg)
		if err != nil {
			return rep, err
		}
		rep.Cycles++
		crashedIn := cycle > 0 && st.acked

		if st.headFP == "" {
			// Life 0 opens the session with a cold compile.
			if !sessionCold(l, st, rep, cycle) {
				l.stop()
				return rep, fmt.Errorf("chaos: session soak could not open (cycle %d): %v", cycle, rep.Violations)
			}
		}

		feeds := cfg.FeedsPerCycle
		for e := 0; e < cfg.EditsPerCycle; e++ {
			first := e == 0
			if sessionEdit(l, rng, st, rep, cycle) && first && crashedIn {
				// The parent only existed in the journal when this life
				// booted; continuing the session proves the replay.
				rep.Resurrections++
			}
			if feeds > 0 && (e == cfg.EditsPerCycle-1 || rng.Intn(2) == 0) {
				sessionFeed(l, rng, st, rep, cycle)
				feeds--
			}
		}

		if cycle < cfg.Cycles-1 && rng.Float64() < cfg.KillProb {
			l.crash()
			rep.Crashes++
			logf("cycle %d: crash, session head %s [%s]", cycle, clipFP(st.headFP), time.Since(start).Round(time.Millisecond))
		} else {
			if err := l.stop(); err != nil {
				rep.violatef("cycle %d: graceful stop failed: %v", cycle, err)
			}
			rep.Graceful++
			logf("cycle %d: graceful stop, session head %s [%s]", cycle, clipFP(st.headFP), time.Since(start).Round(time.Millisecond))
		}
	}
	logf("session soak done: %d cycles (%d crashes), %d edits (%d warm, %d cold), %d feeds (%d recompiles), %d resurrections, %d violations",
		rep.Cycles, rep.Crashes, rep.Edits, rep.Warm, rep.ColdFallbacks, rep.Feeds, rep.FeedRecompiles, rep.Resurrections, len(rep.Violations))
	return rep, nil
}

// compileBody builds the compile request for the session's current
// circuit and defect map.
func compileBody(st *sessionState) map[string]any {
	body := map[string]any{"qasm": hilight.FormatQASM(st.circ)}
	if !st.defects.Empty() {
		body["defects"] = st.defects
	}
	return body
}

// sessionCold opens the session: a plain compile of the base circuit.
func sessionCold(l *life, st *sessionState, rep *SessionReport, cycle int) bool {
	resp, body, err := l.post("/v1/compile", compileBody(st))
	if err != nil || resp.StatusCode != http.StatusOK {
		rep.violatef("cycle %d: session open: %v %d %s", cycle, err, statusOf(resp), body)
		return false
	}
	var sr sessionResp
	if err := json.Unmarshal(body, &sr); err != nil {
		rep.violatef("cycle %d: session open: bad body %s", cycle, body)
		return false
	}
	st.headFP = sr.Fingerprint
	st.acked = false // cold compiles are not journaled; only sessions are
	return checkSchedule(&sr, st, rep, cycle, "open")
}

// sessionEdit appends one random CX and recompiles warm against the
// session head. Returns whether the daemon honored the parent.
func sessionEdit(l *life, rng *rand.Rand, st *sessionState, rep *SessionReport, cycle int) bool {
	n := st.circ.NumQubits
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	next := st.circ.Clone()
	next.Add2(hilight.CX, a, b)

	bodyMap := map[string]any{"qasm": hilight.FormatQASM(next)}
	if !st.defects.Empty() {
		bodyMap["defects"] = st.defects
	}
	data, _ := json.Marshal(bodyMap)
	req, _ := http.NewRequest("POST", l.base+"/v1/compile", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-Fingerprint-Match", st.headFP)
	resp, err := l.client.Do(req)
	if err != nil {
		rep.violatef("cycle %d: session edit: %v", cycle, err)
		return false
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusPreconditionFailed {
		// The one way this may legally happen is a crash outrunning a
		// never-acked head; an acked head lost to a crash is THE bug
		// this soak exists to catch.
		if st.acked {
			rep.violatef("cycle %d: acked session head %s lost across restart (412)", cycle, clipFP(st.headFP))
		}
		// Recover cold so the soak keeps probing later cycles.
		st.circ = next
		sessionCold(l, st, rep, cycle)
		return false
	}
	if resp.StatusCode != http.StatusOK {
		rep.violatef("cycle %d: session edit: %d %s", cycle, resp.StatusCode, body)
		return false
	}
	var sr sessionResp
	if err := json.Unmarshal(body, &sr); err != nil {
		rep.violatef("cycle %d: session edit: bad body %s", cycle, body)
		return false
	}
	rep.Edits++
	if !sr.Cached {
		if sr.Parent != st.headFP {
			rep.violatef("cycle %d: session parent %q, requested %q", cycle, sr.Parent, st.headFP)
		}
		if sr.WarmCycles > 0 {
			rep.Warm++
		} else {
			rep.ColdFallbacks++
		}
	}
	st.circ = next
	st.headFP = sr.Fingerprint
	st.acked = true // the 200 was fsynced to the journal before the ack
	return checkSchedule(&sr, st, rep, cycle, "edit")
}

// sessionFeed posts a full-replacement defect map — usually one dead
// vertex picked off the latest schedule's braid paths (guaranteed to
// conflict), sometimes a heal-everything empty map — and follows the
// head fingerprint through the daemon's remapping.
func sessionFeed(l *life, rng *rand.Rand, st *sessionState, rep *SessionReport, cycle int) {
	dm := &hilight.DefectMap{}
	if rng.Intn(4) != 0 && st.sched != nil {
		if v, ok := pickRoutedVertex(rng, st.sched); ok {
			dm.Vertices = []int{v}
		}
	}
	resp, body, err := l.post("/v1/defects", map[string]any{"defects": dm})
	if err != nil || resp.StatusCode != http.StatusOK {
		rep.violatef("cycle %d: defect feed: %v %d %s", cycle, err, statusOf(resp), body)
		return
	}
	var fr feedResp
	if err := json.Unmarshal(body, &fr); err != nil {
		rep.violatef("cycle %d: defect feed: bad body %s", cycle, body)
		return
	}
	rep.Feeds++
	rep.FeedRecompiles += fr.Recompiled
	rep.FeedFailures += fr.Failed
	st.defects = dm

	newFP, remapped := fr.Fingerprints[st.headFP]
	if remapped && newFP != "" {
		st.headFP = newFP
		st.acked = true // feed recompiles are journaled like any session
	}
	if remapped && newFP == "" {
		// The daemon evicted the head and reported it could not rebuild
		// it; the loss was announced, so recovering cold is legitimate.
		sessionCold(l, st, rep, cycle)
		return
	}

	// Whether remapped or untouched, the head must now be servable and
	// consistent with the fed map.
	resp, body, err = l.post("/v1/compile", compileBody(st))
	if err != nil || resp.StatusCode != http.StatusOK {
		rep.violatef("cycle %d: post-feed compile: %v %d %s", cycle, err, statusOf(resp), body)
		return
	}
	var sr sessionResp
	if err := json.Unmarshal(body, &sr); err != nil {
		rep.violatef("cycle %d: post-feed compile: bad body %s", cycle, body)
		return
	}
	st.headFP = sr.Fingerprint
	checkSchedule(&sr, st, rep, cycle, "post-feed")
}

// checkSchedule asserts the two schedule invariants on a compile
// response: it validates against the circuit the client sent (rebuilt
// through the daemon's own working-circuit transform) and routes clear
// of every current defect.
func checkSchedule(sr *sessionResp, st *sessionState, rep *SessionReport, cycle int, what string) bool {
	schd, err := hilight.DecodeScheduleJSON(sr.Schedule)
	if err != nil {
		rep.violatef("cycle %d: %s schedule undecodable: %v", cycle, what, err)
		return false
	}
	working := session.WorkingCircuit(st.circ, true)
	if err := schd.Validate(working); err != nil {
		rep.violatef("cycle %d: %s schedule invalid for %s: %v", cycle, what, clipFP(sr.Fingerprint), err)
		return false
	}
	if v, kind := scheduleTouchesDefect(schd, st.defects); kind != "" {
		rep.violatef("cycle %d: %s schedule %s routes through dead %s %d", cycle, what, clipFP(sr.Fingerprint), kind, v)
		return false
	}
	st.sched = schd
	return true
}

// scheduleTouchesDefect reports the first dead element a schedule uses:
// a placed qubit or braid endpoint on a dead tile, a path through a
// dead vertex, or a hop across a dead channel.
func scheduleTouchesDefect(s *hilight.Schedule, dm *hilight.DefectMap) (int, string) {
	if dm.Empty() {
		return 0, ""
	}
	deadTile := map[int]bool{}
	for _, t := range dm.Tiles {
		deadTile[t] = true
	}
	deadVertex := map[int]bool{}
	for _, v := range dm.Vertices {
		deadVertex[v] = true
	}
	deadChannel := map[[2]int]bool{}
	for _, ch := range dm.Channels {
		deadChannel[[2]int{ch[0], ch[1]}] = true
		deadChannel[[2]int{ch[1], ch[0]}] = true
	}
	if s.Initial != nil {
		for _, t := range s.Initial.QubitTile {
			if deadTile[t] {
				return t, "tile"
			}
		}
	}
	for _, layer := range s.Layers {
		for _, b := range layer {
			if deadTile[b.CtlTile] {
				return b.CtlTile, "tile"
			}
			if deadTile[b.TgtTile] {
				return b.TgtTile, "tile"
			}
			for i, v := range b.Path {
				if deadVertex[v] {
					return v, "vertex"
				}
				if i > 0 && deadChannel[[2]int{b.Path[i-1], v}] {
					return v, "channel"
				}
			}
		}
	}
	return 0, ""
}

// pickRoutedVertex returns a random vertex some braid path actually
// visits, so the next feed is guaranteed to conflict with the cache.
func pickRoutedVertex(rng *rand.Rand, s *hilight.Schedule) (int, bool) {
	var all []int
	for _, layer := range s.Layers {
		for _, b := range layer {
			all = append(all, b.Path...)
		}
	}
	if len(all) == 0 {
		return 0, false
	}
	return all[rng.Intn(len(all))], true
}

func clipFP(fp string) string {
	if len(fp) > 18 {
		return fp[:18] + "…"
	}
	return fp
}
