package errmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLogicalErrorScaling(t *testing.T) {
	p := Default()
	// Exponential suppression: each +2 in distance multiplies the error
	// by p/p_th.
	e3 := p.LogicalErrorPerTileCycle(3)
	e5 := p.LogicalErrorPerTileCycle(5)
	if ratio := e5 / e3; math.Abs(ratio-p.PhysError/p.Threshold) > 1e-12 {
		t.Errorf("suppression ratio = %g, want %g", ratio, p.PhysError/p.Threshold)
	}
	if e3 >= p.Prefactor {
		t.Errorf("d=3 error %g not below prefactor", e3)
	}
}

func TestEstimateBasic(t *testing.T) {
	rep, err := Estimate(16, 100, 1e-2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distance < 3 || rep.Distance%2 == 0 {
		t.Errorf("distance = %d", rep.Distance)
	}
	if rep.LogicalError > rep.Budget {
		t.Errorf("error %g exceeds budget %g", rep.LogicalError, rep.Budget)
	}
	if rep.PhysicalQubits < 16*2*rep.Distance*rep.Distance {
		t.Errorf("physical qubits %d implausibly low for d=%d", rep.PhysicalQubits, rep.Distance)
	}
	if rep.CodeCycles != int64(100*rep.Distance) {
		t.Errorf("code cycles = %d", rep.CodeCycles)
	}
	if rep.WallClock != time.Duration(rep.CodeCycles)*time.Microsecond {
		t.Errorf("wall clock = %v", rep.WallClock)
	}
	// Minimality: d−2 must miss the budget.
	if rep.Distance > 3 {
		d := rep.Distance - 2
		vol := 16.0 * float64(100*d)
		if vol*Default().LogicalErrorPerTileCycle(d) <= rep.Budget {
			t.Errorf("distance %d not minimal", rep.Distance)
		}
	}
}

func TestEstimateZeroLatency(t *testing.T) {
	rep, err := Estimate(9, 0, 1e-3, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distance != 3 && rep.Distance%2 == 0 {
		t.Errorf("distance = %d", rep.Distance)
	}
	if rep.WallClock != 0 {
		t.Errorf("wall clock = %v for zero latency", rep.WallClock)
	}
}

func TestEstimateRejectsBadInput(t *testing.T) {
	if _, err := Estimate(0, 10, 1e-2, Params{}); err == nil {
		t.Error("zero tiles accepted")
	}
	if _, err := Estimate(10, 10, 0, Params{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Estimate(10, 10, 1.5, Params{}); err == nil {
		t.Error("budget > 1 accepted")
	}
	if _, err := Estimate(10, 10, 1e-2, Params{PhysError: 0.02, Threshold: 0.01}); err == nil {
		t.Error("above-threshold physical error accepted")
	}
}

func TestEstimateImpossibleBudget(t *testing.T) {
	// Near-threshold hardware with a huge run and a tiny budget: no
	// distance under the cap can satisfy it.
	p := Params{PhysError: 9.9e-3, Threshold: 1e-2, MaxDistance: 11}
	if _, err := Estimate(1000, 1_000_000, 1e-15, p); err == nil {
		t.Error("impossible budget accepted")
	}
}

// Property: distance is monotone — tighter budgets and bigger volumes
// never shrink it; the reported error never exceeds the budget.
func TestEstimateMonotoneProperty(t *testing.T) {
	f := func(tilesSeed, latSeed uint8) bool {
		tiles := 1 + int(tilesSeed)%200
		latency := int(latSeed) * 10
		budgets := []float64{1e-1, 1e-3, 1e-6, 1e-9}
		prev := 0
		for _, b := range budgets {
			rep, err := Estimate(tiles, latency, b, Params{})
			if err != nil {
				return false
			}
			if rep.Distance < prev {
				return false
			}
			if rep.LogicalError > b {
				return false
			}
			prev = rep.Distance
		}
		// Doubling the volume cannot shrink the distance.
		a, err1 := Estimate(tiles, latency, 1e-6, Params{})
		b, err2 := Estimate(tiles*2, latency*2+1, 1e-6, Params{})
		return err1 == nil && err2 == nil && b.Distance >= a.Distance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reserved tiles contribute no failure volume — the distance and failure
// probability match the compute-only estimate — but they do cost
// physical qubits, broken out in ReservedQubits.
func TestEstimateReservedTiles(t *testing.T) {
	base, err := Estimate(20, 100, 1e-6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateReserved(20, 12, 100, 1e-6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distance != base.Distance || rep.LogicalError != base.LogicalError {
		t.Errorf("reserved tiles changed the sizing: d=%d err=%g, want d=%d err=%g",
			rep.Distance, rep.LogicalError, base.Distance, base.LogicalError)
	}
	if rep.ReservedQubits <= 0 || rep.PhysicalQubits <= base.PhysicalQubits {
		t.Errorf("reserved tiles cost no qubits: %+v (base %d)", rep, base.PhysicalQubits)
	}
	// Estimate is the reserved=0 special case.
	if base.ReservedQubits != 0 {
		t.Errorf("Estimate reports %d reserved qubits, want 0", base.ReservedQubits)
	}
	// A whole-grid (pre-fix) estimate at the same tile count must never
	// report a smaller distance than the compute-only one.
	whole, err := Estimate(32, 100, 1e-6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Distance < rep.Distance {
		t.Errorf("inflated volume shrank the distance: %d < %d", whole.Distance, rep.Distance)
	}
	// Negative reserved counts are rejected.
	if _, err := EstimateReserved(20, -1, 100, 1e-6, Params{}); err == nil {
		t.Error("negative reserved tile count accepted")
	}
}
