// Package errmodel turns braiding schedules into physical resource
// estimates: the code distance needed to execute a schedule within a
// logical error budget, the physical qubit count that distance implies,
// and the wall-clock execution time. It closes the loop from the paper's
// cycle-count latency metric to hardware numbers a platform architect
// can use.
//
// Model. The standard surface-code scaling law (Fowler et al. 2012): a
// logical qubit patch of distance d run for one code cycle fails with
// probability ≈ A·(p/p_th)^((d+1)/2), where p is the physical error rate
// and p_th the threshold. A schedule's space-time volume is
// tiles × latency braiding cycles, each braiding cycle lasting d code
// cycles (the defect must move at most d per code cycle to stay
// protected), so the total failure budget constrains d.
package errmodel

import (
	"fmt"
	"math"
	"time"
)

// Params configures the error model. Zero fields take the Default values.
type Params struct {
	// PhysError is the physical per-operation error rate p (e.g. 1e-3).
	PhysError float64
	// Threshold is the surface-code threshold p_th (≈ 1e-2).
	Threshold float64
	// Prefactor is the A in A·(p/p_th)^((d+1)/2) (≈ 0.1).
	Prefactor float64
	// QubitsPerTileFactor scales d² to physical qubits per tile; the
	// double-defect tile including measurement ancillas is ≈ 2.5·d².
	QubitsPerTileFactor float64
	// CodeCycle is the duration of one surface-code stabilizer round
	// (≈ 1 µs for superconducting hardware).
	CodeCycle time.Duration
	// MaxDistance bounds the search (default 99).
	MaxDistance int
}

// Default returns parameters for a superconducting-qubit platform at
// p = 10⁻³.
func Default() Params {
	return Params{
		PhysError:           1e-3,
		Threshold:           1e-2,
		Prefactor:           0.1,
		QubitsPerTileFactor: 2.5,
		CodeCycle:           time.Microsecond,
		MaxDistance:         99,
	}
}

func (p Params) fill() Params {
	d := Default()
	if p.PhysError == 0 {
		p.PhysError = d.PhysError
	}
	if p.Threshold == 0 {
		p.Threshold = d.Threshold
	}
	if p.Prefactor == 0 {
		p.Prefactor = d.Prefactor
	}
	if p.QubitsPerTileFactor == 0 {
		p.QubitsPerTileFactor = d.QubitsPerTileFactor
	}
	if p.CodeCycle == 0 {
		p.CodeCycle = d.CodeCycle
	}
	if p.MaxDistance == 0 {
		p.MaxDistance = d.MaxDistance
	}
	return p
}

func (p Params) validate() error {
	if p.PhysError <= 0 || p.Threshold <= 0 {
		return fmt.Errorf("errmodel: non-positive error rates %g/%g", p.PhysError, p.Threshold)
	}
	if p.PhysError >= p.Threshold {
		return fmt.Errorf("errmodel: physical error %g at or above threshold %g — no distance suffices", p.PhysError, p.Threshold)
	}
	if p.Prefactor <= 0 || p.QubitsPerTileFactor <= 0 || p.MaxDistance < 3 {
		return fmt.Errorf("errmodel: bad parameters %+v", p)
	}
	return nil
}

// LogicalErrorPerTileCycle returns the per-tile, per-code-cycle logical
// failure probability at distance d.
func (p Params) LogicalErrorPerTileCycle(d int) float64 {
	p = p.fill()
	return p.Prefactor * math.Pow(p.PhysError/p.Threshold, float64(d+1)/2)
}

// Report is a physical resource estimate for one schedule.
type Report struct {
	Distance       int           // selected code distance (odd)
	PhysicalQubits int           // total physical qubits for the grid (compute + reserved)
	ReservedQubits int           // physical qubits on reserved (factory) tiles
	CodeCycles     int64         // latency × d code cycles
	WallClock      time.Duration // CodeCycles × code-cycle time
	LogicalError   float64       // expected failure probability of the run
	Budget         float64       // the target it was sized against
}

// Estimate sizes the code distance so the whole schedule (tiles ×
// latency braiding cycles, each d code cycles long) fails with
// probability at most budget, then derives physical qubits and wall
// clock. Latency zero (no braids) yields the minimum distance 3. All
// tiles are treated as compute tiles; for grids with factory-reserved
// regions use EstimateReserved.
func Estimate(tiles, latency int, budget float64, p Params) (Report, error) {
	return EstimateReserved(tiles, 0, latency, budget, p)
}

// EstimateReserved is Estimate for a grid split into computeTiles
// program/routing tiles and reservedTiles factory tiles. Reserved tiles
// hold no program state and run their own distillation protocol with
// its own error budget, so they contribute no space-time volume to the
// schedule's failure probability — counting them would inflate the
// computed distance. They do cost hardware: the report's PhysicalQubits
// covers both tile classes, with the factory share broken out in
// ReservedQubits.
func EstimateReserved(computeTiles, reservedTiles, latency int, budget float64, p Params) (Report, error) {
	p = p.fill()
	if err := p.validate(); err != nil {
		return Report{}, err
	}
	if computeTiles <= 0 || reservedTiles < 0 || latency < 0 {
		return Report{}, fmt.Errorf("errmodel: bad volume %d+%d tiles × %d cycles",
			computeTiles, reservedTiles, latency)
	}
	if budget <= 0 || budget >= 1 {
		return Report{}, fmt.Errorf("errmodel: budget %g outside (0,1)", budget)
	}
	for d := 3; d <= p.MaxDistance; d += 2 {
		codeCycles := int64(latency) * int64(d)
		volume := float64(computeTiles) * math.Max(float64(codeCycles), 1)
		fail := volume * p.LogicalErrorPerTileCycle(d)
		if fail <= budget {
			qubitsPerTile := p.QubitsPerTileFactor * float64(d*d)
			return Report{
				Distance:       d,
				PhysicalQubits: int(math.Ceil(qubitsPerTile * float64(computeTiles+reservedTiles))),
				ReservedQubits: int(math.Ceil(qubitsPerTile * float64(reservedTiles))),
				CodeCycles:     codeCycles,
				WallClock:      time.Duration(codeCycles) * p.CodeCycle,
				LogicalError:   fail,
				Budget:         budget,
			}, nil
		}
	}
	return Report{}, fmt.Errorf("errmodel: no distance ≤ %d meets budget %g for %d tiles × %d cycles",
		p.MaxDistance, budget, computeTiles, latency)
}
