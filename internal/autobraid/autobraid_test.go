package autobraid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
)

func qftCircuit(n int) *circuit.Circuit {
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		c.Add1(circuit.H, i)
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	return c
}

func clusteredCircuit(n int) *circuit.Circuit {
	// Heavy pairs (0,n-1), (1,n-2), ... force the partitioner to group
	// distant-index qubits.
	c := circuit.New("cluster", n)
	for i := 0; i < n/2; i++ {
		for k := 0; k < 4; k++ {
			c.Add2(circuit.CX, i, n-1-i)
		}
	}
	return c
}

func TestPartitionPlacementComplete(t *testing.T) {
	for _, n := range []int{2, 5, 9, 16, 23} {
		c := qftCircuit(n)
		g := grid.Rect(n)
		l := PartitionPlacement{Rng: rand.New(rand.NewSource(1))}.Place(c, g)
		if err := l.Validate(g); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if !l.Complete() {
			t.Errorf("n=%d: incomplete layout", n)
		}
	}
}

func TestPartitionPlacementGroupsHeavyPairs(t *testing.T) {
	c := clusteredCircuit(16)
	g := grid.Square(16)
	l := PartitionPlacement{Rng: rand.New(rand.NewSource(3))}.Place(c, g)
	idl := identityLayout(c, g)
	if got, want := pairCost(c, g, l), pairCost(c, g, idl); got >= want {
		t.Errorf("partition cost %d not below identity cost %d", got, want)
	}
}

func identityLayout(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	for q := 0; q < c.NumQubits; q++ {
		l.Assign(q, q, g)
	}
	return l
}

func pairCost(c *circuit.Circuit, g *grid.Grid, l *grid.Layout) int {
	cost := 0
	for _, gate := range c.Gates {
		if gate.TwoQubit() {
			cost += g.Dist(l.QubitTile[gate.Q0], l.QubitTile[gate.Q1])
		}
	}
	return cost
}

func TestPartitionPlacementRespectsReserved(t *testing.T) {
	c := qftCircuit(7)
	g := grid.New(3, 3)
	g.ReserveTile(g.TileAt(1, 1))
	g.ReserveTile(g.TileAt(2, 2))
	l := PartitionPlacement{Rng: rand.New(rand.NewSource(1))}.Place(c, g)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Fatal("incomplete")
	}
}

func TestSPAndFullProduceValidSchedules(t *testing.T) {
	for _, n := range []int{6, 10, 16} {
		c := qftCircuit(n)
		g := grid.Rect(n)
		for _, name := range []string{"autobraid-sp", "autobraid-full"} {
			res, err := core.Run(c, g, core.MustMethod(name),
				core.RunOptions{Rng: rand.New(rand.NewSource(2))})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if err := res.Schedule.Validate(res.Circuit); err != nil {
				t.Fatalf("%s n=%d: invalid schedule: %v", name, n, err)
			}
		}
	}
}

func TestFullInsertsSwapsOnSpreadWorkload(t *testing.T) {
	// Repeated interaction between qubits that identity-style partition
	// seeding keeps apart long enough for the adjuster to fire.
	n := 25
	c := circuit.New("spread", n)
	for k := 0; k < 30; k++ {
		c.Add2(circuit.CX, 0, n-1)
		c.Add2(circuit.CX, 1, n-2)
	}
	g := grid.Square(n)
	res, err := core.Run(c, g, core.Spec{}, core.RunOptions{
		Placement: identityMethod{},
		Adjuster:  NewSwapAdjuster(2, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if res.Schedule.InsertedBraids() == 0 {
		t.Error("adjuster never fired on a spread workload")
	}
}

// identityMethod forces a bad layout so the swap adjuster has work.
type identityMethod struct{}

func (identityMethod) Name() string { return "identity-test" }
func (identityMethod) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	return identityLayout(c, g)
}

func TestSwapAdjusterHonorsPeriodAndDistance(t *testing.T) {
	g := grid.Square(16)
	c := circuit.New("x", 16)
	c.Add2(circuit.CX, 0, 15)
	layout := identityLayout(c, g)
	st := &core.RouterState{
		Grid: g, Layout: layout, Circuit: c, Cycle: 0,
		Pending: [][]int{0: {0}, 15: {0}},
	}
	for len(st.Pending) < 16 {
		st.Pending = append(st.Pending, nil)
	}
	a := NewSwapAdjuster(4, 3)
	sw := a.Propose(st)
	if len(sw) != 1 {
		t.Fatalf("expected one swap, got %v", sw)
	}
	if g.Dist(sw[0].T1, sw[0].T2) != 1 {
		t.Fatal("swap not adjacent")
	}
	// Second call within the period must be silent.
	st.Cycle = 2
	if sw := a.Propose(st); sw != nil {
		t.Errorf("adjuster ignored period: %v", sw)
	}
	// Close pairs are ignored.
	b := NewSwapAdjuster(1, 3)
	c2 := circuit.New("near", 16)
	c2.Add2(circuit.CX, 0, 1)
	st2 := &core.RouterState{
		Grid: g, Layout: identityLayout(c2, g), Circuit: c2, Cycle: 10,
		Pending: make([][]int, 16),
	}
	st2.Pending[0] = []int{0}
	st2.Pending[1] = []int{0}
	if sw := b.Propose(st2); sw != nil {
		t.Errorf("adjuster proposed swap for adjacent pair: %v", sw)
	}
}

// Property: both AutoBraid variants always produce schedules that
// validate, on random circuits.
func TestAutoBraidScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := circuit.New("rand", n)
		for i := 0; i < 1+rng.Intn(30); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := grid.Rect(n)
		for _, name := range []string{"autobraid-sp", "autobraid-full"} {
			res, err := core.Run(c, g, core.MustMethod(name), core.RunOptions{Rng: rng})
			if err != nil || res.Schedule.Validate(res.Circuit) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
