// Package autobraid re-implements the AutoBraid baseline (Hua et al.,
// MICRO 2021) the paper compares against, in the two configurations of
// Table 1:
//
//   - SP ("autobraid-sp") — only the stack-based path-finder: identity
//     placement, LLG gate ordering, stack-DFS braiding paths.
//   - Full ("autobraid-full") — adds the layout optimization: iterative
//     graph-partitioning initial placement plus SWAP-based layout
//     adjustment during routing. Inserted SWAPs are three braids between
//     adjacent tiles, which is exactly the gate overhead the paper's
//     SWAP-less placement avoids.
//
// Both variants run on HiLight's pass pipeline (internal/core) with
// AutoBraid's pieces plugged in, so latency/ResUtil accounting is
// identical across frameworks and only the algorithms differ. The
// package registers its components (the "autobraid-partition" placement
// and the "autobraid-swap" adjuster) and its method specs in core's
// static registries at init time; importing it — even blank — makes
// "autobraid-sp" and "autobraid-full" resolvable method names.
package autobraid

import (
	"math/rand"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/graph"
	"hilight/internal/grid"
	"hilight/internal/place"
)

func init() {
	core.RegisterPlacement("autobraid-partition", func(rng *rand.Rand) place.Method {
		return PartitionPlacement{Rng: rng}
	})
	core.RegisterAdjuster("autobraid-swap", func() core.LayoutAdjuster {
		return NewSwapAdjuster(0, 0)
	})
	core.RegisterMethod("autobraid-sp", core.Spec{
		Placement: "identity", Ordering: "llg", Finder: "stack-dfs",
	})
	core.RegisterMethod("autobraid-full", core.Spec{
		Placement: "autobraid-partition", Ordering: "llg", Finder: "stack-dfs",
		Adjuster: "autobraid-swap",
	})
}

// PartitionPlacement is AutoBraid's initial placement: recursively bisect
// the circuit interaction graph with a Kernighan–Lin cut while splitting
// the grid region in two, so frequently-interacting qubits land in the
// same region. Rng must be non-nil.
type PartitionPlacement struct {
	Rng *rand.Rand
}

// Name implements place.Method.
func (PartitionPlacement) Name() string { return "autobraid-partition" }

// region is a rectangle of tiles [x0,x1)×[y0,y1).
type region struct {
	x0, y0, x1, y1 int
}

// Place implements place.Method.
func (p PartitionPlacement) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	ig := graph.NewDense(c.NumQubits)
	for _, gate := range c.Gates {
		if gate.TwoQubit() {
			ig.AddEdge(gate.Q0, gate.Q1, 1)
		}
	}
	l := grid.NewLayout(c.NumQubits, g)
	verts := make([]int, c.NumQubits)
	for i := range verts {
		verts[i] = i
	}
	p.embed(ig, g, l, verts, region{0, 0, g.W, g.H})
	return l
}

// capacity counts usable tiles in r.
func capacity(g *grid.Grid, r region) int {
	n := 0
	for y := r.y0; y < r.y1; y++ {
		for x := r.x0; x < r.x1; x++ {
			if g.Usable(g.TileAt(x, y)) {
				n++
			}
		}
	}
	return n
}

func (p PartitionPlacement) embed(ig *graph.Dense, g *grid.Grid, l *grid.Layout, verts []int, r region) {
	if len(verts) == 0 {
		return
	}
	if len(verts) == 1 || (r.x1-r.x0 <= 1 && r.y1-r.y0 <= 1) {
		// Assign remaining vertices to the free tiles of the region in
		// scan order (handles the degenerate 1×1 case and any imbalance).
		i := 0
		for y := r.y0; y < r.y1 && i < len(verts); y++ {
			for x := r.x0; x < r.x1 && i < len(verts); x++ {
				t := g.TileAt(x, y)
				if g.Usable(t) && l.TileQubit[t] == -1 {
					l.Assign(verts[i], t, g)
					i++
				}
			}
		}
		return
	}
	// Split the region along its longer side.
	var ra, rb region
	if r.x1-r.x0 >= r.y1-r.y0 {
		mid := (r.x0 + r.x1) / 2
		ra = region{r.x0, r.y0, mid, r.y1}
		rb = region{mid, r.y0, r.x1, r.y1}
	} else {
		mid := (r.y0 + r.y1) / 2
		ra = region{r.x0, r.y0, r.x1, mid}
		rb = region{r.x0, mid, r.x1, r.y1}
	}
	capA := capacity(g, ra)
	// Left part takes min(capA, len(verts)) vertices; KL keeps the cut
	// between the halves light.
	k := capA
	if k > len(verts) {
		k = len(verts)
	}
	left, right := ig.BisectK(verts, k, p.Rng)
	p.embed(ig, g, l, left, ra)
	p.embed(ig, g, l, right, rb)
}

// SwapAdjuster is AutoBraid's in-flight layout optimization: every Period
// cycles it looks at the pending two-qubit gates, finds the
// weight-by-distance heaviest pair, and proposes one adjacent SWAP that
// moves one endpoint a step closer. Each SWAP costs three braiding cycles
// on its tile pair — the overhead Table 1 charges the baseline for.
type SwapAdjuster struct {
	Period      int // cycles between proposals (default 4)
	MinDistance int // only consider pairs at least this far apart (default 3)
	lastCycle   int
}

// NewSwapAdjuster returns an adjuster with the given period and minimum
// distance; zero values select the defaults.
func NewSwapAdjuster(period, minDistance int) *SwapAdjuster {
	if period <= 0 {
		period = 4
	}
	if minDistance <= 0 {
		minDistance = 3
	}
	return &SwapAdjuster{Period: period, MinDistance: minDistance, lastCycle: -period}
}

// Propose implements core.LayoutAdjuster.
func (a *SwapAdjuster) Propose(st *core.RouterState) []core.TileSwap {
	if st.Cycle-a.lastCycle < a.Period {
		return nil
	}
	// Score pending pairs within a short lookahead window: weight of the
	// pair in the window × current tile distance.
	const window = 8
	type pair struct{ q, p int }
	weight := map[pair]int{}
	for q := range st.Pending {
		lst := st.Pending[q]
		if len(lst) > window {
			lst = lst[:window]
		}
		for _, gi := range lst {
			gate := st.Circuit.Gates[gi]
			if gate.Q0 != q {
				continue // count each gate once
			}
			weight[pair{gate.Q0, gate.Q1}]++
		}
	}
	bestScore := 0
	var bq, bp int
	for pr, w := range weight {
		d := st.Grid.Dist(st.Layout.QubitTile[pr.q], st.Layout.QubitTile[pr.p])
		if d < a.MinDistance {
			continue
		}
		// Ties break on (q, p) lexicographically — a total order, so the
		// winner is independent of map iteration order and schedules stay
		// deterministic at a fixed seed.
		if score := w * d; score > bestScore ||
			(score == bestScore && score > 0 &&
				(pr.q < bq || (pr.q == bq && pr.p < bp))) {
			bestScore, bq, bp = score, pr.q, pr.p
		}
	}
	if bestScore == 0 {
		return nil
	}
	// Move bq one step toward bp.
	from := st.Layout.QubitTile[bq]
	to := st.Layout.QubitTile[bp]
	best := -1
	bestD := st.Grid.Dist(from, to)
	for _, t := range st.Grid.CardinalNeighbors(from) {
		if d := st.Grid.Dist(t, to); d < bestD {
			best, bestD = t, d
		}
	}
	if best == -1 {
		return nil
	}
	a.lastCycle = st.Cycle
	return []core.TileSwap{{T1: from, T2: best}}
}
