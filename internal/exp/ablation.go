package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/grid"
)

// ThresholdPoint is one row of the ordering-threshold sweep: the ready-set
// size above which the ordering strategy is invoked, and the resulting
// geomean-normalized metrics (reference: the paper's threshold of 4).
type ThresholdPoint struct {
	Threshold int
	Latency   float64
	Runtime   float64
}

// ThresholdReport is the ordering-threshold ablation — the paper adopts
// threshold 4 from AutoBraid's analysis; this sweep regenerates the
// trade-off behind that constant.
type ThresholdReport struct {
	Points []ThresholdPoint
}

// Print renders the sweep.
func (r *ThresholdReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — gate-ordering invocation threshold (normalized to threshold 4)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "threshold\tnorm.latency\tnorm.runtime")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", p.Threshold, p.Latency, p.Runtime)
	}
	tw.Flush()
}

// RunThresholdSweep measures the ordering threshold at 1, 2, 4, 8, 16 and
// 1<<30 (never order) over the scaled benchmark set.
func RunThresholdSweep(o Options) (*ThresholdReport, error) {
	o = o.fill()
	thresholds := []int{1, 2, 4, 8, 16, 1 << 30}
	lat := make([][]float64, len(thresholds))
	rt := make([][]float64, len(thresholds))
	for _, e := range o.entries() {
		c := e.Build()
		g := grid.Rect(e.N)
		for i, th := range thresholds {
			sp := core.MustMethod("hilight-map")
			sp.OrderingThreshold = th
			m, err := average(c, g, sp, o.Seed, 1, o.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/threshold %d: %w", e.Name, th, err)
			}
			lat[i] = append(lat[i], float64(m.Latency))
			rt[i] = append(rt[i], seconds(m.Runtime))
		}
	}
	ref := 2 // threshold 4, the paper's choice
	const rtFloor = 50e-6
	rep := &ThresholdReport{}
	for i, th := range thresholds {
		rep.Points = append(rep.Points, ThresholdPoint{
			Threshold: th,
			Latency:   geomeanRatio(lat[i], lat[ref], 1),
			Runtime:   geomeanRatio(rt[i], rt[ref], rtFloor),
		})
	}
	return rep, nil
}

// FinderArm is one path-finder of the finder ablation.
type FinderArm struct {
	Name    string
	Latency float64
	Runtime float64
	ResUtil float64
}

// FinderReport compares the four braiding path-finders under otherwise
// identical mapping (proposed placement and ordering).
type FinderReport struct {
	Arms []FinderArm
}

// Arm returns the named arm, if present.
func (r *FinderReport) Arm(name string) (FinderArm, bool) {
	for _, a := range r.Arms {
		if a.Name == name {
			return a, true
		}
	}
	return FinderArm{}, false
}

// Print renders the comparison.
func (r *FinderReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — braiding path-finders (normalized to astar-closest)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "finder\tnorm.latency\tnorm.runtime\tnorm.resutil")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", a.Name, a.Latency, a.Runtime, a.ResUtil)
	}
	tw.Flush()
}

// RunFinderAblation measures the four path-finders — single-A*, the
// exhaustive 16-pair search, the AutoBraid stack DFS, and the two-bend
// L-shape — across the scaled benchmark set.
func RunFinderAblation(o Options) (*FinderReport, error) {
	o = o.fill()
	finders := []string{"astar-closest", "full-16", "stack-dfs", "l-shape"}
	lat := make([][]float64, len(finders))
	rt := make([][]float64, len(finders))
	util := make([][]float64, len(finders))
	for _, e := range o.entries() {
		c := e.Build()
		g := grid.Rect(e.N)
		for i, f := range finders {
			sp := core.Spec{Placement: "hilight", Finder: f}
			m, err := average(c, g, sp, o.Seed, 1, o.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", e.Name, f, err)
			}
			lat[i] = append(lat[i], float64(m.Latency))
			rt[i] = append(rt[i], seconds(m.Runtime))
			util[i] = append(util[i], m.ResUtil)
		}
	}
	const rtFloor = 50e-6
	rep := &FinderReport{}
	for i, f := range finders {
		rep.Arms = append(rep.Arms, FinderArm{
			Name:    f,
			Latency: geomeanRatio(lat[i], lat[0], 1),
			Runtime: geomeanRatio(rt[i], rt[0], rtFloor),
			ResUtil: geomeanRatio(util[i], util[0], 1e-6),
		})
	}
	return rep, nil
}
