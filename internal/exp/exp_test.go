package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// smallOpts keeps experiment tests fast: tiny benchmarks, few trials.
func smallOpts() Options {
	return Options{Scale: ScaleSmall, Seed: 7, Trials: 3}
}

func TestOptionsFillAndEntries(t *testing.T) {
	o := Options{}.fill()
	if o.Scale != ScaleSmall || o.Trials != 5 || o.Seed != 1 {
		t.Errorf("defaults wrong: %+v", o)
	}
	small := Options{Scale: ScaleSmall}.entries()
	full := Options{Scale: ScaleFull}.entries()
	if len(small) >= len(full) {
		t.Errorf("small scale (%d) should trim entries (%d)", len(small), len(full))
	}
	if len(full) != 36 {
		t.Errorf("full scale entries = %d, want 36", len(full))
	}
	for _, e := range small {
		if e.Gates > ScaleSmall.maxGates() {
			t.Errorf("entry %s over the small budget", e.Name)
		}
	}
}

func TestGeomeanRatio(t *testing.T) {
	got := geomeanRatio([]float64{2, 8}, []float64{1, 2}, 0.001)
	if got < 2.82 || got > 2.84 { // sqrt(2*4) = 2.828
		t.Errorf("geomean = %g", got)
	}
	if geomeanRatio(nil, nil, 1) != 0 {
		t.Error("empty geomean should be 0")
	}
	// Floor prevents explosion on near-zero denominators.
	capped := geomeanRatio([]float64{1}, []float64{1e-12}, 0.5)
	if capped > 2.1 {
		t.Errorf("floored ratio = %g", capped)
	}
}

func TestRunTable1SmallShape(t *testing.T) {
	rep, err := RunTable1(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper shape: hilight-map no worse than either AutoBraid variant on
	// latency and ResUtil (geomean ≥ 1 means the baseline is worse).
	if rep.SPLatency < 1 {
		t.Errorf("autobraid-sp latency geomean %.3f < 1: hilight lost", rep.SPLatency)
	}
	if rep.FullLatency < 1 {
		t.Errorf("autobraid-full latency geomean %.3f < 1: hilight lost", rep.FullLatency)
	}
	if rep.SPResUtil < 1 {
		t.Errorf("autobraid-sp ResUtil geomean %.3f < 1", rep.SPResUtil)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "normalized to ours") || !strings.Contains(out, "4gt11_82") {
		t.Errorf("print output malformed:\n%s", out)
	}
	// Exact latencies from Table 1 for the fully-deterministic rows.
	for _, row := range rep.Rows {
		switch row.Name {
		case "BV-10":
			if row.HiLight.Latency != 9 {
				t.Errorf("BV-10 hilight latency = %d, want 9", row.HiLight.Latency)
			}
		case "CC-11":
			if row.HiLight.Latency != 10 {
				t.Errorf("CC-11 hilight latency = %d, want 10", row.HiLight.Latency)
			}
		case "Ising-10":
			if row.HiLight.Latency != 20 {
				t.Errorf("Ising-10 hilight latency = %d, want 20", row.HiLight.Latency)
			}
		}
	}
}

func TestRunFig8aShape(t *testing.T) {
	rep, err := RunFig8a(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 5 {
		t.Fatalf("arms = %d", len(rep.Arms))
	}
	proposed, _ := rep.Arm("proposed")
	if proposed.Latency != 1 || proposed.Runtime != 1 {
		t.Errorf("proposed arm not the reference: %+v", proposed)
	}
	random, _ := rep.Arm("random")
	if random.Latency < 1 {
		t.Errorf("random placement latency %.3f should be worse than proposed", random.Latency)
	}
	gm, _ := rep.Arm("gm")
	if gm.Runtime < 1 {
		t.Errorf("gm runtime %.3f should exceed proposed (node/edge graph cost)", gm.Runtime)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 8a") {
		t.Error("title missing")
	}
}

func TestRunFig8bShape(t *testing.T) {
	rep, err := RunFig8b(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 5 {
		t.Fatalf("arms = %d", len(rep.Arms))
	}
	prop, _ := rep.Arm("proposed")
	if prop.Latency != 1 {
		t.Error("proposed not reference")
	}
	// LLG's recurrent-graph runtime cost only shows on large ready sets
	// (see BenchmarkOrderingStrategies); at small scale assert only that
	// LLG brings no significant latency win over the proposed ordering
	// (the paper reports a slight LLG latency *increase*).
	llg, _ := rep.Arm("llg")
	if llg.Latency < 0.95 {
		t.Errorf("llg latency %.3f significantly beats proposed", llg.Latency)
	}
}

func TestRunFig8cShape(t *testing.T) {
	rep, err := RunFig8c(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	full := rep.Rows[3]
	if full.Latency != 1 || full.Runtime != 1 {
		t.Errorf("reference row not 1.0: %+v", full)
	}
	no16 := rep.Rows[4]
	if no16.Runtime < 1 {
		t.Errorf("16-path search runtime %.3f should exceed the fast path-finder", no16.Runtime)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 8c") {
		t.Error("title missing")
	}
}

func TestRunFig9Shape(t *testing.T) {
	rep, err := RunFig9(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, benchName := range []string{"QFT", "BV", "CC", "Ising"} {
		for _, method := range Fig9Methods {
			s := rep.Series(benchName, method)
			if len(s) != 3 {
				t.Errorf("%s/%s series = %d points", benchName, method, len(s))
			}
		}
	}
	// Aggregate per family: hilight-map's total latency stays within 5%
	// of the baseline's (the paper's own Table 1 has single QFT points
	// where AutoBraid edges HiLight out; the aggregate is what it claims).
	for _, benchName := range []string{"QFT", "BV", "CC", "Ising"} {
		base, ours := 0, 0
		for _, p := range rep.Series(benchName, "baseline") {
			base += p.Latency
		}
		for _, p := range rep.Series(benchName, "hilight-map") {
			ours += p.Latency
		}
		if float64(ours) > 1.05*float64(base) {
			t.Errorf("%s: hilight total latency %d vs baseline %d", benchName, ours, base)
		}
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Error("title missing")
	}
}

func TestRunFig10Shape(t *testing.T) {
	rep, err := RunFig10(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 5 {
		t.Fatalf("arms = %d", len(rep.Arms))
	}
	mapArm, ok := rep.Arm("hilight-map")
	if !ok || mapArm.Latency != 1 || mapArm.Runtime != 1 {
		t.Errorf("hilight-map not the reference: %+v", mapArm)
	}
	ab, _ := rep.Arm("autobraid-full")
	if ab.Latency < 1 {
		t.Errorf("autobraid-full latency %.3f should exceed hilight-map", ab.Latency)
	}
	pg, _ := rep.Arm("hilight-pg")
	if pg.Latency > 1.01 {
		t.Errorf("hilight-pg latency %.3f should not exceed hilight-map", pg.Latency)
	}
	hw, _ := rep.Arm("hilight-hw")
	if hw.Latency > 1.25 {
		t.Errorf("hilight-hw latency %.3f blew past the small §4.6 cost", hw.Latency)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 10") {
		t.Error("title missing")
	}
}

func TestMeasurementAverage(t *testing.T) {
	// average over one trial equals a direct run (deterministic config).
	o := smallOpts()
	entries := o.entries()
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	if seconds(time.Second) != 1 {
		t.Error("seconds helper wrong")
	}
}
