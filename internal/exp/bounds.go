package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/qco"
)

// BoundsRow compares a benchmark's achieved latency against its
// dependency lower bound: no mapper can beat the circuit's two-qubit
// ASAP depth (each qubit braids at most once per cycle), so
// latency/depth measures how much congestion — the only thing mapping
// can influence — actually costs.
type BoundsRow struct {
	Name    string
	N       int
	Depth   int // commutation-unaware dependency depth
	QCODpth int // depth after the commuting-CX rewrite (a tighter model)
	Latency int // hilight-map achieved latency
	Gap     float64
}

// BoundsReport is the optimality analysis across the benchmark set.
type BoundsReport struct {
	Rows []BoundsRow
	// MeanGap is the geomean of latency/depth across rows (1.0 = every
	// schedule is dependency-bound-optimal).
	MeanGap float64
}

// Print renders the analysis.
func (r *BoundsReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Bounds — achieved latency vs dependency lower bound (hilight-map)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tdepth\tqco.depth\tlatency\tgap")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3f\n",
			row.Name, row.N, row.Depth, row.QCODpth, row.Latency, row.Gap)
	}
	tw.Flush()
	fmt.Fprintf(w, "geomean gap: %.3f (1.0 = dependency-optimal)\n", r.MeanGap)
}

// RunBounds maps every scaled benchmark with hilight-map and reports the
// latency/depth gap.
func RunBounds(o Options) (*BoundsReport, error) {
	o = o.fill()
	rep := &BoundsReport{}
	var gaps, ones []float64
	for _, e := range o.entries() {
		c := e.Build()
		work := c.DecomposeSWAPs()
		_, depth := circuit.Layers(work)
		_, qcoDepth := circuit.Layers(qco.Optimize(work))
		m, err := runOn(c, grid.Rect(e.N), core.MustMethod("hilight-map"), rand.New(rand.NewSource(o.Seed)), o.Metrics)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		row := BoundsRow{Name: e.Name, N: e.N, Depth: depth, QCODpth: qcoDepth, Latency: m.Latency}
		if depth > 0 {
			row.Gap = float64(m.Latency) / float64(depth)
		} else {
			row.Gap = 1
		}
		rep.Rows = append(rep.Rows, row)
		gaps = append(gaps, row.Gap)
		ones = append(ones, 1)
	}
	rep.MeanGap = geomeanRatio(gaps, ones, 1e-9)
	return rep, nil
}
