package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/hwopt"
)

// Fig10Arm is one bar group of Fig. 10: a framework variant's latency,
// runtime and resource utilization geomean-normalized to hilight-map.
type Fig10Arm struct {
	Name    string
	Latency float64
	Runtime float64
	ResUtil float64
}

// Fig10Report is the optimization-level summary of Fig. 10.
type Fig10Report struct {
	Arms []Fig10Arm
}

// Arm returns the named arm, if present.
func (r *Fig10Report) Arm(name string) (Fig10Arm, bool) {
	for _, a := range r.Arms {
		if a.Name == name {
			return a, true
		}
	}
	return Fig10Arm{}, false
}

// Print renders the summary.
func (r *Fig10Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 10 — optimization levels (normalized to hilight-map)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tnorm.latency\tnorm.runtime\tnorm.resutil")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", a.Name, a.Latency, a.Runtime, a.ResUtil)
	}
	tw.Flush()
}

// RunFig10 reproduces Fig. 10: autobraid-full as the external reference
// and the four HiLight variants — map, -pg (program-level), -hw
// (hardware-level M×(M−1) grid), -full (both) — all normalized to
// hilight-map. The hardware-level arms run on the diminished grid; the
// others on the square grid.
func RunFig10(o Options) (*Fig10Report, error) {
	o = o.fill()
	type arm struct {
		name   string
		hwGrid bool
		sp     core.Spec
	}
	arms := []arm{
		{"autobraid-full", false, core.MustMethod("autobraid-full")},
		{"hilight-map", false, core.MustMethod("hilight-map")},
		{"hilight-pg", false, core.MustMethod("hilight-pg")},
		{"hilight-hw", true, core.MustMethod("hilight-map")},
		{"hilight-full", true, core.MustMethod("hilight-pg")},
	}
	entries := o.entries()
	lat := make([][]float64, len(arms))
	rt := make([][]float64, len(arms))
	util := make([][]float64, len(arms))
	for _, e := range entries {
		c := e.Build()
		for i, a := range arms {
			g := hwopt.GridFor(e.N, a.hwGrid)
			m, err := average(c, g, a.sp, o.Seed, 1, o.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", e.Name, a.name, err)
			}
			lat[i] = append(lat[i], float64(m.Latency))
			rt[i] = append(rt[i], seconds(m.Runtime))
			util[i] = append(util[i], m.ResUtil)
		}
	}
	ref := 1 // hilight-map
	const rtFloor = 50e-6
	rep := &Fig10Report{}
	for i, a := range arms {
		rep.Arms = append(rep.Arms, Fig10Arm{
			Name:    a.name,
			Latency: geomeanRatio(lat[i], lat[ref], 1),
			Runtime: geomeanRatio(rt[i], rt[ref], rtFloor),
			ResUtil: geomeanRatio(util[i], util[ref], 1e-6),
		})
	}
	return rep, nil
}
