package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/surgery"
)

// ModeRow compares the two surface-code modes on one benchmark: compact
// braiding versus quarter-density lattice surgery.
type ModeRow struct {
	Name           string
	N              int
	BraidTiles     int
	BraidLatency   int
	SurgeryTiles   int
	SurgeryLatency int
	// LatencyRatio is surgery/braiding latency; TileRatio the hardware
	// overhead surgery pays.
	LatencyRatio float64
	TileRatio    float64
}

// ModeReport is the braiding-vs-surgery study across the benchmark set.
type ModeReport struct {
	Rows []ModeRow
	// Geomean ratios across rows.
	MeanLatencyRatio float64
	MeanTileRatio    float64
}

// Print renders the comparison.
func (r *ModeReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Modes — double-defect braiding vs lattice surgery")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tbraid.tiles\tbraid.lat\tsurg.tiles\tsurg.lat\tlat.ratio\ttile.ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			row.Name, row.N, row.BraidTiles, row.BraidLatency,
			row.SurgeryTiles, row.SurgeryLatency, row.LatencyRatio, row.TileRatio)
	}
	tw.Flush()
	fmt.Fprintf(w, "geomean: lattice surgery takes %.2fx the latency on %.2fx the tiles\n",
		r.MeanLatencyRatio, r.MeanTileRatio)
}

// RunModes maps every scaled benchmark in both modes. Benchmarks too
// large for the quarter-density board at this scale are skipped (the
// surgery board is ~4× the braiding grid).
func RunModes(o Options) (*ModeReport, error) {
	o = o.fill()
	rep := &ModeReport{}
	var latR, tileR, ones []float64
	for _, e := range o.entries() {
		c := e.Build()
		bg := grid.Rect(e.N)
		braid, err := runOn(c, bg, core.MustMethod("hilight-map"), rand.New(rand.NewSource(o.Seed)), o.Metrics)
		if err != nil {
			return nil, fmt.Errorf("%s/braiding: %w", e.Name, err)
		}
		sg := surgery.DilutedGrid(e.N)
		layout, err := surgery.DilutedPlace(c, sg)
		if err != nil {
			return nil, fmt.Errorf("%s/surgery place: %w", e.Name, err)
		}
		surg, err := surgery.Map(c, sg, layout)
		if err != nil {
			return nil, fmt.Errorf("%s/surgery: %w", e.Name, err)
		}
		row := ModeRow{
			Name: e.Name, N: e.N,
			BraidTiles: bg.Tiles(), BraidLatency: braid.Latency,
			SurgeryTiles: sg.Tiles(), SurgeryLatency: surg.Latency,
			TileRatio: float64(sg.Tiles()) / float64(bg.Tiles()),
		}
		if braid.Latency > 0 {
			row.LatencyRatio = float64(surg.Latency) / float64(braid.Latency)
			latR = append(latR, row.LatencyRatio)
			tileR = append(tileR, row.TileRatio)
			ones = append(ones, 1)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.MeanLatencyRatio = geomeanRatio(latR, ones, 1e-9)
	rep.MeanTileRatio = geomeanRatio(tileR, ones, 1e-9)
	return rep, nil
}
