package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
)

// ArmResult is one bar of Fig. 8a/8b: a method's latency and runtime
// geomean-normalized to the proposed method (1.0 = proposed).
type ArmResult struct {
	Name    string
	Latency float64
	Runtime float64
}

// FigReport is a normalized multi-arm comparison.
type FigReport struct {
	Title string
	Arms  []ArmResult
}

// Print renders the report as a normalized table.
func (r *FigReport) Print(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tnorm.latency\tnorm.runtime")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", a.Name, a.Latency, a.Runtime)
	}
	tw.Flush()
}

// Arm returns the named arm, if present.
func (r *FigReport) Arm(name string) (ArmResult, bool) {
	for _, a := range r.Arms {
		if a.Name == name {
			return a, true
		}
	}
	return ArmResult{}, false
}

// runArms measures every arm over the scaled benchmark set and
// normalizes to the arm named ref.
func runArms(o Options, title, ref string, arms map[string]func(*rand.Rand) core.Config, trials map[string]int) (*FigReport, error) {
	o = o.fill()
	entries := o.entries()
	lat := map[string][]float64{}
	rt := map[string][]float64{}
	for _, e := range entries {
		c := e.Build()
		g := grid.Rect(e.N)
		for name, mk := range arms {
			t := 1
			if trials[name] > 0 {
				t = trials[name]
			}
			m, err := average(c, g, mk, o.Seed, t)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", e.Name, name, err)
			}
			lat[name] = append(lat[name], float64(m.Latency))
			rt[name] = append(rt[name], seconds(m.Runtime))
		}
	}
	const rtFloor = 50e-6
	rep := &FigReport{Title: title}
	for name := range arms {
		rep.Arms = append(rep.Arms, ArmResult{
			Name:    name,
			Latency: geomeanRatio(lat[name], lat[ref], 1),
			Runtime: geomeanRatio(rt[name], rt[ref], rtFloor),
		})
	}
	sortArms(rep.Arms)
	return rep, nil
}

func sortArms(arms []ArmResult) {
	for i := 1; i < len(arms); i++ {
		for j := i; j > 0 && arms[j].Name < arms[j-1].Name; j-- {
			arms[j], arms[j-1] = arms[j-1], arms[j]
		}
	}
}

// RunFig8a reproduces Fig. 8a: initial-placement comparison with routing
// fixed to the proposed gate ordering and path-finder.
func RunFig8a(o Options) (*FigReport, error) {
	o = o.fill()
	withPlacement := func(mk func(*rand.Rand) place.Method) func(*rand.Rand) core.Config {
		return func(rng *rand.Rand) core.Config {
			return core.Config{
				Placement: mk(rng),
				Ordering:  order.Proposed{},
				Finder:    &route.AStar{},
			}
		}
	}
	arms := map[string]func(*rand.Rand) core.Config{
		"identity": withPlacement(func(*rand.Rand) place.Method { return place.Identity{} }),
		"random":   withPlacement(func(rng *rand.Rand) place.Method { return place.Random{Rng: rng} }),
		"gm":       withPlacement(func(rng *rand.Rand) place.Method { return place.GM{Rng: rng} }),
		"gmwp":     withPlacement(func(rng *rand.Rand) place.Method { return place.GMWP{Rng: rng} }),
		"proposed": withPlacement(func(rng *rand.Rand) place.Method { return place.HiLight{Rng: rng} }),
	}
	return runArms(o, "Fig. 8a — initial placement (normalized to proposed)", "proposed",
		arms, map[string]int{"random": o.Trials, "proposed": o.Trials})
}

// RunFig8b reproduces Fig. 8b: gate-ordering comparison with the proposed
// placement and path-finder.
func RunFig8b(o Options) (*FigReport, error) {
	o = o.fill()
	withOrdering := func(mk func(*rand.Rand) order.Strategy) func(*rand.Rand) core.Config {
		return func(rng *rand.Rand) core.Config {
			return core.Config{
				Placement: place.HiLight{Rng: rng},
				Ordering:  mk(rng),
				Finder:    &route.AStar{},
			}
		}
	}
	arms := map[string]func(*rand.Rand) core.Config{
		"random":     withOrdering(func(rng *rand.Rand) order.Strategy { return order.Random{Rng: rng} }),
		"ascending":  withOrdering(func(*rand.Rand) order.Strategy { return order.Ascending{} }),
		"descending": withOrdering(func(*rand.Rand) order.Strategy { return order.Descending{} }),
		"llg":        withOrdering(func(*rand.Rand) order.Strategy { return order.LLG{} }),
		"proposed":   withOrdering(func(*rand.Rand) order.Strategy { return order.Proposed{} }),
	}
	return runArms(o, "Fig. 8b — gate ordering (normalized to proposed)", "proposed",
		arms, map[string]int{"random": o.Trials})
}

// Fig8cRow is one ablation row of Fig. 8c.
type Fig8cRow struct {
	Placement, Pattern, Ordering, Braiding string
	Latency, Runtime                       float64 // normalized to the full proposed stack
}

// Fig8cReport is the mapping-step ablation of Fig. 8c.
type Fig8cReport struct {
	Rows []Fig8cRow
}

// Print renders the ablation table.
func (r *Fig8cReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8c — individual mapping steps (normalized to full proposed stack)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tpattern\tordering\tbraiding\tnorm.latency\tnorm.runtime")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.3f\t%.3f\n",
			row.Placement, row.Pattern, row.Ordering, row.Braiding, row.Latency, row.Runtime)
	}
	tw.Flush()
}

// RunFig8c reproduces Fig. 8c: the six-row ablation over placement,
// pattern matching, gate ordering and fast braiding.
func RunFig8c(o Options) (*Fig8cReport, error) {
	o = o.fill()
	type spec struct {
		placement, pattern, ordering, braiding string
		mk                                     func(*rand.Rand) core.Config
	}
	specs := []spec{
		{"identity", "-", "ours", "ours", func(rng *rand.Rand) core.Config {
			return core.Config{Placement: place.Identity{}}
		}},
		{"gm", "-", "ours", "ours", func(rng *rand.Rand) core.Config {
			return core.Config{Placement: place.GM{Rng: rng}}
		}},
		{"ours", "-", "ours", "ours", func(rng *rand.Rand) core.Config {
			return core.Config{Placement: place.Proximity{}}
		}},
		{"ours", "ours", "ours", "ours", func(rng *rand.Rand) core.Config {
			return core.HilightMap(rng)
		}},
		{"ours", "ours", "ours", "-", func(rng *rand.Rand) core.Config {
			cfg := core.HilightMap(rng)
			cfg.Finder = &route.Full16{}
			return cfg
		}},
		{"ours", "ours", "llg", "ours", func(rng *rand.Rand) core.Config {
			cfg := core.HilightMap(rng)
			cfg.Ordering = order.LLG{}
			return cfg
		}},
	}
	entries := o.entries()
	lat := make([][]float64, len(specs))
	rt := make([][]float64, len(specs))
	for _, e := range entries {
		c := e.Build()
		g := grid.Rect(e.N)
		for i, sp := range specs {
			m, err := average(c, g, sp.mk, o.Seed, 1)
			if err != nil {
				return nil, fmt.Errorf("%s/row%d: %w", e.Name, i, err)
			}
			lat[i] = append(lat[i], float64(m.Latency))
			rt[i] = append(rt[i], seconds(m.Runtime))
		}
	}
	const refRow = 3 // the full proposed stack
	const rtFloor = 50e-6
	rep := &Fig8cReport{}
	for i, sp := range specs {
		rep.Rows = append(rep.Rows, Fig8cRow{
			Placement: sp.placement, Pattern: sp.pattern,
			Ordering: sp.ordering, Braiding: sp.braiding,
			Latency: geomeanRatio(lat[i], lat[refRow], 1),
			Runtime: geomeanRatio(rt[i], rt[refRow], rtFloor),
		})
	}
	return rep, nil
}
