package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/grid"
)

// ArmResult is one bar of Fig. 8a/8b: a method's latency and runtime
// geomean-normalized to the proposed method (1.0 = proposed).
type ArmResult struct {
	Name    string
	Latency float64
	Runtime float64
}

// FigReport is a normalized multi-arm comparison.
type FigReport struct {
	Title string
	Arms  []ArmResult
}

// Print renders the report as a normalized table.
func (r *FigReport) Print(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tnorm.latency\tnorm.runtime")
	for _, a := range r.Arms {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\n", a.Name, a.Latency, a.Runtime)
	}
	tw.Flush()
}

// Arm returns the named arm, if present.
func (r *FigReport) Arm(name string) (ArmResult, bool) {
	for _, a := range r.Arms {
		if a.Name == name {
			return a, true
		}
	}
	return ArmResult{}, false
}

// runArms measures every arm over the scaled benchmark set and
// normalizes to the arm named ref.
func runArms(o Options, title, ref string, arms map[string]core.Spec, trials map[string]int) (*FigReport, error) {
	o = o.fill()
	entries := o.entries()
	lat := map[string][]float64{}
	rt := map[string][]float64{}
	for _, e := range entries {
		c := e.Build()
		g := grid.Rect(e.N)
		for name, sp := range arms {
			t := 1
			if trials[name] > 0 {
				t = trials[name]
			}
			m, err := average(c, g, sp, o.Seed, t, o.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", e.Name, name, err)
			}
			lat[name] = append(lat[name], float64(m.Latency))
			rt[name] = append(rt[name], seconds(m.Runtime))
		}
	}
	const rtFloor = 50e-6
	rep := &FigReport{Title: title}
	for name := range arms {
		rep.Arms = append(rep.Arms, ArmResult{
			Name:    name,
			Latency: geomeanRatio(lat[name], lat[ref], 1),
			Runtime: geomeanRatio(rt[name], rt[ref], rtFloor),
		})
	}
	sortArms(rep.Arms)
	return rep, nil
}

func sortArms(arms []ArmResult) {
	for i := 1; i < len(arms); i++ {
		for j := i; j > 0 && arms[j].Name < arms[j-1].Name; j-- {
			arms[j], arms[j-1] = arms[j-1], arms[j]
		}
	}
}

// RunFig8a reproduces Fig. 8a: initial-placement comparison with routing
// fixed to the proposed gate ordering and path-finder.
func RunFig8a(o Options) (*FigReport, error) {
	o = o.fill()
	// Spec zero values default to the proposed ordering and path-finder,
	// so each arm varies placement only.
	arms := map[string]core.Spec{
		"identity": {Placement: "identity"},
		"random":   {Placement: "random"},
		"gm":       {Placement: "gm"},
		"gmwp":     {Placement: "gmwp"},
		"proposed": {Placement: "hilight"},
	}
	return runArms(o, "Fig. 8a — initial placement (normalized to proposed)", "proposed",
		arms, map[string]int{"random": o.Trials, "proposed": o.Trials})
}

// RunFig8b reproduces Fig. 8b: gate-ordering comparison with the proposed
// placement and path-finder.
func RunFig8b(o Options) (*FigReport, error) {
	o = o.fill()
	// Placement defaults to the proposed ("hilight") method, so each arm
	// varies gate ordering only.
	arms := map[string]core.Spec{
		"random":     {Ordering: "random"},
		"ascending":  {Ordering: "ascending"},
		"descending": {Ordering: "descending"},
		"llg":        {Ordering: "llg"},
		"proposed":   {Ordering: "proposed"},
	}
	return runArms(o, "Fig. 8b — gate ordering (normalized to proposed)", "proposed",
		arms, map[string]int{"random": o.Trials})
}

// Fig8cRow is one ablation row of Fig. 8c.
type Fig8cRow struct {
	Placement, Pattern, Ordering, Braiding string
	Latency, Runtime                       float64 // normalized to the full proposed stack
}

// Fig8cReport is the mapping-step ablation of Fig. 8c.
type Fig8cReport struct {
	Rows []Fig8cRow
}

// Print renders the ablation table.
func (r *Fig8cReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8c — individual mapping steps (normalized to full proposed stack)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tpattern\tordering\tbraiding\tnorm.latency\tnorm.runtime")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.3f\t%.3f\n",
			row.Placement, row.Pattern, row.Ordering, row.Braiding, row.Latency, row.Runtime)
	}
	tw.Flush()
}

// RunFig8c reproduces Fig. 8c: the six-row ablation over placement,
// pattern matching, gate ordering and fast braiding.
func RunFig8c(o Options) (*Fig8cReport, error) {
	o = o.fill()
	type row struct {
		placement, pattern, ordering, braiding string
		sp                                     core.Spec
	}
	specs := []row{
		{"identity", "-", "ours", "ours", core.Spec{Placement: "identity"}},
		{"gm", "-", "ours", "ours", core.Spec{Placement: "gm"}},
		{"ours", "-", "ours", "ours", core.Spec{Placement: "proximity"}},
		{"ours", "ours", "ours", "ours", core.MustMethod("hilight-map")},
		{"ours", "ours", "ours", "-", core.Spec{Finder: "full-16"}},
		{"ours", "ours", "llg", "ours", core.Spec{Ordering: "llg"}},
	}
	entries := o.entries()
	lat := make([][]float64, len(specs))
	rt := make([][]float64, len(specs))
	for _, e := range entries {
		c := e.Build()
		g := grid.Rect(e.N)
		for i, r := range specs {
			m, err := average(c, g, r.sp, o.Seed, 1, o.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s/row%d: %w", e.Name, i, err)
			}
			lat[i] = append(lat[i], float64(m.Latency))
			rt[i] = append(rt[i], seconds(m.Runtime))
		}
	}
	const refRow = 3 // the full proposed stack
	const rtFloor = 50e-6
	rep := &Fig8cReport{}
	for i, r := range specs {
		rep.Rows = append(rep.Rows, Fig8cRow{
			Placement: r.placement, Pattern: r.pattern,
			Ordering: r.ordering, Braiding: r.braiding,
			Latency: geomeanRatio(lat[i], lat[refRow], 1),
			Runtime: geomeanRatio(rt[i], rt[refRow], rtFloor),
		})
	}
	return rep, nil
}
