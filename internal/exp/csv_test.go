package exp

import (
	"bytes"
	"encoding/csv"
	"testing"
)

func TestTable1CSV(t *testing.T) {
	rep, err := RunTable1(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
	if len(records) != len(rep.Rows)+1 {
		t.Fatalf("records = %d, want %d", len(records), len(rep.Rows)+1)
	}
	if records[0][0] != "name" || len(records[0]) != 13 {
		t.Errorf("header wrong: %v", records[0])
	}
	for i, rec := range records[1:] {
		if rec[0] != rep.Rows[i].Name {
			t.Errorf("row %d name %q != %q", i, rec[0], rep.Rows[i].Name)
		}
	}
}

func TestFig9CSV(t *testing.T) {
	rep, err := RunFig9(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
	if len(records) != len(rep.Points)+1 {
		t.Fatalf("records = %d, want %d", len(records), len(rep.Points)+1)
	}
	if records[0][2] != "method" {
		t.Errorf("header wrong: %v", records[0])
	}
}
