package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"hilight/internal/core"
	"hilight/internal/grid"
)

// Table1Row is one benchmark line of Table 1: the three frameworks'
// latency, runtime and resource utilization.
type Table1Row struct {
	Type, Function, Name string
	N, Gates             int
	SP, Full, HiLight    Measurement
}

// Table1Report is the full table plus the normalized summary row.
type Table1Report struct {
	Rows []Table1Row
	// Normalized geometric means relative to hilight-map (the paper's
	// "Normalized to Ours" row; 1.0 = parity, >1 = worse than HiLight).
	SPLatency, SPRuntime, SPResUtil       float64
	FullLatency, FullRuntime, FullResUtil float64
}

// RunTable1 reproduces Table 1: every benchmark mapped by autobraid-sp,
// autobraid-full and hilight-map on the rectangular M×(M−1) grid.
func RunTable1(o Options) (*Table1Report, error) {
	o = o.fill()
	rep := &Table1Report{}
	for _, e := range o.entries() {
		c := e.Build()
		row := Table1Row{Type: e.Type, Function: e.Function, Name: e.Name, N: e.N, Gates: e.Gates}
		var err error
		if row.SP, err = runOn(c, grid.Rect(e.N), core.MustMethod("autobraid-sp"), nil, o.Metrics); err != nil {
			return nil, fmt.Errorf("%s/autobraid-sp: %w", e.Name, err)
		}
		if row.Full, err = average(c, grid.Rect(e.N), core.MustMethod("autobraid-full"), o.Seed, 1, o.Metrics); err != nil {
			return nil, fmt.Errorf("%s/autobraid-full: %w", e.Name, err)
		}
		// QFT rows average the pattern-matched random layout (§3.1.2).
		trials := 1
		if c.NumQubits >= 4 && isQFTLike(e.Name) {
			trials = o.Trials
		}
		if row.HiLight, err = average(c, grid.Rect(e.N), core.MustMethod("hilight-map"), o.Seed, trials, o.Metrics); err != nil {
			return nil, fmt.Errorf("%s/hilight-map: %w", e.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.summarize()
	return rep, nil
}

func isQFTLike(name string) bool {
	return len(name) >= 3 && name[:3] == "QFT"
}

func (r *Table1Report) summarize() {
	var spL, spR, spU, flL, flR, flU, ourL, ourR, ourU []float64
	for _, row := range r.Rows {
		spL = append(spL, float64(row.SP.Latency))
		spR = append(spR, seconds(row.SP.Runtime))
		spU = append(spU, row.SP.ResUtil)
		flL = append(flL, float64(row.Full.Latency))
		flR = append(flR, seconds(row.Full.Runtime))
		flU = append(flU, row.Full.ResUtil)
		ourL = append(ourL, float64(row.HiLight.Latency))
		ourR = append(ourR, seconds(row.HiLight.Runtime))
		ourU = append(ourU, row.HiLight.ResUtil)
	}
	const rtFloor = 50e-6 // 50µs floor keeps trivial benchmarks from dominating ratios
	r.SPLatency = geomeanRatio(spL, ourL, 1)
	r.SPRuntime = geomeanRatio(spR, ourR, rtFloor)
	r.SPResUtil = geomeanRatio(spU, ourU, 1e-6)
	r.FullLatency = geomeanRatio(flL, ourL, 1)
	r.FullRuntime = geomeanRatio(flR, ourR, rtFloor)
	r.FullResUtil = geomeanRatio(flU, ourU, 1e-6)
}

// Print renders the report in the paper's layout.
func (r *Table1Report) Print(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tn\tg\tsp.lat\tsp.rt[s]\tsp.util\tfull.lat\tfull.rt[s]\tfull.util\tours.lat\tours.rt[s]\tours.util")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.2f\t%d\t%.3f\t%.2f\t%d\t%.3f\t%.2f\n",
			row.Name, row.N, row.Gates,
			row.SP.Latency, seconds(row.SP.Runtime), row.SP.ResUtil,
			row.Full.Latency, seconds(row.Full.Runtime), row.Full.ResUtil,
			row.HiLight.Latency, seconds(row.HiLight.Runtime), row.HiLight.ResUtil)
	}
	fmt.Fprintf(tw, "normalized to ours\t\t\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t1.000\t1.000\t1.000\n",
		r.SPLatency, r.SPRuntime, r.SPResUtil,
		r.FullLatency, r.FullRuntime, r.FullResUtil)
	tw.Flush()
}
