package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunThresholdSweepShape(t *testing.T) {
	rep, err := RunThresholdSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// Reference row (threshold 4) is 1.0 by construction.
	ref := rep.Points[2]
	if ref.Threshold != 4 || ref.Latency != 1 || ref.Runtime != 1 {
		t.Errorf("reference row wrong: %+v", ref)
	}
	// Never ordering must not improve latency more than marginally: the
	// ordering exists because it helps.
	never := rep.Points[len(rep.Points)-1]
	if never.Latency < 0.97 {
		t.Errorf("never-order latency %.3f: ordering appears useless", never.Latency)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "threshold") {
		t.Error("print output malformed")
	}
}

func TestRunBoundsShape(t *testing.T) {
	rep, err := RunBounds(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rep.Rows {
		if row.Latency < row.Depth {
			t.Errorf("%s: latency %d beat the dependency bound %d", row.Name, row.Latency, row.Depth)
		}
		if row.QCODpth > row.Depth {
			t.Errorf("%s: QCO deepened the circuit (%d > %d)", row.Name, row.QCODpth, row.Depth)
		}
		if row.Gap < 1 {
			t.Errorf("%s: gap %.3f below 1", row.Name, row.Gap)
		}
	}
	if rep.MeanGap < 1 {
		t.Errorf("geomean gap %.3f below 1", rep.MeanGap)
	}
	// Serialized circuits (BV/CC) must sit exactly on the bound.
	for _, row := range rep.Rows {
		if strings.HasPrefix(row.Name, "BV") || strings.HasPrefix(row.Name, "CC") {
			if row.Gap != 1 {
				t.Errorf("%s: serialized benchmark off the bound: %.3f", row.Name, row.Gap)
			}
		}
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "geomean gap") {
		t.Error("print output malformed")
	}
}

func TestRunModesShape(t *testing.T) {
	rep, err := RunModes(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rep.Rows {
		if row.SurgeryTiles <= row.BraidTiles {
			t.Errorf("%s: surgery board not larger (%d vs %d)", row.Name, row.SurgeryTiles, row.BraidTiles)
		}
		if row.SurgeryLatency%2 != 0 {
			t.Errorf("%s: surgery latency %d not a multiple of the op duration", row.Name, row.SurgeryLatency)
		}
	}
	if rep.MeanTileRatio < 1.5 {
		t.Errorf("tile ratio %.2f implausibly low", rep.MeanTileRatio)
	}
	if rep.MeanLatencyRatio < 1 {
		t.Errorf("surgery latency ratio %.2f below 1: braiding should win on latency", rep.MeanLatencyRatio)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("print output malformed")
	}
}

func TestRunFinderAblationShape(t *testing.T) {
	rep, err := RunFinderAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 4 {
		t.Fatalf("arms = %d", len(rep.Arms))
	}
	astar, ok := rep.Arm("astar-closest")
	if !ok || astar.Latency != 1 || astar.Runtime != 1 {
		t.Errorf("astar not the reference: %+v", astar)
	}
	full, _ := rep.Arm("full-16")
	if full.Runtime < 1 {
		t.Errorf("full-16 runtime %.3f should exceed single A*", full.Runtime)
	}
	if full.Latency > 1.02 {
		t.Errorf("full-16 latency %.3f should be at least as good as A*", full.Latency)
	}
	lshape, _ := rep.Arm("l-shape")
	if lshape.Latency < 0.999 {
		t.Errorf("l-shape latency %.3f should not beat A* (it defers on blocks)", lshape.Latency)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "l-shape") {
		t.Error("print output malformed")
	}
}
