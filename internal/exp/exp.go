// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section from the re-implemented
// frameworks and prints the same rows/series the paper reports.
//
// Experiments return structured reports (so tests can assert the paper's
// qualitative shape — who wins, by roughly what factor) and render
// themselves as text tables.
package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/obs"
)

// Scale bounds how much of Table 1 an experiment runs.
type Scale string

// Scales, by maximum benchmark gate count.
const (
	ScaleSmall  Scale = "small"  // ≤ 2,500 gates: seconds
	ScaleMedium Scale = "medium" // ≤ 40,000 gates: tens of seconds
	ScaleFull   Scale = "full"   // everything, including QFT-500 (0.25M gates)
)

func (s Scale) maxGates() int {
	switch s {
	case ScaleSmall:
		return 2500
	case ScaleMedium:
		return 40000
	default:
		return math.MaxInt
	}
}

// Options configures an experiment run.
type Options struct {
	Scale Scale
	Seed  int64
	// Trials averages the random-placement / random-ordering arms; the
	// paper uses 100, the default here is 5 to keep runs quick.
	Trials int
	// Metrics, when non-nil, aggregates every compile of the experiment
	// into the registry (pipeline pass counters, latency histograms,
	// routing totals) — the process-wide view of what a run actually did.
	Metrics *obs.Registry
}

func (o Options) fill() Options {
	if o.Scale == "" {
		o.Scale = ScaleSmall
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// entries returns the Table 1 benchmarks within the scale budget.
func (o Options) entries() []bench.Entry {
	maxG := o.Scale.maxGates()
	var out []bench.Entry
	for _, e := range bench.Table1() {
		if e.Gates <= maxG {
			out = append(out, e)
		}
	}
	return out
}

// Measurement is one framework run on one benchmark.
type Measurement struct {
	Latency int
	Runtime time.Duration
	ResUtil float64
}

// runOn maps a circuit on its paper grid (rectangular M×(M−1), per §4.6)
// through the sp pipeline and returns the measurement. rng drives the
// spec's randomized components (nil = seed 1); reg (may be nil)
// aggregates the compile into a metrics registry. The schedule is
// validated — a harness that reports metrics for unexecutable schedules
// would be meaningless.
func runOn(c *circuit.Circuit, g *grid.Grid, sp core.Spec, rng *rand.Rand, reg *obs.Registry) (Measurement, error) {
	res, err := core.Run(c, g, sp, core.RunOptions{Rng: rng, Metrics: reg})
	if err != nil {
		return Measurement{}, err
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		return Measurement{}, fmt.Errorf("invalid schedule: %w", err)
	}
	return Measurement{Latency: res.Latency, Runtime: res.Runtime, ResUtil: res.ResUtil}, nil
}

// average runs the sp pipeline trials times with distinct seeds and
// averages.
func average(c *circuit.Circuit, g *grid.Grid, sp core.Spec, seed int64, trials int, reg *obs.Registry) (Measurement, error) {
	var sumL, sumU float64
	var sumR time.Duration
	for t := 0; t < trials; t++ {
		m, err := runOn(c, g, sp, rand.New(rand.NewSource(seed+int64(t))), reg)
		if err != nil {
			return Measurement{}, err
		}
		sumL += float64(m.Latency)
		sumR += m.Runtime
		sumU += m.ResUtil
	}
	return Measurement{
		Latency: int(math.Round(sumL / float64(trials))),
		Runtime: sumR / time.Duration(trials),
		ResUtil: sumU / float64(trials),
	}, nil
}

// geomeanRatio returns the geometric mean of xs[i]/ys[i], skipping pairs
// where the denominator is zero (adding a floor keeps sub-microsecond
// runtimes from exploding the ratio).
func geomeanRatio(xs, ys []float64, floor float64) float64 {
	sum, n := 0.0, 0
	for i := range xs {
		x, y := xs[i], ys[i]
		if x < floor {
			x = floor
		}
		if y < floor {
			y = floor
		}
		if y == 0 {
			continue
		}
		sum += math.Log(x / y)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func seconds(d time.Duration) float64 { return d.Seconds() }
