package exp

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the Table 1 report as machine-readable CSV (one row per
// benchmark, framework metrics in columns) for external plotting.
func (r *Table1Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"name", "type", "n", "gates",
		"sp_latency", "sp_runtime_s", "sp_resutil",
		"full_latency", "full_runtime_s", "full_resutil",
		"hilight_latency", "hilight_runtime_s", "hilight_resutil"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Name, row.Type,
			fmt.Sprint(row.N), fmt.Sprint(row.Gates),
			fmt.Sprint(row.SP.Latency), fmt.Sprintf("%.6f", seconds(row.SP.Runtime)), fmt.Sprintf("%.4f", row.SP.ResUtil),
			fmt.Sprint(row.Full.Latency), fmt.Sprintf("%.6f", seconds(row.Full.Runtime)), fmt.Sprintf("%.4f", row.Full.ResUtil),
			fmt.Sprint(row.HiLight.Latency), fmt.Sprintf("%.6f", seconds(row.HiLight.Runtime)), fmt.Sprintf("%.4f", row.HiLight.ResUtil),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the scalability sweep as long-form CSV
// (bench,n,method,latency,runtime) — the layout plotting libraries want.
func (r *Fig9Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bench", "n", "method", "latency", "runtime_s"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{p.Bench, fmt.Sprint(p.N), p.Method,
			fmt.Sprint(p.Latency), fmt.Sprintf("%.6f", seconds(p.Runtime))}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
