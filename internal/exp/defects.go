package exp

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"hilight"
	"hilight/internal/grid"
)

// DefectPoint aggregates one defect rate over the benchmark set: how many
// compiles succeeded, how often the fallback chain had to fire, and the
// geometric-mean latency inflation of the successes relative to the same
// method on the same (pristine) grid.
type DefectPoint struct {
	Rate             float64
	Attempts         int
	Successes        int
	Fallbacks        int // successes produced by a fallback method
	LatencyInflation float64
}

// SuccessRate returns Successes/Attempts (0 for an empty row).
func (p DefectPoint) SuccessRate() float64 {
	if p.Attempts == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Attempts)
}

// DefectYieldReport is the fault-injection yield study: compile success,
// fallback frequency and latency inflation per random defect rate.
type DefectYieldReport struct {
	Method   string
	Fallback []string
	Points   []DefectPoint
}

// Print renders the study.
func (r *DefectYieldReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Defect yield study — method %q, fallback %v, grid one size above M×(M−1)\n", r.Method, r.Fallback)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rate\tcompiled\tsuccess\tfallback\tlatency.x")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%.0f%%\t%d/%d\t%.1f%%\t%d\t%.3f\n",
			p.Rate*100, p.Successes, p.Attempts, 100*p.SuccessRate(), p.Fallbacks, p.LatencyInflation)
	}
	tw.Flush()
}

// NextLargerGrid returns the grid one step above the paper's M×(M−1)
// progression for n qubits — the extra row/column of slack a defective
// chip needs to stay mappable: M×(M−1) grows to M×M, and M×M to (M+1)×M.
func NextLargerGrid(n int) *grid.Grid {
	base := grid.Rect(n)
	if base.W == base.H {
		return grid.New(base.W+1, base.H)
	}
	return grid.New(base.W, base.W)
}

// RunDefectYield drives the fault-injection harness over the scaled
// Table 1 set: for each defect rate it samples Trials random defect maps
// per benchmark (seeds Seed..Seed+Trials−1), compiles with the hilight
// method falling back to identity placement, validates every produced
// schedule against the defective grid, and aggregates yield metrics.
func RunDefectYield(o Options) (*DefectYieldReport, error) {
	o = o.fill()
	rates := []float64{0.02, 0.05, 0.10}
	rep := &DefectYieldReport{Method: "hilight", Fallback: []string{"identity"}}
	for _, rate := range rates {
		p := DefectPoint{Rate: rate}
		var logSum float64
		var logN int
		for _, e := range o.entries() {
			c := e.Build()
			g := NextLargerGrid(e.N)
			pristine, err := hilight.Compile(c, g, hilight.WithSeed(o.Seed), hilight.WithMetrics(o.Metrics))
			if err != nil {
				return nil, fmt.Errorf("defects: pristine %s: %w", e.Name, err)
			}
			for t := 0; t < o.Trials; t++ {
				_, dm := hilight.InjectDefects(g, rate, o.Seed+int64(t))
				p.Attempts++
				res, err := hilight.Compile(c, g,
					hilight.WithSeed(o.Seed),
					hilight.WithDefects(dm),
					hilight.WithFallback(rep.Fallback...),
					hilight.WithMetrics(o.Metrics))
				if err != nil {
					continue
				}
				if err := res.Schedule.Validate(res.Circuit); err != nil {
					return nil, fmt.Errorf("defects: %s rate %.0f%%: invalid schedule: %w", e.Name, rate*100, err)
				}
				p.Successes++
				if res.Degraded {
					p.Fallbacks++
				}
				if pristine.Latency > 0 && res.Latency > 0 {
					logSum += math.Log(float64(res.Latency) / float64(pristine.Latency))
					logN++
				}
			}
		}
		if logN > 0 {
			p.LatencyInflation = math.Exp(logSum / float64(logN))
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}
