package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	_ "hilight/internal/autobraid" // registers the autobraid-sp/-full method specs

	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
)

// Fig9Point is one (benchmark, size, method) measurement of the
// scalability analysis.
type Fig9Point struct {
	Bench  string
	N      int
	Method string
	Measurement
}

// Fig9Report holds the scalability sweep series.
type Fig9Report struct {
	Points []Fig9Point
}

// Series returns the points of one benchmark and method in size order.
func (r *Fig9Report) Series(benchName, method string) []Fig9Point {
	var out []Fig9Point
	for _, p := range r.Points {
		if p.Bench == benchName && p.Method == method {
			out = append(out, p)
		}
	}
	return out
}

// Print renders the sweep as a table grouped by benchmark and size.
func (r *Fig9Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 9 — scalability (latency and runtime by circuit size)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tn\tmethod\tlatency\truntime[s]")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.4f\n", p.Bench, p.N, p.Method, p.Latency, seconds(p.Runtime))
	}
	tw.Flush()
}

// Fig9Methods are the four curves of Fig. 9; each is a registered method
// spec, resolved by name.
var Fig9Methods = []string{"baseline", "autobraid-full", "hilight-gm", "hilight-map"}

// RunFig9 reproduces the scalability analysis: QFT, BV, CC and Ising
// sweeps mapped by the four methods. Scale bounds the largest instances
// (small ≤ 32 qubits, medium ≤ 200, full = the paper's largest).
func RunFig9(o Options) (*Fig9Report, error) {
	o = o.fill()
	sizes := map[string][]int{
		"QFT":   {10, 16, 32},
		"BV":    {10, 16, 32},
		"CC":    {11, 18, 32},
		"Ising": {10, 16, 32},
	}
	switch o.Scale {
	case ScaleMedium:
		sizes = map[string][]int{
			"QFT":   {10, 16, 100, 150, 200},
			"BV":    {10, 100, 150, 200},
			"CC":    {11, 18, 100, 200},
			"Ising": {10, 16, 100, 200},
		}
	case ScaleFull:
		sizes = map[string][]int{
			"QFT":   {10, 16, 100, 150, 200, 400, 500},
			"BV":    {10, 100, 150, 200},
			"CC":    {11, 18, 100, 200, 300},
			"Ising": {10, 16, 100, 500, 1000},
		}
	}
	builders := map[string]func(int) *circuit.Circuit{
		"QFT": bench.QFT,
		"BV":  bench.BV,
		"CC":  bench.CC,
		"Ising": func(n int) *circuit.Circuit {
			steps := 5
			if n > 100 {
				steps = 1
			}
			return bench.Ising(n, steps)
		},
	}
	rep := &Fig9Report{}
	for _, name := range []string{"QFT", "BV", "CC", "Ising"} {
		for _, n := range sizes[name] {
			c := builders[name](n)
			for _, method := range Fig9Methods {
				m, err := runOn(c, grid.Rect(n), core.MustMethod(method), rand.New(rand.NewSource(o.Seed)), o.Metrics)
				if err != nil {
					return nil, fmt.Errorf("%s-%d/%s: %w", name, n, method, err)
				}
				rep.Points = append(rep.Points, Fig9Point{Bench: name, N: n, Method: method, Measurement: m})
			}
		}
	}
	return rep, nil
}
