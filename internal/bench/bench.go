// Package bench generates the benchmark circuits of the paper's Table 1.
//
// The paper draws circuits from RevLib, ScaffCC, Qiskit and Cirq. Those
// suites are not vendored here; instead every benchmark is generated
// deterministically with the same qubit count, the same (or near-same)
// gate count, and the same interaction-graph shape, which is all the
// mapping problem observes:
//
//   - QFT — the paper's gate set {CX(i, j<i)} plus H and phase rotations:
//     exactly n² gates (n H, n(n−1)/2 CX, n(n−1)/2 RZ).
//   - BV — Bernstein–Vazirani with an all-ones hidden string: a pure CX
//     star into the ancilla (3n−1 gates, n−1 serialized CXs).
//   - CC — counterfeit-coin search: the same star without the closing
//     Hadamards (2(n−1) gates).
//   - Ising — 1D transverse-field Ising Trotter steps: a linear chain,
//     4 braiding layers per step on a linear layout.
//   - QAOA — MaxCut-style layers of ZZ interactions over a deterministic
//     pseudo-random pairing ("180 alternating ZZs" at n=100).
//   - BWT — binary-welded-tree walk: two depth-d binary trees glued by a
//     random welding permutation, Trotterized edge-color by edge-color.
//   - Shor — a locality-structured stand-in for Shor-471: repeated
//     ripple-adder chains over register windows with control fan-outs.
//   - RevLib building blocks (4gt11_82 … urf5_280) — seeded reversible
//     random circuits over {X, CX, Toffoli} calibrated to the published
//     gate counts (Toffolis expand to the standard 6-CX network exactly
//     as the paper's toolchain expands them).
//   - GHZ, W, VQE, graph-state chains for the pattern-matching analyses.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"hilight/internal/circuit"
)

// QFT returns the n-qubit quantum Fourier transform in the paper's gate
// accounting: H on each qubit and, per pair (i, j>i), one CX plus one RZ
// (the controlled-phase split), totalling exactly n² gates with a
// complete interaction graph.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QFT-%d", n), n)
	for i := 0; i < n; i++ {
		c.Add1(circuit.H, i)
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
			c.AddRot(circuit.RZ, i, math.Pi/float64(int(1)<<uint(j-i)))
		}
	}
	return c
}

// BV returns the n-qubit (including ancilla) Bernstein–Vazirani circuit
// with the all-ones hidden string: 3n−1 gates, n−1 CXs sharing the
// ancilla target.
func BV(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("BV-%d", n), n)
	for q := 0; q < n-1; q++ {
		c.Add1(circuit.H, q)
	}
	c.Add1(circuit.X, n-1)
	c.Add1(circuit.H, n-1)
	for q := 0; q < n-1; q++ {
		c.Add2(circuit.CX, q, n-1)
	}
	for q := 0; q < n-1; q++ {
		c.Add1(circuit.H, q)
	}
	return c
}

// CC returns the n-qubit counterfeit-coin circuit: a Hadamard layer and a
// CX star into the last qubit (2(n−1) gates).
func CC(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("CC-%d", n), n)
	for q := 0; q < n-1; q++ {
		c.Add1(circuit.H, q)
	}
	for q := 0; q < n-1; q++ {
		c.Add2(circuit.CX, q, n-1)
	}
	return c
}

// Ising returns steps Trotter steps of the 1D transverse-field Ising
// model on n spins: per step, an RX on every spin and a ZZ (CX·RZ·CX) on
// every even bond then every odd bond. The interaction graph is the
// linear chain, so a snake layout executes each step in 4 braiding
// cycles.
func Ising(n, steps int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("Ising-%d", n), n)
	for s := 0; s < steps; s++ {
		for q := 0; q < n; q++ {
			c.AddRot(circuit.RX, q, 0.21)
		}
		for _, parity := range []int{0, 1} {
			for i := parity; i+1 < n; i += 2 {
				c.Add2(circuit.CX, i, i+1)
				c.AddRot(circuit.RZ, i+1, 0.37)
				c.Add2(circuit.CX, i, i+1)
			}
		}
	}
	return c
}

// QAOA returns a p-layer QAOA circuit on n qubits with zz pseudo-random
// ZZ interactions per layer (deterministic pairing). Each layer is the ZZ
// block followed by the RX mixer; an initial H layer prepares |+...+⟩.
// The paper's instance is QAOA(100, 180, 4).
func QAOA(n, zz, p int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QAOA-%d", n), n)
	rng := rand.New(rand.NewSource(int64(n)*1_000_003 + int64(zz)))
	type edge struct{ a, b int }
	edges := make([]edge, 0, zz)
	seen := map[edge]bool{}
	for len(edges) < zz {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if seen[e] && len(seen) < n*(n-1)/2 {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	for layer := 0; layer < p; layer++ {
		for _, e := range edges {
			c.Add2(circuit.CX, e.a, e.b)
			c.AddRot(circuit.RZ, e.b, 0.4)
			c.Add2(circuit.CX, e.a, e.b)
		}
		for q := 0; q < n; q++ {
			c.AddRot(circuit.RX, q, 0.8)
		}
	}
	return c
}

// BWT returns a binary-welded-tree walk circuit. Two complete binary
// trees of the given depth are welded leaf-to-leaf by a deterministic
// pseudo-random matching; each Trotter step applies a ZZ-style CX·RZ·CX
// along every edge, color by color (tree level by tree level). Qubits are
// the 2(2^(depth+1)−1) tree nodes.
func BWT(depth, steps int) *circuit.Circuit {
	nodes := 1<<(depth+1) - 1 // per tree
	n := 2 * nodes
	c := circuit.New(fmt.Sprintf("BWT-%d", n), n)
	rng := rand.New(rand.NewSource(int64(depth)*97 + int64(steps)))
	// Tree edges: node i has children 2i+1, 2i+2 (indices within a tree).
	type edge struct{ a, b int }
	var colors [][]edge
	for level := 0; level < depth; level++ {
		var even, odd []edge
		for i := 1<<level - 1; i < 1<<(level+1)-1; i++ {
			// Left tree edges, then mirrored right tree edges.
			even = append(even, edge{i, 2*i + 1}, edge{nodes + i, nodes + 2*i + 1})
			odd = append(odd, edge{i, 2*i + 2}, edge{nodes + i, nodes + 2*i + 2})
		}
		colors = append(colors, even, odd)
	}
	// Welding: random matching between left leaves and right leaves.
	leafStart := 1<<depth - 1
	perm := rng.Perm(1 << depth)
	var weld []edge
	for i := 0; i < 1<<depth; i++ {
		weld = append(weld, edge{leafStart + i, nodes + leafStart + perm[i]})
	}
	colors = append(colors, weld)
	for s := 0; s < steps; s++ {
		for _, color := range colors {
			for _, e := range color {
				c.Add2(circuit.CX, e.a, e.b)
				c.AddRot(circuit.RZ, e.b, 0.23)
				c.Add2(circuit.CX, e.a, e.b)
			}
		}
	}
	return c
}

// Shor returns a locality-structured stand-in for the paper's Shor-471
// instance: over register windows of width 16, repeated ripple-carry
// adder chains (nearest-neighbour CX ladders) interleaved with control
// fan-outs from a sliding control qubit, sized to approximately gates
// total gates. The mix of local chains and medium-range fan-outs is what
// gives placement its large win on this benchmark.
func Shor(n, gates int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("Shor-%d", n), n)
	rng := rand.New(rand.NewSource(int64(n)))
	window := 16
	if window > n {
		window = n
	}
	for c.Len() < gates {
		base := rng.Intn(n - window + 1)
		// Ripple chain up the window.
		for i := 0; i+1 < window; i++ {
			c.Add2(circuit.CX, base+i, base+i+1)
		}
		// Controlled fan-out from the window head to a few positions.
		ctrl := base
		for k := 0; k < 4; k++ {
			tgt := base + 1 + rng.Intn(window-1)
			if tgt != ctrl {
				c.Add2(circuit.CX, ctrl, tgt)
			}
		}
		c.AddRot(circuit.RZ, base, 0.11)
	}
	c.Gates = c.Gates[:gates]
	return c
}

// GHZ returns the n-qubit GHZ preparation: H then a CX chain.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("GHZ-%d", n), n)
	c.Add1(circuit.H, 0)
	for i := 0; i+1 < n; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	return c
}

// WState returns an n-qubit W-state preparation skeleton: a chain of
// controlled rotations (RY+CX pairs), linear interaction graph.
func WState(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("W-%d", n), n)
	c.Add1(circuit.X, 0)
	for i := 0; i+1 < n; i++ {
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-i)))
		c.AddRot(circuit.RY, i+1, theta)
		c.Add2(circuit.CX, i, i+1)
		c.AddRot(circuit.RY, i+1, -theta)
		c.Add2(circuit.CX, i, i+1)
	}
	return c
}

// VQE returns a hardware-efficient VQE ansatz layer stack on a linear
// chain: RY rotations plus nearest-neighbour CX entanglers.
func VQE(n, layers int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("VQE-%d", n), n)
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(layers)))
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.AddRot(circuit.RY, q, rng.Float64()*math.Pi)
		}
		for i := l % 2; i+1 < n; i += 2 {
			c.Add2(circuit.CX, i, i+1)
		}
	}
	return c
}

// GraphState returns the graph-state preparation for a ring of n qubits:
// H everywhere then CZ along chain edges (linear interaction graph).
func GraphState(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("graphstate-%d", n), n)
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	for i := 0; i+1 < n; i++ {
		c.Add2(circuit.CZ, i, i+1)
	}
	return c
}
