package bench

import (
	"fmt"
	"math/rand"

	"hilight/internal/circuit"
)

// RevLib generates a seeded reversible random circuit calibrated to a
// RevLib building-block benchmark: a deterministic mix of X, CX and
// Toffoli gates on n qubits, with Toffolis expanded into the standard
// 6-CX Clifford+T network (the same expansion the paper's toolchain
// applies), truncated to exactly the published gate count.
//
// The seed is derived from the name so every named benchmark is
// reproducible. Reversible functions interact densely on their few
// qubits, which the uniform operand choice reproduces.
func RevLib(name string, n, gates int) *circuit.Circuit {
	c := circuit.New(name, n)
	seed := int64(0)
	for _, r := range name {
		seed = seed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(seed))
	for c.Len() < gates {
		switch r := rng.Intn(10); {
		case r < 1:
			c.Add1(circuit.X, rng.Intn(n))
		case r < 6:
			a, b := twoDistinct(rng, n)
			c.Add2(circuit.CX, a, b)
		default:
			if n < 3 {
				a, b := twoDistinct(rng, n)
				c.Add2(circuit.CX, a, b)
				continue
			}
			a, b, t := threeDistinct(rng, n)
			appendCCX(c, a, b, t)
		}
	}
	c.Gates = c.Gates[:gates]
	return c
}

func twoDistinct(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func threeDistinct(rng *rand.Rand, n int) (int, int, int) {
	perm := rng.Perm(n)
	return perm[0], perm[1], perm[2]
}

// appendCCX emits the standard Toffoli decomposition (6 CX, 7 T-type,
// 2 H) used by the QASM parser as well.
func appendCCX(c *circuit.Circuit, a, b, t int) {
	c.Add1(circuit.H, t)
	c.Add2(circuit.CX, b, t)
	c.Add1(circuit.Tdg, t)
	c.Add2(circuit.CX, a, t)
	c.Add1(circuit.T, t)
	c.Add2(circuit.CX, b, t)
	c.Add1(circuit.Tdg, t)
	c.Add2(circuit.CX, a, t)
	c.Add1(circuit.T, b)
	c.Add1(circuit.T, t)
	c.Add1(circuit.H, t)
	c.Add2(circuit.CX, a, b)
	c.Add1(circuit.T, a)
	c.Add1(circuit.Tdg, b)
	c.Add2(circuit.CX, a, b)
}

// Entry is one Table 1 benchmark: its paper metadata and a generator.
type Entry struct {
	Type     string // "building-block" or "application"
	Function string // the paper's function column
	Name     string
	N        int // paper qubit count
	Gates    int // paper gate count (approximate for generated apps)
	Build    func() *circuit.Circuit
}

// Table1 returns the paper's 35 benchmarks in table order. Generated
// gate counts match the paper exactly for the RevLib blocks, QFT, BV and
// CC, and approximately (same interaction shape and latency behaviour)
// for Ising, BWT, QAOA and Shor.
func Table1() []Entry {
	bb := func(fn, name string, n, g int) Entry {
		return Entry{
			Type: "building-block", Function: fn, Name: name, N: n, Gates: g,
			Build: func() *circuit.Circuit { return RevLib(name, n, g) },
		}
	}
	app := func(fn, name string, n, g int, build func() *circuit.Circuit) Entry {
		return Entry{Type: "application", Function: fn, Name: name, N: n, Gates: g, Build: build}
	}
	entries := []Entry{
		bb("Compare input", "4gt11_82", 5, 20),
		bb("Compare input", "4gt5_75", 5, 48),
		bb("ALU by Gupta", "alu-v0_26", 5, 48),
		bb("Bit adder", "rd32_270", 5, 46),
		bb("Square root", "sqrt8_260", 12, 1690),
		bb("Square root", "squar5_261", 13, 1120),
		bb("Square root", "square_root_7", 15, 4070),
		bb("Unstructured reversible function", "urf1_278", 9, 32800),
		bb("Unstructured reversible function", "urf2_277", 8, 12300),
		bb("Unstructured reversible function", "urf5_158", 9, 92500),
		bb("Unstructured reversible function", "urf5_280", 9, 29500),
	}
	for _, n := range []int{10, 16, 100, 150, 200, 400, 500} {
		n := n
		entries = append(entries, app("Quantum Fourier Transform", fmt.Sprintf("QFT-%d", n), n, n*n,
			func() *circuit.Circuit { return QFT(n) }))
	}
	for _, n := range []int{10, 100, 150, 200} {
		n := n
		entries = append(entries, app("Bernstein Vazirani", fmt.Sprintf("BV-%d", n), n, 3*n-1,
			func() *circuit.Circuit { return BV(n) }))
	}
	for _, n := range []int{11, 18, 100, 200, 300} {
		n := n
		entries = append(entries, app("Counterfeit Coin", fmt.Sprintf("CC-%d", n), n, 2*(n-1),
			func() *circuit.Circuit { return CC(n) }))
	}
	isingSteps := map[int]int{10: 5, 13: 5, 16: 5, 500: 1, 1000: 1}
	for _, n := range []int{10, 13, 16, 500, 1000} {
		n := n
		steps := isingSteps[n]
		g := steps * (n + 3*((n-1)/2+n/2))
		entries = append(entries, app("1D-Ising Model", fmt.Sprintf("Ising-%d", n), n, g,
			func() *circuit.Circuit { return Ising(n, steps) }))
	}
	entries = append(entries,
		app("Binary Welded Tree", "BWT-126", 126, 948,
			func() *circuit.Circuit { return BWT(5, 1) }),
		app("Binary Welded Tree", "BWT-254", 254, 1908,
			func() *circuit.Circuit { return BWT(6, 1) }),
		app("Quantum Approximate Optimization Alg.", "QAOA-100", 100, 2720,
			func() *circuit.Circuit { return QAOA(100, 180, 4) }),
		app("Shor's Algo.", "Shor-471", 471, 36600,
			func() *circuit.Circuit { return Shor(471, 36600) }),
	)
	return entries
}

// ByName returns the Table 1 entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Table1() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
