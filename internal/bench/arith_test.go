package bench

import (
	"math"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/sim"
)

// runBasis applies c to the computational basis state |input⟩ and
// returns the output basis label (the circuit must be classical).
func runBasis(t *testing.T, c *circuit.Circuit, input int) int {
	t.Helper()
	s, err := sim.NewState(c.NumQubits)
	if err != nil {
		t.Fatal(err)
	}
	s.Amps[0] = 0
	s.Amps[input] = 1
	for _, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			t.Fatal(err)
		}
	}
	for i, amp := range s.Amps {
		if math.Abs(real(amp)-1) < 1e-9 && math.Abs(imag(amp)) < 1e-9 {
			return i
		}
	}
	t.Fatalf("output not a basis state")
	return -1
}

// TestCuccaroAdderAdds verifies the generator against classical addition
// for every input pair at small widths — the strongest possible check
// that a generated benchmark is the real algorithm, not a shape-alike.
func TestCuccaroAdderAdds(t *testing.T) {
	for _, bits := range []int{1, 2, 3} {
		c := CuccaroAdder(bits)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 1<<bits; a++ {
			for b := 0; b < 1<<bits; b++ {
				// Input layout: bit 0 = cin, then b0,a0,b1,a1..., cout.
				input := 0
				for i := 0; i < bits; i++ {
					if b&(1<<i) != 0 {
						input |= 1 << (1 + 2*i)
					}
					if a&(1<<i) != 0 {
						input |= 1 << (2 + 2*i)
					}
				}
				output := runBasis(t, c, input)
				// Expected: b register holds a+b mod 2^bits, cout the
				// carry, a register unchanged.
				sum := a + b
				for i := 0; i < bits; i++ {
					got := (output >> (1 + 2*i)) & 1
					want := (sum >> i) & 1
					if got != want {
						t.Fatalf("bits=%d a=%d b=%d: sum bit %d = %d, want %d", bits, a, b, i, got, want)
					}
					gotA := (output >> (2 + 2*i)) & 1
					if gotA != (a>>i)&1 {
						t.Fatalf("bits=%d a=%d b=%d: a register corrupted", bits, a, b)
					}
				}
				carry := (output >> (2*bits + 1)) & 1
				if carry != (sum>>bits)&1 {
					t.Fatalf("bits=%d a=%d b=%d: carry = %d, want %d", bits, a, b, carry, (sum>>bits)&1)
				}
			}
		}
	}
}

func TestCuccaroAdderMaps(t *testing.T) {
	c := CuccaroAdder(4)
	res, err := core.Run(c, grid.Rect(c.NumQubits), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestCuccaroAdderPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width accepted")
		}
	}()
	CuccaroAdder(0)
}

func TestGroverStructure(t *testing.T) {
	c := Grover(5, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CXCount() == 0 {
		t.Error("no entangling structure")
	}
	// Exact semantics at n=2, 1 iteration: Grover finds |11⟩ with
	// certainty.
	g2 := Grover(2, 1)
	s, err := sim.Run(g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p11 := real(s.Amps[3])*real(s.Amps[3]) + imag(s.Amps[3])*imag(s.Amps[3])
	if p11 < 0.999 {
		t.Errorf("Grover(2,1) P(|11⟩) = %g, want ~1", p11)
	}
	res, err := core.Run(c, grid.Rect(5), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestHiddenShiftStructure(t *testing.T) {
	c := HiddenShift(8, 0b10110101)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	xs := 0
	for _, g := range c.Gates {
		if g.Kind == circuit.X {
			xs++
		}
	}
	if xs != 2*5 { // popcount(0b10110101)=5, applied twice
		t.Errorf("X count = %d, want 10", xs)
	}
	res, err := core.Run(c, grid.Rect(8), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
}
