package bench

import (
	"fmt"

	"hilight/internal/circuit"
)

// CuccaroAdder returns the Cuccaro ripple-carry adder on two bits-wide
// registers: qubit 0 is the carry-in, qubits 1..2·bits alternate
// b0,a0,b1,a1,..., and the last qubit is the carry-out. After execution
// the b register holds a+b (mod 2^bits) and the carry-out the final
// carry — verified against classical addition by the test suite through
// the statevector oracle. Toffolis are expanded into the standard 6-CX
// network, so the circuit is directly mappable.
func CuccaroAdder(bits int) *circuit.Circuit {
	if bits < 1 {
		panic(fmt.Sprintf("bench: adder width %d must be positive", bits))
	}
	n := 2*bits + 2
	c := circuit.New(fmt.Sprintf("cuccaro-%d", bits), n)
	cin := 0
	b := func(i int) int { return 1 + 2*i }
	a := func(i int) int { return 2 + 2*i }
	cout := n - 1

	maj := func(x, y, z int) {
		c.Add2(circuit.CX, z, y)
		c.Add2(circuit.CX, z, x)
		appendCCX(c, x, y, z)
	}
	uma := func(x, y, z int) {
		appendCCX(c, x, y, z)
		c.Add2(circuit.CX, z, x)
		c.Add2(circuit.CX, x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < bits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Add2(circuit.CX, a(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// Grover returns a Grover-search skeleton on n qubits with the given
// iteration count: the uniform-superposition preparation, then per
// iteration a phase-oracle block (a CZ ladder marking the all-ones
// string, built from the multi-control recursion's CX skeleton) and the
// diffusion operator. The interaction structure — repeated global
// entangling blocks — is what stresses the mapper; the oracle marks the
// all-ones state.
func Grover(n, iterations int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("grover-%d", n), n)
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	for it := 0; it < iterations; it++ {
		multiControlledZ(c, n)
		// Diffusion: H X (MCZ) X H.
		for q := 0; q < n; q++ {
			c.Add1(circuit.H, q)
			c.Add1(circuit.X, q)
		}
		multiControlledZ(c, n)
		for q := 0; q < n; q++ {
			c.Add1(circuit.X, q)
			c.Add1(circuit.H, q)
		}
	}
	return c
}

// multiControlledZ emits an (n−1)-controlled Z on qubits 0..n−1 via the
// H-conjugated multi-control-X recursion (CX skeleton for the controlled
// square-root blocks, exact for n ≤ 3).
func multiControlledZ(c *circuit.Circuit, n int) {
	if n == 1 {
		c.Add1(circuit.Z, 0)
		return
	}
	tgt := n - 1
	c.Add1(circuit.H, tgt)
	var mcx func(controls []int, target int)
	mcx = func(controls []int, target int) {
		switch len(controls) {
		case 0:
			c.Add1(circuit.X, target)
		case 1:
			c.Add2(circuit.CX, controls[0], target)
		case 2:
			appendCCX(c, controls[0], controls[1], target)
		default:
			last := controls[len(controls)-1]
			rest := controls[:len(controls)-1]
			c.Add2(circuit.CX, last, target)
			mcx(rest, last)
			c.Add2(circuit.CX, last, target)
			mcx(rest, last)
			mcx(rest, target)
		}
	}
	controls := make([]int, n-1)
	for i := range controls {
		controls[i] = i
	}
	mcx(controls, tgt)
	c.Add1(circuit.H, tgt)
}

// HiddenShift returns the Bremner-style hidden-shift benchmark on n
// qubits: Hadamard layers around an X-shift and a CZ-pairing function,
// repeated twice. Linear-plus-local structure, popular in mapper
// evaluations.
func HiddenShift(n int, shift uint64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("hiddenshift-%d", n), n)
	applyShift := func() {
		for q := 0; q < n && q < 64; q++ {
			if shift&(1<<q) != 0 {
				c.Add1(circuit.X, q)
			}
		}
	}
	czLayer := func() {
		for i := 0; i+1 < n; i += 2 {
			c.Add2(circuit.CZ, i, i+1)
		}
	}
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	applyShift()
	czLayer()
	applyShift()
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	czLayer()
	for q := 0; q < n; q++ {
		c.Add1(circuit.H, q)
	}
	return c
}
