package bench

import (
	"testing"

	"hilight/internal/circuit"
)

func TestQFTShape(t *testing.T) {
	for _, n := range []int{5, 10, 16} {
		c := QFT(n)
		if c.Len() != n*n {
			t.Errorf("QFT(%d) gates = %d, want %d", n, c.Len(), n*n)
		}
		if c.CXCount() != n*(n-1)/2 {
			t.Errorf("QFT(%d) CX = %d, want %d", n, c.CXCount(), n*(n-1)/2)
		}
		m := circuit.NewInteractionMatrix(c)
		if m.Density() != 1 {
			t.Errorf("QFT(%d) interaction graph not complete", n)
		}
		if err := c.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestBVShape(t *testing.T) {
	for _, n := range []int{10, 100} {
		c := BV(n)
		if c.Len() != 3*n-1 {
			t.Errorf("BV(%d) gates = %d, want %d", n, c.Len(), 3*n-1)
		}
		if c.CXCount() != n-1 {
			t.Errorf("BV(%d) CX = %d", n, c.CXCount())
		}
		// Star interaction graph: ancilla degree n-1, others 1.
		m := circuit.NewInteractionMatrix(c)
		if m.Degree(n-1) != n-1 {
			t.Errorf("BV(%d) ancilla degree = %d", n, m.Degree(n-1))
		}
	}
}

func TestCCShape(t *testing.T) {
	c := CC(11)
	if c.Len() != 20 || c.CXCount() != 10 {
		t.Errorf("CC(11): %d gates, %d CX", c.Len(), c.CXCount())
	}
}

func TestIsingShape(t *testing.T) {
	c := Ising(10, 5)
	m := circuit.NewInteractionMatrix(c)
	ok, _ := m.IsLinearChain()
	if !ok {
		t.Error("Ising interaction graph not a chain")
	}
	if c.CXCount() != 5*2*9 {
		t.Errorf("Ising CX = %d", c.CXCount())
	}
}

func TestQAOAShape(t *testing.T) {
	c := QAOA(100, 180, 4)
	if c.NumQubits != 100 {
		t.Error("qubit count")
	}
	if got := c.CXCount(); got != 4*180*2 {
		t.Errorf("QAOA CX = %d, want %d", got, 4*180*2)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	// Deterministic: two builds identical.
	d := QAOA(100, 180, 4)
	for i := range c.Gates {
		if c.Gates[i] != d.Gates[i] {
			t.Fatal("QAOA not deterministic")
		}
	}
}

func TestBWTShape(t *testing.T) {
	c := BWT(5, 1)
	if c.NumQubits != 126 {
		t.Errorf("BWT(5) qubits = %d, want 126", c.NumQubits)
	}
	// Edges: 2 trees × (nodes-1) + 2^depth weld = 2*62 + 32 = 156, each
	// contributing 2 CX per step.
	if got := c.CXCount(); got != 2*156 {
		t.Errorf("BWT CX = %d, want %d", got, 2*156)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestShorShape(t *testing.T) {
	c := Shor(471, 36600)
	if c.NumQubits != 471 || c.Len() != 36600 {
		t.Errorf("Shor: %d qubits, %d gates", c.NumQubits, c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRevLibCalibration(t *testing.T) {
	c := RevLib("sqrt8_260", 12, 1690)
	if c.Len() != 1690 || c.NumQubits != 12 {
		t.Errorf("RevLib: %d gates on %d qubits", c.Len(), c.NumQubits)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	// Deterministic per name.
	d := RevLib("sqrt8_260", 12, 1690)
	for i := range c.Gates {
		if c.Gates[i] != d.Gates[i] {
			t.Fatal("RevLib not deterministic")
		}
	}
	// Different names diverge.
	e := RevLib("squar5_261", 12, 1690)
	same := true
	for i := range c.Gates {
		if c.Gates[i] != e.Gates[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different benchmarks produced identical circuits")
	}
	if c.CXCount() == 0 {
		t.Error("no CX gates generated")
	}
}

func TestRevLibTwoQubits(t *testing.T) {
	c := RevLib("tiny", 2, 30)
	if c.Len() != 30 {
		t.Errorf("len = %d", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPatternFriendlyGenerators(t *testing.T) {
	for name, c := range map[string]*circuit.Circuit{
		"ghz":   GHZ(12),
		"w":     WState(9),
		"graph": GraphState(10),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		m := circuit.NewInteractionMatrix(c)
		if ok, _ := m.IsLinearChain(); !ok {
			t.Errorf("%s: interaction graph not a chain", name)
		}
	}
	v := VQE(8, 3)
	if err := v.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTable1Registry(t *testing.T) {
	entries := Table1()
	if len(entries) != 36 {
		t.Fatalf("Table1 has %d entries, want 36", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Errorf("duplicate entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.N <= 0 || e.Gates <= 0 || e.Build == nil {
			t.Errorf("entry %q incomplete", e.Name)
		}
	}
	// Spot-check generated sizes against metadata for the exact ones.
	for _, name := range []string{"4gt11_82", "urf2_277", "QFT-100", "BV-100", "CC-100"} {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		c := e.Build()
		if c.NumQubits != e.N {
			t.Errorf("%s qubits %d != %d", name, c.NumQubits, e.N)
		}
		if c.Len() != e.Gates {
			t.Errorf("%s gates %d != %d", name, c.Len(), e.Gates)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestTable1AllBuildable(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every Table 1 circuit")
	}
	for _, e := range Table1() {
		c := e.Build()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		if c.NumQubits != e.N {
			t.Errorf("%s: qubits %d != %d", e.Name, c.NumQubits, e.N)
		}
	}
}
