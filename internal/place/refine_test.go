package place

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/grid"
)

func TestRefineImprovesRandomLayout(t *testing.T) {
	// Heavy disjoint pairs: random layouts scatter them, refinement must
	// pull partners together. (A uniform complete graph like QFT on a
	// full grid is permutation-invariant — nothing to improve there.)
	c := circuit.New("cluster", 12)
	for i := 0; i < 12; i += 2 {
		for k := 0; k < 5; k++ {
			c.Add2(circuit.CX, i, i+1)
		}
		if i >= 2 {
			c.Add2(circuit.CX, i-1, i)
		}
	}
	g := grid.Rect(12)
	bad := Random{Rng: rand.New(rand.NewSource(5))}.Place(c, g)
	before := Score(bad, c, g)
	refined := Refine(bad, c, g, 0)
	after := Score(refined, c, g)
	if after > before {
		t.Fatalf("refinement worsened score: %d -> %d", before, after)
	}
	if after == before {
		t.Errorf("refinement found nothing to improve on a random layout (score %d)", before)
	}
	if err := refined.Validate(g); err != nil {
		t.Fatal(err)
	}
	// The input layout must be untouched.
	if Score(bad, c, g) != before {
		t.Error("Refine mutated its input")
	}
}

func TestRefineLeavesOptimumAlone(t *testing.T) {
	// Chain circuit on a snake layout is already optimal (score = bonds).
	c := chainCircuit(9)
	g := grid.Square(9)
	snake, ok := Pattern{}.Match(c, g)
	if !ok {
		t.Fatal("pattern should match")
	}
	before := Score(snake, c, g)
	refined := Refine(snake, c, g, 0)
	if got := Score(refined, c, g); got != before {
		t.Errorf("optimal layout changed: %d -> %d", before, got)
	}
}

func TestRefineRespectsReservedTiles(t *testing.T) {
	c := qftLike(6)
	g := grid.New(3, 3)
	g.ReserveTile(g.TileAt(1, 1))
	l := Random{Rng: rand.New(rand.NewSource(2))}.Place(c, g)
	refined := Refine(l, c, g, 0)
	if err := refined.Validate(g); err != nil {
		t.Fatal(err)
	}
	if refined.TileQubit[g.TileAt(1, 1)] != -1 {
		t.Error("refinement moved a qubit onto a reserved tile")
	}
}

func TestRefineHandlesNoInteractions(t *testing.T) {
	c := circuit.New("silent", 4)
	g := grid.Square(4)
	l := Identity{}.Place(c, g)
	refined := Refine(l, c, g, 0)
	if err := refined.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRefinedMethodComposes(t *testing.T) {
	c := qftLike(9)
	g := grid.Square(9)
	r := Refined{Base: Random{Rng: rand.New(rand.NewSource(8))}}
	if r.Name() != "random+refine" {
		t.Errorf("name = %q", r.Name())
	}
	l := r.Place(c, g)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Fatal("incomplete")
	}
	// Default base is Proximity.
	d := Refined{}
	if d.Name() != "proximity+refine" {
		t.Errorf("default name = %q", d.Name())
	}
	if err := d.Place(c, g).Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never raises the score and always yields a valid
// complete layout.
func TestRefineMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		c := circuit.New("rand", n)
		for i := 0; i < n*3; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := grid.Rect(n)
		l := Random{Rng: rng}.Place(c, g)
		before := Score(l, c, g)
		refined := Refine(l, c, g, 1+rng.Intn(20))
		if refined.Validate(g) != nil || !refined.Complete() {
			return false
		}
		return Score(refined, c, g) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
