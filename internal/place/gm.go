package place

import (
	"math/rand"

	"hilight/internal/circuit"
	"hilight/internal/graph"
	"hilight/internal/grid"
)

// GM is the graph-inspired placement heuristic of Park et al. (DAC 2022)
// as the paper evaluates it: it builds explicit node/edge graphs for both
// the circuit interactions and the hardware coupling, orders qubits by a
// weighted breadth-first traversal from the heaviest node, and places each
// qubit by exhaustively scoring every free tile against all already-placed
// partners — over several restarts, keeping the lowest-cost layout. The
// node/edge construction and full-grid candidate scans reproduce the
// runtime profile the paper reports (≈2.5× identity placement), while the
// layout quality approaches Proximity's.
//
// Restarts defaults to 4 when zero. Rng seeds restart perturbation and
// must be non-nil.
type GM struct {
	Rng      *rand.Rand
	Restarts int
}

// Name implements Method.
func (GM) Name() string { return "gm" }

// Place implements Method.
func (m GM) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	restarts := m.Restarts
	if restarts == 0 {
		restarts = 4
	}
	// Node/edge interaction graph (the heavier representation Alg. 1 avoids).
	ig := graph.NewDense(c.NumQubits)
	for _, gate := range c.Gates {
		if gate.TwoQubit() {
			ig.AddEdge(gate.Q0, gate.Q1, 1)
		}
	}
	free := freeTiles(g)
	var best *grid.Layout
	bestCost := 1 << 62
	for r := 0; r < restarts; r++ {
		start := ig.MaxWeightVertex()
		if r > 0 && c.NumQubits > 1 {
			start = m.Rng.Intn(c.NumQubits)
		}
		l := m.placeOnce(c, g, ig, free, start)
		cost := weightedDistance(ig, g, l)
		if cost < bestCost {
			best, bestCost = l, cost
		}
	}
	return best
}

// placeOnce performs one BFS-guided greedy embedding starting from qubit
// start.
func (m GM) placeOnce(c *circuit.Circuit, g *grid.Grid, ig *graph.Dense, free []int, start int) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	order := ig.BFSOrder(start)
	for i, q := range order {
		if i == 0 {
			l.Assign(q, g.Center(), g)
			continue
		}
		// Exhaustive candidate scan: score every free tile by the summed
		// weighted distance to all placed partners of q.
		bestTile, bestCost := -1, 1<<62
		for _, t := range free {
			if l.TileQubit[t] != -1 {
				continue
			}
			cost := 0
			for _, nb := range ig.Neighbors(q) {
				if pt := l.QubitTile[nb]; pt != -1 {
					cost += ig.Weight(q, nb) * g.Dist(t, pt)
				}
			}
			// Light tie-break toward the center keeps disconnected
			// components compact.
			cost = cost*1024 + g.Dist(t, g.Center())
			if cost < bestCost {
				bestTile, bestCost = t, cost
			}
		}
		l.Assign(q, bestTile, g)
	}
	return l
}

// weightedDistance scores a complete layout: sum over interacting pairs of
// weight × tile distance. Lower is better.
func weightedDistance(ig *graph.Dense, g *grid.Grid, l *grid.Layout) int {
	cost := 0
	for u := 0; u < ig.N; u++ {
		for v := u + 1; v < ig.N; v++ {
			if w := ig.Weight(u, v); w > 0 {
				cost += w * g.Dist(l.QubitTile[u], l.QubitTile[v])
			}
		}
	}
	return cost
}

// GMWP combines GM with the paper's pattern matching: when a pattern
// matches, use it; otherwise run the full GM embedding (the "GMWP" bar of
// Fig. 8a).
type GMWP struct {
	Rng *rand.Rand
}

// Name implements Method.
func (GMWP) Name() string { return "gmwp" }

// Place implements Method.
func (m GMWP) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	if l, ok := (Pattern{Rng: m.Rng}).Match(c, g); ok {
		return l
	}
	return GM{Rng: m.Rng}.Place(c, g)
}
