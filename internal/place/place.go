// Package place implements the initial-placement methods the paper
// compares in Fig. 8a:
//
//   - Identity — program qubit i on the i-th free tile.
//   - Random — a uniformly random assignment (the paper averages 100).
//   - GM — the graph-inspired NISQ heuristic of Park et al. (DAC 2022):
//     node/edge graph construction plus full-grid candidate scans, which
//     buys a decent layout at a steep runtime cost.
//   - Proximity — HiLight's Alg. 1: matrix-represented interactions, a
//     degree-ordered queue, center seeding, and cardinal fan-out of each
//     qubit's heaviest partners. SWAP-less: routing never changes it.
//   - Pattern — the paper's pattern matching: a linear (snake) layout for
//     chain-shaped interaction graphs, a random layout for near-complete
//     (QFT-like) graphs, and no match otherwise.
//   - HiLight — Pattern with Proximity fallback, the framework default.
package place

import (
	"math/rand"

	"hilight/internal/circuit"
	"hilight/internal/grid"
)

// Method computes an initial layout of the circuit's program qubits on g.
// Implementations must return a complete layout touching only unreserved
// tiles.
type Method interface {
	Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout
	Name() string
}

// freeTiles returns the usable (unreserved, non-defective) tiles of g in
// index order.
func freeTiles(g *grid.Grid) []int {
	var out []int
	for t := 0; t < g.Tiles(); t++ {
		if g.Usable(t) {
			out = append(out, t)
		}
	}
	return out
}

// Identity assigns program qubit i to the i-th free tile.
type Identity struct{}

// Name implements Method.
func (Identity) Name() string { return "identity" }

// Place implements Method.
func (Identity) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	free := freeTiles(g)
	for q := 0; q < c.NumQubits; q++ {
		l.Assign(q, free[q], g)
	}
	return l
}

// Random assigns program qubits to a random subset of free tiles. Rng
// must be non-nil.
type Random struct {
	Rng *rand.Rand
}

// Name implements Method.
func (Random) Name() string { return "random" }

// Place implements Method.
func (r Random) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	free := freeTiles(g)
	r.Rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for q := 0; q < c.NumQubits; q++ {
		l.Assign(q, free[q], g)
	}
	return l
}

// Proximity is HiLight's qubit-proximity placement (Alg. 1).
type Proximity struct{}

// Name implements Method.
func (Proximity) Name() string { return "proximity" }

// Place implements Method.
func (Proximity) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	m := circuit.NewInteractionMatrix(c)
	queue := m.QueueByDegree()

	// FindClosestUnmappedLoc: nearest usable, unoccupied tile to ref.
	closestFree := func(ref int) int {
		best, bestD := -1, 1<<30
		for t := 0; t < g.Tiles(); t++ {
			if !g.Usable(t) || l.TileQubit[t] != -1 {
				continue
			}
			if d := g.Dist(ref, t); d < bestD {
				best, bestD = t, d
			}
		}
		return best
	}

	for i, q := range queue {
		if l.Complete() {
			break
		}
		neighbors := m.Neighbors(q)
		if l.QubitTile[q] == -1 {
			switch {
			case i == 0:
				l.Assign(q, g.Center(), g)
			default:
				// refLoc: the location of the first already-mapped
				// neighbor (heaviest first); fall back to the grid center
				// for disconnected qubits.
				ref := -1
				for _, nb := range neighbors {
					if l.QubitTile[nb] != -1 {
						ref = l.QubitTile[nb]
						break
					}
				}
				if ref == -1 {
					ref = g.Center()
				}
				l.Assign(q, closestFree(ref), g)
			}
		}
		// Fan the unmapped heavy partners out into the free cardinal
		// positions around π[q] (Alg. 1 lines 12–15).
		var adjQubits []int
		for _, nb := range neighbors {
			if l.QubitTile[nb] == -1 {
				adjQubits = append(adjQubits, nb)
			}
		}
		var adjLocs []int
		for _, t := range g.CardinalNeighbors(l.QubitTile[q]) {
			if l.TileQubit[t] == -1 {
				adjLocs = append(adjLocs, t)
			}
		}
		n := len(adjQubits)
		if len(adjLocs) < n {
			n = len(adjLocs)
		}
		for k := 0; k < n; k++ {
			l.Assign(adjQubits[k], adjLocs[k], g)
		}
	}
	return l
}

// Pattern implements the paper's pattern matching. Match returns the
// layout and true when the circuit fits a known pattern; Place falls back
// to Proximity so Pattern alone still satisfies Method.
//
// DenseThreshold is the interaction-graph density at or above which the
// random layout is chosen (QFT-like dynamic interactions); the paper's
// examples are complete graphs (density 1), and 0.8 keeps near-complete
// variants matched.
type Pattern struct {
	Rng            *rand.Rand
	DenseThreshold float64
}

// Name implements Method.
func (Pattern) Name() string { return "pattern" }

// Match attempts pattern detection and returns (layout, true) on success.
func (p Pattern) Match(c *circuit.Circuit, g *grid.Grid) (*grid.Layout, bool) {
	m := circuit.NewInteractionMatrix(c)
	if ok, chain := m.IsLinearChain(); ok {
		return p.linearLayout(chain, c, g), true
	}
	thresh := p.DenseThreshold
	if thresh == 0 {
		thresh = 0.8
	}
	if m.Density() >= thresh && c.NumQubits >= 4 {
		rng := p.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		return Random{Rng: rng}.Place(c, g), true
	}
	return nil, false
}

// Place implements Method: Match with Proximity fallback.
func (p Pattern) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	if l, ok := p.Match(c, g); ok {
		return l
	}
	return Proximity{}.Place(c, g)
}

// linearLayout maps the chain order along a boustrophedon walk of the
// free tiles so consecutive chain qubits land on adjacent tiles.
func (Pattern) linearLayout(chain []int, c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	l := grid.NewLayout(c.NumQubits, g)
	var snake []int
	for y := 0; y < g.H; y++ {
		if y%2 == 0 {
			for x := 0; x < g.W; x++ {
				if t := g.TileAt(x, y); g.Usable(t) {
					snake = append(snake, t)
				}
			}
		} else {
			for x := g.W - 1; x >= 0; x-- {
				if t := g.TileAt(x, y); g.Usable(t) {
					snake = append(snake, t)
				}
			}
		}
	}
	for i, q := range chain {
		l.Assign(q, snake[i], g)
	}
	return l
}

// HiLight is the framework's default initial placement: pattern matching
// first, qubit-proximity placement otherwise (§3.1).
type HiLight struct {
	Rng *rand.Rand
}

// Name implements Method.
func (HiLight) Name() string { return "hilight" }

// Place implements Method.
func (h HiLight) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	return Pattern{Rng: h.Rng}.Place(c, g)
}
