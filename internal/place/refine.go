package place

import (
	"hilight/internal/circuit"
	"hilight/internal/grid"
)

// Refine improves a complete layout by local search: it repeatedly picks
// the qubit contributing the most weighted distance to its interaction
// partners and tries moving it to every free tile and swapping it with
// every qubit in its neighborhood, keeping the best strict improvement.
// The loop stops after maxRounds rounds or at a local optimum, so the
// result never scores worse than the input. It is an optional
// post-placement pass (the paper's future-work "further optimization
// opportunities"); the SWAP-less property is preserved because the
// refinement happens before routing starts.
func Refine(l *grid.Layout, c *circuit.Circuit, g *grid.Grid, maxRounds int) *grid.Layout {
	m := circuit.NewInteractionMatrix(c)
	out := l.Clone()
	if maxRounds <= 0 {
		maxRounds = 2 * c.NumQubits
	}

	// qubitCost is the weighted distance from q to all its partners.
	qubitCost := func(lay *grid.Layout, q, tile int) int {
		cost := 0
		for _, nb := range m.Neighbors(q) {
			cost += m.At(q, nb) * g.Dist(tile, lay.QubitTile[nb])
		}
		return cost
	}

	for round := 0; round < maxRounds; round++ {
		// Find the worst-placed qubit.
		worst, worstCost := -1, 0
		for q := 0; q < c.NumQubits; q++ {
			if cost := qubitCost(out, q, out.QubitTile[q]); cost > worstCost {
				worst, worstCost = q, cost
			}
		}
		if worst == -1 {
			break // no interactions at all
		}
		from := out.QubitTile[worst]
		bestDelta := 0
		bestTile := -1
		for t := 0; t < g.Tiles(); t++ {
			if t == from || !g.Usable(t) {
				continue
			}
			// Evaluate the move/swap by tentatively applying it, so every
			// partner distance — including the mutual edge when the target
			// tile holds an interaction partner — is measured against the
			// true post-move positions. Both sides of the delta count the
			// mutual edge twice (once per endpoint), so it cancels.
			other := out.TileQubit[t]
			before := worstCost
			if other != -1 {
				before += qubitCost(out, other, t)
			}
			out.Swap(from, t)
			after := qubitCost(out, worst, out.QubitTile[worst])
			if other != -1 {
				after += qubitCost(out, other, out.QubitTile[other])
			}
			out.Swap(from, t) // undo
			if delta := after - before; delta < bestDelta {
				bestDelta, bestTile = delta, t
			}
		}
		if bestTile == -1 {
			break // local optimum
		}
		out.Swap(from, bestTile)
	}
	return out
}

// Score returns the total weighted interaction distance of a layout —
// the objective Refine minimizes. Exposed for tests and ablations.
func Score(l *grid.Layout, c *circuit.Circuit, g *grid.Grid) int {
	m := circuit.NewInteractionMatrix(c)
	total := 0
	for q := 0; q < c.NumQubits; q++ {
		for nb := q + 1; nb < c.NumQubits; nb++ {
			if w := m.At(q, nb); w > 0 {
				total += w * g.Dist(l.QubitTile[q], l.QubitTile[nb])
			}
		}
	}
	return total
}
