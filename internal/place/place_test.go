package place

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/graph"
	"hilight/internal/grid"
)

func chainCircuit(n int) *circuit.Circuit {
	c := circuit.New("chain", n)
	for i := 0; i < n-1; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	return c
}

func qftLike(n int) *circuit.Circuit {
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		c.Add1(circuit.H, i)
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	return c
}

func starCircuit(n int) *circuit.Circuit {
	c := circuit.New("star", n)
	for i := 0; i < n-1; i++ {
		c.Add2(circuit.CX, i, n-1)
	}
	return c
}

func allMethods() []Method {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(7)) }
	return []Method{
		Identity{},
		Random{Rng: rng()},
		Proximity{},
		Pattern{Rng: rng()},
		GM{Rng: rng()},
		GMWP{Rng: rng()},
		HiLight{Rng: rng()},
	}
}

func TestAllMethodsProduceCompleteValidLayouts(t *testing.T) {
	circs := []*circuit.Circuit{chainCircuit(9), qftLike(8), starCircuit(7), circuit.New("empty", 5)}
	for _, c := range circs {
		g := grid.Square(c.NumQubits)
		for _, m := range allMethods() {
			l := m.Place(c, g)
			if err := l.Validate(g); err != nil {
				t.Errorf("%s on %s: %v", m.Name(), c.Name, err)
			}
			if !l.Complete() {
				t.Errorf("%s on %s: incomplete layout", m.Name(), c.Name)
			}
		}
	}
}

func TestMethodsRespectReservedTiles(t *testing.T) {
	c := qftLike(6)
	g := grid.New(3, 3)
	g.ReserveTile(g.TileAt(1, 1)) // reserve the center
	for _, m := range allMethods() {
		l := m.Place(c, g)
		if err := l.Validate(g); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		if q := l.TileQubit[g.TileAt(1, 1)]; q != -1 {
			t.Errorf("%s placed qubit %d on reserved tile", m.Name(), q)
		}
	}
}

func TestIdentityPlacesInOrder(t *testing.T) {
	c := chainCircuit(4)
	g := grid.New(2, 2)
	l := Identity{}.Place(c, g)
	for q := 0; q < 4; q++ {
		if l.QubitTile[q] != q {
			t.Errorf("qubit %d on tile %d", q, l.QubitTile[q])
		}
	}
}

func TestProximitySeedsCenterWithHeaviestQubit(t *testing.T) {
	c := starCircuit(9) // qubit 8 interacts with everyone
	g := grid.Square(9) // 3x3, center tile 4
	l := Proximity{}.Place(c, g)
	if l.QubitTile[8] != g.Center() {
		t.Errorf("hub qubit on tile %d, center is %d", l.QubitTile[8], g.Center())
	}
	// All partners should hug the hub: average distance well below random.
	total := 0
	for q := 0; q < 8; q++ {
		total += g.Dist(l.QubitTile[q], l.QubitTile[8])
	}
	if total > 12 { // 4 at distance 1, 4 at distance 2 = 12 for a 3x3
		t.Errorf("partners too far from hub: total distance %d", total)
	}
}

func TestProximityPlacesHeavyPairsAdjacent(t *testing.T) {
	// Two qubits with an overwhelming interaction must end up adjacent.
	c := circuit.New("pair", 6)
	for i := 0; i < 10; i++ {
		c.Add2(circuit.CX, 0, 1)
	}
	c.Add2(circuit.CX, 2, 3)
	g := grid.Square(6)
	l := Proximity{}.Place(c, g)
	if d := g.Dist(l.QubitTile[0], l.QubitTile[1]); d != 1 {
		t.Errorf("heavy pair at distance %d", d)
	}
}

func TestPatternMatchesChain(t *testing.T) {
	c := chainCircuit(9)
	g := grid.Square(9)
	l, ok := Pattern{}.Match(c, g)
	if !ok {
		t.Fatal("chain not matched")
	}
	// Consecutive chain qubits must be on adjacent tiles (snake layout).
	for i := 0; i < 8; i++ {
		if d := g.Dist(l.QubitTile[i], l.QubitTile[i+1]); d != 1 {
			t.Errorf("chain qubits %d,%d at distance %d", i, i+1, d)
		}
	}
}

func TestPatternMatchesDenseGraph(t *testing.T) {
	c := qftLike(8)
	g := grid.Square(8)
	if _, ok := (Pattern{Rng: rand.New(rand.NewSource(3))}).Match(c, g); !ok {
		t.Error("complete graph not matched as dynamic pattern")
	}
}

func TestPatternRejectsStar(t *testing.T) {
	c := starCircuit(8)
	g := grid.Square(8)
	if _, ok := (Pattern{}).Match(c, g); ok {
		t.Error("star circuit wrongly pattern-matched")
	}
}

func TestGMBeatsIdentityOnClusteredCircuit(t *testing.T) {
	// Pairs (0,1), (2,3), (4,5), ... interact heavily; identity placement
	// on a 4x4 grid keeps pairs adjacent in a row except across row
	// boundaries. Build pairs that identity splits across rows.
	c := circuit.New("cluster", 16)
	for i := 0; i < 8; i++ {
		a, b := i, 15-i
		for k := 0; k < 5; k++ {
			c.Add2(circuit.CX, a, b)
		}
	}
	g := grid.Square(16)
	ig := interactionDense(c)
	idCost := weightedDistance(ig, g, Identity{}.Place(c, g))
	gmCost := weightedDistance(ig, g, GM{Rng: rand.New(rand.NewSource(1))}.Place(c, g))
	if gmCost >= idCost {
		t.Errorf("GM cost %d not better than identity %d", gmCost, idCost)
	}
	proxCost := weightedDistance(ig, g, Proximity{}.Place(c, g))
	if proxCost >= idCost {
		t.Errorf("Proximity cost %d not better than identity %d", proxCost, idCost)
	}
}

func interactionDense(c *circuit.Circuit) *graph.Dense {
	ig := graph.NewDense(c.NumQubits)
	for _, g := range c.Gates {
		if g.TwoQubit() {
			ig.AddEdge(g.Q0, g.Q1, 1)
		}
	}
	return ig
}

func TestHiLightFallsBackToProximity(t *testing.T) {
	c := starCircuit(8)
	g := grid.Square(8)
	h := HiLight{Rng: rand.New(rand.NewSource(2))}.Place(c, g)
	p := Proximity{}.Place(c, g)
	for q := range h.QubitTile {
		if h.QubitTile[q] != p.QubitTile[q] {
			t.Fatalf("HiLight fallback differs from Proximity at qubit %d", q)
		}
	}
}

// Property: every method yields a bijection program-qubits -> tiles for
// random circuits on random grids.
func TestPlacementBijectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		c := circuit.New("rand", n)
		for i := 0; i < n*3; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := grid.Rect(n)
		for _, m := range allMethods() {
			l := m.Place(c, g)
			if l.Validate(g) != nil || !l.Complete() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
