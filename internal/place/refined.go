package place

import (
	"fmt"

	"hilight/internal/circuit"
	"hilight/internal/grid"
)

// Refined decorates any placement method with the local-search
// refinement pass: Base produces the initial layout and Refine polishes
// it for up to Rounds rounds (0 = the default budget). The composite is
// itself a Method, so it plugs into any framework configuration.
type Refined struct {
	Base   Method
	Rounds int
}

// Name implements Method.
func (r Refined) Name() string {
	base := "proximity"
	if r.Base != nil {
		base = r.Base.Name()
	}
	return fmt.Sprintf("%s+refine", base)
}

// Place implements Method.
func (r Refined) Place(c *circuit.Circuit, g *grid.Grid) *grid.Layout {
	base := r.Base
	if base == nil {
		base = Proximity{}
	}
	return Refine(base.Place(c, g), c, g, r.Rounds)
}
