package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	g := NewDense(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 2, 9) // self-loop ignored
	if g.Weight(0, 1) != 3 || g.Weight(1, 0) != 3 {
		t.Error("weights not symmetric")
	}
	if g.Weight(2, 2) != 0 {
		t.Error("self-loop stored")
	}
	if g.Degree(1) != 2 || g.WeightedDegree(1) != 4 {
		t.Errorf("degree(1)=%d weighted=%d", g.Degree(1), g.WeightedDegree(1))
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.TotalWeight() != 4 {
		t.Errorf("TotalWeight = %d", g.TotalWeight())
	}
	if g.MaxWeightVertex() != 1 {
		t.Errorf("MaxWeightVertex = %d", g.MaxWeightVertex())
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	NewDense(-1)
}

func TestBFSOrderCoversAllVertices(t *testing.T) {
	g := NewDense(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 5)
	g.AddEdge(1, 3, 2)
	// 4 and 5 disconnected.
	order := g.BFSOrder(0)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, v := range order {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Fatalf("not a permutation: %v", order)
	}
	// Heavier neighbor of 1 (vertex 2, weight 5) precedes vertex 3.
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[2] > pos[3] {
		t.Errorf("heavy-first BFS violated: %v", order)
	}
}

func TestGreedyIndependentSet(t *testing.T) {
	// Path conflict graph 0-1-2: picking in order 0,1,2 gives {0,2}.
	g := NewDense(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	got := g.GreedyIndependentSet([]int{0, 1, 2})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("MIS = %v", got)
	}
	// Preference order matters: starting at 1 blocks both ends.
	got = g.GreedyIndependentSet([]int{1, 0, 2})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("MIS = %v", got)
	}
}

func TestGreedyIndependentSetIsIndependentAndMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := NewDense(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		cand := rng.Perm(n)
		set := g.GreedyIndependentSet(cand)
		in := map[int]bool{}
		for _, v := range set {
			in[v] = true
		}
		// Independent: no edge inside the set.
		for _, u := range set {
			for _, v := range set {
				if u != v && g.Weight(u, v) > 0 {
					return false
				}
			}
		}
		// Maximal: every candidate outside the set has a neighbor inside.
		for _, v := range cand {
			if in[v] {
				continue
			}
			touches := false
			for _, u := range set {
				if g.Weight(u, v) > 0 {
					touches = true
					break
				}
			}
			if !touches {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectSizesAndPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g := NewDense(n)
		for i := 0; i < n*3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(5))
		}
		verts := rng.Perm(n)
		l, r := g.Bisect(verts, rng)
		if len(l)+len(r) != n {
			return false
		}
		if len(l) != (n+1)/2 {
			return false
		}
		all := append(append([]int(nil), l...), r...)
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectSeparatesClusters(t *testing.T) {
	// Two 4-cliques joined by one light edge: the cut should isolate them.
	g := NewDense(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 10)
			g.AddEdge(i+4, j+4, 10)
		}
	}
	g.AddEdge(0, 4, 1)
	rng := rand.New(rand.NewSource(7))
	verts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	l, r := g.Bisect(verts, rng)
	if got := g.CutWeight(l, r); got != 1 {
		t.Errorf("cut weight = %d, want 1 (l=%v r=%v)", got, l, r)
	}
}

func TestMinHeapOrdering(t *testing.T) {
	var h MinHeap
	input := []int{5, 3, 8, 1, 9, 2, 7}
	for _, p := range input {
		h.Push(p*10, p)
	}
	prev := -1
	for h.Len() > 0 {
		v, p := h.Pop()
		if p < prev {
			t.Fatalf("heap order violated: %d after %d", p, prev)
		}
		if v != p*10 {
			t.Fatalf("value/priority pairing lost: %d/%d", v, p)
		}
		prev = p
	}
}

func TestMinHeapTieBreaksOnValue(t *testing.T) {
	var h MinHeap
	h.Push(9, 1)
	h.Push(2, 1)
	h.Push(5, 1)
	v, _ := h.Pop()
	if v != 2 {
		t.Errorf("tie break = %d, want 2", v)
	}
}

func TestMinHeapProperty(t *testing.T) {
	f := func(ps []uint8) bool {
		var h MinHeap
		for i, p := range ps {
			h.Push(i, int(p))
		}
		h.Push(len(ps), 0)
		prev := -1
		for h.Len() > 0 {
			_, p := h.Pop()
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinHeapReset(t *testing.T) {
	var h MinHeap
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Error("Reset did not empty heap")
	}
	h.Push(2, 2)
	if v, _ := h.Pop(); v != 2 {
		t.Error("heap unusable after Reset")
	}
}
