package graph

// MinHeap is a binary min-heap of (value, priority) pairs keyed on
// priority, with ties broken by lower value for determinism. It backs the
// A* open set in the braiding path-finder. The zero value is an empty
// heap ready to use.
type MinHeap struct {
	items []heapItem
}

type heapItem struct {
	value    int
	priority int
}

// Len returns the number of queued items.
func (h *MinHeap) Len() int { return len(h.items) }

// Push adds value with the given priority.
func (h *MinHeap) Push(value, priority int) {
	h.items = append(h.items, heapItem{value, priority})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Pop removes and returns the value with the smallest priority. It panics
// on an empty heap; callers check Len first.
func (h *MinHeap) Pop() (value, priority int) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top.value, top.priority
}

// Reset empties the heap while keeping its backing storage for reuse.
func (h *MinHeap) Reset() { h.items = h.items[:0] }

func (h *MinHeap) less(i, j int) bool {
	if h.items[i].priority != h.items[j].priority {
		return h.items[i].priority < h.items[j].priority
	}
	return h.items[i].value < h.items[j].value
}
