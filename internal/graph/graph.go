// Package graph provides the graph machinery the mapping heuristics are
// built on: a dense weighted undirected graph, breadth-first orders,
// greedy maximal independent sets (for the AutoBraid-style LLG gate
// ordering), Kernighan–Lin recursive bisection (for the AutoBraid
// partitioning placement), and a small binary min-heap used by the A*
// path-finder.
package graph

import (
	"fmt"
	"sort"
)

// Dense is a weighted undirected graph on vertices 0..N-1 stored as a
// row-major adjacency matrix. Zero weight means no edge. Self-loops are
// not representable (the diagonal is ignored).
type Dense struct {
	N       int
	weights []int
}

// NewDense returns an empty graph on n vertices.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Dense{N: n, weights: make([]int, n*n)}
}

// AddEdge adds w to the weight of edge {u,v}. Adding to the diagonal is a
// no-op.
func (g *Dense) AddEdge(u, v, w int) {
	if u == v {
		return
	}
	g.weights[u*g.N+v] += w
	g.weights[v*g.N+u] += w
}

// Weight returns the weight of edge {u,v} (0 when absent).
func (g *Dense) Weight(u, v int) int { return g.weights[u*g.N+v] }

// Degree returns the number of incident edges of u.
func (g *Dense) Degree(u int) int {
	d := 0
	for v := 0; v < g.N; v++ {
		if g.weights[u*g.N+v] > 0 {
			d++
		}
	}
	return d
}

// WeightedDegree returns the total incident edge weight of u.
func (g *Dense) WeightedDegree(u int) int {
	s := 0
	for v := 0; v < g.N; v++ {
		s += g.weights[u*g.N+v]
	}
	return s
}

// Neighbors returns the neighbors of u in ascending index order.
func (g *Dense) Neighbors(u int) []int {
	var out []int
	for v := 0; v < g.N; v++ {
		if g.weights[u*g.N+v] > 0 {
			out = append(out, v)
		}
	}
	return out
}

// TotalWeight returns the sum of all edge weights.
func (g *Dense) TotalWeight() int {
	s := 0
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			s += g.weights[u*g.N+v]
		}
	}
	return s
}

// BFSOrder returns vertices in breadth-first order from start, visiting
// heavier edges first within a frontier. Vertices unreachable from start
// are appended afterwards in ascending index order, each starting a fresh
// BFS from the lowest-index unvisited vertex, so the result is always a
// permutation of all vertices.
func (g *Dense) BFSOrder(start int) []int {
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	var bfs func(int)
	bfs = func(s int) {
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			nbrs := g.Neighbors(u)
			sort.Slice(nbrs, func(a, b int) bool {
				wa, wb := g.Weight(u, nbrs[a]), g.Weight(u, nbrs[b])
				if wa != wb {
					return wa > wb
				}
				return nbrs[a] < nbrs[b]
			})
			for _, v := range nbrs {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	if g.N == 0 {
		return order
	}
	bfs(start)
	for v := 0; v < g.N; v++ {
		if !seen[v] {
			bfs(v)
		}
	}
	return order
}

// MaxWeightVertex returns the vertex with the largest weighted degree
// (lowest index on ties); -1 for an empty graph.
func (g *Dense) MaxWeightVertex() int {
	best, bestW := -1, -1
	for v := 0; v < g.N; v++ {
		if w := g.WeightedDegree(v); w > bestW {
			best, bestW = v, w
		}
	}
	return best
}

// GreedyIndependentSet returns a maximal independent set of the graph
// restricted to candidates, preferring vertices in the order given. It is
// the selection step of the AutoBraid-style LLG gate ordering: the graph
// is a conflict graph between executable gates, and an independent set is
// a group of gates whose braiding paths can coexist.
func (g *Dense) GreedyIndependentSet(candidates []int) []int {
	blocked := make(map[int]bool, len(candidates))
	var out []int
	for _, v := range candidates {
		if blocked[v] {
			continue
		}
		out = append(out, v)
		for u := 0; u < g.N; u++ {
			if g.weights[v*g.N+u] > 0 {
				blocked[u] = true
			}
		}
		blocked[v] = true
	}
	return out
}
