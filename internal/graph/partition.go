package graph

import "math/rand"

// Bisect splits the vertex subset verts into two halves (sizes
// ceil(len/2) and floor(len/2)) while heuristically minimizing the total
// weight of edges crossing the cut. See BisectK.
func (g *Dense) Bisect(verts []int, rng *rand.Rand) (left, right []int) {
	return g.BisectK(verts, (len(verts)+1)/2, rng)
}

// BisectK splits verts into a left part of exactly leftSize vertices and
// a right part with the rest, heuristically minimizing the cut weight.
// The implementation is a bounded Kernighan–Lin refinement over a
// degree-seeded initial split — the iterative graph-partitioning
// primitive AutoBraid's placement is built from. rng drives tie-breaking;
// pass a deterministic source for reproducible placements. leftSize is
// clamped to [0, len(verts)].
func (g *Dense) BisectK(verts []int, leftSize int, rng *rand.Rand) (left, right []int) {
	n := len(verts)
	if leftSize < 0 {
		leftSize = 0
	}
	if leftSize > n {
		leftSize = n
	}
	if n == 0 {
		return nil, nil
	}
	if leftSize == 0 {
		return nil, append([]int(nil), verts...)
	}
	if leftSize == n {
		return append([]int(nil), verts...), nil
	}
	// Seed: order by weighted degree within the subset, fill the left half
	// with the heaviest vertices, then let refinement pull partners
	// together.
	subDeg := func(v int) int {
		s := 0
		for _, u := range verts {
			s += g.Weight(v, u)
		}
		return s
	}
	ordered := append([]int(nil), verts...)
	rng.Shuffle(len(ordered), func(i, j int) { ordered[i], ordered[j] = ordered[j], ordered[i] })
	insertionSortBy(ordered, subDeg)

	side := map[int]bool{} // true = left
	for i, v := range ordered {
		side[v] = i < leftSize
	}

	// Kernighan–Lin style passes: repeatedly swap the pair with the best
	// cut-weight gain until no positive gain remains (bounded passes).
	gain := func(v int) int {
		// External minus internal weight for v under current sides.
		ext, int_ := 0, 0
		for _, u := range verts {
			if u == v {
				continue
			}
			w := g.Weight(v, u)
			if w == 0 {
				continue
			}
			if side[u] == side[v] {
				int_ += w
			} else {
				ext += w
			}
		}
		return ext - int_
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for _, a := range verts {
			if !side[a] {
				continue
			}
			for _, b := range verts {
				if side[b] {
					continue
				}
				// Swapping a (left) and b (right) changes the cut by
				// -(gain(a)+gain(b)) + 2*w(a,b).
				delta := gain(a) + gain(b) - 2*g.Weight(a, b)
				if delta > 0 {
					side[a], side[b] = false, true
					improved = true
					break // a moved sides; restart with the next left vertex
				}
			}
		}
		if !improved {
			break
		}
	}
	for _, v := range verts {
		if side[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right
}

// insertionSortBy sorts vs by descending key(v), stably.
func insertionSortBy(vs []int, key func(int) int) {
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		k := key(v)
		j := i - 1
		for j >= 0 && key(vs[j]) < k {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

// CutWeight returns the total weight of edges between the two vertex sets.
func (g *Dense) CutWeight(a, b []int) int {
	s := 0
	for _, u := range a {
		for _, v := range b {
			s += g.Weight(u, v)
		}
	}
	return s
}
