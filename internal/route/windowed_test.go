package route

// Differential tests for the word-packed fast paths added for the
// parallel router: every probe must answer bit-identically to the scalar
// walk it replaces, under random occupancy, random defects, and lattices
// wide enough that vertex rows straddle 64-bit word boundaries.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
)

// randomGrid builds a grid (sometimes word-straddling wide), applies
// random defects, and scatters random braid paths into a fresh
// occupancy.
func randomGrid(rng *rand.Rand) (*grid.Grid, *Occupancy) {
	var g *grid.Grid
	if rng.Intn(3) == 0 {
		g = grid.New(64+rng.Intn(16), 2+rng.Intn(3)) // vw > 64: rows straddle words
	} else {
		g = grid.New(2+rng.Intn(9), 2+rng.Intn(9))
	}
	d := &grid.DefectMap{}
	for v := 0; v < g.NumVertices(); v++ {
		if rng.Intn(20) == 0 {
			d.Vertices = append(d.Vertices, v)
		}
	}
	var nbr []int
	for v := 0; v < g.NumVertices(); v++ {
		nbr = g.VertexNeighbors(v, nbr[:0])
		for _, u := range nbr {
			if v < u && rng.Intn(20) == 0 {
				d.Channels = append(d.Channels, [2]int{v, u})
			}
		}
	}
	if err := g.ApplyDefects(d); err != nil {
		panic(err)
	}
	occ := NewOccupancy(g)
	for i := 0; i < rng.Intn(12); i++ {
		v := rng.Intn(g.NumVertices())
		p := Path{v}
		for j := 0; j < 1+rng.Intn(8); j++ {
			nbr = g.VertexNeighbors(v, nbr[:0])
			if len(nbr) == 0 {
				break
			}
			v = nbr[rng.Intn(len(nbr))]
			p = append(p, v)
		}
		occ.Add(g, p)
	}
	return g, occ
}

// scalarRunFree is the reference HRunFree: the vertex-by-vertex walk the
// word probe replaces.
func scalarRunFree(g *grid.Grid, occ *Occupancy, y, x0, x1 int) bool {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for x := x0; x <= x1; x++ {
		v := g.VertexID(x, y)
		if occ.VertexUsed(v) {
			return false
		}
		if x < x1 {
			u := g.VertexID(x+1, y)
			if !g.EdgeRoutable(v, u) || occ.EdgeUsed(g, v, u) {
				return false
			}
		}
	}
	return true
}

func TestHRunFreeMatchesScalarWalk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, occ := randomGrid(rng)
		for trial := 0; trial < 200; trial++ {
			y := rng.Intn(g.VH())
			x0, x1 := rng.Intn(g.VW()), rng.Intn(g.VW())
			if occ.HRunFree(y, x0, x1) != scalarRunFree(g, occ, y, x0, x1) {
				t.Logf("seed %d: HRunFree(%d, %d, %d) diverged on %dx%d", seed, y, x0, x1, g.W, g.H)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestChannelBlockedMatchesScalar pins the single-bit mirror probes the
// A* expansion uses against the scalar InBounds/EdgeRoutable/EdgeUsed
// triple.
func TestChannelBlockedMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, occ := randomGrid(rng)
		for v := 0; v < g.NumVertices(); v++ {
			x, y := g.VertexXY(v)
			eastOpen := x+1 < g.VW() &&
				g.EdgeRoutable(v, g.VertexID(x+1, y)) && !occ.EdgeUsed(g, v, g.VertexID(x+1, y))
			if occ.EastBlocked(v) == eastOpen {
				t.Logf("seed %d: EastBlocked(%d) diverged", seed, v)
				return false
			}
			southOpen := y+1 < g.VH() &&
				g.EdgeRoutable(v, g.VertexID(x, y+1)) && !occ.EdgeUsed(g, v, g.VertexID(x, y+1))
			if occ.SouthBlocked(v) == southOpen {
				t.Logf("seed %d: SouthBlocked(%d) diverged", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGatherBits(t *testing.T) {
	words := []uint64{0xDEADBEEFCAFEBABE, 0x0123456789ABCDEF, ^uint64(0)}
	wordAt := func(w int) uint64 { return words[w] }
	bitAt := func(i int) uint64 { return words[i>>6] >> (uint(i) & 63) & 1 }
	for _, tc := range []struct{ start, count int }{
		{0, 64},   // aligned full word
		{0, 17},   // aligned partial: high bits must be masked
		{3, 61},   // unaligned, exactly reaching a word end
		{60, 10},  // straddles the first boundary
		{63, 2},   // minimal straddle
		{64, 64},  // aligned second word
		{100, 64}, // unaligned full straddle
		{127, 1},  // single bit at a word edge
	} {
		got := gatherBits(wordAt, tc.start, tc.count)
		for i := 0; i < tc.count; i++ {
			if got>>uint(i)&1 != bitAt(tc.start+i) {
				t.Errorf("gatherBits(%d, %d): bit %d wrong", tc.start, tc.count, i)
			}
		}
		if tc.count < 64 && got>>uint(tc.count) != 0 {
			t.Errorf("gatherBits(%d, %d): unused high bits set", tc.start, tc.count)
		}
	}
}

// dfsLabels is the brute-force reference labeling: flood fill over free
// vertices through channels that are routable and unoccupied.
func dfsLabels(g *grid.Grid, occ *Occupancy) []int {
	labels := make([]int, g.NumVertices())
	for v := range labels {
		labels[v] = -1
	}
	next := 0
	var nbr []int
	for s := 0; s < g.NumVertices(); s++ {
		if occ.VertexUsed(s) || labels[s] >= 0 {
			continue
		}
		next++
		stack := []int{s}
		labels[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbr = g.VertexNeighbors(v, nbr[:0])
			for _, u := range nbr {
				if labels[u] >= 0 || occ.VertexUsed(u) || occ.EdgeUsed(g, v, u) {
					continue
				}
				labels[u] = next
				stack = append(stack, u)
			}
		}
	}
	return labels
}

func TestComponentsMatchFloodFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, occ := randomGrid(rng)
		var cc Components
		cc.Compute(g, occ)
		ref := dfsLabels(g, occ)
		for u := 0; u < g.NumVertices(); u++ {
			for trial := 0; trial < 8; trial++ {
				v := rng.Intn(g.NumVertices())
				want := ref[u] > 0 && ref[u] == ref[v]
				if cc.Connected(u, v) != want {
					t.Logf("seed %d: Connected(%d, %d) = %v, flood fill says %v", seed, u, v, !want, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWindowedAgreesWithAStar pins the finder-identity contract the
// parallel pass relies on: with or without the component and congestion
// hooks, Windowed accepts exactly the tile pairs AStar accepts, and
// every returned path validates against the grid and occupancy. Without
// a congestion field the path length matches AStar's exactly; with one,
// equal-distance corner pairs may be reordered and a different pair's
// (per-pair shortest) detour may win, so only acceptance is compared.
func TestWindowedAgreesWithAStar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, occ := randomGrid(rng)
		var astar AStar
		var comp Components
		comp.Compute(g, occ)
		cong := make([]int32, g.NumVertices())
		for i := range cong {
			cong[i] = int32(rng.Intn(5))
		}
		variants := []*Windowed{
			{},                        // bare: pure A* semantics
			{Comp: &comp},             // component pruning
			{Comp: &comp, Cong: cong}, // pruning + congestion ties
			{Cong: cong},              // congestion ties only
		}
		for trial := 0; trial < 40; trial++ {
			a, b := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			ap, aok := astar.Find(g, occ, a, b, nil)
			for _, w := range variants {
				wp, wok := w.Find(g, occ, a, b, nil)
				if wok != aok {
					t.Logf("seed %d: tiles (%d,%d): windowed ok=%v, astar ok=%v", seed, a, b, wok, aok)
					return false
				}
				if !wok {
					continue
				}
				if w.Cong == nil && len(wp) != len(ap) {
					t.Logf("seed %d: tiles (%d,%d): windowed len %d, astar len %d", seed, a, b, len(wp), len(ap))
					return false
				}
				if err := wp.Validate(g); err != nil {
					t.Logf("seed %d: invalid windowed path: %v", seed, err)
					return false
				}
				if occ.Conflicts(g, wp) {
					t.Logf("seed %d: windowed path conflicts with occupancy", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
