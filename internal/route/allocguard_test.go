package route

import (
	"testing"

	"hilight/internal/grid"
)

// TestFinderFindZeroAllocs is the CI guard for the allocation-free
// routing hot path: after the warm-up call has sized the per-grid
// scratch and the path buffer, Finder.Find must not allocate. This pins
// the steady-state behavior BenchmarkFinderFind measures, so a
// regression fails `go test` instead of only drifting a benchmark
// number.
func TestFinderFindZeroAllocs(t *testing.T) {
	g := grid.New(24, 24)
	finders := []Finder{&AStar{}, &Full16{}, &StackDFS{}, LShape{}}
	for _, f := range finders {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			occ := NewOccupancy(g)
			var buf Path
			p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf)
			if !ok {
				t.Fatal("no path on empty grid")
			}
			buf = p
			allocs := testing.AllocsPerRun(20, func() {
				p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf[:0])
				if !ok {
					t.Error("no path on empty grid")
					return
				}
				buf = p
			})
			if allocs != 0 {
				t.Errorf("%s: %.1f allocs/op in steady state, want 0", f.Name(), allocs)
			}
		})
	}
}
