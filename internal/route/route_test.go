package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
)

func TestPathLen(t *testing.T) {
	if (Path{}).Len() != 0 {
		t.Error("empty path length")
	}
	if (Path{5}).Len() != 0 {
		t.Error("single-vertex path length")
	}
	if (Path{0, 1, 2}).Len() != 2 {
		t.Error("path length")
	}
}

func TestPathValidate(t *testing.T) {
	g := grid.New(3, 3)
	v := func(x, y int) int { return g.VertexID(x, y) }
	good := Path{v(0, 0), v(1, 0), v(1, 1)}
	if err := good.Validate(g); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	bad := []Path{
		{},                          // empty
		{v(0, 0), v(2, 0)},          // non-adjacent hop
		{v(0, 0), v(1, 0), v(0, 0)}, // repeated vertex
		{-1},                        // out of range
	}
	for i, p := range bad {
		if err := p.Validate(g); err == nil {
			t.Errorf("bad path %d accepted", i)
		}
	}
}

func TestOccupancyConflicts(t *testing.T) {
	g := grid.New(3, 3)
	occ := NewOccupancy()
	v := func(x, y int) int { return g.VertexID(x, y) }
	p1 := Path{v(0, 0), v(1, 0), v(2, 0)}
	occ.Add(g, p1)
	if !occ.Conflicts(g, Path{v(1, 0), v(1, 1)}) {
		t.Error("shared vertex not detected")
	}
	if !occ.Conflicts(g, Path{v(0, 0), v(1, 0)}) {
		t.Error("shared edge not detected")
	}
	if occ.Conflicts(g, Path{v(0, 1), v(1, 1)}) {
		t.Error("disjoint path flagged")
	}
	occ.Reset()
	if occ.Conflicts(g, p1) {
		t.Error("occupancy survived Reset")
	}
}

func finders() []Finder {
	return []Finder{&AStar{}, &Full16{}, &StackDFS{}}
}

func TestFindersBasicPath(t *testing.T) {
	g := grid.New(4, 4)
	for _, f := range finders() {
		occ := NewOccupancy()
		p, ok := f.Find(g, occ, g.TileAt(0, 0), g.TileAt(3, 3))
		if !ok {
			t.Fatalf("%s: no path on empty grid", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: invalid path: %v", f.Name(), err)
		}
		// Endpoints must be corners of the two tiles.
		if !isCorner(g, p[0], g.TileAt(0, 0)) || !isCorner(g, p[len(p)-1], g.TileAt(3, 3)) {
			t.Errorf("%s: endpoints not tile corners", f.Name())
		}
	}
}

func isCorner(g *grid.Grid, v, tile int) bool {
	for _, c := range g.Corners(tile) {
		if c == v {
			return true
		}
	}
	return false
}

func TestFindersAdjacentTilesShareCorner(t *testing.T) {
	g := grid.New(4, 4)
	for _, f := range finders() {
		occ := NewOccupancy()
		p, ok := f.Find(g, occ, g.TileAt(1, 1), g.TileAt(2, 1))
		if !ok {
			t.Fatalf("%s: no path between adjacent tiles", f.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: adjacent tiles path length = %d, want 0", f.Name(), p.Len())
		}
	}
}

func TestAStarFindsShortestPath(t *testing.T) {
	g := grid.New(5, 5)
	occ := NewOccupancy()
	var a AStar
	p, ok := a.Find(g, occ, g.TileAt(0, 0), g.TileAt(4, 0))
	if !ok {
		t.Fatal("no path")
	}
	// Closest corners are (1,y) and (4,y): distance 3.
	if p.Len() != 3 {
		t.Errorf("path length = %d, want 3", p.Len())
	}
}

func TestFindersRouteAroundCongestion(t *testing.T) {
	g := grid.New(5, 3)
	// Occupy the whole middle corner column x=2 except the top row, forcing
	// a detour over the top.
	occ := NewOccupancy()
	var wall Path
	for y := 1; y <= g.H; y++ {
		wall = append(wall, g.VertexID(2, y))
	}
	occ.Add(g, wall)
	for _, f := range finders() {
		p, ok := f.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1))
		if !ok {
			t.Fatalf("%s: no detour found", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: invalid detour: %v", f.Name(), err)
		}
		if occ.Conflicts(g, p) {
			t.Fatalf("%s: detour crosses occupied lattice", f.Name())
		}
	}
}

func TestFindersFailWhenBlocked(t *testing.T) {
	g := grid.New(5, 3)
	// Occupy the entire corner column x=2: no path from left to right.
	occ := NewOccupancy()
	var wall Path
	for y := 0; y <= g.H; y++ {
		wall = append(wall, g.VertexID(2, y))
	}
	occ.Add(g, wall)
	for _, f := range finders() {
		if _, ok := f.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1)); ok {
			t.Errorf("%s: found path through a full wall", f.Name())
		}
	}
}

func TestFull16NotWorseThanAStar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(3+rng.Intn(6), 3+rng.Intn(6))
		occ := NewOccupancy()
		// Random pre-existing braids.
		var a AStar
		for i := 0; i < 3; i++ {
			t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			if t1 == t2 {
				continue
			}
			if p, ok := a.Find(g, occ, t1, t2); ok {
				occ.Add(g, p)
			}
		}
		t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
		if t1 == t2 {
			return true
		}
		var full Full16
		var one AStar
		pf, okF := full.Find(g, occ, t1, t2)
		p1, ok1 := one.Find(g, occ, t1, t2)
		if ok1 && !okF {
			return false // full search must find anything the single search finds
		}
		if ok1 && okF && pf.Len() > p1.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every finder returns paths that validate, end on the right
// tiles' corners, and avoid the occupancy set.
func TestFinderPathsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(2+rng.Intn(7), 2+rng.Intn(7))
		occ := NewOccupancy()
		fs := finders()
		for i := 0; i < 8; i++ {
			t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			if t1 == t2 {
				continue
			}
			fd := fs[rng.Intn(len(fs))]
			p, ok := fd.Find(g, occ, t1, t2)
			if !ok {
				continue
			}
			if p.Validate(g) != nil || occ.Conflicts(g, p) {
				return false
			}
			if !isCorner(g, p[0], t1) || !isCorner(g, p[len(p)-1], t2) {
				return false
			}
			occ.Add(g, p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindersRespectFactoryInterior(t *testing.T) {
	g := grid.New(6, 6)
	if err := g.Reserve(2, 2, 3, 3); err != nil {
		t.Fatal(err)
	}
	for _, f := range finders() {
		occ := NewOccupancy()
		p, ok := f.Find(g, occ, g.TileAt(0, 2), g.TileAt(5, 2))
		if !ok {
			t.Fatalf("%s: no path around factory", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		// The factory-interior vertex (3,3) must not appear.
		inner := g.VertexID(3, 3)
		for _, v := range p {
			if v == inner {
				t.Errorf("%s: path crosses factory interior", f.Name())
			}
		}
	}
}

func TestFinderReuseAcrossSearches(t *testing.T) {
	// The stateful finders must give correct results across many calls
	// (epoch/stamp reuse).
	g := grid.New(6, 6)
	var a AStar
	var s StackDFS
	occ := NewOccupancy()
	for i := 0; i < 50; i++ {
		t1 := i % g.Tiles()
		t2 := (i*7 + 3) % g.Tiles()
		if t1 == t2 {
			continue
		}
		occ.Reset()
		if p, ok := a.Find(g, occ, t1, t2); !ok || p.Validate(g) != nil {
			t.Fatalf("astar iteration %d failed", i)
		}
		if p, ok := s.Find(g, occ, t1, t2); !ok || p.Validate(g) != nil {
			t.Fatalf("dfs iteration %d failed", i)
		}
	}
}
