package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
)

func TestPathLen(t *testing.T) {
	if (Path{}).Len() != 0 {
		t.Error("empty path length")
	}
	if (Path{5}).Len() != 0 {
		t.Error("single-vertex path length")
	}
	if (Path{0, 1, 2}).Len() != 2 {
		t.Error("path length")
	}
}

func TestPathValidate(t *testing.T) {
	g := grid.New(3, 3)
	v := func(x, y int) int { return g.VertexID(x, y) }
	good := Path{v(0, 0), v(1, 0), v(1, 1)}
	if err := good.Validate(g); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	bad := []Path{
		{},                          // empty
		{v(0, 0), v(2, 0)},          // non-adjacent hop
		{v(0, 0), v(1, 0), v(0, 0)}, // repeated vertex
		{-1},                        // out of range
	}
	for i, p := range bad {
		if err := p.Validate(g); err == nil {
			t.Errorf("bad path %d accepted", i)
		}
	}
}

func TestOccupancyConflicts(t *testing.T) {
	g := grid.New(3, 3)
	occ := NewOccupancy(g)
	v := func(x, y int) int { return g.VertexID(x, y) }
	p1 := Path{v(0, 0), v(1, 0), v(2, 0)}
	occ.Add(g, p1)
	if !occ.Conflicts(g, Path{v(1, 0), v(1, 1)}) {
		t.Error("shared vertex not detected")
	}
	if !occ.Conflicts(g, Path{v(0, 0), v(1, 0)}) {
		t.Error("shared edge not detected")
	}
	if occ.Conflicts(g, Path{v(0, 1), v(1, 1)}) {
		t.Error("disjoint path flagged")
	}
	occ.Reset()
	if occ.Conflicts(g, p1) {
		t.Error("occupancy survived Reset")
	}
}

// mapOccupancy is the original map-based occupancy, kept as a reference
// implementation for the differential test against the epoch-stamped
// version.
type mapOccupancy struct {
	vertices map[int]bool
	edges    map[int]bool
}

func newMapOccupancy() *mapOccupancy {
	return &mapOccupancy{vertices: map[int]bool{}, edges: map[int]bool{}}
}

func (o *mapOccupancy) Reset() {
	clear(o.vertices)
	clear(o.edges)
}

func (o *mapOccupancy) Conflicts(g *grid.Grid, p Path) bool {
	for i, v := range p {
		if o.vertices[v] {
			return true
		}
		if i > 0 && o.edges[g.EdgeID(p[i-1], v)] {
			return true
		}
	}
	return false
}

func (o *mapOccupancy) Add(g *grid.Grid, p Path) {
	for i, v := range p {
		o.vertices[v] = true
		if i > 0 {
			o.edges[g.EdgeID(p[i-1], v)] = true
		}
	}
}

// TestOccupancyMatchesMapReference drives the epoch-stamped Occupancy and
// the map-based reference through random add/reset/probe sequences and
// requires bit-identical answers at every step.
func TestOccupancyMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(2+rng.Intn(7), 2+rng.Intn(7))
		occ := NewOccupancy(g)
		ref := newMapOccupancy()
		// randomPath builds a short random lattice walk (not necessarily
		// simple — occupancy must not care).
		randomPath := func() Path {
			v := rng.Intn(g.NumVertices())
			p := Path{v}
			var nbr []int
			for i := 0; i < 1+rng.Intn(6); i++ {
				nbr = g.VertexNeighbors(v, nbr[:0])
				if len(nbr) == 0 {
					break
				}
				v = nbr[rng.Intn(len(nbr))]
				p = append(p, v)
			}
			return p
		}
		for step := 0; step < 200; step++ {
			switch rng.Intn(5) {
			case 0:
				occ.Reset()
				ref.Reset()
			case 1:
				p := randomPath()
				occ.Add(g, p)
				ref.Add(g, p)
			default:
				p := randomPath()
				if occ.Conflicts(g, p) != ref.Conflicts(g, p) {
					return false
				}
				v := p[0]
				if occ.VertexUsed(v) != ref.vertices[v] {
					return false
				}
				if len(p) > 1 {
					if occ.EdgeUsed(g, p[0], p[1]) != ref.edges[g.EdgeID(p[0], p[1])] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestOccupancyManyResets exercises the epoch counter across far more
// cycles than any single mapping uses.
func TestOccupancyManyResets(t *testing.T) {
	g := grid.New(3, 3)
	occ := NewOccupancy(g)
	p := Path{g.VertexID(0, 0), g.VertexID(1, 0)}
	for i := 0; i < 10000; i++ {
		occ.Reset()
		if occ.Conflicts(g, p) {
			t.Fatalf("reset %d: stale occupancy", i)
		}
		occ.Add(g, p)
		if !occ.Conflicts(g, p) {
			t.Fatalf("reset %d: Add not visible", i)
		}
	}
}

// TestFinderBufferOwnership checks the Find buffer contract: results
// written into a caller buffer alias it, nil-buf results own their
// storage, and a finder's internal scratch never leaks into an earlier
// result.
func TestFinderBufferOwnership(t *testing.T) {
	g := grid.New(6, 6)
	for _, f := range append(finders(), LShape{}) {
		occ := NewOccupancy(g)
		p1, ok := f.Find(g, occ, g.TileAt(0, 0), g.TileAt(5, 5), nil)
		if !ok {
			t.Fatalf("%s: no path", f.Name())
		}
		snapshot := append(Path(nil), p1...)
		// A second search with a different target must not mutate p1.
		if _, ok := f.Find(g, occ, g.TileAt(5, 0), g.TileAt(0, 5), nil); !ok {
			t.Fatalf("%s: no second path", f.Name())
		}
		for i := range p1 {
			if p1[i] != snapshot[i] {
				t.Fatalf("%s: nil-buf result mutated by later Find", f.Name())
			}
		}
		// A caller-owned buffer must be reused when it has capacity.
		buf := make(Path, 0, 64)
		p2, ok := f.Find(g, occ, g.TileAt(0, 0), g.TileAt(5, 5), buf)
		if !ok {
			t.Fatalf("%s: no buffered path", f.Name())
		}
		if len(p2) > 0 && len(p2) <= cap(buf) && &p2[0] != &buf[:1][0] {
			t.Errorf("%s: result did not reuse the caller's buffer", f.Name())
		}
	}
}

func finders() []Finder {
	return []Finder{&AStar{}, &Full16{}, &StackDFS{}}
}

func TestFindersBasicPath(t *testing.T) {
	g := grid.New(4, 4)
	for _, f := range finders() {
		occ := NewOccupancy(g)
		p, ok := f.Find(g, occ, g.TileAt(0, 0), g.TileAt(3, 3), nil)
		if !ok {
			t.Fatalf("%s: no path on empty grid", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: invalid path: %v", f.Name(), err)
		}
		// Endpoints must be corners of the two tiles.
		if !isCorner(g, p[0], g.TileAt(0, 0)) || !isCorner(g, p[len(p)-1], g.TileAt(3, 3)) {
			t.Errorf("%s: endpoints not tile corners", f.Name())
		}
	}
}

func isCorner(g *grid.Grid, v, tile int) bool {
	for _, c := range g.Corners(tile) {
		if c == v {
			return true
		}
	}
	return false
}

func TestFindersAdjacentTilesShareCorner(t *testing.T) {
	g := grid.New(4, 4)
	for _, f := range finders() {
		occ := NewOccupancy(g)
		p, ok := f.Find(g, occ, g.TileAt(1, 1), g.TileAt(2, 1), nil)
		if !ok {
			t.Fatalf("%s: no path between adjacent tiles", f.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: adjacent tiles path length = %d, want 0", f.Name(), p.Len())
		}
	}
}

func TestAStarFindsShortestPath(t *testing.T) {
	g := grid.New(5, 5)
	occ := NewOccupancy(g)
	var a AStar
	p, ok := a.Find(g, occ, g.TileAt(0, 0), g.TileAt(4, 0), nil)
	if !ok {
		t.Fatal("no path")
	}
	// Closest corners are (1,y) and (4,y): distance 3.
	if p.Len() != 3 {
		t.Errorf("path length = %d, want 3", p.Len())
	}
}

func TestFindersRouteAroundCongestion(t *testing.T) {
	g := grid.New(5, 3)
	// Occupy the whole middle corner column x=2 except the top row, forcing
	// a detour over the top.
	occ := NewOccupancy(g)
	var wall Path
	for y := 1; y <= g.H; y++ {
		wall = append(wall, g.VertexID(2, y))
	}
	occ.Add(g, wall)
	for _, f := range finders() {
		p, ok := f.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1), nil)
		if !ok {
			t.Fatalf("%s: no detour found", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: invalid detour: %v", f.Name(), err)
		}
		if occ.Conflicts(g, p) {
			t.Fatalf("%s: detour crosses occupied lattice", f.Name())
		}
	}
}

func TestFindersFailWhenBlocked(t *testing.T) {
	g := grid.New(5, 3)
	// Occupy the entire corner column x=2: no path from left to right.
	occ := NewOccupancy(g)
	var wall Path
	for y := 0; y <= g.H; y++ {
		wall = append(wall, g.VertexID(2, y))
	}
	occ.Add(g, wall)
	for _, f := range finders() {
		if _, ok := f.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1), nil); ok {
			t.Errorf("%s: found path through a full wall", f.Name())
		}
	}
}

func TestFull16NotWorseThanAStar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(3+rng.Intn(6), 3+rng.Intn(6))
		occ := NewOccupancy(g)
		// Random pre-existing braids.
		var a AStar
		for i := 0; i < 3; i++ {
			t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			if t1 == t2 {
				continue
			}
			if p, ok := a.Find(g, occ, t1, t2, nil); ok {
				occ.Add(g, p)
			}
		}
		t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
		if t1 == t2 {
			return true
		}
		var full Full16
		var one AStar
		pf, okF := full.Find(g, occ, t1, t2, nil)
		p1, ok1 := one.Find(g, occ, t1, t2, nil)
		if ok1 && !okF {
			return false // full search must find anything the single search finds
		}
		if ok1 && okF && pf.Len() > p1.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every finder returns paths that validate, end on the right
// tiles' corners, and avoid the occupancy set.
func TestFinderPathsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(2+rng.Intn(7), 2+rng.Intn(7))
		occ := NewOccupancy(g)
		fs := finders()
		for i := 0; i < 8; i++ {
			t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			if t1 == t2 {
				continue
			}
			fd := fs[rng.Intn(len(fs))]
			p, ok := fd.Find(g, occ, t1, t2, nil)
			if !ok {
				continue
			}
			if p.Validate(g) != nil || occ.Conflicts(g, p) {
				return false
			}
			if !isCorner(g, p[0], t1) || !isCorner(g, p[len(p)-1], t2) {
				return false
			}
			occ.Add(g, p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindersRespectFactoryInterior(t *testing.T) {
	g := grid.New(6, 6)
	if err := g.Reserve(2, 2, 3, 3); err != nil {
		t.Fatal(err)
	}
	for _, f := range finders() {
		occ := NewOccupancy(g)
		p, ok := f.Find(g, occ, g.TileAt(0, 2), g.TileAt(5, 2), nil)
		if !ok {
			t.Fatalf("%s: no path around factory", f.Name())
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		// The factory-interior vertex (3,3) must not appear.
		inner := g.VertexID(3, 3)
		for _, v := range p {
			if v == inner {
				t.Errorf("%s: path crosses factory interior", f.Name())
			}
		}
	}
}

func TestFinderReuseAcrossSearches(t *testing.T) {
	// The stateful finders must give correct results across many calls
	// (epoch/stamp reuse).
	g := grid.New(6, 6)
	var a AStar
	var s StackDFS
	occ := NewOccupancy(g)
	for i := 0; i < 50; i++ {
		t1 := i % g.Tiles()
		t2 := (i*7 + 3) % g.Tiles()
		if t1 == t2 {
			continue
		}
		occ.Reset()
		if p, ok := a.Find(g, occ, t1, t2, nil); !ok || p.Validate(g) != nil {
			t.Fatalf("astar iteration %d failed", i)
		}
		if p, ok := s.Find(g, occ, t1, t2, nil); !ok || p.Validate(g) != nil {
			t.Fatalf("dfs iteration %d failed", i)
		}
	}
}
