package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
)

func TestLShapeBasicPath(t *testing.T) {
	g := grid.New(5, 5)
	occ := NewOccupancy(g)
	var f LShape
	p, ok := f.Find(g, occ, g.TileAt(0, 0), g.TileAt(4, 4), nil)
	if !ok {
		t.Fatal("no path on empty grid")
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !isCorner(g, p[0], g.TileAt(0, 0)) || !isCorner(g, p[len(p)-1], g.TileAt(4, 4)) {
		t.Error("endpoints not corners")
	}
	// Two-bend path: its length equals the corner Manhattan distance.
	if p.Len() != g.VertexDist(p[0], p[len(p)-1]) {
		t.Errorf("L path longer than Manhattan distance: %d vs %d",
			p.Len(), g.VertexDist(p[0], p[len(p)-1]))
	}
}

func TestLShapeAdjacentTiles(t *testing.T) {
	g := grid.New(3, 3)
	var f LShape
	p, ok := f.Find(g, NewOccupancy(g), g.TileAt(0, 0), g.TileAt(1, 0), nil)
	if !ok || p.Len() != 0 {
		t.Fatalf("adjacent tiles: ok=%v len=%d", ok, p.Len())
	}
}

func TestLShapeDefersWhenBothBendsBlocked(t *testing.T) {
	g := grid.New(5, 3)
	occ := NewOccupancy(g)
	// Wall the whole middle corner column except the top row: A* detours
	// over the top, the two-bend router must give up.
	var wall Path
	for y := 1; y <= g.H; y++ {
		wall = append(wall, g.VertexID(2, y))
	}
	occ.Add(g, wall)
	var l LShape
	if _, ok := l.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1), nil); ok {
		t.Fatal("L-shape routed through a wall it cannot bend around")
	}
	var a AStar
	if _, ok := a.Find(g, occ, g.TileAt(0, 1), g.TileAt(4, 1), nil); !ok {
		t.Fatal("A* should still find the detour")
	}
}

func TestLShapeTriesBothOrientations(t *testing.T) {
	g := grid.New(4, 4)
	occ := NewOccupancy(g)
	// Block the horizontal-first bend between tiles (0,0) and (2,2) but
	// leave the vertical-first one open: occupy the corner east of the
	// source's closest corner.
	src := g.TileAt(0, 0)
	tgt := g.TileAt(2, 2)
	occ.Add(g, Path{g.VertexID(2, 1)})
	var l LShape
	p, ok := l.Find(g, occ, src, tgt, nil)
	if !ok {
		t.Fatal("no path despite open vertical-first bend")
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if occ.Conflicts(g, p) {
		t.Fatal("path crosses occupancy")
	}
}

// Property: whatever LShape returns is valid, conflict-free, and never
// longer than the Manhattan distance of its own endpoints.
func TestLShapePathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(2+rng.Intn(7), 2+rng.Intn(7))
		occ := NewOccupancy(g)
		var l LShape
		for i := 0; i < 10; i++ {
			t1, t2 := rng.Intn(g.Tiles()), rng.Intn(g.Tiles())
			if t1 == t2 {
				continue
			}
			p, ok := l.Find(g, occ, t1, t2, nil)
			if !ok {
				continue
			}
			if p.Validate(g) != nil || occ.Conflicts(g, p) {
				return false
			}
			if p.Len() != g.VertexDist(p[0], p[len(p)-1]) {
				return false
			}
			occ.Add(g, p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLShapeInCoreRouter(t *testing.T) {
	// The L-shape finder must still complete circuits (deferrals resolve
	// across cycles). Checked through the route-level contract only here;
	// core integration is exercised by the ablation experiment.
	g := grid.New(6, 6)
	occ := NewOccupancy(g)
	var l LShape
	routed := 0
	for i := 0; i < 30; i++ {
		occ.Reset()
		if _, ok := l.Find(g, occ, i%g.Tiles(), (i*11+5)%g.Tiles(), nil); ok {
			routed++
		}
	}
	if routed < 25 {
		t.Errorf("only %d/30 single-braid cycles routed on an empty grid", routed)
	}
}
