package route

import (
	"testing"

	"hilight/internal/grid"
)

// Defective vertices and channels must read as occupied from the moment
// the Occupancy is built, and stay occupied across every Reset epoch — the
// property all four finders rely on to route around fabrication damage.
func TestOccupancyDefects(t *testing.T) {
	g := grid.New(3, 3)
	dead := g.VertexID(1, 1)
	g.DisableVertex(dead)
	cu, cv := g.VertexID(2, 2), g.VertexID(3, 2)
	g.DisableChannel(cu, cv)

	o := NewOccupancy(g)
	for epoch := 0; epoch < 3; epoch++ {
		if !o.VertexUsed(dead) {
			t.Fatalf("epoch %d: dead vertex not occupied", epoch)
		}
		if !o.EdgeUsed(g, cu, cv) || !o.EdgeUsed(g, cv, cu) {
			t.Fatalf("epoch %d: broken channel not occupied", epoch)
		}
		live := g.VertexID(0, 0)
		if o.VertexUsed(live) {
			t.Fatalf("epoch %d: pristine vertex occupied", epoch)
		}
		// Normal occupancy still works and still clears on Reset.
		p := Path{g.VertexID(0, 0), g.VertexID(1, 0)}
		o.Add(g, p)
		if !o.VertexUsed(live) || !o.Conflicts(g, p) {
			t.Fatalf("epoch %d: Add did not register", epoch)
		}
		o.Reset()
		if o.VertexUsed(live) {
			t.Fatalf("epoch %d: Reset did not clear live vertex", epoch)
		}
	}
}

// A path through a defective vertex must fail Validate even if it is
// otherwise well-formed.
func TestPathValidateRejectsDefects(t *testing.T) {
	g := grid.New(3, 3)
	p := Path{g.VertexID(0, 1), g.VertexID(1, 1), g.VertexID(2, 1)}
	if err := p.Validate(g); err != nil {
		t.Fatalf("pristine path invalid: %v", err)
	}
	g.DisableVertex(g.VertexID(1, 1))
	if err := p.Validate(g); err == nil {
		t.Fatal("path through dead vertex validated")
	}
	g2 := grid.New(3, 3)
	g2.DisableChannel(g2.VertexID(1, 1), g2.VertexID(2, 1))
	if err := p.Validate(g2); err == nil {
		t.Fatal("path over broken channel validated")
	}
}

// Every finder refuses to cross a defect wall and finds the detour when
// one exists.
func TestFindersAvoidDefects(t *testing.T) {
	finders := map[string]Finder{
		"astar":    &AStar{},
		"full16":   &Full16{},
		"stackdfs": &StackDFS{},
		"lshape":   LShape{},
	}
	for name, f := range finders {
		t.Run(name, func(t *testing.T) {
			// 4×2 grid; kill the middle of the vertex column x=2 but leave
			// the top and bottom lattice rows open, so a detour exists.
			g := grid.New(4, 2)
			g.DisableVertex(g.VertexID(2, 1))
			o := NewOccupancy(g)
			p, ok := f.Find(g, o, g.TileAt(0, 0), g.TileAt(3, 1), nil)
			if !ok {
				t.Fatal("no path despite open detour")
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("found path invalid: %v", err)
			}
			for _, v := range p {
				if g.VertexDefective(v) {
					t.Fatalf("path crosses dead vertex %d", v)
				}
			}

			// Now wall off the whole column: no path may be reported.
			for y := 0; y <= g.H; y++ {
				g.DisableVertex(g.VertexID(2, y))
			}
			o2 := NewOccupancy(g)
			if p, ok := f.Find(g, o2, g.TileAt(0, 0), g.TileAt(3, 1), nil); ok {
				t.Fatalf("found path %v across a full defect wall", p)
			}
		})
	}
}
