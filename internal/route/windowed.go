package route

import (
	"math/bits"

	"hilight/internal/grid"
)

// Components is a connected-component labeling of the free routing
// lattice under one occupancy snapshot. It exists to make *failed*
// path-finding cheap: A* (and any other complete finder) proves "no
// path" only by flooding the entire free region around the source, which
// under congestion is the dominant routing cost. With labels computed
// once per snapshot — one sweep over the occupancy's word-packed mirror
// — the same proof is a pair of array loads: two free vertices are
// connected iff their labels match.
//
// A labeling is valid only for the occupancy state it was computed from;
// recompute after every Occupancy.Add/Reset batch. The zero value is
// ready to use, buffers are reused across Compute calls, and a computed
// labeling is safe for concurrent readers.
type Components struct {
	label  []int32
	parent []int32
}

// find resolves a run id to its union-find root with path halving.
func (cc *Components) find(r int32) int32 {
	for cc.parent[r] != r {
		cc.parent[r] = cc.parent[cc.parent[r]]
		r = cc.parent[r]
	}
	return r
}

// Compute labels the free subgraph of g under occ: label[v] is -1 for an
// occupied (or defective) vertex and a positive component id otherwise.
// Channels that are occupied, defective, or unroutable do not connect.
//
// The sweep is word-parallel over the occupancy mirror: each vertex row
// is split into maximal free runs (consecutive free vertices joined by
// open east channels), adjacent rows' runs are unioned wherever a free
// south channel joins two free vertices, and a final pass flattens run
// ids to component roots. No per-edge EdgeID/EdgeRoutable calls at all.
func (cc *Components) Compute(g *grid.Grid, occ *Occupancy) {
	n := g.NumVertices()
	vw, vh := g.VW(), g.VH()
	if cap(cc.label) < n {
		cc.label = make([]int32, n)
	}
	cc.label = cc.label[:n]
	cc.parent = cc.parent[:0]

	// Pass 1: row runs. A run extends from vertex x to x+1 iff both are
	// free and the east channel between them is open.
	for y := 0; y < vh; y++ {
		row := y * vw
		run := int32(-1)
		for x0 := 0; x0 < vw; x0 += 64 {
			cnt := vw - x0
			if cnt > 64 {
				cnt = 64
			}
			free := ^gatherBits(occ.vWordAt, row+x0, cnt)
			eastOpen := ^gatherBits(occ.eWordAt, row+x0, cnt)
			if cnt < 64 {
				free &= (1 << uint(cnt)) - 1
			}
			for x := 0; x < cnt; x++ {
				v := row + x0 + x
				if free>>uint(x)&1 == 0 {
					cc.label[v] = -1
					run = -1
					continue
				}
				if run < 0 {
					run = int32(len(cc.parent))
					cc.parent = append(cc.parent, run)
				}
				cc.label[v] = run
				if eastOpen>>uint(x)&1 == 0 {
					run = -1 // channel to x+1 blocked; next free vertex starts a run
				}
			}
		}
	}

	// Pass 2: vertical unions. Bit x of conn marks a free south channel
	// between free vertices (x,y) and (x,y+1).
	for y := 0; y+1 < vh; y++ {
		row := y * vw
		for x0 := 0; x0 < vw; x0 += 64 {
			cnt := vw - x0
			if cnt > 64 {
				cnt = 64
			}
			conn := ^gatherBits(occ.vWordAt, row+x0, cnt) &
				^gatherBits(occ.vWordAt, row+vw+x0, cnt) &
				^gatherBits(occ.sWordAt, row+x0, cnt)
			if cnt < 64 {
				conn &= (1 << uint(cnt)) - 1
			}
			for conn != 0 {
				x := bits.TrailingZeros64(conn)
				conn &= conn - 1
				v := row + x0 + x
				ra, rb := cc.find(cc.label[v]), cc.find(cc.label[v+vw])
				if ra != rb {
					cc.parent[rb] = ra
				}
			}
		}
	}

	// Pass 3: flatten run ids to 1-based component roots — roots are
	// resolved once per run, so the per-vertex step is a table load.
	for r := range cc.parent {
		cc.parent[r] = cc.find(int32(r))
	}
	for v := 0; v < n; v++ {
		if cc.label[v] >= 0 {
			cc.label[v] = cc.parent[cc.label[v]] + 1
		}
	}
}

// CopyFrom makes cc an independent copy of src's labeling — the cheap
// way to restore a cached snapshot (e.g. the empty-lattice labeling,
// which never changes between cycles) without re-sweeping the lattice.
func (cc *Components) CopyFrom(src *Components) {
	cc.label = append(cc.label[:0], src.label...)
}

// Connected reports whether u and v are both free and reachable from
// each other in the labeled snapshot.
func (cc *Components) Connected(u, v int) bool {
	lu := cc.label[u]
	return lu > 0 && lu == cc.label[v]
}

// Windowed is the parallel router's path-finder: HiLight's
// closest-corner A* wrapped with three accelerations that never change
// which gates are routable, only how fast the answer arrives and which
// corner pair — and which of its shortest paths — is picked.
//
//  1. Free-component pruning (Comp): corner pairs whose endpoints sit in
//     different components of the free lattice are skipped outright, so a
//     gate that cannot route this cycle costs label comparisons instead
//     of up to 16 full-lattice A* floods. Conversely, a same-component
//     pair is guaranteed to yield a path, so no search started here ever
//     fails. Pruning is exact for complete finders: A* succeeds iff the
//     endpoints are connected in the free subgraph.
//  2. Corridor fast path: before searching, the straight or two-bend
//     axis-aligned path is probed with word-wide Occupancy row scans
//     (HRunFree). An axis-aligned hit has exactly the pair's Manhattan
//     length — the global lower bound — so taking it preserves A*'s
//     shortest-path quality while skipping the search entirely.
//  3. Windowed-lookahead congestion (Cong): with a congestion field
//     attached, equal-distance corner pairs, the two L-bend orientations,
//     and equal-length A* expansions all tie-break toward less congested
//     vertices, steering braids away from corridors the next k dependency
//     layers are about to need.
//
// Both hooks are optional and read-only during Find: with Comp and Cong
// nil, Windowed accepts and rejects exactly like AStar (paths may differ
// among equal-length choices). A Windowed is not safe for concurrent
// use, but distinct instances may share one Comp and Cong — which is how
// the parallel router's workers speculate concurrently against a shared
// snapshot.
type Windowed struct {
	// Comp, when non-nil, prunes disconnected corner pairs. It must be
	// recomputed whenever the occupancy changes; a stale labeling breaks
	// the no-failed-search guarantee and can mis-defer gates.
	Comp *Components
	// Cong, when non-nil, is the per-vertex congestion field used for
	// tie-breaking. Shared read-only with the embedded A* core.
	Cong []int32

	astar AStar
}

// Name implements Finder.
func (w *Windowed) Name() string { return "windowed" }

// Stats implements StatsReporter: corridor hits perform no search, so
// the stats count only the A* work that remained.
func (w *Windowed) Stats() SearchStats { return w.astar.stats }

// Find implements Finder.
func (w *Windowed) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	if w.Cong != nil {
		// Stable secondary sort: congestion orders pairs only within
		// equal-distance runs, so the paper's distance-first pair
		// preference is preserved.
		for i := 1; i < len(pairs); i++ {
			for j := i; j > 0 && pairs[j].d == pairs[j-1].d &&
				w.pairCong(pairs[j]) < w.pairCong(pairs[j-1]); j-- {
				pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
			}
		}
	}
	w.astar.Cong = w.Cong
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if w.Comp != nil && !w.Comp.Connected(pr.u, pr.v) {
			continue
		}
		if pr.u == pr.v {
			return append(buf[:0], pr.u), true
		}
		if p, ok := w.corridor(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
		if p, ok := w.astar.search(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
	}
	return nil, false
}

// pairCong is a corner pair's congestion key: the sum at its endpoints.
func (w *Windowed) pairCong(pr cornerPair) int32 {
	return w.Cong[pr.u] + w.Cong[pr.v]
}

// corridor tries the axis-aligned paths between two free corners: the
// straight run when the corners share a row or column, otherwise the two
// L bends — ordered by pivot congestion when a field is attached.
func (w *Windowed) corridor(g *grid.Grid, occ *Occupancy, src, dst int, buf Path) (Path, bool) {
	sx, sy := g.VertexXY(src)
	dx, dy := g.VertexXY(dst)
	hFirst := true
	switch {
	case sx == dx:
		hFirst = false
	case sy == dy:
	default:
		if w.Cong != nil {
			// Prefer the bend whose pivot corner is less congested.
			if w.Cong[g.VertexID(sx, dy)] < w.Cong[g.VertexID(dx, sy)] {
				hFirst = false
			}
		}
	}
	if p, ok := lWalk(g, occ, src, dst, hFirst, buf); ok {
		return p, true
	}
	if sx == dx || sy == dy {
		return nil, false // straight runs have only one shape
	}
	return lWalk(g, occ, src, dst, !hFirst, buf)
}
