package route

// Micro-benchmarks for the routing hot path. The acceptance bar for the
// allocation-free rewrite: BenchmarkFinderFind/astar-closest reports
// 0 allocs/op in steady state (after the warm-up call). Baselines live in
// BENCH_route.json at the repo root; regenerate with
//
//	go test ./internal/route -bench BenchmarkFinderFind -benchmem

import (
	"testing"

	"hilight/internal/grid"
)

// BenchmarkFinderFind measures one uncongested corner-to-corner search per
// finder on a 24×24 grid (the Fig. 9 scalability regime), reusing the
// finder, occupancy, and path buffer the way the router's inner loop does.
func BenchmarkFinderFind(b *testing.B) {
	g := grid.New(24, 24)
	finders := []Finder{&AStar{}, &Full16{}, &StackDFS{}, LShape{}}
	for _, f := range finders {
		b.Run(f.Name(), func(b *testing.B) {
			occ := NewOccupancy(g)
			var buf Path
			// Warm up: first call sizes the per-grid scratch arrays and
			// grows the path buffer.
			p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf)
			if !ok {
				b.Fatal("no path on empty grid")
			}
			buf = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf[:0])
				if !ok {
					b.Fatal("no path on empty grid")
				}
				buf = p
			}
		})
	}
}

// BenchmarkOccupancy measures the occupancy primitives themselves: a
// Reset plus an Add/Conflicts round-trip over a 48-vertex path.
func BenchmarkOccupancy(b *testing.B) {
	g := grid.New(24, 24)
	occ := NewOccupancy(g)
	var p Path
	for x := 0; x <= 24; x++ {
		p = append(p, g.VertexID(x, 12))
	}
	occ.Add(g, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ.Reset()
		if occ.Conflicts(g, p) {
			b.Fatal("occupancy survived Reset")
		}
		occ.Add(g, p)
		if !occ.Conflicts(g, p) {
			b.Fatal("Add not visible")
		}
	}
}
