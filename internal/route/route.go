// Package route implements braiding paths on the surface-code routing
// lattice and the path-finders the paper compares:
//
//   - AStar — HiLight's fast path-finding (Alg. 2 lines 14–17): pick the
//     corner pair of the two tiles with minimum Manhattan distance, then
//     run a single A* search between them.
//   - Full16 — the heavyweight baseline of Fig. 9: search all 16 corner
//     pairs and keep the shortest valid path.
//   - StackDFS — the AutoBraid-style stack-based path-finder: an iterative
//     depth-first search that returns the first path it reaches, valid but
//     not necessarily shortest.
//
// A braiding path is a simple sequence of routing vertices; two braids in
// the same cycle conflict when they share any vertex or channel. Braiding
// latency is independent of path length (a constant five-step topological
// transformation), so each cycle executes a set of disjoint braids.
package route

import (
	"fmt"

	"hilight/internal/graph"
	"hilight/internal/grid"
)

// Path is one braiding path: the visited routing vertices in order. A
// single-vertex path (adjacent tiles braiding through a shared corner) is
// legal and occupies only that vertex.
type Path []int

// Len returns the channel count of the path (vertices − 1).
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that p is a non-empty simple lattice walk on g with
// every channel routable.
func (p Path) Validate(g *grid.Grid) error {
	if len(p) == 0 {
		return fmt.Errorf("route: empty path")
	}
	seen := make(map[int]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("route: vertex %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("route: vertex %d repeated", v)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		if g.VertexDist(p[i-1], v) != 1 {
			return fmt.Errorf("route: vertices %d and %d not adjacent", p[i-1], v)
		}
		if !g.EdgeRoutable(p[i-1], v) {
			return fmt.Errorf("route: channel %d-%d not routable", p[i-1], v)
		}
	}
	return nil
}

// Occupancy tracks the routing vertices and channels consumed by the
// braids of the current cycle. Reset starts a new cycle.
type Occupancy struct {
	vertices map[int]bool
	edges    map[int]bool
}

// NewOccupancy returns an empty occupancy set.
func NewOccupancy() *Occupancy {
	return &Occupancy{vertices: map[int]bool{}, edges: map[int]bool{}}
}

// Reset clears the occupancy for a new cycle.
func (o *Occupancy) Reset() {
	clear(o.vertices)
	clear(o.edges)
}

// VertexUsed reports whether vertex v is taken this cycle.
func (o *Occupancy) VertexUsed(v int) bool { return o.vertices[v] }

// EdgeUsed reports whether the channel between adjacent u,v is taken.
func (o *Occupancy) EdgeUsed(g *grid.Grid, u, v int) bool {
	return o.edges[g.EdgeID(u, v)]
}

// Conflicts reports whether p overlaps any braid already added this cycle.
func (o *Occupancy) Conflicts(g *grid.Grid, p Path) bool {
	for i, v := range p {
		if o.vertices[v] {
			return true
		}
		if i > 0 && o.edges[g.EdgeID(p[i-1], v)] {
			return true
		}
	}
	return false
}

// Add marks p's vertices and channels as taken this cycle.
func (o *Occupancy) Add(g *grid.Grid, p Path) {
	for i, v := range p {
		o.vertices[v] = true
		if i > 0 {
			o.edges[g.EdgeID(p[i-1], v)] = true
		}
	}
}

// Finder searches for a braiding path between the tiles of a two-qubit
// gate, avoiding the braids already placed this cycle. ok is false when
// no path exists under the current occupancy (the gate waits a cycle).
type Finder interface {
	Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int) (p Path, ok bool)
	Name() string
}

// --- A* between the closest corner pair (HiLight) ---------------------------

// AStar is the paper's fast path-finder (FindMinManhattanDistPoint +
// FindValidBraidingPath): corner pairs are tried in ascending Manhattan
// distance and the first valid A* path wins. In the common case this is a
// single search between the closest corners; only under congestion do the
// remaining pairs get probed, which keeps it an order of magnitude
// cheaper than the exhaustive 16-pair shortest-path search (Full16) at
// near-identical latency (Fig. 8c). The zero value is ready to use; a
// single instance reuses its internal buffers and is not safe for
// concurrent use.
type AStar struct {
	open     graph.MinHeap
	gScore   []int
	cameFrom []int
	closed   []bool
	stamp    []int
	epoch    int
	nbrBuf   []int
}

// Name implements Finder.
func (a *AStar) Name() string { return "astar-closest" }

// Find implements Finder.
func (a *AStar) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := a.search(g, occ, pr.u, pr.v); ok {
			return p, true
		}
	}
	return nil, false
}

type cornerPair struct {
	u, v, d int
}

// cornerPairsByDistance returns the 16 corner pairs of two tiles in
// ascending Manhattan distance, stable within equal distances.
func cornerPairsByDistance(g *grid.Grid, a, b int) []cornerPair {
	var pairs [16]cornerPair
	i := 0
	for _, u := range g.Corners(a) {
		for _, v := range g.Corners(b) {
			pairs[i] = cornerPair{u, v, g.VertexDist(u, v)}
			i++
		}
	}
	// Insertion sort: 16 elements, stable.
	out := pairs[:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].d < out[j-1].d; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// search runs A* from src to dst over unoccupied vertices and channels.
func (a *AStar) search(g *grid.Grid, occ *Occupancy, src, dst int) (Path, bool) {
	if occ.VertexUsed(src) || occ.VertexUsed(dst) {
		return nil, false
	}
	if src == dst {
		return Path{src}, true
	}
	n := g.NumVertices()
	if len(a.gScore) < n {
		a.gScore = make([]int, n)
		a.cameFrom = make([]int, n)
		a.closed = make([]bool, n)
		a.stamp = make([]int, n)
	}
	a.epoch++
	a.open.Reset()
	touch := func(v int) {
		if a.stamp[v] != a.epoch {
			a.stamp[v] = a.epoch
			a.gScore[v] = 1 << 30
			a.cameFrom[v] = -1
			a.closed[v] = false
		}
	}
	touch(src)
	a.gScore[src] = 0
	a.open.Push(src, g.VertexDist(src, dst))
	for a.open.Len() > 0 {
		cur, _ := a.open.Pop()
		touch(cur)
		if cur == dst {
			return a.reconstruct(dst), true
		}
		if a.closed[cur] {
			continue
		}
		a.closed[cur] = true
		a.nbrBuf = g.VertexNeighbors(cur, a.nbrBuf[:0])
		for _, nb := range a.nbrBuf {
			touch(nb)
			if a.closed[nb] || occ.VertexUsed(nb) || occ.EdgeUsed(g, cur, nb) {
				continue
			}
			tentative := a.gScore[cur] + 1
			if tentative < a.gScore[nb] {
				a.gScore[nb] = tentative
				a.cameFrom[nb] = cur
				a.open.Push(nb, tentative+g.VertexDist(nb, dst))
			}
		}
	}
	return nil, false
}

func (a *AStar) reconstruct(dst int) Path {
	var rev Path
	for v := dst; v != -1; v = a.cameFrom[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// --- exhaustive 16-pair search (Fig. 9 "baseline") --------------------------

// Full16 searches every corner pair of the two tiles and returns the
// shortest valid path, reproducing the heavyweight routing the paper's
// scalability baseline uses. It shares the A* core.
type Full16 struct {
	astar AStar
}

// Name implements Finder.
func (f *Full16) Name() string { return "full-16" }

// Find implements Finder.
func (f *Full16) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int) (Path, bool) {
	var best Path
	found := false
	for _, u := range g.Corners(ctlTile) {
		for _, v := range g.Corners(tgtTile) {
			p, ok := f.astar.search(g, occ, u, v)
			if !ok {
				continue
			}
			if !found || p.Len() < best.Len() {
				best = append(Path(nil), p...)
				found = true
			}
		}
	}
	return best, found
}

// --- stack-based DFS (AutoBraid) ---------------------------------------------

// StackDFS is the AutoBraid-style stack-based path-finder: an iterative
// DFS from the closest corner pair that commits to the first path found.
// Neighbor expansion prefers steps that reduce the Manhattan distance to
// the target, so paths are goal-directed but may detour around congestion
// instead of globally minimizing length — which is what inflates the
// baseline's ResUtil in Table 1.
type StackDFS struct {
	visited []bool
	stampV  []int
	epoch   int
	nbrBuf  []int
}

// Name implements Finder.
func (s *StackDFS) Name() string { return "stack-dfs" }

// Find implements Finder.
func (s *StackDFS) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int) (Path, bool) {
	for _, pr := range cornerPairsByDistance(g, ctlTile, tgtTile) {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := s.dfs(g, occ, pr.u, pr.v); ok {
			return p, true
		}
	}
	return nil, false
}

// dfs runs one stack-based search between two free corners.
func (s *StackDFS) dfs(g *grid.Grid, occ *Occupancy, src, dst int) (Path, bool) {
	if src == dst {
		return Path{src}, true
	}
	n := g.NumVertices()
	if len(s.visited) < n {
		s.visited = make([]bool, n)
		s.stampV = make([]int, n)
	}
	s.epoch++
	visit := func(v int) bool {
		if s.stampV[v] != s.epoch {
			s.stampV[v] = s.epoch
			s.visited[v] = false
		}
		return s.visited[v]
	}
	mark := func(v int) {
		s.stampV[v] = s.epoch
		s.visited[v] = true
	}

	// Stack of partial paths; each frame stores the path so backtracking
	// restores state trivially. Frames expand goal-ward neighbors last so
	// they pop first.
	type frame struct {
		vertex int
		parent int // index of parent frame, -1 at root
	}
	frames := []frame{{vertex: src, parent: -1}}
	stack := []int{0}
	mark(src)
	for len(stack) > 0 {
		fi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur := frames[fi].vertex
		if cur == dst {
			// Reconstruct by walking parents.
			var rev Path
			for i := fi; i != -1; i = frames[i].parent {
				rev = append(rev, frames[i].vertex)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, true
		}
		s.nbrBuf = g.VertexNeighbors(cur, s.nbrBuf[:0])
		// Two passes: push distance-increasing neighbors first, then
		// distance-decreasing ones, so the goal-ward step is explored
		// first (LIFO).
		for pass := 0; pass < 2; pass++ {
			for _, nb := range s.nbrBuf {
				goalward := g.VertexDist(nb, dst) < g.VertexDist(cur, dst)
				if (pass == 1) != goalward {
					continue
				}
				if visit(nb) || occ.VertexUsed(nb) || occ.EdgeUsed(g, cur, nb) {
					continue
				}
				mark(nb)
				frames = append(frames, frame{vertex: nb, parent: fi})
				stack = append(stack, len(frames)-1)
			}
		}
	}
	return nil, false
}
