// Package route implements braiding paths on the surface-code routing
// lattice and the path-finders the paper compares:
//
//   - AStar — HiLight's fast path-finding (Alg. 2 lines 14–17): pick the
//     corner pair of the two tiles with minimum Manhattan distance, then
//     run a single A* search between them.
//   - Full16 — the heavyweight baseline of Fig. 9: search all 16 corner
//     pairs and keep the shortest valid path.
//   - StackDFS — the AutoBraid-style stack-based path-finder: an iterative
//     depth-first search that returns the first path it reaches, valid but
//     not necessarily shortest.
//
// A braiding path is a simple sequence of routing vertices; two braids in
// the same cycle conflict when they share any vertex or channel. Braiding
// latency is independent of path length (a constant five-step topological
// transformation), so each cycle executes a set of disjoint braids.
//
// The package is built for an allocation-free steady state: Occupancy is
// a pair of dense epoch-stamped arrays (Reset is an O(1) epoch bump, the
// per-probe cost is one slice load and compare), and Finder.Find writes
// the result into a caller-owned buffer so the router's inner loop never
// touches the heap. See the "Performance architecture" section of
// DESIGN.md for the ownership rules.
package route

import (
	"fmt"

	"hilight/internal/graph"
	"hilight/internal/grid"
)

// Path is one braiding path: the visited routing vertices in order. A
// single-vertex path (adjacent tiles braiding through a shared corner) is
// legal and occupies only that vertex.
type Path []int

// Len returns the channel count of the path (vertices − 1).
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that p is a non-empty simple lattice walk on g with
// every vertex alive and every channel routable.
func (p Path) Validate(g *grid.Grid) error {
	if len(p) == 0 {
		return fmt.Errorf("route: empty path")
	}
	for i, v := range p {
		if v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("route: vertex %d out of range", v)
		}
		if g.VertexDefective(v) {
			return fmt.Errorf("route: vertex %d is defective", v)
		}
		if i == 0 {
			continue
		}
		if g.VertexDist(p[i-1], v) != 1 {
			return fmt.Errorf("route: vertices %d and %d not adjacent", p[i-1], v)
		}
		if !g.EdgeRoutable(p[i-1], v) {
			return fmt.Errorf("route: channel %d-%d not routable", p[i-1], v)
		}
	}
	// Simple-walk check last, and allocation-free for the short paths
	// braids actually produce: Validate sits on the warm-replay hot path
	// (once per braid per recompile), where a per-call map shows up as
	// the top allocator. Quadratic beats a map handily below ~64 vertices.
	if len(p) <= 64 {
		for i := 1; i < len(p); i++ {
			for j := 0; j < i; j++ {
				if p[j] == p[i] {
					return fmt.Errorf("route: vertex %d repeated", p[i])
				}
			}
		}
		return nil
	}
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return fmt.Errorf("route: vertex %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// Occupancy tracks the routing vertices and channels consumed by the
// braids of the current cycle. It is a dense epoch-stamped set sized to
// one grid: an entry is a member iff its stamp is at least the current
// epoch, so Reset — which starts a new cycle — is a single integer
// increment and membership probes are one slice load and compare.
// Defective vertices and channels of the grid are stamped with a sentinel
// greater than any epoch, so every Finder sees them as permanently
// occupied without an extra branch in the probe. An Occupancy is bound to
// the grid it was created for and must not be shared across grids.
//
// Alongside the stamp arrays the set maintains a word-packed mirror —
// one bit per vertex and one per east channel, with per-word epoch
// stamps so Reset stays O(1) — that HRunFree uses to test a whole
// horizontal corridor 64 lattice columns per instruction instead of one.
// Unroutable east channels (factory interiors, defects, dead endpoints)
// are baked into the base words, so a word probe answers the full
// feasibility question the scalar walk would.
type Occupancy struct {
	vStamp []int
	eStamp []int
	epoch  int

	// Word-packed mirror for row probes. vw is the vertex-row stride;
	// bit v of vWords marks vertex v occupied, bit v of eWords marks the
	// east channel leaving vertex v occupied or unroutable. The *Base
	// words hold the permanent (defect/unroutable) bits; a word whose
	// epoch entry is stale reads as its base.
	vw     int
	vWords []uint64
	vBase  []uint64
	vEpoch []int
	eWords []uint64
	eBase  []uint64
	eEpoch []int
	sWords []uint64
	sBase  []uint64
	sEpoch []int
}

// defectEpoch outlives every real epoch: an entry stamped with it is
// occupied forever.
const defectEpoch = 1<<62 - 1

// NewOccupancy returns an occupancy set sized to g's routing lattice,
// with g's defects pre-stamped as permanently occupied.
func NewOccupancy(g *grid.Grid) *Occupancy {
	o := &Occupancy{
		vStamp: make([]int, g.NumVertices()),
		eStamp: make([]int, g.NumEdges()),
		epoch:  1,
	}
	if g.HasDefects() {
		for v := range o.vStamp {
			if g.VertexDefective(v) {
				o.vStamp[v] = defectEpoch
			}
		}
		// Stamp defective channels by scanning each vertex's east and
		// south edges (the two ids EdgeID can produce for it).
		for v := range o.vStamp {
			x, y := g.VertexXY(v)
			if x+1 < g.VW() && g.ChannelDefective(v, g.VertexID(x+1, y)) {
				o.eStamp[2*v] = defectEpoch
			}
			if y+1 < g.VH() && g.ChannelDefective(v, g.VertexID(x, y+1)) {
				o.eStamp[2*v+1] = defectEpoch
			}
		}
	}

	// Build the word-packed mirror: permanent bits in the base words,
	// including unroutable east channels, so HRunFree never needs the
	// scalar EdgeRoutable check.
	o.vw = g.VW()
	nw := (g.NumVertices() + 63) / 64
	o.vWords = make([]uint64, nw)
	o.vBase = make([]uint64, nw)
	o.vEpoch = make([]int, nw)
	o.eWords = make([]uint64, nw)
	o.eBase = make([]uint64, nw)
	o.eEpoch = make([]int, nw)
	o.sWords = make([]uint64, nw)
	o.sBase = make([]uint64, nw)
	o.sEpoch = make([]int, nw)
	for v := 0; v < g.NumVertices(); v++ {
		bit := uint64(1) << (uint(v) & 63)
		if o.vStamp[v] == defectEpoch {
			o.vBase[v>>6] |= bit
		}
		x, y := g.VertexXY(v)
		switch {
		case x+1 >= g.VW():
			o.eBase[v>>6] |= bit // no east channel at the row end
		case o.eStamp[2*v] == defectEpoch || !g.EdgeRoutable(v, g.VertexID(x+1, y)):
			o.eBase[v>>6] |= bit
		}
		switch {
		case y+1 >= g.VH():
			o.sBase[v>>6] |= bit // no south channel on the bottom row
		case o.eStamp[2*v+1] == defectEpoch || !g.EdgeRoutable(v, g.VertexID(x, y+1)):
			o.sBase[v>>6] |= bit
		}
	}
	return o
}

// setVBit mirrors an occupied vertex into the word-packed view.
func (o *Occupancy) setVBit(v int) {
	w := v >> 6
	if o.vEpoch[w] != o.epoch {
		o.vWords[w] = o.vBase[w]
		o.vEpoch[w] = o.epoch
	}
	o.vWords[w] |= 1 << (uint(v) & 63)
}

// setEBit mirrors an occupied east channel (of west vertex v) into the
// word-packed view.
func (o *Occupancy) setEBit(v int) {
	w := v >> 6
	if o.eEpoch[w] != o.epoch {
		o.eWords[w] = o.eBase[w]
		o.eEpoch[w] = o.epoch
	}
	o.eWords[w] |= 1 << (uint(v) & 63)
}

// setSBit mirrors an occupied south channel (of north vertex v) into
// the word-packed view.
func (o *Occupancy) setSBit(v int) {
	w := v >> 6
	if o.sEpoch[w] != o.epoch {
		o.sWords[w] = o.sBase[w]
		o.sEpoch[w] = o.epoch
	}
	o.sWords[w] |= 1 << (uint(v) & 63)
}

// vWordAt reads word w of the vertex mirror for the current epoch.
func (o *Occupancy) vWordAt(w int) uint64 {
	if o.vEpoch[w] == o.epoch {
		return o.vWords[w]
	}
	return o.vBase[w]
}

// eWordAt reads word w of the east-channel mirror for the current epoch.
func (o *Occupancy) eWordAt(w int) uint64 {
	if o.eEpoch[w] == o.epoch {
		return o.eWords[w]
	}
	return o.eBase[w]
}

// sWordAt reads word w of the south-channel mirror for the current epoch.
func (o *Occupancy) sWordAt(w int) uint64 {
	if o.sEpoch[w] == o.epoch {
		return o.sWords[w]
	}
	return o.sBase[w]
}

// gatherBits extracts count (≤ 64) consecutive bits starting at global
// bit index start from an epoch-checked word reader, unused high bits
// zero.
func gatherBits(wordAt func(int) uint64, start, count int) uint64 {
	w, lo := start>>6, uint(start&63)
	out := wordAt(w) >> lo
	if int(lo)+count > 64 {
		out |= wordAt(w+1) << (64 - lo)
	}
	if count < 64 {
		out &= (1 << uint(count)) - 1
	}
	return out
}

// onesRange returns a word with bits [lo, hi] set, 0 ≤ lo ≤ hi ≤ 63.
func onesRange(lo, hi int) uint64 {
	return (^uint64(0) >> uint(63-(hi-lo))) << uint(lo)
}

// HRunFree reports whether the horizontal corridor on vertex row y
// spanning columns [x0, x1] (in either order) is entirely free: every
// vertex of the run and every east channel between consecutive run
// vertices is unoccupied this cycle, non-defective, and routable. The
// probe scans the word-packed mirror, testing up to 64 lattice columns
// per instruction, and is exactly equivalent to the scalar
// VertexUsed/EdgeUsed/EdgeRoutable walk along the run.
func (o *Occupancy) HRunFree(y, x0, x1 int) bool {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	v0 := y*o.vw + x0
	v1 := y*o.vw + x1
	e1 := v1 - 1 // last east-channel id of the run; < v0 when the run is a point
	for w := v0 >> 6; w <= v1>>6; w++ {
		base := w << 6
		lo, hi := v0-base, v1-base
		if lo < 0 {
			lo = 0
		}
		if hi > 63 {
			hi = 63
		}
		bits := o.vWordAt(w) & onesRange(lo, hi)
		if ehi := e1 - base; ehi >= lo {
			if ehi > 63 {
				ehi = 63
			}
			bits |= o.eWordAt(w) & onesRange(lo, ehi)
		}
		if bits != 0 {
			return false
		}
	}
	return true
}

// Reset clears the per-cycle occupancy in O(1); defect stamps persist.
func (o *Occupancy) Reset() { o.epoch++ }

// VertexUsed reports whether vertex v is taken this cycle (or defective).
func (o *Occupancy) VertexUsed(v int) bool { return o.vStamp[v] >= o.epoch }

// EdgeUsed reports whether the channel between adjacent u,v is taken
// this cycle (or defective).
func (o *Occupancy) EdgeUsed(g *grid.Grid, u, v int) bool {
	return o.eStamp[g.EdgeID(u, v)] >= o.epoch
}

// EastBlocked reports whether the east channel of vertex v is impassable
// this cycle: occupied, defective, unroutable, or off-lattice (the
// row-end sentinel). One mirror load replaces the scalar
// InBounds/EdgeRoutable/EdgeUsed triple.
func (o *Occupancy) EastBlocked(v int) bool {
	return o.eWordAt(v>>6)>>(uint(v)&63)&1 != 0
}

// SouthBlocked is EastBlocked for the south channel of vertex v (the
// bottom-row sentinel covers the lattice edge).
func (o *Occupancy) SouthBlocked(v int) bool {
	return o.sWordAt(v>>6)>>(uint(v)&63)&1 != 0
}

// Conflicts reports whether p overlaps any braid already added this cycle
// or any defective lattice resource.
func (o *Occupancy) Conflicts(g *grid.Grid, p Path) bool {
	for i, v := range p {
		if o.vStamp[v] >= o.epoch {
			return true
		}
		if i > 0 && o.eStamp[g.EdgeID(p[i-1], v)] >= o.epoch {
			return true
		}
	}
	return false
}

// Add marks p's vertices and channels as taken this cycle.
func (o *Occupancy) Add(g *grid.Grid, p Path) {
	for i, v := range p {
		o.vStamp[v] = o.epoch
		o.setVBit(v)
		if i > 0 {
			u := p[i-1]
			o.eStamp[g.EdgeID(u, v)] = o.epoch
			// Mirror channels under their west/north vertex's bit:
			// adjacent same-row vertices differ by exactly 1, vertical
			// neighbors by the row stride.
			switch u - v {
			case 1:
				o.setEBit(v)
			case -1:
				o.setEBit(u)
			case o.vw:
				o.setSBit(v)
			case -o.vw:
				o.setSBit(u)
			}
		}
	}
}

// Finder searches for a braiding path between the tiles of a two-qubit
// gate, avoiding the braids already placed this cycle. ok is false when
// no path exists under the current occupancy (the gate waits a cycle).
//
// buf is a caller-owned path buffer: implementations write the result
// into buf's storage (growing it only when capacity runs out) and return
// the resulting slice, so a steady-state caller that recycles the
// returned path as the next call's buf never allocates. Passing nil buf
// yields a freshly allocated path. The returned path aliases buf — a
// caller that retains it across Find calls must copy it first.
type Finder interface {
	Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (p Path, ok bool)
	Name() string
}

// SearchStats counts a finder's cumulative search effort since it was
// created — the router-level cost the paper's Fig. 8c runtime comparison
// is really measuring. Counting is plain field arithmetic on the finder,
// so it adds no allocation to the Find hot path.
type SearchStats struct {
	// Searches is the number of point-to-point searches started (a
	// single Find may start several: one per corner pair probed).
	Searches int64
	// Pops is the number of frontier nodes expanded across all searches
	// (A* open-heap pops, DFS stack pops).
	Pops int64
}

// StatsReporter is implemented by finders that track search effort; the
// pipeline surfaces the stats as route-stage trace counters and metrics.
type StatsReporter interface {
	Stats() SearchStats
}

// --- A* between the closest corner pair (HiLight) ---------------------------

// AStar is the paper's fast path-finder (FindMinManhattanDistPoint +
// FindValidBraidingPath): corner pairs are tried in ascending Manhattan
// distance and the first valid A* path wins. In the common case this is a
// single search between the closest corners; only under congestion do the
// remaining pairs get probed, which keeps it an order of magnitude
// cheaper than the exhaustive 16-pair shortest-path search (Full16) at
// near-identical latency (Fig. 8c). The zero value is ready to use; a
// single instance reuses its internal buffers and is not safe for
// concurrent use.
type AStar struct {
	// Cong, when non-nil, is a per-vertex congestion field that breaks
	// ties between equal-length paths: the heap priority becomes
	// f<<10 | min(cong, 1023), so a lower f still strictly dominates and
	// path-length optimality is untouched — congestion only picks among
	// shortest paths. Nil (the default, and the paper-faithful sequential
	// configuration) leaves priorities as plain f values. Set by the
	// windowed-lookahead router.
	Cong []int32

	open     graph.MinHeap
	gScore   []int
	cameFrom []int
	closed   []bool
	stamp    []int
	epoch    int
	nbrBuf   []int
	stats    SearchStats
}

// Stats implements StatsReporter.
func (a *AStar) Stats() SearchStats { return a.stats }

// Name implements Finder.
func (a *AStar) Name() string { return "astar-closest" }

// Find implements Finder.
func (a *AStar) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := a.search(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
	}
	return nil, false
}

type cornerPair struct {
	u, v, d int
}

// cornerPairsByDistance returns the 16 corner pairs of two tiles in
// ascending Manhattan distance, stable within equal distances. The array
// is returned by value so the hot path never heap-allocates it.
func cornerPairsByDistance(g *grid.Grid, a, b int) [16]cornerPair {
	var pairs [16]cornerPair
	i := 0
	for _, u := range g.Corners(a) {
		for _, v := range g.Corners(b) {
			pairs[i] = cornerPair{u, v, g.VertexDist(u, v)}
			i++
		}
	}
	// Insertion sort: 16 elements, stable.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].d < pairs[j-1].d; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return pairs
}

// pri scales an f-score into a heap priority. With no congestion field
// it is the identity; with one, equal-f vertices order by congestion
// while any lower f still wins (strict dominance via the shift).
func (a *AStar) pri(f, v int) int {
	if a.Cong == nil {
		return f
	}
	c := a.Cong[v]
	if c > 1023 {
		c = 1023
	}
	return f<<10 | int(c)
}

// touch lazily re-initializes per-vertex search state for the current
// epoch.
func (a *AStar) touch(v int) {
	if a.stamp[v] != a.epoch {
		a.stamp[v] = a.epoch
		a.gScore[v] = 1 << 30
		a.cameFrom[v] = -1
		a.closed[v] = false
	}
}

// search runs A* from src to dst over unoccupied vertices and channels,
// writing the path into buf's storage.
func (a *AStar) search(g *grid.Grid, occ *Occupancy, src, dst int, buf Path) (Path, bool) {
	if occ.VertexUsed(src) || occ.VertexUsed(dst) {
		return nil, false
	}
	if src == dst {
		return append(buf[:0], src), true
	}
	n := g.NumVertices()
	if len(a.gScore) < n {
		a.gScore = make([]int, n)
		a.cameFrom = make([]int, n)
		a.closed = make([]bool, n)
		a.stamp = make([]int, n)
	}
	a.stats.Searches++
	a.epoch++
	a.open.Reset()
	a.touch(src)
	a.gScore[src] = 0
	a.open.Push(src, a.pri(g.VertexDist(src, dst), src))
	vw := g.VW()
	for a.open.Len() > 0 {
		cur, _ := a.open.Pop()
		a.stats.Pops++
		if cur == dst {
			return a.reconstruct(dst, buf), true
		}
		// Skip stale heap entries before touching any per-vertex state:
		// every pushed vertex was touched when pushed, so a popped vertex
		// is already initialized for this epoch and a closed pop needs no
		// re-initialization at all.
		if a.closed[cur] {
			continue
		}
		a.closed[cur] = true
		tentative := a.gScore[cur] + 1
		// Expansion probes the word-packed channel mirrors: a set bit bakes
		// occupied, defective, unroutable, and off-lattice in one load, so
		// no InBounds/EdgeRoutable/EdgeID work remains on the hot path. The
		// N, E, S, W order matches VertexNeighbors, keeping equal-length
		// path tie-breaks — and thus emitted schedules — unchanged.
		if cur >= vw && !occ.SouthBlocked(cur-vw) {
			a.relax(g, occ, cur, cur-vw, tentative, dst)
		}
		if !occ.EastBlocked(cur) {
			a.relax(g, occ, cur, cur+1, tentative, dst)
		}
		if !occ.SouthBlocked(cur) {
			a.relax(g, occ, cur, cur+vw, tentative, dst)
		}
		if cur > 0 && !occ.EastBlocked(cur-1) {
			a.relax(g, occ, cur, cur-1, tentative, dst)
		}
	}
	return nil, false
}

// relax is one A* edge relaxation toward an in-bounds neighbor whose
// connecting channel is already known to be open.
func (a *AStar) relax(g *grid.Grid, occ *Occupancy, cur, nb, tentative, dst int) {
	a.touch(nb)
	if a.closed[nb] || occ.VertexUsed(nb) {
		return
	}
	if tentative < a.gScore[nb] {
		a.gScore[nb] = tentative
		a.cameFrom[nb] = cur
		a.open.Push(nb, a.pri(tentative+g.VertexDist(nb, dst), nb))
	}
}

// reconstruct writes the src→dst path into buf by walking the cameFrom
// chain backwards and reversing in place.
func (a *AStar) reconstruct(dst int, buf Path) Path {
	buf = buf[:0]
	for v := dst; v != -1; v = a.cameFrom[v] {
		buf = append(buf, v)
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// --- exhaustive 16-pair search (Fig. 9 "baseline") --------------------------

// Full16 searches every corner pair of the two tiles and returns the
// shortest valid path, reproducing the heavyweight routing the paper's
// scalability baseline uses. It shares the A* core and keeps one reusable
// best-path buffer, so improvements during the 16-pair scan never
// allocate.
type Full16 struct {
	astar   AStar
	scratch Path // per-pair search buffer
	best    Path // best path seen this Find
}

// Name implements Finder.
func (f *Full16) Name() string { return "full-16" }

// Stats implements StatsReporter: Full16 drives the shared A* core, so
// its effort is the underlying searcher's.
func (f *Full16) Stats() SearchStats { return f.astar.Stats() }

// Find implements Finder.
func (f *Full16) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	found := false
	for _, u := range g.Corners(ctlTile) {
		for _, v := range g.Corners(tgtTile) {
			p, ok := f.astar.search(g, occ, u, v, f.scratch[:0])
			if !ok {
				continue
			}
			f.scratch = p // keep grown capacity for the next pair
			if !found || p.Len() < f.best.Len() {
				f.best = append(f.best[:0], p...)
				found = true
			}
		}
	}
	if !found {
		return nil, false
	}
	return append(buf[:0], f.best...), true
}

// --- stack-based DFS (AutoBraid) ---------------------------------------------

// StackDFS is the AutoBraid-style stack-based path-finder: an iterative
// DFS from the closest corner pair that commits to the first path found.
// Neighbor expansion prefers steps that reduce the Manhattan distance to
// the target, so paths are goal-directed but may detour around congestion
// instead of globally minimizing length — which is what inflates the
// baseline's ResUtil in Table 1.
type StackDFS struct {
	visited []bool
	stampV  []int
	epoch   int
	nbrBuf  []int
	frames  []dfsFrame
	stack   []int
	stats   SearchStats
}

// Stats implements StatsReporter.
func (s *StackDFS) Stats() SearchStats { return s.stats }

// dfsFrame is one partial-path node: backtracking restores state by
// walking parent indices.
type dfsFrame struct {
	vertex int
	parent int // index of parent frame, -1 at root
}

// Name implements Finder.
func (s *StackDFS) Name() string { return "stack-dfs" }

// Find implements Finder.
func (s *StackDFS) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := s.dfs(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
	}
	return nil, false
}

// visit reports whether v was already visited this epoch, initializing
// its state lazily.
func (s *StackDFS) visit(v int) bool {
	if s.stampV[v] != s.epoch {
		s.stampV[v] = s.epoch
		s.visited[v] = false
	}
	return s.visited[v]
}

// mark flags v as visited this epoch.
func (s *StackDFS) mark(v int) {
	s.stampV[v] = s.epoch
	s.visited[v] = true
}

// dfs runs one stack-based search between two free corners, writing the
// path into buf's storage.
func (s *StackDFS) dfs(g *grid.Grid, occ *Occupancy, src, dst int, buf Path) (Path, bool) {
	if src == dst {
		return append(buf[:0], src), true
	}
	n := g.NumVertices()
	if len(s.visited) < n {
		s.visited = make([]bool, n)
		s.stampV = make([]int, n)
	}
	s.stats.Searches++
	s.epoch++

	// Stack of partial paths; each frame stores the path so backtracking
	// restores state trivially. Frames expand goal-ward neighbors last so
	// they pop first.
	s.frames = append(s.frames[:0], dfsFrame{vertex: src, parent: -1})
	s.stack = append(s.stack[:0], 0)
	s.mark(src)
	for len(s.stack) > 0 {
		fi := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.stats.Pops++
		cur := s.frames[fi].vertex
		if cur == dst {
			// Reconstruct by walking parents.
			buf = buf[:0]
			for i := fi; i != -1; i = s.frames[i].parent {
				buf = append(buf, s.frames[i].vertex)
			}
			for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
				buf[i], buf[j] = buf[j], buf[i]
			}
			return buf, true
		}
		s.nbrBuf = g.VertexNeighbors(cur, s.nbrBuf[:0])
		// Two passes: push distance-increasing neighbors first, then
		// distance-decreasing ones, so the goal-ward step is explored
		// first (LIFO).
		for pass := 0; pass < 2; pass++ {
			for _, nb := range s.nbrBuf {
				goalward := g.VertexDist(nb, dst) < g.VertexDist(cur, dst)
				if (pass == 1) != goalward {
					continue
				}
				if s.visit(nb) || occ.VertexUsed(nb) || occ.EdgeUsed(g, cur, nb) {
					continue
				}
				s.mark(nb)
				s.frames = append(s.frames, dfsFrame{vertex: nb, parent: fi})
				s.stack = append(s.stack, len(s.frames)-1)
			}
		}
	}
	return nil, false
}
