// Package route implements braiding paths on the surface-code routing
// lattice and the path-finders the paper compares:
//
//   - AStar — HiLight's fast path-finding (Alg. 2 lines 14–17): pick the
//     corner pair of the two tiles with minimum Manhattan distance, then
//     run a single A* search between them.
//   - Full16 — the heavyweight baseline of Fig. 9: search all 16 corner
//     pairs and keep the shortest valid path.
//   - StackDFS — the AutoBraid-style stack-based path-finder: an iterative
//     depth-first search that returns the first path it reaches, valid but
//     not necessarily shortest.
//
// A braiding path is a simple sequence of routing vertices; two braids in
// the same cycle conflict when they share any vertex or channel. Braiding
// latency is independent of path length (a constant five-step topological
// transformation), so each cycle executes a set of disjoint braids.
//
// The package is built for an allocation-free steady state: Occupancy is
// a pair of dense epoch-stamped arrays (Reset is an O(1) epoch bump, the
// per-probe cost is one slice load and compare), and Finder.Find writes
// the result into a caller-owned buffer so the router's inner loop never
// touches the heap. See the "Performance architecture" section of
// DESIGN.md for the ownership rules.
package route

import (
	"fmt"

	"hilight/internal/graph"
	"hilight/internal/grid"
)

// Path is one braiding path: the visited routing vertices in order. A
// single-vertex path (adjacent tiles braiding through a shared corner) is
// legal and occupies only that vertex.
type Path []int

// Len returns the channel count of the path (vertices − 1).
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that p is a non-empty simple lattice walk on g with
// every vertex alive and every channel routable.
func (p Path) Validate(g *grid.Grid) error {
	if len(p) == 0 {
		return fmt.Errorf("route: empty path")
	}
	seen := make(map[int]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("route: vertex %d out of range", v)
		}
		if g.VertexDefective(v) {
			return fmt.Errorf("route: vertex %d is defective", v)
		}
		if seen[v] {
			return fmt.Errorf("route: vertex %d repeated", v)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		if g.VertexDist(p[i-1], v) != 1 {
			return fmt.Errorf("route: vertices %d and %d not adjacent", p[i-1], v)
		}
		if !g.EdgeRoutable(p[i-1], v) {
			return fmt.Errorf("route: channel %d-%d not routable", p[i-1], v)
		}
	}
	return nil
}

// Occupancy tracks the routing vertices and channels consumed by the
// braids of the current cycle. It is a dense epoch-stamped set sized to
// one grid: an entry is a member iff its stamp is at least the current
// epoch, so Reset — which starts a new cycle — is a single integer
// increment and membership probes are one slice load and compare.
// Defective vertices and channels of the grid are stamped with a sentinel
// greater than any epoch, so every Finder sees them as permanently
// occupied without an extra branch in the probe. An Occupancy is bound to
// the grid it was created for and must not be shared across grids.
type Occupancy struct {
	vStamp []int
	eStamp []int
	epoch  int
}

// defectEpoch outlives every real epoch: an entry stamped with it is
// occupied forever.
const defectEpoch = 1<<62 - 1

// NewOccupancy returns an occupancy set sized to g's routing lattice,
// with g's defects pre-stamped as permanently occupied.
func NewOccupancy(g *grid.Grid) *Occupancy {
	o := &Occupancy{
		vStamp: make([]int, g.NumVertices()),
		eStamp: make([]int, g.NumEdges()),
		epoch:  1,
	}
	if g.HasDefects() {
		for v := range o.vStamp {
			if g.VertexDefective(v) {
				o.vStamp[v] = defectEpoch
			}
		}
		// Stamp defective channels by scanning each vertex's east and
		// south edges (the two ids EdgeID can produce for it).
		for v := range o.vStamp {
			x, y := g.VertexXY(v)
			if x+1 < g.VW() && g.ChannelDefective(v, g.VertexID(x+1, y)) {
				o.eStamp[2*v] = defectEpoch
			}
			if y+1 < g.VH() && g.ChannelDefective(v, g.VertexID(x, y+1)) {
				o.eStamp[2*v+1] = defectEpoch
			}
		}
	}
	return o
}

// Reset clears the per-cycle occupancy in O(1); defect stamps persist.
func (o *Occupancy) Reset() { o.epoch++ }

// VertexUsed reports whether vertex v is taken this cycle (or defective).
func (o *Occupancy) VertexUsed(v int) bool { return o.vStamp[v] >= o.epoch }

// EdgeUsed reports whether the channel between adjacent u,v is taken
// this cycle (or defective).
func (o *Occupancy) EdgeUsed(g *grid.Grid, u, v int) bool {
	return o.eStamp[g.EdgeID(u, v)] >= o.epoch
}

// Conflicts reports whether p overlaps any braid already added this cycle
// or any defective lattice resource.
func (o *Occupancy) Conflicts(g *grid.Grid, p Path) bool {
	for i, v := range p {
		if o.vStamp[v] >= o.epoch {
			return true
		}
		if i > 0 && o.eStamp[g.EdgeID(p[i-1], v)] >= o.epoch {
			return true
		}
	}
	return false
}

// Add marks p's vertices and channels as taken this cycle.
func (o *Occupancy) Add(g *grid.Grid, p Path) {
	for i, v := range p {
		o.vStamp[v] = o.epoch
		if i > 0 {
			o.eStamp[g.EdgeID(p[i-1], v)] = o.epoch
		}
	}
}

// Finder searches for a braiding path between the tiles of a two-qubit
// gate, avoiding the braids already placed this cycle. ok is false when
// no path exists under the current occupancy (the gate waits a cycle).
//
// buf is a caller-owned path buffer: implementations write the result
// into buf's storage (growing it only when capacity runs out) and return
// the resulting slice, so a steady-state caller that recycles the
// returned path as the next call's buf never allocates. Passing nil buf
// yields a freshly allocated path. The returned path aliases buf — a
// caller that retains it across Find calls must copy it first.
type Finder interface {
	Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (p Path, ok bool)
	Name() string
}

// SearchStats counts a finder's cumulative search effort since it was
// created — the router-level cost the paper's Fig. 8c runtime comparison
// is really measuring. Counting is plain field arithmetic on the finder,
// so it adds no allocation to the Find hot path.
type SearchStats struct {
	// Searches is the number of point-to-point searches started (a
	// single Find may start several: one per corner pair probed).
	Searches int64
	// Pops is the number of frontier nodes expanded across all searches
	// (A* open-heap pops, DFS stack pops).
	Pops int64
}

// StatsReporter is implemented by finders that track search effort; the
// pipeline surfaces the stats as route-stage trace counters and metrics.
type StatsReporter interface {
	Stats() SearchStats
}

// --- A* between the closest corner pair (HiLight) ---------------------------

// AStar is the paper's fast path-finder (FindMinManhattanDistPoint +
// FindValidBraidingPath): corner pairs are tried in ascending Manhattan
// distance and the first valid A* path wins. In the common case this is a
// single search between the closest corners; only under congestion do the
// remaining pairs get probed, which keeps it an order of magnitude
// cheaper than the exhaustive 16-pair shortest-path search (Full16) at
// near-identical latency (Fig. 8c). The zero value is ready to use; a
// single instance reuses its internal buffers and is not safe for
// concurrent use.
type AStar struct {
	open     graph.MinHeap
	gScore   []int
	cameFrom []int
	closed   []bool
	stamp    []int
	epoch    int
	nbrBuf   []int
	stats    SearchStats
}

// Stats implements StatsReporter.
func (a *AStar) Stats() SearchStats { return a.stats }

// Name implements Finder.
func (a *AStar) Name() string { return "astar-closest" }

// Find implements Finder.
func (a *AStar) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := a.search(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
	}
	return nil, false
}

type cornerPair struct {
	u, v, d int
}

// cornerPairsByDistance returns the 16 corner pairs of two tiles in
// ascending Manhattan distance, stable within equal distances. The array
// is returned by value so the hot path never heap-allocates it.
func cornerPairsByDistance(g *grid.Grid, a, b int) [16]cornerPair {
	var pairs [16]cornerPair
	i := 0
	for _, u := range g.Corners(a) {
		for _, v := range g.Corners(b) {
			pairs[i] = cornerPair{u, v, g.VertexDist(u, v)}
			i++
		}
	}
	// Insertion sort: 16 elements, stable.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].d < pairs[j-1].d; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return pairs
}

// touch lazily re-initializes per-vertex search state for the current
// epoch.
func (a *AStar) touch(v int) {
	if a.stamp[v] != a.epoch {
		a.stamp[v] = a.epoch
		a.gScore[v] = 1 << 30
		a.cameFrom[v] = -1
		a.closed[v] = false
	}
}

// search runs A* from src to dst over unoccupied vertices and channels,
// writing the path into buf's storage.
func (a *AStar) search(g *grid.Grid, occ *Occupancy, src, dst int, buf Path) (Path, bool) {
	if occ.VertexUsed(src) || occ.VertexUsed(dst) {
		return nil, false
	}
	if src == dst {
		return append(buf[:0], src), true
	}
	n := g.NumVertices()
	if len(a.gScore) < n {
		a.gScore = make([]int, n)
		a.cameFrom = make([]int, n)
		a.closed = make([]bool, n)
		a.stamp = make([]int, n)
	}
	a.stats.Searches++
	a.epoch++
	a.open.Reset()
	a.touch(src)
	a.gScore[src] = 0
	a.open.Push(src, g.VertexDist(src, dst))
	for a.open.Len() > 0 {
		cur, _ := a.open.Pop()
		a.stats.Pops++
		if cur == dst {
			return a.reconstruct(dst, buf), true
		}
		// Skip stale heap entries before touching any per-vertex state:
		// every pushed vertex was touched when pushed, so a popped vertex
		// is already initialized for this epoch and a closed pop needs no
		// re-initialization at all.
		if a.closed[cur] {
			continue
		}
		a.closed[cur] = true
		a.nbrBuf = g.VertexNeighbors(cur, a.nbrBuf[:0])
		for _, nb := range a.nbrBuf {
			a.touch(nb)
			if a.closed[nb] || occ.VertexUsed(nb) || occ.EdgeUsed(g, cur, nb) {
				continue
			}
			tentative := a.gScore[cur] + 1
			if tentative < a.gScore[nb] {
				a.gScore[nb] = tentative
				a.cameFrom[nb] = cur
				a.open.Push(nb, tentative+g.VertexDist(nb, dst))
			}
		}
	}
	return nil, false
}

// reconstruct writes the src→dst path into buf by walking the cameFrom
// chain backwards and reversing in place.
func (a *AStar) reconstruct(dst int, buf Path) Path {
	buf = buf[:0]
	for v := dst; v != -1; v = a.cameFrom[v] {
		buf = append(buf, v)
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// --- exhaustive 16-pair search (Fig. 9 "baseline") --------------------------

// Full16 searches every corner pair of the two tiles and returns the
// shortest valid path, reproducing the heavyweight routing the paper's
// scalability baseline uses. It shares the A* core and keeps one reusable
// best-path buffer, so improvements during the 16-pair scan never
// allocate.
type Full16 struct {
	astar   AStar
	scratch Path // per-pair search buffer
	best    Path // best path seen this Find
}

// Name implements Finder.
func (f *Full16) Name() string { return "full-16" }

// Stats implements StatsReporter: Full16 drives the shared A* core, so
// its effort is the underlying searcher's.
func (f *Full16) Stats() SearchStats { return f.astar.Stats() }

// Find implements Finder.
func (f *Full16) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	found := false
	for _, u := range g.Corners(ctlTile) {
		for _, v := range g.Corners(tgtTile) {
			p, ok := f.astar.search(g, occ, u, v, f.scratch[:0])
			if !ok {
				continue
			}
			f.scratch = p // keep grown capacity for the next pair
			if !found || p.Len() < f.best.Len() {
				f.best = append(f.best[:0], p...)
				found = true
			}
		}
	}
	if !found {
		return nil, false
	}
	return append(buf[:0], f.best...), true
}

// --- stack-based DFS (AutoBraid) ---------------------------------------------

// StackDFS is the AutoBraid-style stack-based path-finder: an iterative
// DFS from the closest corner pair that commits to the first path found.
// Neighbor expansion prefers steps that reduce the Manhattan distance to
// the target, so paths are goal-directed but may detour around congestion
// instead of globally minimizing length — which is what inflates the
// baseline's ResUtil in Table 1.
type StackDFS struct {
	visited []bool
	stampV  []int
	epoch   int
	nbrBuf  []int
	frames  []dfsFrame
	stack   []int
	stats   SearchStats
}

// Stats implements StatsReporter.
func (s *StackDFS) Stats() SearchStats { return s.stats }

// dfsFrame is one partial-path node: backtracking restores state by
// walking parent indices.
type dfsFrame struct {
	vertex int
	parent int // index of parent frame, -1 at root
}

// Name implements Finder.
func (s *StackDFS) Name() string { return "stack-dfs" }

// Find implements Finder.
func (s *StackDFS) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if p, ok := s.dfs(g, occ, pr.u, pr.v, buf); ok {
			return p, true
		}
	}
	return nil, false
}

// visit reports whether v was already visited this epoch, initializing
// its state lazily.
func (s *StackDFS) visit(v int) bool {
	if s.stampV[v] != s.epoch {
		s.stampV[v] = s.epoch
		s.visited[v] = false
	}
	return s.visited[v]
}

// mark flags v as visited this epoch.
func (s *StackDFS) mark(v int) {
	s.stampV[v] = s.epoch
	s.visited[v] = true
}

// dfs runs one stack-based search between two free corners, writing the
// path into buf's storage.
func (s *StackDFS) dfs(g *grid.Grid, occ *Occupancy, src, dst int, buf Path) (Path, bool) {
	if src == dst {
		return append(buf[:0], src), true
	}
	n := g.NumVertices()
	if len(s.visited) < n {
		s.visited = make([]bool, n)
		s.stampV = make([]int, n)
	}
	s.stats.Searches++
	s.epoch++

	// Stack of partial paths; each frame stores the path so backtracking
	// restores state trivially. Frames expand goal-ward neighbors last so
	// they pop first.
	s.frames = append(s.frames[:0], dfsFrame{vertex: src, parent: -1})
	s.stack = append(s.stack[:0], 0)
	s.mark(src)
	for len(s.stack) > 0 {
		fi := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.stats.Pops++
		cur := s.frames[fi].vertex
		if cur == dst {
			// Reconstruct by walking parents.
			buf = buf[:0]
			for i := fi; i != -1; i = s.frames[i].parent {
				buf = append(buf, s.frames[i].vertex)
			}
			for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
				buf[i], buf[j] = buf[j], buf[i]
			}
			return buf, true
		}
		s.nbrBuf = g.VertexNeighbors(cur, s.nbrBuf[:0])
		// Two passes: push distance-increasing neighbors first, then
		// distance-decreasing ones, so the goal-ward step is explored
		// first (LIFO).
		for pass := 0; pass < 2; pass++ {
			for _, nb := range s.nbrBuf {
				goalward := g.VertexDist(nb, dst) < g.VertexDist(cur, dst)
				if (pass == 1) != goalward {
					continue
				}
				if s.visit(nb) || occ.VertexUsed(nb) || occ.EdgeUsed(g, cur, nb) {
					continue
				}
				s.mark(nb)
				s.frames = append(s.frames, dfsFrame{vertex: nb, parent: fi})
				s.stack = append(s.stack, len(s.frames)-1)
			}
		}
	}
	return nil, false
}
