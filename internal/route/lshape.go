package route

import "hilight/internal/grid"

// LShape is the cheapest possible braiding router: for each corner pair
// in ascending Manhattan distance it tries only the two axis-aligned
// two-bend paths (horizontal-then-vertical and vertical-then-horizontal)
// and takes the first that is free. No search state at all — but it
// defers gates whenever both bends are blocked, trading latency for
// runtime. It exists as the lower anchor of the path-finder ablation
// (L/Z-shaped braids are also the shape AutoBraid's figures draw).
type LShape struct{}

// Name implements Finder.
func (LShape) Name() string { return "l-shape" }

// Find implements Finder.
func (LShape) Find(g *grid.Grid, occ *Occupancy, ctlTile, tgtTile int, buf Path) (Path, bool) {
	pairs := cornerPairsByDistance(g, ctlTile, tgtTile)
	for _, pr := range pairs {
		if occ.VertexUsed(pr.u) || occ.VertexUsed(pr.v) {
			continue
		}
		if pr.u == pr.v {
			return append(buf[:0], pr.u), true
		}
		if p, ok := lWalk(g, occ, pr.u, pr.v, true, buf); ok {
			return p, true
		}
		if p, ok := lWalk(g, occ, pr.u, pr.v, false, buf); ok {
			return p, true
		}
	}
	return nil, false
}

// lWalk builds the two-bend path from src to dst into buf's storage,
// moving horizontally first when hFirst is set. It fails on the first
// occupied vertex, occupied channel, or unroutable (factory-interior)
// channel.
func lWalk(g *grid.Grid, occ *Occupancy, src, dst int, hFirst bool, buf Path) (Path, bool) {
	sx, sy := g.VertexXY(src)
	dx, dy := g.VertexXY(dst)
	p := append(buf[:0], src)
	cur := src
	step := func(nx, ny int) bool {
		next := g.VertexID(nx, ny)
		if occ.VertexUsed(next) || !g.EdgeRoutable(cur, next) || occ.EdgeUsed(g, cur, next) {
			return false
		}
		p = append(p, next)
		cur = next
		return true
	}
	// Horizontal legs are probed word-wide: the run's feasibility
	// (vertices + east channels + routability) is one HRunFree call, and
	// the vertices are then appended unchecked. The leg's starting vertex
	// is always known-free (the caller checked the corner, or walkY just
	// stepped onto the pivot), so including it in the probe only
	// re-confirms a fact — accept/reject and the path bytes are identical
	// to the scalar step loop.
	walkX := func(y int) bool {
		if sx == dx {
			return true
		}
		lo, hi := sx, dx
		if lo > hi {
			lo, hi = hi, lo
		}
		if !occ.HRunFree(y, lo, hi) {
			return false
		}
		for x := sx; x != dx; {
			if dx > x {
				x++
			} else {
				x--
			}
			p = append(p, g.VertexID(x, y))
		}
		cur = g.VertexID(dx, y)
		return true
	}
	walkY := func(x int) bool {
		for y := sy; y != dy; {
			if dy > y {
				y++
			} else {
				y--
			}
			if !step(x, y) {
				return false
			}
		}
		return true
	}
	if hFirst {
		if !walkX(sy) {
			return nil, false
		}
		sx = dx
		if !walkY(dx) {
			return nil, false
		}
	} else {
		if !walkY(sx) {
			return nil, false
		}
		sy = dy
		if !walkX(dy) {
			return nil, false
		}
	}
	return p, true
}
