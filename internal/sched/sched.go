// Package sched defines the output artifact of the mapping flow: a
// braiding schedule — cycles ("layers") of vertex- and channel-disjoint
// braiding paths — plus the validator that replays a schedule against the
// circuit and grid to prove it is executable, and the latency /
// path-length accounting the paper's metrics are computed from.
package sched

import (
	"fmt"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/route"
)

// Braid is one scheduled braiding operation. Gate is the index of the
// two-qubit gate in the source circuit, or -1 for a SWAP braid inserted by
// a layout-adjusting router (the AutoBraid baseline). CtlTile and TgtTile
// record where the operands lived when the braid executed. SwapTiles, when
// true, means the braid completes an inserted SWAP: after this cycle the
// two tiles exchange occupants.
type Braid struct {
	Gate      int
	CtlTile   int
	TgtTile   int
	Path      route.Path
	SwapTiles bool
}

// Layer is one braiding cycle: a set of concurrently executing braids.
type Layer []Braid

// Schedule is the complete mapping result for a circuit on a grid.
type Schedule struct {
	Grid    *grid.Grid
	Initial *grid.Layout // layout before the first cycle
	Layers  []Layer
}

// Latency returns the number of braiding cycles — the paper's latency
// metric (single-qubit gates are free).
func (s *Schedule) Latency() int { return len(s.Layers) }

// TotalPathLength returns the summed braiding path length over all
// braids — the numerator of the ResUtil metric (Eq. 1). Length counts the
// routing vertices a braid occupies (channels + 1): even a shared-corner
// braid between adjacent tiles consumes one lattice resource, which is
// what makes the paper's ResUtil non-zero on chain workloads like the 1D
// Ising model.
func (s *Schedule) TotalPathLength() int {
	total := 0
	for _, layer := range s.Layers {
		for _, b := range layer {
			total += len(b.Path)
		}
	}
	return total
}

// BraidCount returns the number of braids including inserted SWAP braids.
func (s *Schedule) BraidCount() int {
	n := 0
	for _, layer := range s.Layers {
		n += len(layer)
	}
	return n
}

// InsertedBraids returns the number of braids that did not come from the
// source circuit (SWAP-gate overhead of layout-adjusting routers).
func (s *Schedule) InsertedBraids() int {
	n := 0
	for _, layer := range s.Layers {
		for _, b := range layer {
			if b.Gate < 0 {
				n++
			}
		}
	}
	return n
}

// Validate replays the schedule against the circuit it claims to
// implement and returns the first inconsistency, or nil. It checks that:
//
//   - every braid's path is a valid simple lattice walk avoiding
//     defective vertices and channels;
//   - braids within a layer are vertex- and channel-disjoint;
//   - path endpoints are corners of the braid's recorded tiles, and those
//     tiles are usable (not reserved, not defective);
//   - recorded tiles match the evolving layout (replaying SWAP braids);
//   - every two-qubit gate of the circuit is executed exactly once;
//   - gates sharing a qubit execute in program order, in distinct cycles.
func (s *Schedule) Validate(c *circuit.Circuit) error {
	if s.Initial == nil {
		return fmt.Errorf("sched: schedule has no initial layout")
	}
	if err := s.Initial.Validate(s.Grid); err != nil {
		return fmt.Errorf("sched: initial layout: %w", err)
	}
	layout := s.Initial.Clone()

	// Program-order tracking: for each qubit, the next two-qubit gate (by
	// scanning the circuit) that must execute.
	type gateRef struct {
		index int
	}
	var order []gateRef
	nextPos := make([]int, c.NumQubits) // per-qubit cursor into order-of-that-qubit
	perQubit := make([][]int, c.NumQubits)
	for i, g := range c.Gates {
		if g.TwoQubit() {
			order = append(order, gateRef{i})
			perQubit[g.Q0] = append(perQubit[g.Q0], i)
			perQubit[g.Q1] = append(perQubit[g.Q1], i)
		}
	}
	executed := make(map[int]bool, len(order))

	occ := route.NewOccupancy(s.Grid)
	for li, layer := range s.Layers {
		occ.Reset()
		qubitBusy := make(map[int]bool)
		for bi, b := range layer {
			if err := b.Path.Validate(s.Grid); err != nil {
				return fmt.Errorf("sched: layer %d braid %d: %w", li, bi, err)
			}
			if !s.Grid.Usable(b.CtlTile) || !s.Grid.Usable(b.TgtTile) {
				return fmt.Errorf("sched: layer %d braid %d: anchored on unusable (reserved/defective) tile %d or %d",
					li, bi, b.CtlTile, b.TgtTile)
			}
			if occ.Conflicts(s.Grid, b.Path) {
				return fmt.Errorf("sched: layer %d braid %d: path intersects another braid", li, bi)
			}
			occ.Add(s.Grid, b.Path)
			if !isCorner(s.Grid, b.Path[0], b.CtlTile) {
				return fmt.Errorf("sched: layer %d braid %d: path start not a corner of tile %d", li, bi, b.CtlTile)
			}
			if !isCorner(s.Grid, b.Path[len(b.Path)-1], b.TgtTile) {
				return fmt.Errorf("sched: layer %d braid %d: path end not a corner of tile %d", li, bi, b.TgtTile)
			}
			switch {
			case b.Gate >= 0:
				if b.Gate >= len(c.Gates) || !c.Gates[b.Gate].TwoQubit() {
					return fmt.Errorf("sched: layer %d braid %d: gate %d is not a two-qubit gate", li, bi, b.Gate)
				}
				if executed[b.Gate] {
					return fmt.Errorf("sched: gate %d executed twice", b.Gate)
				}
				g := c.Gates[b.Gate]
				if qubitBusy[g.Q0] || qubitBusy[g.Q1] {
					return fmt.Errorf("sched: layer %d: qubit of gate %d braids twice in one cycle", li, b.Gate)
				}
				qubitBusy[g.Q0], qubitBusy[g.Q1] = true, true
				// Program order per qubit.
				for _, q := range [2]int{g.Q0, g.Q1} {
					lst := perQubit[q]
					if nextPos[q] >= len(lst) || lst[nextPos[q]] != b.Gate {
						return fmt.Errorf("sched: layer %d: gate %d out of program order on qubit %d", li, b.Gate, q)
					}
				}
				nextPos[g.Q0]++
				nextPos[g.Q1]++
				// Tiles match current layout.
				if layout.QubitTile[g.Q0] != b.CtlTile || layout.QubitTile[g.Q1] != b.TgtTile {
					return fmt.Errorf("sched: layer %d gate %d: recorded tiles (%d,%d) but layout has (%d,%d)",
						li, b.Gate, b.CtlTile, b.TgtTile, layout.QubitTile[g.Q0], layout.QubitTile[g.Q1])
				}
				executed[b.Gate] = true
			case b.SwapTiles:
				// Validity of the swap braid path is already checked.
			default:
				// A non-final braid of an inserted SWAP: nothing to track.
			}
		}
		// Apply layout changes after the whole cycle.
		for _, b := range layer {
			if b.Gate < 0 && b.SwapTiles {
				layout.Swap(b.CtlTile, b.TgtTile)
			}
		}
	}
	for _, ref := range order {
		if !executed[ref.index] {
			return fmt.Errorf("sched: gate %d never executed", ref.index)
		}
	}
	return nil
}

func isCorner(g *grid.Grid, v, tile int) bool {
	for _, c := range g.Corners(tile) {
		if c == v {
			return true
		}
	}
	return false
}
