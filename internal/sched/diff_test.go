package sched

import (
	"bytes"
	"strings"
	"testing"

	"hilight/internal/route"
)

func TestCompareIdenticalSchedules(t *testing.T) {
	_, _, s := buildFixture(t)
	d := Compare(s, s)
	if d.GateMoves != 0 || d.GateRepaths != 0 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Errorf("self-diff not clean: %+v", d)
	}
	if d.LatencyA != d.LatencyB || d.PathLenA != d.PathLenB {
		t.Error("metrics differ on self-diff")
	}
}

func TestCompareDetectsMovesAndRepaths(t *testing.T) {
	g, _, a := buildFixture(t)
	// b: gate 1 moved to its own later cycle; gate 0 re-routed through a
	// different corner of the same tiles in the same cycle.
	b := &Schedule{
		Grid:    g,
		Initial: a.Initial,
		Layers: []Layer{
			{{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 1)}}},
			{{Gate: 1, CtlTile: 2, TgtTile: 3, Path: route.Path{g.VertexID(1, 2)}}},
		},
	}
	d := Compare(a, b)
	if d.GateMoves != 1 {
		t.Errorf("moves = %d, want 1 (gate 1)", d.GateMoves)
	}
	if d.GateRepaths != 1 {
		t.Errorf("repaths = %d, want 1 (gate 0)", d.GateRepaths)
	}
	if d.LatencyB != 2 {
		t.Errorf("latency B = %d", d.LatencyB)
	}
}

func TestCompareCoverageMismatch(t *testing.T) {
	g, _, a := buildFixture(t)
	b := &Schedule{Grid: g, Initial: a.Initial, Layers: []Layer{
		{{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}}},
	}}
	d := Compare(a, b)
	if len(d.OnlyA) != 1 || d.OnlyA[0] != 1 {
		t.Errorf("OnlyA = %v, want [1]", d.OnlyA)
	}
	var buf bytes.Buffer
	d.Print(&buf, "a", "b")
	if !strings.Contains(buf.String(), "WARNING") {
		t.Error("coverage warning missing")
	}
}

func TestDiffPrintFormat(t *testing.T) {
	_, _, s := buildFixture(t)
	var buf bytes.Buffer
	Compare(s, s).Print(&buf, "before", "after")
	out := buf.String()
	for _, want := range []string{"latency", "path length", "before", "after", "rescheduled"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
