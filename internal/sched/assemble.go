package sched

import (
	"fmt"

	"hilight/internal/grid"
)

// MaxGridTiles bounds decoded grids so hostile input cannot force a huge
// allocation; the largest paper instance (QFT-500) uses 506 tiles. Both
// the JSON and the binary wire decoder share the bound.
const MaxGridTiles = 1 << 22

// Assemble validates the serialized parts of a schedule — grid shape,
// reserved tiles, defects, initial layout, layers — and builds the
// Schedule. It is the single decode path shared by the JSON and binary
// codecs, so both reject hostile input identically and reconstruct
// byte-identical schedules. The layers are attached as-is; path-level
// validity is Validate's job, exactly as for the original compile
// output.
func Assemble(gridW, gridH int, reserved []int, defects *grid.DefectMap, qubits int, initial []int, layers []Layer) (*Schedule, error) {
	if gridW <= 0 || gridH <= 0 || gridW > MaxGridTiles || gridH > MaxGridTiles || gridW*gridH > MaxGridTiles {
		return nil, fmt.Errorf("sched: bad grid dimensions %dx%d", gridW, gridH)
	}
	g := grid.New(gridW, gridH)
	for _, t := range reserved {
		if t < 0 || t >= g.Tiles() {
			return nil, fmt.Errorf("sched: reserved tile %d out of range", t)
		}
		g.ReserveTile(t)
	}
	if err := g.ApplyDefects(defects); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if qubits < 0 || len(initial) != qubits {
		return nil, fmt.Errorf("sched: initial layout has %d entries for %d qubits", len(initial), qubits)
	}
	if g.Capacity() < qubits {
		return nil, fmt.Errorf("sched: grid %s cannot hold %d qubits", g, qubits)
	}
	l := grid.NewLayout(qubits, g)
	for q, t := range initial {
		if t == -1 {
			continue
		}
		if t < 0 || t >= g.Tiles() {
			return nil, fmt.Errorf("sched: qubit %d on out-of-range tile %d", q, t)
		}
		if !g.Usable(t) {
			return nil, fmt.Errorf("sched: qubit %d on unusable (reserved/defective) tile %d", q, t)
		}
		if l.TileQubit[t] != -1 {
			return nil, fmt.Errorf("sched: tile %d assigned twice", t)
		}
		l.Assign(q, t, g)
	}
	return &Schedule{Grid: g, Initial: l, Layers: layers}, nil
}
