package sched

import (
	"testing"
)

// FuzzDecodeJSON checks that the schedule decoder never panics on hostile
// input and that everything it accepts survives an encode/decode round
// trip with the same shape. Run the seed corpus with `go test`; extend
// with `go test -fuzz=FuzzDecodeJSON`.
func FuzzDecodeJSON(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"version":1}`,
		`{"version":2,"grid_w":2,"grid_h":2,"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":0,"initial":[],"layers":[]}`,
		`{"version":1,"grid_w":3,"grid_h":2,"qubits":2,"initial":[0,5],"layers":[[{"gate":0,"ctl":0,"tgt":5,"path":[0,1,2,6]}]]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":1,"initial":[9]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":2,"initial":[0,0]}`,
		`{"version":1,"grid_w":-1,"grid_h":2,"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"reserved":[99],"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":0,"initial":[],"defects":{"tiles":[3]}}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":0,"initial":[],"defects":{"tiles":[99]}}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":0,"initial":[],"defects":{"channels":[[0,8]]}}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":1,"initial":[3],"defects":{"tiles":[3]}}`,
		`{"version":1,"grid_w":1000000,"grid_h":1000000,"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":-5,"initial":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeJSON(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := EncodeJSON(s)
		if err != nil {
			t.Fatalf("accepted schedule failed to encode: %v", err)
		}
		s2, err := DecodeJSON(out)
		if err != nil {
			t.Fatalf("encoder output undecodable: %v\n%s", err, out)
		}
		if len(s2.Layers) != len(s.Layers) {
			t.Fatalf("round trip changed layer count %d -> %d", len(s.Layers), len(s2.Layers))
		}
		for i := range s.Layers {
			if len(s2.Layers[i]) != len(s.Layers[i]) {
				t.Fatalf("round trip changed layer %d braid count %d -> %d", i, len(s.Layers[i]), len(s2.Layers[i]))
			}
		}
		if s2.Grid.W != s.Grid.W || s2.Grid.H != s.Grid.H {
			t.Fatalf("round trip changed grid %v -> %v", s.Grid, s2.Grid)
		}
	})
}
