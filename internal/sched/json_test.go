package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hilight/internal/grid"
	"hilight/internal/route"
)

func TestJSONRoundTrip(t *testing.T) {
	_, c, s := buildFixture(t)
	data, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(c); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
	if s2.Latency() != s.Latency() || s2.TotalPathLength() != s.TotalPathLength() {
		t.Error("metrics changed through round trip")
	}
	if s2.Grid.W != s.Grid.W || s2.Grid.H != s.Grid.H {
		t.Error("grid changed")
	}
}

func TestJSONRoundTripWithReservedAndSwaps(t *testing.T) {
	g := grid.New(3, 2)
	g.ReserveTile(5)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	shared := g.VertexID(1, 0)
	s := &Schedule{Grid: g, Initial: l, Layers: []Layer{
		{{Gate: -1, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}}},
		{{Gate: -1, CtlTile: 0, TgtTile: 1, Path: route.Path{shared}, SwapTiles: true}},
	}}
	data, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Grid.Reserved(5) {
		t.Error("reservation lost")
	}
	if !s2.Layers[1][0].SwapTiles {
		t.Error("swap flag lost")
	}
	if s2.InsertedBraids() != 2 {
		t.Errorf("inserted braids = %d", s2.InsertedBraids())
	}
}

func TestEncodeJSONRequiresCompleteSchedule(t *testing.T) {
	if _, err := EncodeJSON(&Schedule{}); err == nil {
		t.Error("empty schedule encoded")
	}
}

func TestDecodeJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":99,"grid_w":2,"grid_h":2,"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":0,"grid_h":2,"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":1,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":1,"initial":[99]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"reserved":[0],"qubits":1,"initial":[0]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"reserved":[77],"qubits":0,"initial":[]}`,
		`{"version":1,"grid_w":2,"grid_h":2,"qubits":2,"initial":[1,1]}`,
		`{"version":1,"grid_w":1,"grid_h":1,"qubits":5,"initial":[0,0,0,0,0]}`,
	}
	for i, src := range cases {
		if _, err := DecodeJSON([]byte(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestJSONOutputIsStable(t *testing.T) {
	_, _, s := buildFixture(t)
	a, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding not deterministic")
	}
	if !strings.Contains(string(a), `"version": 1`) {
		t.Error("version field missing")
	}
}

// Property: arbitrary valid schedules survive the JSON round trip
// braid-for-braid.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := grid.New(2+rng.Intn(4), 2+rng.Intn(4))
		n := 1 + rng.Intn(g.Tiles())
		l := grid.NewLayout(n, g)
		perm := rng.Perm(g.Tiles())
		for q := 0; q < n; q++ {
			l.Assign(q, perm[q], g)
		}
		s := &Schedule{Grid: g, Initial: l}
		for li := 0; li < rng.Intn(4); li++ {
			var layer Layer
			for bi := 0; bi < 1+rng.Intn(3); bi++ {
				v := rng.Intn(g.NumVertices())
				layer = append(layer, Braid{
					Gate: rng.Intn(10) - 1, CtlTile: rng.Intn(g.Tiles()),
					TgtTile: rng.Intn(g.Tiles()), Path: route.Path{v},
				})
			}
			s.Layers = append(s.Layers, layer)
		}
		data, err := EncodeJSON(s)
		if err != nil {
			return false
		}
		s2, err := DecodeJSON(data)
		if err != nil {
			return false
		}
		if len(s2.Layers) != len(s.Layers) {
			return false
		}
		for i := range s.Layers {
			if len(s2.Layers[i]) != len(s.Layers[i]) {
				return false
			}
			for j := range s.Layers[i] {
				a, b := s.Layers[i][j], s2.Layers[i][j]
				if a.Gate != b.Gate || a.CtlTile != b.CtlTile || a.TgtTile != b.TgtTile ||
					a.SwapTiles != b.SwapTiles || len(a.Path) != len(b.Path) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
