package sched

import (
	"fmt"
	"io"
	"slices"
	"text/tabwriter"
)

// Diff summarizes how two schedules for the same circuit differ — the
// regression-analysis view for anyone iterating on placement, ordering
// or path-finding heuristics.
type Diff struct {
	LatencyA, LatencyB   int
	PathLenA, PathLenB   int
	BraidsA, BraidsB     int
	InsertedA, InsertedB int
	// GateMoves counts circuit gates scheduled in a different cycle.
	GateMoves int
	// GateRepaths counts gates scheduled in the same cycle but along a
	// different path.
	GateRepaths int
	// OnlyA / OnlyB are circuit gates present in one schedule only
	// (normally empty for complete schedules of the same circuit).
	OnlyA, OnlyB []int
}

// Compare computes the Diff between two schedules.
func Compare(a, b *Schedule) Diff {
	d := Diff{
		LatencyA: a.Latency(), LatencyB: b.Latency(),
		PathLenA: a.TotalPathLength(), PathLenB: b.TotalPathLength(),
		BraidsA: a.BraidCount(), BraidsB: b.BraidCount(),
		InsertedA: a.InsertedBraids(), InsertedB: b.InsertedBraids(),
	}
	// Identical leading layers — the dominant case for session
	// recompiles, where the warm start replays the parent prefix
	// verbatim — contribute nothing to moves, repaths or coverage, so
	// skip them wholesale and index only the differing suffixes.
	// (Schedules where a gate appears more than once are invalid; their
	// per-gate diff is undefined either way.)
	skip := 0
	for skip < len(a.Layers) && skip < len(b.Layers) && layerEqual(a.Layers[skip], b.Layers[skip]) {
		skip++
	}
	type slot struct {
		cycle int
		path  []int
	}
	index := func(s *Schedule) map[int]slot {
		m := make(map[int]slot, 2*(len(s.Layers)-skip))
		for li := skip; li < len(s.Layers); li++ {
			for _, br := range s.Layers[li] {
				if br.Gate >= 0 {
					// Paths are borrowed, never mutated: keying on the slice
					// keeps Compare allocation-light on schedules with
					// thousands of layers (the session hot path).
					m[br.Gate] = slot{cycle: li, path: br.Path}
				}
			}
		}
		return m
	}
	ma, mb := index(a), index(b)
	for gate, sa := range ma {
		sb, ok := mb[gate]
		if !ok {
			d.OnlyA = append(d.OnlyA, gate)
			continue
		}
		switch {
		case sa.cycle != sb.cycle:
			d.GateMoves++
		case !slices.Equal(sa.path, sb.path):
			d.GateRepaths++
		}
	}
	for gate := range mb {
		if _, ok := ma[gate]; !ok {
			d.OnlyB = append(d.OnlyB, gate)
		}
	}
	return d
}

// layerEqual reports whether two layers schedule exactly the same braids
// along exactly the same paths.
func layerEqual(a, b Layer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Gate != b[i].Gate || a[i].CtlTile != b[i].CtlTile ||
			a[i].TgtTile != b[i].TgtTile || a[i].SwapTiles != b[i].SwapTiles ||
			!slices.Equal(a[i].Path, b[i].Path) {
			return false
		}
	}
	return true
}

// Print renders the diff as a two-column comparison.
func (d Diff) Print(w io.Writer, nameA, nameB string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\t%s\t%s\n", nameA, nameB)
	fmt.Fprintf(tw, "latency\t%d\t%d\n", d.LatencyA, d.LatencyB)
	fmt.Fprintf(tw, "path length\t%d\t%d\n", d.PathLenA, d.PathLenB)
	fmt.Fprintf(tw, "braids\t%d\t%d\n", d.BraidsA, d.BraidsB)
	fmt.Fprintf(tw, "inserted swaps\t%d\t%d\n", d.InsertedA, d.InsertedB)
	tw.Flush()
	fmt.Fprintf(w, "gates rescheduled to a different cycle: %d\n", d.GateMoves)
	fmt.Fprintf(w, "gates re-routed within the same cycle:  %d\n", d.GateRepaths)
	if len(d.OnlyA) > 0 || len(d.OnlyB) > 0 {
		fmt.Fprintf(w, "WARNING: gate coverage differs (only-%s: %v, only-%s: %v)\n",
			nameA, d.OnlyA, nameB, d.OnlyB)
	}
}
