package sched

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Diff summarizes how two schedules for the same circuit differ — the
// regression-analysis view for anyone iterating on placement, ordering
// or path-finding heuristics.
type Diff struct {
	LatencyA, LatencyB   int
	PathLenA, PathLenB   int
	BraidsA, BraidsB     int
	InsertedA, InsertedB int
	// GateMoves counts circuit gates scheduled in a different cycle.
	GateMoves int
	// GateRepaths counts gates scheduled in the same cycle but along a
	// different path.
	GateRepaths int
	// OnlyA / OnlyB are circuit gates present in one schedule only
	// (normally empty for complete schedules of the same circuit).
	OnlyA, OnlyB []int
}

// Compare computes the Diff between two schedules.
func Compare(a, b *Schedule) Diff {
	d := Diff{
		LatencyA: a.Latency(), LatencyB: b.Latency(),
		PathLenA: a.TotalPathLength(), PathLenB: b.TotalPathLength(),
		BraidsA: a.BraidCount(), BraidsB: b.BraidCount(),
		InsertedA: a.InsertedBraids(), InsertedB: b.InsertedBraids(),
	}
	type slot struct {
		cycle int
		path  string
	}
	index := func(s *Schedule) map[int]slot {
		m := map[int]slot{}
		for li, layer := range s.Layers {
			for _, br := range layer {
				if br.Gate >= 0 {
					m[br.Gate] = slot{cycle: li, path: pathKey(br)}
				}
			}
		}
		return m
	}
	ma, mb := index(a), index(b)
	for gate, sa := range ma {
		sb, ok := mb[gate]
		if !ok {
			d.OnlyA = append(d.OnlyA, gate)
			continue
		}
		switch {
		case sa.cycle != sb.cycle:
			d.GateMoves++
		case sa.path != sb.path:
			d.GateRepaths++
		}
	}
	for gate := range mb {
		if _, ok := ma[gate]; !ok {
			d.OnlyB = append(d.OnlyB, gate)
		}
	}
	return d
}

func pathKey(b Braid) string {
	var sb strings.Builder
	for i, v := range b.Path {
		if i > 0 {
			sb.WriteByte('-')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// Print renders the diff as a two-column comparison.
func (d Diff) Print(w io.Writer, nameA, nameB string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\t%s\t%s\n", nameA, nameB)
	fmt.Fprintf(tw, "latency\t%d\t%d\n", d.LatencyA, d.LatencyB)
	fmt.Fprintf(tw, "path length\t%d\t%d\n", d.PathLenA, d.PathLenB)
	fmt.Fprintf(tw, "braids\t%d\t%d\n", d.BraidsA, d.BraidsB)
	fmt.Fprintf(tw, "inserted swaps\t%d\t%d\n", d.InsertedA, d.InsertedB)
	tw.Flush()
	fmt.Fprintf(w, "gates rescheduled to a different cycle: %d\n", d.GateMoves)
	fmt.Fprintf(w, "gates re-routed within the same cycle:  %d\n", d.GateRepaths)
	if len(d.OnlyA) > 0 || len(d.OnlyB) > 0 {
		fmt.Fprintf(w, "WARNING: gate coverage differs (only-%s: %v, only-%s: %v)\n",
			nameA, d.OnlyA, nameB, d.OnlyB)
	}
}
