package sched

import (
	"strings"
	"testing"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/route"
)

// buildFixture returns a 2x2 grid, a 4-qubit circuit with two disjoint CX
// gates, an identity layout, and a one-layer schedule executing both.
func buildFixture(t *testing.T) (*grid.Grid, *circuit.Circuit, *Schedule) {
	t.Helper()
	g := grid.New(2, 2)
	c := circuit.New("fix", 4)
	c.Add2(circuit.CX, 0, 1) // tiles 0,1 (top row)
	c.Add2(circuit.CX, 2, 3) // tiles 2,3 (bottom row)
	l := grid.NewLayout(4, g)
	for q := 0; q < 4; q++ {
		l.Assign(q, q, g)
	}
	// Tiles 0,1 share corner (1,0)=vertex 1; tiles 2,3 share corner (1,2).
	s := &Schedule{
		Grid:    g,
		Initial: l,
		Layers: []Layer{{
			{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}},
			{Gate: 1, CtlTile: 2, TgtTile: 3, Path: route.Path{g.VertexID(1, 2)}},
		}},
	}
	return g, c, s
}

func TestValidateAcceptsGoodSchedule(t *testing.T) {
	_, c, s := buildFixture(t)
	if err := s.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Two shared-corner braids: one occupied vertex each.
	if s.Latency() != 1 || s.BraidCount() != 2 || s.TotalPathLength() != 2 {
		t.Errorf("metrics: latency=%d braids=%d len=%d", s.Latency(), s.BraidCount(), s.TotalPathLength())
	}
}

func TestValidateRejectsIntersection(t *testing.T) {
	g, c, s := buildFixture(t)
	// Make both braids use the same vertex.
	s.Layers[0][1].Path = route.Path{g.VertexID(1, 0)}
	s.Layers[0][1].CtlTile, s.Layers[0][1].TgtTile = 2, 3
	err := s.Validate(c)
	if err == nil {
		t.Fatal("intersecting braids accepted")
	}
	// The path endpoint also no longer matches tile corners, so accept
	// either failure; intersection check must fire when corners match.
	s2 := &Schedule{Grid: g, Initial: s.Initial, Layers: []Layer{{
		{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0), g.VertexID(1, 1)}},
		{Gate: 1, CtlTile: 2, TgtTile: 3, Path: route.Path{g.VertexID(1, 1), g.VertexID(1, 2)}},
	}}}
	if err := s2.Validate(c); err == nil || !strings.Contains(err.Error(), "intersect") {
		t.Fatalf("want intersection error, got %v", err)
	}
}

func TestValidateRejectsMissingGate(t *testing.T) {
	_, c, s := buildFixture(t)
	s.Layers[0] = s.Layers[0][:1]
	if err := s.Validate(c); err == nil || !strings.Contains(err.Error(), "never executed") {
		t.Fatalf("want never-executed error, got %v", err)
	}
}

func TestValidateRejectsDoubleExecution(t *testing.T) {
	g, c, s := buildFixture(t)
	s.Layers = append(s.Layers, Layer{
		{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}},
	})
	if err := s.Validate(c); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want executed-twice error, got %v", err)
	}
}

func TestValidateRejectsWrongTiles(t *testing.T) {
	g, c, s := buildFixture(t)
	s.Layers[0][0].CtlTile = 2
	s.Layers[0][0].Path = route.Path{g.VertexID(1, 1)} // corner of tiles 0..3
	if err := s.Validate(c); err == nil {
		t.Fatal("layout-mismatched tiles accepted")
	}
}

func TestValidateRejectsOutOfOrder(t *testing.T) {
	g := grid.New(2, 2)
	c := circuit.New("ord", 2)
	c.Add2(circuit.CX, 0, 1) // gate 0
	c.Add2(circuit.CX, 1, 0) // gate 1, must come after gate 0
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	s := &Schedule{Grid: g, Initial: l, Layers: []Layer{
		{{Gate: 1, CtlTile: 1, TgtTile: 0, Path: route.Path{g.VertexID(1, 0)}}},
		{{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}}},
	}}
	if err := s.Validate(c); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("want order error, got %v", err)
	}
}

func TestValidateRejectsSameQubitTwicePerCycle(t *testing.T) {
	g := grid.New(2, 2)
	c := circuit.New("busy", 3)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 0, 2)
	l := grid.NewLayout(3, g)
	for q := 0; q < 3; q++ {
		l.Assign(q, q, g)
	}
	s := &Schedule{Grid: g, Initial: l, Layers: []Layer{{
		{Gate: 0, CtlTile: 0, TgtTile: 1, Path: route.Path{g.VertexID(1, 0)}},
		{Gate: 1, CtlTile: 0, TgtTile: 2, Path: route.Path{g.VertexID(0, 1)}},
	}}}
	if err := s.Validate(c); err == nil {
		t.Fatal("qubit braided twice in one cycle accepted")
	}
}

func TestValidateReplaysSwapBraids(t *testing.T) {
	// Qubits 0,1 start on tiles 0,1; an inserted SWAP moves qubit 1 from
	// tile 1 to tile 3; then CX(0,1) executes on tiles (0,3).
	g := grid.New(2, 2)
	c := circuit.New("swap", 2)
	c.Add2(circuit.CX, 0, 1)
	l := grid.NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 1, g)
	sharedCorner := g.VertexID(2, 1) // corner shared by tiles 1 and 3
	s := &Schedule{Grid: g, Initial: l, Layers: []Layer{
		{{Gate: -1, CtlTile: 1, TgtTile: 3, Path: route.Path{sharedCorner}}},
		{{Gate: -1, CtlTile: 1, TgtTile: 3, Path: route.Path{sharedCorner}}},
		{{Gate: -1, CtlTile: 1, TgtTile: 3, Path: route.Path{sharedCorner}, SwapTiles: true}},
		{{Gate: 0, CtlTile: 0, TgtTile: 3, Path: route.Path{g.VertexID(1, 1)}}},
	}}
	if err := s.Validate(c); err != nil {
		t.Fatalf("Validate with swaps: %v", err)
	}
	if s.InsertedBraids() != 3 {
		t.Errorf("InsertedBraids = %d, want 3", s.InsertedBraids())
	}
	if s.Latency() != 4 {
		t.Errorf("Latency = %d, want 4", s.Latency())
	}
}

func TestValidateRequiresInitialLayout(t *testing.T) {
	_, c, s := buildFixture(t)
	s.Initial = nil
	if err := s.Validate(c); err == nil {
		t.Fatal("nil initial layout accepted")
	}
}
