package sched

import (
	"encoding/json"
	"fmt"

	"hilight/internal/grid"
	"hilight/internal/route"
)

// jsonSchedule is the stable on-disk form of a Schedule: enough to
// reconstruct the grid (dimensions plus reserved tiles), the initial
// layout, and every braid. The format is versioned so later extensions
// stay decodable.
type jsonSchedule struct {
	Version  int             `json:"version"`
	GridW    int             `json:"grid_w"`
	GridH    int             `json:"grid_h"`
	Reserved []int           `json:"reserved,omitempty"`
	Defects  *grid.DefectMap `json:"defects,omitempty"`
	Qubits   int             `json:"qubits"`
	Initial  []int           `json:"initial"` // qubit -> tile
	Layers   [][]jsonBraid   `json:"layers"`
}

type jsonBraid struct {
	Gate      int   `json:"gate"`
	CtlTile   int   `json:"ctl"`
	TgtTile   int   `json:"tgt"`
	Path      []int `json:"path"`
	SwapTiles bool  `json:"swap,omitempty"`
}

const jsonVersion = 1

// EncodeJSON serializes the schedule.
func EncodeJSON(s *Schedule) ([]byte, error) {
	if s.Grid == nil || s.Initial == nil {
		return nil, fmt.Errorf("sched: schedule missing grid or initial layout")
	}
	js := jsonSchedule{
		Version: jsonVersion,
		GridW:   s.Grid.W,
		GridH:   s.Grid.H,
		Qubits:  len(s.Initial.QubitTile),
		Initial: append([]int(nil), s.Initial.QubitTile...),
	}
	for t := 0; t < s.Grid.Tiles(); t++ {
		if s.Grid.Reserved(t) {
			js.Reserved = append(js.Reserved, t)
		}
	}
	if d := s.Grid.Defects(); !d.Empty() {
		js.Defects = d
	}
	for _, layer := range s.Layers {
		jl := make([]jsonBraid, len(layer))
		for i, b := range layer {
			jl[i] = jsonBraid{
				Gate: b.Gate, CtlTile: b.CtlTile, TgtTile: b.TgtTile,
				Path: append([]int(nil), b.Path...), SwapTiles: b.SwapTiles,
			}
		}
		js.Layers = append(js.Layers, jl)
	}
	return json.MarshalIndent(js, "", "  ")
}

// DecodeJSON reconstructs a schedule (including its grid and layout)
// from EncodeJSON output. The result still needs Validate against the
// matching circuit before being trusted.
func DecodeJSON(data []byte) (*Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if js.Version != jsonVersion {
		return nil, fmt.Errorf("sched: unsupported schedule version %d", js.Version)
	}
	// maxGridTiles bounds decoded grids so hostile input cannot force a
	// huge allocation; the largest paper instance (QFT-500) uses 506 tiles.
	const maxGridTiles = 1 << 22
	if js.GridW <= 0 || js.GridH <= 0 || js.GridW > maxGridTiles || js.GridH > maxGridTiles || js.GridW*js.GridH > maxGridTiles {
		return nil, fmt.Errorf("sched: bad grid dimensions %dx%d", js.GridW, js.GridH)
	}
	g := grid.New(js.GridW, js.GridH)
	for _, t := range js.Reserved {
		if t < 0 || t >= g.Tiles() {
			return nil, fmt.Errorf("sched: reserved tile %d out of range", t)
		}
		g.ReserveTile(t)
	}
	if err := g.ApplyDefects(js.Defects); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if js.Qubits < 0 || len(js.Initial) != js.Qubits {
		return nil, fmt.Errorf("sched: initial layout has %d entries for %d qubits", len(js.Initial), js.Qubits)
	}
	if g.Capacity() < js.Qubits {
		return nil, fmt.Errorf("sched: grid %s cannot hold %d qubits", g, js.Qubits)
	}
	l := grid.NewLayout(js.Qubits, g)
	for q, t := range js.Initial {
		if t == -1 {
			continue
		}
		if t < 0 || t >= g.Tiles() {
			return nil, fmt.Errorf("sched: qubit %d on out-of-range tile %d", q, t)
		}
		if !g.Usable(t) {
			return nil, fmt.Errorf("sched: qubit %d on unusable (reserved/defective) tile %d", q, t)
		}
		if l.TileQubit[t] != -1 {
			return nil, fmt.Errorf("sched: tile %d assigned twice", t)
		}
		l.Assign(q, t, g)
	}
	s := &Schedule{Grid: g, Initial: l}
	for _, jl := range js.Layers {
		layer := make(Layer, len(jl))
		for i, jb := range jl {
			layer[i] = Braid{
				Gate: jb.Gate, CtlTile: jb.CtlTile, TgtTile: jb.TgtTile,
				Path: route.Path(jb.Path), SwapTiles: jb.SwapTiles,
			}
		}
		s.Layers = append(s.Layers, layer)
	}
	return s, nil
}
