package sched

import (
	"encoding/json"
	"fmt"

	"hilight/internal/grid"
	"hilight/internal/route"
)

// jsonSchedule is the stable on-disk form of a Schedule: enough to
// reconstruct the grid (dimensions plus reserved tiles), the initial
// layout, and every braid. The format is versioned so later extensions
// stay decodable.
type jsonSchedule struct {
	Version  int             `json:"version"`
	GridW    int             `json:"grid_w"`
	GridH    int             `json:"grid_h"`
	Reserved []int           `json:"reserved,omitempty"`
	Defects  *grid.DefectMap `json:"defects,omitempty"`
	Qubits   int             `json:"qubits"`
	Initial  []int           `json:"initial"` // qubit -> tile
	Layers   [][]jsonBraid   `json:"layers"`
}

type jsonBraid struct {
	Gate      int   `json:"gate"`
	CtlTile   int   `json:"ctl"`
	TgtTile   int   `json:"tgt"`
	Path      []int `json:"path"`
	SwapTiles bool  `json:"swap,omitempty"`
}

const jsonVersion = 1

// EncodeJSON serializes the schedule.
func EncodeJSON(s *Schedule) ([]byte, error) {
	if s.Grid == nil || s.Initial == nil {
		return nil, fmt.Errorf("sched: schedule missing grid or initial layout")
	}
	js := jsonSchedule{
		Version: jsonVersion,
		GridW:   s.Grid.W,
		GridH:   s.Grid.H,
		Qubits:  len(s.Initial.QubitTile),
		Initial: append([]int(nil), s.Initial.QubitTile...),
	}
	for t := 0; t < s.Grid.Tiles(); t++ {
		if s.Grid.Reserved(t) {
			js.Reserved = append(js.Reserved, t)
		}
	}
	if d := s.Grid.Defects(); !d.Empty() {
		js.Defects = d
	}
	for _, layer := range s.Layers {
		jl := make([]jsonBraid, len(layer))
		for i, b := range layer {
			jl[i] = jsonBraid{
				Gate: b.Gate, CtlTile: b.CtlTile, TgtTile: b.TgtTile,
				Path: append([]int(nil), b.Path...), SwapTiles: b.SwapTiles,
			}
		}
		js.Layers = append(js.Layers, jl)
	}
	return json.MarshalIndent(js, "", "  ")
}

// DecodeJSON reconstructs a schedule (including its grid and layout)
// from EncodeJSON output. The result still needs Validate against the
// matching circuit before being trusted.
func DecodeJSON(data []byte) (*Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	if js.Version != jsonVersion {
		return nil, fmt.Errorf("sched: unsupported schedule version %d", js.Version)
	}
	var layers []Layer
	for _, jl := range js.Layers {
		layer := make(Layer, len(jl))
		for i, jb := range jl {
			layer[i] = Braid{
				Gate: jb.Gate, CtlTile: jb.CtlTile, TgtTile: jb.TgtTile,
				Path: route.Path(jb.Path), SwapTiles: jb.SwapTiles,
			}
		}
		layers = append(layers, layer)
	}
	return Assemble(js.GridW, js.GridH, js.Reserved, js.Defects, js.Qubits, js.Initial, layers)
}
