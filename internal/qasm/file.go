package qasm

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"hilight/internal/circuit"
)

// maxIncludeDepth bounds nested includes; real benchmark suites nest one
// or two levels, so hitting this means an include cycle.
const maxIncludeDepth = 16

// standard library includes that the parser's built-in gate set already
// covers; they are skipped rather than resolved from disk.
var builtinIncludes = map[string]bool{
	"qelib1.inc":   true,
	"stdgates.inc": true,
}

var includeRe = regexp.MustCompile(`(?m)^\s*include\s+"([^"]+)"\s*;`)

// ParseFile reads an OpenQASM 2.0 file and parses it with include
// resolution: `include "other.qasm";` splices the referenced file
// (relative to the including file's directory) into the source, except
// for the standard-library includes the parser implements natively.
// Downloaded benchmark suites that split gate definitions into shared
// headers parse directly this way.
func ParseFile(path string) (*circuit.Circuit, error) {
	src, err := resolveIncludes(path, 0)
	if err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Parse(name, src)
}

func resolveIncludes(path string, depth int) (string, error) {
	if depth > maxIncludeDepth {
		return "", fmt.Errorf("include nesting exceeds %d (cycle through %q?)", maxIncludeDepth, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	src := string(data)
	dir := filepath.Dir(path)
	var firstErr error
	out := includeRe.ReplaceAllStringFunc(src, func(stmt string) string {
		if firstErr != nil {
			return stmt
		}
		name := includeRe.FindStringSubmatch(stmt)[1]
		if builtinIncludes[filepath.Base(name)] {
			// Keep the statement: Parse skips library includes itself.
			return stmt
		}
		sub, err := resolveIncludes(filepath.Join(dir, name), depth+1)
		if err != nil {
			firstErr = fmt.Errorf("include %q: %w", name, err)
			return stmt
		}
		// Strip any version header from the spliced file; only the root
		// file may carry one.
		sub = versionRe.ReplaceAllString(sub, "")
		return "\n// begin include " + name + "\n" + sub + "\n// end include " + name + "\n"
	})
	if firstErr != nil {
		return "", firstErr
	}
	return out, nil
}

var versionRe = regexp.MustCompile(`(?m)^\s*OPENQASM\s+[0-9.]+\s*;`)
