package qasm_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/qasm"
)

// TestCorpusEndToEnd parses every testdata file, validates the circuit,
// round-trips it through the writer, and maps it end to end — the full
// pipeline a user feeds real benchmark files through.
func TestCorpusEndToEnd(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus too small: %v", files)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(f), ".qasm")
			c, err := qasm.Parse(name, string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if c.NumQubits == 0 || c.Len() == 0 {
				t.Fatal("degenerate circuit")
			}
			// Writer round trip preserves the gate stream.
			c2, err := qasm.Parse(name, qasm.Format(c))
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if c2.Len() != c.Len() {
				t.Fatalf("round trip changed gate count %d -> %d", c.Len(), c2.Len())
			}
			// Full mapping flow.
			res, err := core.Run(c, grid.Rect(c.NumQubits), core.MustMethod("hilight-map"), core.RunOptions{})
			if err != nil {
				t.Fatalf("map: %v", err)
			}
			if err := res.Schedule.Validate(res.Circuit); err != nil {
				t.Fatalf("schedule: %v", err)
			}
		})
	}
}

func TestCorpusAdderStructure(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "adder4.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := qasm.Parse("adder4", string(data))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 10 {
		t.Errorf("qubits = %d, want 10 (4+4+1+1)", c.NumQubits)
	}
	// 8 majority/unmaj macros × (2 CX + 6 CX from ccx) + 1 carry CX = 65.
	if got := c.CXCount(); got != 8*8+1 {
		t.Errorf("CX count = %d, want %d", got, 8*8+1)
	}
}
