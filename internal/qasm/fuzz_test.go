package qasm

import (
	"testing"

	"hilight/internal/circuit"
)

// FuzzParse checks that the parser never panics and that everything it
// accepts is a valid circuit whose writer output re-parses. Run the seed
// corpus with `go test`; extend with `go test -fuzz=FuzzParse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`OPENQASM 2.0;`,
		`qreg q[3]; h q; cx q[0],q[1];`,
		`qreg a[2]; qreg b[2]; cx a,b;`,
		`qreg q[2]; gate foo(x) a,b { rz(x/2) a; cx a,b; } foo(pi) q[0],q[1];`,
		`qreg q[3]; ccx q[0],q[1],q[2];`,
		`qreg q[1]; rz(2*pi-1/4) q[0];`,
		`qreg q[2]; creg c[2]; measure q -> c;`,
		`qreg q[1]; barrier q; reset q[0];`,
		`// comment only`,
		`qreg q[1]; u3(0.1,0.2,0.3) q[0];`,
		`qreg q[2]; swap q[0],q[1];`,
		`qreg q[9999999999];`,
		`qreg q[2]; cx q[0],q[0];`,
		`gate rec a { rec a; } qreg q[1]; rec q[0];`,
		"qreg q[1]; rz(\x00) q[0];",
		`qreg q[1]; h q[0]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted invalid circuit: %v", err)
		}
		// Writer output must re-parse to the same gate count.
		c2, err := Parse("fuzz2", Format(c))
		if err != nil {
			t.Fatalf("writer output unparseable: %v\n%s", err, Format(c))
		}
		if c2.Len() != c.Len() {
			t.Fatalf("round trip changed gate count %d -> %d", c.Len(), c2.Len())
		}
	})
}

// FuzzCompressSemantics feeds random byte-derived circuits through the
// QCO compression path via small deterministic decoding, checking gate
// multiset shrinkage only (semantics are covered by the quick tests; the
// fuzzer hunts for panics and invalid outputs).
func FuzzGateStream(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 5
		c := circuit.New("fuzz", n)
		for i := 0; i+1 < len(data); i += 2 {
			a := int(data[i]) % n
			b := int(data[i+1]) % n
			switch data[i] % 3 {
			case 0:
				c.Add1(circuit.H, a)
			case 1:
				c.Add1(circuit.T, a)
			default:
				if a != b {
					c.Add2(circuit.CX, a, b)
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		out := Format(c)
		c2, err := Parse("fuzz", out)
		if err != nil || c2.Len() != c.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
