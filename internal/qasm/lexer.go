// Package qasm implements a hand-written OpenQASM 2.0 reader and writer.
//
// The reader supports the subset used by the RevLib / ScaffCC / Qiskit
// benchmark suites the paper evaluates: version header, includes (which are
// recorded but not resolved — qelib1 gates are built in), qreg/creg
// declarations, custom gate definitions (expanded as macros), standard
// gate applications with constant parameter expressions, cx, measure,
// reset, and barrier. Classical control ("if (...)") is rejected with a
// clear error since braiding schedules are static.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLBrace   // {
	tokRBrace   // }
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokSemi     // ;
	tokComma    // ,
	tokArrow    // ->
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokEquals // ==
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokArrow:
		return "'->'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokEquals:
		return "'=='"
	}
	return "unknown"
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token, skipping whitespace and // comments.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		ch := lx.src[lx.pos]
		switch {
		case ch == '\n':
			lx.line++
			lx.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			lx.pos++
		case ch == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return lx.scan()
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

func (lx *lexer) scan() (token, error) {
	start := lx.pos
	ch := lx.src[lx.pos]
	mk := func(k tokenKind, n int) (token, error) {
		lx.pos += n
		return token{kind: k, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	switch ch {
	case '{':
		return mk(tokLBrace, 1)
	case '}':
		return mk(tokRBrace, 1)
	case '(':
		return mk(tokLParen, 1)
	case ')':
		return mk(tokRParen, 1)
	case '[':
		return mk(tokLBracket, 1)
	case ']':
		return mk(tokRBracket, 1)
	case ';':
		return mk(tokSemi, 1)
	case ',':
		return mk(tokComma, 1)
	case '+':
		return mk(tokPlus, 1)
	case '*':
		return mk(tokStar, 1)
	case '/':
		return mk(tokSlash, 1)
	case '^':
		return mk(tokCaret, 1)
	case '-':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '>' {
			return mk(tokArrow, 2)
		}
		return mk(tokMinus, 1)
	case '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			return mk(tokEquals, 2)
		}
		return token{}, fmt.Errorf("line %d: stray '='", lx.line)
	case '"':
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			if lx.src[lx.pos] == '\n' {
				return token{}, fmt.Errorf("line %d: unterminated string", lx.line)
			}
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("line %d: unterminated string", lx.line)
		}
		lx.pos++
		return token{kind: tokString, text: lx.src[start+1 : lx.pos-1], line: lx.line}, nil
	}
	if isDigit(ch) || ch == '.' {
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.' ||
			lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E' ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && lx.pos > start &&
				(lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	if isIdentStart(rune(ch)) {
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", lx.line, ch)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// tokenize runs the lexer to completion; used by the parser which wants
// lookahead over a token slice.
func tokenize(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		tk, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tk)
		if tk.kind == tokEOF {
			return toks, nil
		}
	}
}

// OpenQASM keywords that cannot be used as gate or register names.
var keywords = map[string]bool{
	"OPENQASM": true, "include": true, "qreg": true, "creg": true,
	"gate": true, "opaque": true, "measure": true, "reset": true,
	"barrier": true, "if": true,
}

func isKeyword(s string) bool { return keywords[s] || strings.EqualFold(s, "openqasm") }
