package qasm

import (
	"strings"
	"testing"
)

// TestParserErrorPaths drives the less-travelled branches: malformed
// gate definitions, bad expressions, lexer corner cases, and statement
// forms the subset rejects.
func TestParserErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unterminated gate body", `qreg q[1]; gate foo a { h a;`, "unterminated"},
		{"unknown body arg", `qreg q[1]; gate foo a { h b; }`, "unknown qubit argument"},
		{"arity mismatch macro", `qreg q[2]; gate foo a,b { cx a,b; } foo q[0];`, "wants 2 qubits"},
		{"param mismatch macro", `qreg q[1]; gate foo(x) a { rz(x) a; } foo q[0];`, "wants 1 params"},
		{"recursive macro", `qreg q[1]; gate foo a { foo a; } foo q[0];`, "too deep"},
		{"bad version header", `OPENQASM two;`, "expected number"},
		{"missing version semi", `OPENQASM 2.0 qreg q[1];`, "expected ';'"},
		{"include missing string", `include qelib1;`, "expected string"},
		{"unterminated string", "include \"qelib1\nqreg q[1];", "unterminated string"},
		{"stray equals", `qreg q[1]; h = q[0];`, "stray '='"},
		{"stray char", `qreg q[1]; h $ q[0];`, "unexpected character"},
		{"measure missing arrow", `qreg q[1]; creg c[1]; measure q[0] c[0];`, "expected '->'"},
		{"measure bad creg index", `qreg q[1]; creg c[1]; measure q[0] -> c[5];`, "out of range"},
		{"measure size mismatch", `qreg q[2]; creg c[3]; measure q -> c;`, "mismatch"},
		{"reset unknown reg", `reset nope[0];`, "unknown qreg"},
		{"unclosed paren expr", `qreg q[1]; rz(1+ q[0];`, "unknown identifier"},
		{"sqrt negative", `qreg q[1]; rz(sqrt(0-4)) q[0];`, "sqrt of negative"},
		{"ln nonpositive", `qreg q[1]; rz(ln(0)) q[0];`, "ln of non-positive"},
		{"unknown function", `qreg q[1]; rz(frob(1)) q[0];`, "unknown function"},
		{"barrier missing semi", `qreg q[1]; barrier q`, "missing ';'"},
		{"register index non-number", `qreg q[x];`, "expected number"},
		{"u2 wrong params", `qreg q[1]; u2(1) q[0];`, "wants 2 params"},
		{"u3 wrong params", `qreg q[1]; u3(1,2) q[0];`, "wants 3 params"},
		{"ccx arity", `qreg q[3]; ccx q[0],q[1];`, "wants 3 qubits"},
		{"repeated operand", `qreg q[3]; ccx q[0],q[1],q[1];`, "repeated qubit"},
		{"gate body missing semi", `qreg q[2]; gate foo a,b { cx a,b }`, "expected ';'"},
	}
	for _, tc := range cases {
		_, err := Parse("t", tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestParserAcceptsEdgeForms drives accepting paths that the main tests
// skip: scientific-notation numbers, nested parens, unary plus, empty
// programs, and U as a u3 alias.
func TestParserAcceptsEdgeForms(t *testing.T) {
	cases := []string{
		``,
		`// only a comment`,
		`OPENQASM 2.0;`,
		`qreg q[1]; rz(1e-3) q[0];`,
		`qreg q[1]; rz(1.5E+2) q[0];`,
		`qreg q[1]; rz(+(2)) q[0];`,
		`qreg q[1]; rz(((1))) q[0];`,
		`qreg q[1]; U(0.1,0.2,0.3) q[0];`,
		`qreg q[1]; rz(cos(0)+tan(0)+exp(0)) q[0];`,
		`qreg q[2]; CX q[0],q[1];`,
		`qreg q[2]; cnot q[0],q[1];`,
		`qreg q[2]; cp(0.5) q[0],q[1];`,
		`qreg q[2]; cu3(1,2,3) q[0],q[1];`,
		`qreg q[2]; gate noop a { } noop q[0];`,
	}
	for i, src := range cases {
		c, err := Parse("t", src)
		if err != nil {
			t.Errorf("case %d rejected: %v\n%s", i, err, src)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("case %d invalid: %v", i, err)
		}
	}
}
