// 4-bit ripple-carry adder skeleton in the RevLib style: custom gate
// definitions, Toffolis, broadcast operands.
OPENQASM 2.0;
include "qelib1.inc";
qreg a[4];
qreg b[4];
qreg cin[1];
qreg cout[1];
creg result[4];

gate majority x,y,z {
  cx z,y;
  cx z,x;
  ccx x,y,z;
}

gate unmaj x,y,z {
  ccx x,y,z;
  cx z,x;
  cx x,y;
}

x a[0];
x b;
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
majority a[1],b[2],a[2];
majority a[2],b[3],a[3];
cx a[3],cout[0];
unmaj a[2],b[3],a[3];
unmaj a[1],b[2],a[2];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b -> result;
