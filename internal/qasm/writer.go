package qasm

import (
	"fmt"
	"io"
	"strings"

	"hilight/internal/circuit"
)

// Write renders the circuit as OpenQASM 2.0 with a single register q of
// the circuit's width. Measure gates become `measure q[i] -> c[i];` with a
// creg sized to the qubit count. The output parses back via Parse into an
// equivalent circuit (CX structure preserved exactly).
func Write(w io.Writer, c *circuit.Circuit) error {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if c.NumQubits > 0 {
		fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	}
	hasMeasure := false
	for _, g := range c.Gates {
		if g.Kind == circuit.Measure {
			hasMeasure = true
			break
		}
	}
	if hasMeasure {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits)
	}
	for _, g := range c.Gates {
		switch {
		case g.Kind == circuit.Measure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Q0, g.Q0)
		case g.Kind == circuit.Reset:
			fmt.Fprintf(&b, "reset q[%d];\n", g.Q0)
		case g.TwoQubit():
			fmt.Fprintf(&b, "%s q[%d],q[%d];\n", g.Kind, g.Q0, g.Q1)
		case g.Kind.Parameterized():
			switch g.Kind {
			case circuit.U2:
				fmt.Fprintf(&b, "u2(%.17g,%.17g) q[%d];\n", g.Params[0], g.Params[1], g.Q0)
			case circuit.U3:
				fmt.Fprintf(&b, "u3(%.17g,%.17g,%.17g) q[%d];\n", g.Params[0], g.Params[1], g.Params[2], g.Q0)
			default:
				fmt.Fprintf(&b, "%s(%.17g) q[%d];\n", g.Kind, g.Params[0], g.Q0)
			}
		default:
			fmt.Fprintf(&b, "%s q[%d];\n", g.Kind, g.Q0)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Format returns the circuit's OpenQASM 2.0 source as a string.
func Format(c *circuit.Circuit) string {
	var b strings.Builder
	// strings.Builder's Write never fails.
	_ = Write(&b, c)
	return b.String()
}
