package qasm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFileResolvesIncludes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "gates.inc", `
gate bell a,b { h a; cx a,b; }
`)
	main := writeFile(t, dir, "main.qasm", `
OPENQASM 2.0;
include "qelib1.inc";
include "gates.inc";
qreg q[2];
bell q[0],q[1];
`)
	c, err := ParseFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("gates = %d, want 2", c.Len())
	}
	if c.Name != "main" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestParseFileNestedIncludes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "inner.inc", `gate pair a,b { cx a,b; }`)
	writeFile(t, dir, "outer.inc", `
OPENQASM 2.0;
include "inner.inc";
gate chain a,b,c { pair a,b; pair b,c; }
`)
	main := writeFile(t, dir, "main.qasm", `
OPENQASM 2.0;
include "outer.inc";
qreg q[3];
chain q[0],q[1],q[2];
`)
	c, err := ParseFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if c.CXCount() != 2 {
		t.Fatalf("CX = %d, want 2", c.CXCount())
	}
}

func TestParseFileIncludeCycle(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.inc", `include "b.inc";`)
	writeFile(t, dir, "b.inc", `include "a.inc";`)
	main := writeFile(t, dir, "main.qasm", `
include "a.inc";
qreg q[1];
`)
	if _, err := ParseFile(main); err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("include cycle accepted: %v", err)
	}
}

func TestParseFileMissingInclude(t *testing.T) {
	dir := t.TempDir()
	main := writeFile(t, dir, "main.qasm", `
include "nope.inc";
qreg q[1];
`)
	if _, err := ParseFile(main); err == nil {
		t.Fatal("missing include accepted")
	}
	if _, err := ParseFile(filepath.Join(dir, "absent.qasm")); err == nil {
		t.Fatal("missing root file accepted")
	}
}

func TestParseFileCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.qasm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("corpus missing: %v", err)
	}
	for _, f := range files {
		if _, err := ParseFile(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
