package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
)

func parseOK(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	c, err := Parse("test", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("parsed circuit invalid: %v", err)
	}
	return c
}

func TestParseBasic(t *testing.T) {
	c := parseOK(t, `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
measure q[0] -> c[0];
`)
	if c.NumQubits != 3 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if c.Len() != 4 {
		t.Fatalf("gates = %d: %v", c.Len(), c.Gates)
	}
	if c.Gates[0].Kind != circuit.H || c.Gates[1].Kind != circuit.CX {
		t.Error("gate kinds wrong")
	}
	if got := c.Gates[2].Params[0]; math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("rz param = %g", got)
	}
	if c.Gates[3].Kind != circuit.Measure {
		t.Error("measure missing")
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	c := parseOK(t, `
qreg a[2];
qreg b[3];
cx a[1],b[0];
`)
	if c.NumQubits != 5 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	g := c.Gates[0]
	if g.Q0 != 1 || g.Q1 != 2 {
		t.Errorf("flattening wrong: %v", g)
	}
}

func TestParseBroadcast(t *testing.T) {
	c := parseOK(t, `
qreg q[4];
h q;
`)
	if c.Len() != 4 {
		t.Fatalf("broadcast h emitted %d gates", c.Len())
	}
	c2 := parseOK(t, `
qreg a[3];
qreg b[3];
cx a,b;
`)
	if c2.Len() != 3 {
		t.Fatalf("register cx broadcast = %d gates", c2.Len())
	}
	for i, g := range c2.Gates {
		if g.Q0 != i || g.Q1 != i+3 {
			t.Errorf("broadcast pair %d = %v", i, g)
		}
	}
	// Scalar against register: repeat the scalar.
	c3 := parseOK(t, `
qreg a[1];
qreg b[3];
cx a[0],b;
`)
	if c3.Len() != 3 {
		t.Fatalf("scalar/register broadcast = %d gates", c3.Len())
	}
}

func TestParseBroadcastMismatch(t *testing.T) {
	_, err := Parse("t", `
qreg a[2];
qreg b[3];
cx a,b;
`)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("want size-mismatch error, got %v", err)
	}
}

func TestParseGateDefinitionExpansion(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
gate bell a,b { h a; cx a,b; }
bell q[0],q[1];
`)
	if c.Len() != 2 || c.Gates[0].Kind != circuit.H || c.Gates[1].Kind != circuit.CX {
		t.Fatalf("macro expansion wrong: %v", c.Gates)
	}
}

func TestParseParameterizedMacro(t *testing.T) {
	c := parseOK(t, `
qreg q[1];
gate wiggle(theta) a { rz(theta/2) a; rz(-theta/2) a; }
wiggle(pi) q[0];
`)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := c.Gates[0].Params[0]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("param = %g", got)
	}
	if got := c.Gates[1].Params[0]; math.Abs(got+math.Pi/2) > 1e-12 {
		t.Errorf("param = %g", got)
	}
}

func TestParseNestedMacros(t *testing.T) {
	c := parseOK(t, `
qreg q[3];
gate pair a,b { cx a,b; }
gate chain a,b,c { pair a,b; pair b,c; }
chain q[0],q[1],q[2];
`)
	if c.Len() != 2 || c.Gates[0].Q1 != 1 || c.Gates[1].Q0 != 1 {
		t.Fatalf("nested macro wrong: %v", c.Gates)
	}
}

func TestParseCCXExpansion(t *testing.T) {
	c := parseOK(t, `
qreg q[3];
ccx q[0],q[1],q[2];
`)
	if got := c.CXCount(); got != 6 {
		t.Fatalf("ccx CX count = %d, want 6", got)
	}
	if c.Len() != 15 {
		t.Fatalf("ccx total gates = %d, want 15", c.Len())
	}
}

func TestParseOpaqueRejectedOnUse(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
opaque mystery a,b;
cx q[0],q[1];
`)
	if c.Len() != 1 {
		t.Fatal("opaque decl should not emit gates")
	}
	_, err := Parse("t", `
qreg q[2];
opaque mystery a,b;
mystery q[0],q[1];
`)
	if err == nil || !strings.Contains(err.Error(), "opaque") {
		t.Fatalf("want opaque-application error, got %v", err)
	}
}

func TestParseIfRejected(t *testing.T) {
	_, err := Parse("t", `
qreg q[1];
creg c[1];
if (c==1) x q[0];
`)
	if err == nil || !strings.Contains(err.Error(), "classical control") {
		t.Fatalf("want classical-control error, got %v", err)
	}
}

func TestParseBarrierIgnored(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
h q[0];
barrier q;
cx q[0],q[1];
`)
	if c.Len() != 2 {
		t.Fatalf("barrier leaked gates: %d", c.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`qreg q[0];`,                       // zero-size register
		`qreg q[2]; qreg q[2];`,            // redeclared
		`qreg q[2]; h q[5];`,               // index out of range
		`qreg q[2]; frobnicate q[0];`,      // unknown gate
		`qreg q[2]; cx q[0];`,              // arity
		`qreg q[2]; rz q[0];`,              // missing param
		`qreg q[2]; h q[0]`,                // missing semicolon
		`qreg q[2]; measure q[0] -> c[0];`, // unknown creg
		`qreg q[2]; rz(1/0) q[0];`,         // division by zero
		`qreg q[2]; rz(foo) q[0];`,         // unknown identifier
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}

func TestParseExpressionForms(t *testing.T) {
	c := parseOK(t, `
qreg q[1];
rz(2*pi - pi/2) q[0];
rz(-(1+1)) q[0];
rz(sin(0)) q[0];
rz(2^3) q[0];
u3(0.1,0.2,0.3) q[0];
`)
	want := []float64{2*math.Pi - math.Pi/2, -2, 0, 8}
	for i, w := range want {
		if got := c.Gates[i].Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("expr %d = %g, want %g", i, got, w)
		}
	}
	g := c.Gates[4]
	if g.Params != [3]float64{0.1, 0.2, 0.3} {
		t.Errorf("u3 params = %v", g.Params)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	src := `
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cz q[1],q[2];
swap q[2],q[3];
t q[3];
rz(0.25) q[1];
measure q[0] -> c[0];
`
	c1 := parseOK(t, src)
	out := Format(c1)
	c2 := parseOK(t, out)
	if c1.Len() != c2.Len() || c1.NumQubits != c2.NumQubits {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", c1.NumQubits, c1.Len(), c2.NumQubits, c2.Len())
	}
	for i := range c1.Gates {
		if c1.Gates[i] != c2.Gates[i] {
			t.Errorf("gate %d: %v vs %v", i, c1.Gates[i], c2.Gates[i])
		}
	}
}

// Property: Format/Parse round trip is the identity on random circuits
// over the writer-supported kinds.
func TestRoundTripProperty(t *testing.T) {
	kinds1 := []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := circuit.New("rt", n)
		for i := 0; i < 60; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Add1(kinds1[rng.Intn(len(kinds1))], rng.Intn(n))
			case 1:
				c.AddRot(circuit.RZ, rng.Intn(n), rng.NormFloat64())
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				c.Add2(circuit.CX, a, b)
			}
		}
		c2, err := Parse("rt", Format(c))
		if err != nil || c2.Len() != c.Len() {
			return false
		}
		for i := range c.Gates {
			if c.Gates[i] != c2.Gates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
