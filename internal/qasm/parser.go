package qasm

import (
	"fmt"
	"math"
	"strconv"

	"hilight/internal/circuit"
)

// maxExpandDepth bounds recursive gate-macro expansion; OpenQASM 2.0 gate
// definitions cannot legally recurse, so hitting the bound means a cycle.
const maxExpandDepth = 64

// Parse reads OpenQASM 2.0 source and returns the flattened circuit. All
// quantum registers are concatenated into one program-qubit index space in
// declaration order. Custom gate definitions are expanded; two-qubit
// library gates without a dedicated IR kind (cy, ch, crz, cu1, cu3) map to
// CX because braiding treats every two-qubit gate identically, and ccx is
// expanded into its standard 6-CX Clifford+T decomposition.
func Parse(name, src string) (*circuit.Circuit, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	p := &parser{
		toks:  toks,
		circ:  circuit.New(name, 0),
		qregs: map[string]reg{},
		cregs: map[string]reg{},
		gates: map[string]*gateDef{},
	}
	if err := p.parseProgram(); err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	return p.circ, nil
}

type reg struct {
	offset, size int
}

// gateDef is a user gate definition awaiting macro expansion.
type gateDef struct {
	name     string
	params   []string
	args     []string
	body     []bodyStmt
	opaque   bool
	declined bool // opaque or unsupported: applications are errors
}

// bodyStmt is one application inside a gate body: a gate name, parameter
// expressions over the formal params, and formal qubit argument indices.
type bodyStmt struct {
	name   string
	params []expr
	args   []int // indices into the enclosing def's args
	line   int
}

type parser struct {
	toks  []token
	pos   int
	circ  *circuit.Circuit
	qregs map[string]reg
	cregs map[string]reg
	gates map[string]*gateDef
	order []string // qreg declaration order, for deterministic flattening
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	tk := p.toks[p.pos]
	if tk.kind != tokEOF {
		p.pos++
	}
	return tk
}

func (p *parser) expect(k tokenKind) (token, error) {
	tk := p.advance()
	if tk.kind != k {
		return tk, fmt.Errorf("line %d: expected %v, got %v %q", tk.line, k, tk.kind, tk.text)
	}
	return tk, nil
}

func (p *parser) parseProgram() error {
	// Optional version header.
	if tk := p.peek(); tk.kind == tokIdent && isKeyword(tk.text) && tk.text == "OPENQASM" {
		p.advance()
		if _, err := p.expect(tokNumber); err != nil {
			return err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
	}
	for {
		tk := p.peek()
		switch {
		case tk.kind == tokEOF:
			return nil
		case tk.kind == tokIdent && tk.text == "include":
			p.advance()
			if _, err := p.expect(tokString); err != nil {
				return err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "qreg":
			if err := p.parseReg(p.qregs, true); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "creg":
			if err := p.parseReg(p.cregs, false); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "gate":
			if err := p.parseGateDef(false); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "opaque":
			if err := p.parseGateDef(true); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "if":
			return fmt.Errorf("line %d: classical control (if) is not supported: braiding schedules are static", tk.line)
		case tk.kind == tokIdent && tk.text == "barrier":
			p.advance()
			if err := p.skipToSemi(); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "measure":
			if err := p.parseMeasure(); err != nil {
				return err
			}
		case tk.kind == tokIdent && tk.text == "reset":
			p.advance()
			qs, err := p.parseQubitOperand()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return err
			}
			for _, q := range qs {
				p.circ.Add1(circuit.Reset, q)
			}
		case tk.kind == tokIdent:
			if err := p.parseApplication(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("line %d: unexpected token %v %q", tk.line, tk.kind, tk.text)
		}
	}
}

func (p *parser) skipToSemi() error {
	for {
		tk := p.advance()
		switch tk.kind {
		case tokSemi:
			return nil
		case tokEOF:
			return fmt.Errorf("line %d: unexpected EOF, missing ';'", tk.line)
		}
	}
}

func (p *parser) parseReg(regs map[string]reg, quantum bool) error {
	p.advance() // qreg / creg
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return err
	}
	szTok, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	size, err := strconv.Atoi(szTok.text)
	if err != nil || size <= 0 {
		return fmt.Errorf("line %d: bad register size %q", szTok.line, szTok.text)
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := regs[name.text]; dup {
		return fmt.Errorf("line %d: register %q redeclared", name.line, name.text)
	}
	if quantum {
		regs[name.text] = reg{offset: p.circ.NumQubits, size: size}
		p.circ.NumQubits += size
		p.order = append(p.order, name.text)
	} else {
		regs[name.text] = reg{size: size}
	}
	return nil
}

// parseGateDef parses `gate name(p,...) a,b,... { body }` or an opaque
// declaration (terminated by ';'). Opaque gates are recorded but their
// application is an error.
func (p *parser) parseGateDef(opaque bool) error {
	p.advance() // gate / opaque
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	def := &gateDef{name: name.text, opaque: opaque, declined: opaque}
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			id, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			def.params = append(def.params, id.text)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // )
	}
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		def.args = append(def.args, id.text)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if opaque {
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		p.gates[def.name] = def
		return nil
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	argIndex := map[string]int{}
	for i, a := range def.args {
		argIndex[a] = i
	}
	paramSet := map[string]bool{}
	for _, q := range def.params {
		paramSet[q] = true
	}
	for p.peek().kind != tokRBrace {
		tk := p.peek()
		if tk.kind == tokEOF {
			return fmt.Errorf("line %d: unterminated gate body for %q", name.line, name.text)
		}
		if tk.kind == tokIdent && tk.text == "barrier" {
			p.advance()
			if err := p.skipToSemi(); err != nil {
				return err
			}
			continue
		}
		stmt, err := p.parseBodyStmt(argIndex, paramSet)
		if err != nil {
			return err
		}
		def.body = append(def.body, stmt)
	}
	p.advance() // }
	p.gates[def.name] = def
	return nil
}

func (p *parser) parseBodyStmt(argIndex map[string]int, params map[string]bool) (bodyStmt, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return bodyStmt{}, err
	}
	st := bodyStmt{name: name.text, line: name.line}
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			e, err := p.parseExpr(params)
			if err != nil {
				return bodyStmt{}, err
			}
			st.params = append(st.params, e)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance()
	}
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return bodyStmt{}, err
		}
		idx, ok := argIndex[id.text]
		if !ok {
			return bodyStmt{}, fmt.Errorf("line %d: unknown qubit argument %q in gate body", id.line, id.text)
		}
		st.args = append(st.args, idx)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokSemi); err != nil {
		return bodyStmt{}, err
	}
	return st, nil
}

func (p *parser) parseMeasure() error {
	p.advance() // measure
	qs, err := p.parseQubitOperand()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	// Classical destination: name or name[i]; validated then discarded.
	cname, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	creg, ok := p.cregs[cname.text]
	if !ok {
		return fmt.Errorf("line %d: unknown creg %q", cname.line, cname.text)
	}
	if p.peek().kind == tokLBracket {
		p.advance()
		idxTok, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		idx, err := strconv.Atoi(idxTok.text)
		if err != nil || idx < 0 || idx >= creg.size {
			return fmt.Errorf("line %d: creg index %q out of range", idxTok.line, idxTok.text)
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return err
		}
	} else if len(qs) != creg.size {
		return fmt.Errorf("line %d: measure register size mismatch (%d qubits -> %d bits)", cname.line, len(qs), creg.size)
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	for _, q := range qs {
		p.circ.Add1(circuit.Measure, q)
	}
	return nil
}

// parseQubitOperand parses `name` (whole register) or `name[i]` and
// returns the flattened qubit indices it denotes.
func (p *parser) parseQubitOperand() ([]int, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	r, ok := p.qregs[name.text]
	if !ok {
		return nil, fmt.Errorf("line %d: unknown qreg %q", name.line, name.text)
	}
	if p.peek().kind == tokLBracket {
		p.advance()
		idxTok, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		idx, err := strconv.Atoi(idxTok.text)
		if err != nil || idx < 0 || idx >= r.size {
			return nil, fmt.Errorf("line %d: index %q out of range for %q[%d]", idxTok.line, idxTok.text, name.text, r.size)
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return []int{r.offset + idx}, nil
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

// parseApplication parses a top-level gate application, broadcasting over
// whole registers when operands are unindexed.
func (p *parser) parseApplication() error {
	name := p.advance()
	var params []float64
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			e, err := p.parseExpr(nil)
			if err != nil {
				return err
			}
			v, err := e.eval(nil)
			if err != nil {
				return fmt.Errorf("line %d: %w", name.line, err)
			}
			params = append(params, v)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance()
	}
	var operands [][]int
	for {
		qs, err := p.parseQubitOperand()
		if err != nil {
			return err
		}
		operands = append(operands, qs)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	return p.broadcast(name.text, name.line, params, operands, 0)
}

// broadcast applies a gate over operand lists: when any operand is a full
// register, all full-register operands must have the same length and the
// gate is applied element-wise, with scalar operands repeated.
func (p *parser) broadcast(name string, line int, params []float64, operands [][]int, depth int) error {
	width := 1
	for _, op := range operands {
		if len(op) > 1 {
			if width > 1 && len(op) != width {
				return fmt.Errorf("line %d: register-size mismatch in %q broadcast", line, name)
			}
			width = len(op)
		}
	}
	for i := 0; i < width; i++ {
		qs := make([]int, len(operands))
		for j, op := range operands {
			if len(op) == 1 {
				qs[j] = op[0]
			} else {
				qs[j] = op[i]
			}
		}
		if err := p.apply(name, line, params, qs, depth); err != nil {
			return err
		}
	}
	return nil
}

// apply emits one concrete gate application, expanding user macros.
func (p *parser) apply(name string, line int, params []float64, qs []int, depth int) error {
	if depth > maxExpandDepth {
		return fmt.Errorf("line %d: gate expansion too deep (recursive definition of %q?)", line, name)
	}
	// OpenQASM forbids repeated qubit operands in any application.
	for i := range qs {
		for j := i + 1; j < len(qs); j++ {
			if qs[i] == qs[j] {
				return fmt.Errorf("line %d: gate %q applied with repeated qubit q[%d]", line, name, qs[i])
			}
		}
	}
	if def, ok := p.gates[name]; ok {
		if def.declined {
			return fmt.Errorf("line %d: opaque gate %q cannot be applied", line, name)
		}
		if len(qs) != len(def.args) {
			return fmt.Errorf("line %d: gate %q wants %d qubits, got %d", line, name, len(def.args), len(qs))
		}
		if len(params) != len(def.params) {
			return fmt.Errorf("line %d: gate %q wants %d params, got %d", line, name, len(def.params), len(params))
		}
		env := map[string]float64{}
		for i, pn := range def.params {
			env[pn] = params[i]
		}
		for _, st := range def.body {
			sub := make([]float64, len(st.params))
			for i, e := range st.params {
				v, err := e.eval(env)
				if err != nil {
					return fmt.Errorf("line %d: %w", st.line, err)
				}
				sub[i] = v
			}
			subQs := make([]int, len(st.args))
			for i, ai := range st.args {
				subQs[i] = qs[ai]
			}
			if err := p.apply(st.name, st.line, sub, subQs, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return p.applyBuiltin(name, line, params, qs)
}

func (p *parser) applyBuiltin(name string, line int, params []float64, qs []int) error {
	need := func(nq, np int) error {
		if len(qs) != nq {
			return fmt.Errorf("line %d: gate %q wants %d qubits, got %d", line, name, nq, len(qs))
		}
		if len(params) != np {
			return fmt.Errorf("line %d: gate %q wants %d params, got %d", line, name, np, len(params))
		}
		return nil
	}
	add1 := func(k circuit.Kind) error {
		if err := need(1, 0); err != nil {
			return err
		}
		p.circ.Add1(k, qs[0])
		return nil
	}
	rot := func(k circuit.Kind) error {
		if err := need(1, 1); err != nil {
			return err
		}
		p.circ.AddRot(k, qs[0], params[0])
		return nil
	}
	add2 := func(k circuit.Kind) error {
		if err := need(2, len(params)); err != nil {
			return err
		}
		g := circuit.NewGate2(k, qs[0], qs[1])
		copy(g.Params[:], params)
		p.circ.Append(g)
		return nil
	}
	switch name {
	case "id":
		return add1(circuit.I)
	case "h":
		return add1(circuit.H)
	case "x":
		return add1(circuit.X)
	case "y":
		return add1(circuit.Y)
	case "z":
		return add1(circuit.Z)
	case "s":
		return add1(circuit.S)
	case "sdg":
		return add1(circuit.Sdg)
	case "t":
		return add1(circuit.T)
	case "tdg":
		return add1(circuit.Tdg)
	case "rx":
		return rot(circuit.RX)
	case "ry":
		return rot(circuit.RY)
	case "rz":
		return rot(circuit.RZ)
	case "u1":
		return rot(circuit.U1)
	case "u2":
		if err := need(1, 2); err != nil {
			return err
		}
		g := circuit.NewGate1(circuit.U2, qs[0])
		copy(g.Params[:], params)
		p.circ.Append(g)
		return nil
	case "u3", "u", "U":
		if err := need(1, 3); err != nil {
			return err
		}
		g := circuit.NewGate1(circuit.U3, qs[0])
		copy(g.Params[:], params)
		p.circ.Append(g)
		return nil
	case "cx", "CX", "cnot":
		return add2(circuit.CX)
	case "cz":
		return add2(circuit.CZ)
	case "swap":
		return add2(circuit.SWAP)
	case "cy", "ch", "crz", "cu1", "cp", "crx", "cry":
		// Two-qubit library gates without a dedicated IR kind: braiding
		// treats every 2Q gate identically, so map to CX.
		if err := need(2, len(params)); err != nil {
			return err
		}
		p.circ.Add2(circuit.CX, qs[0], qs[1])
		return nil
	case "cu3":
		if err := need(2, 3); err != nil {
			return err
		}
		p.circ.Add2(circuit.CX, qs[0], qs[1])
		return nil
	case "ccx", "toffoli":
		if err := need(3, 0); err != nil {
			return err
		}
		p.expandCCX(qs[0], qs[1], qs[2])
		return nil
	}
	return fmt.Errorf("line %d: unknown gate %q", line, name)
}

// expandCCX emits the standard Clifford+T decomposition of the Toffoli
// gate (6 CX, 7 T-type, 2 H). RevLib reversible benchmarks are built
// almost entirely from Toffolis, so this expansion defines their CX
// structure.
func (p *parser) expandCCX(a, b, c int) {
	circ := p.circ
	circ.Add1(circuit.H, c)
	circ.Add2(circuit.CX, b, c)
	circ.Add1(circuit.Tdg, c)
	circ.Add2(circuit.CX, a, c)
	circ.Add1(circuit.T, c)
	circ.Add2(circuit.CX, b, c)
	circ.Add1(circuit.Tdg, c)
	circ.Add2(circuit.CX, a, c)
	circ.Add1(circuit.T, b)
	circ.Add1(circuit.T, c)
	circ.Add1(circuit.H, c)
	circ.Add2(circuit.CX, a, b)
	circ.Add1(circuit.T, a)
	circ.Add1(circuit.Tdg, b)
	circ.Add2(circuit.CX, a, b)
}

// --- constant expressions -------------------------------------------------

// expr is a parsed parameter expression; identifiers other than pi must be
// gate-definition formal parameters resolved at expansion time.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr string

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("unknown parameter %q", string(v))
}

type unaryExpr struct {
	op rune
	x  expr
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	if u.op == '-' {
		return -v, nil
	}
	return v, nil
}

type binExpr struct {
	op   rune
	l, r expr
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("division by zero in parameter expression")
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("bad operator %q", b.op)
}

type callExpr struct {
	fn string
	x  expr
}

func (c callExpr) eval(env map[string]float64) (float64, error) {
	v, err := c.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch c.fn {
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		if v <= 0 {
			return 0, fmt.Errorf("ln of non-positive value")
		}
		return math.Log(v), nil
	case "sqrt":
		if v < 0 {
			return 0, fmt.Errorf("sqrt of negative value")
		}
		return math.Sqrt(v), nil
	}
	return 0, fmt.Errorf("unknown function %q", c.fn)
}

// parseExpr parses an additive expression. params, when non-nil, names the
// identifiers legal as variables (gate formal parameters).
func (p *parser) parseExpr(params map[string]bool) (expr, error) {
	return p.parseAdd(params)
}

func (p *parser) parseAdd(params map[string]bool) (expr, error) {
	l, err := p.parseMul(params)
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokPlus:
			p.advance()
			r, err := p.parseMul(params)
			if err != nil {
				return nil, err
			}
			l = binExpr{'+', l, r}
		case tokMinus:
			p.advance()
			r, err := p.parseMul(params)
			if err != nil {
				return nil, err
			}
			l = binExpr{'-', l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul(params map[string]bool) (expr, error) {
	l, err := p.parseUnary(params)
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokStar:
			p.advance()
			r, err := p.parseUnary(params)
			if err != nil {
				return nil, err
			}
			l = binExpr{'*', l, r}
		case tokSlash:
			p.advance()
			r, err := p.parseUnary(params)
			if err != nil {
				return nil, err
			}
			l = binExpr{'/', l, r}
		case tokCaret:
			p.advance()
			r, err := p.parseUnary(params)
			if err != nil {
				return nil, err
			}
			l = binExpr{'^', l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary(params map[string]bool) (expr, error) {
	switch tk := p.peek(); tk.kind {
	case tokMinus:
		p.advance()
		x, err := p.parseUnary(params)
		if err != nil {
			return nil, err
		}
		return unaryExpr{'-', x}, nil
	case tokPlus:
		p.advance()
		return p.parseUnary(params)
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(tk.text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", tk.line, tk.text)
		}
		return numExpr(v), nil
	case tokIdent:
		p.advance()
		if tk.text == "pi" {
			return numExpr(math.Pi), nil
		}
		if p.peek().kind == tokLParen {
			p.advance()
			x, err := p.parseAdd(params)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return callExpr{tk.text, x}, nil
		}
		if params != nil && params[tk.text] {
			return varExpr(tk.text), nil
		}
		return nil, fmt.Errorf("line %d: unknown identifier %q in expression", tk.line, tk.text)
	case tokLParen:
		p.advance()
		x, err := p.parseAdd(params)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	tk := p.peek()
	return nil, fmt.Errorf("line %d: unexpected %v %q in expression", tk.line, tk.kind, tk.text)
}
