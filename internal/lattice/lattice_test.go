package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

func TestLowerPathGeometry(t *testing.T) {
	g := grid.New(3, 3)
	d := 5
	// Horizontal two-channel path: (0,0) -> (1,0) -> (2,0).
	p := route.Path{g.VertexID(0, 0), g.VertexID(1, 0), g.VertexID(2, 0)}
	cells := LowerPath(p, g, d)
	// 3 vertices + 2 channels × (d−1) interior sites.
	if len(cells) != 3+2*(d-1) {
		t.Fatalf("cells = %d, want %d", len(cells), 3+2*(d-1))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
		if c.Y != 0 {
			t.Fatalf("horizontal path left its row: %v", c)
		}
	}
	// Covers x = 0..2d contiguously.
	for x := 0; x <= 2*d; x++ {
		if !seen[Cell{x, 0}] {
			t.Errorf("cell (%d,0) missing", x)
		}
	}
}

func TestLowerPathSingleVertex(t *testing.T) {
	g := grid.New(2, 2)
	cells := LowerPath(route.Path{g.VertexID(1, 1)}, g, 7)
	if len(cells) != 1 || cells[0] != (Cell{7, 7}) {
		t.Errorf("cells = %v", cells)
	}
}

func TestDefectSitesInsideTile(t *testing.T) {
	g := grid.New(3, 3)
	for _, d := range []int{3, 5, 7, 11} {
		for tile := 0; tile < g.Tiles(); tile++ {
			tx, ty := g.TileXY(tile)
			sites := DefectSites(g, tile, d)
			if sites[0] == sites[1] {
				t.Fatalf("d=%d tile %d: defects coincide", d, tile)
			}
			for _, s := range sites {
				if s.X <= tx*d || s.X >= (tx+1)*d || s.Y <= ty*d || s.Y >= (ty+1)*d {
					t.Fatalf("d=%d tile %d: defect %v outside block interior", d, tile, s)
				}
			}
		}
	}
}

func TestLowerRejectsBadDistance(t *testing.T) {
	s := &sched.Schedule{Grid: grid.New(2, 2)}
	for _, d := range []int{0, 2, 4, -3, 1} {
		if _, err := Lower(s, d); err == nil {
			t.Errorf("distance %d accepted", d)
		}
	}
}

func TestLowerDetectsCollision(t *testing.T) {
	g := grid.New(2, 2)
	// Two braids sharing a vertex: illegal at the 2D level, must be
	// caught at the physical level too.
	v := g.VertexID(1, 1)
	s := &sched.Schedule{Grid: g, Layers: []sched.Layer{{
		{Gate: 0, Path: route.Path{v}},
		{Gate: 1, Path: route.Path{v, g.VertexID(1, 0)}},
	}}}
	if _, err := Lower(s, 3); err == nil {
		t.Error("colliding corridors accepted")
	}
}

func TestLowerFullPipeline(t *testing.T) {
	c := circuit.New("pipeline", 9)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.Add2(circuit.CX, a, b)
		}
	}
	g := grid.Rect(9)
	res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(res.Schedule, 5)
	if err != nil {
		t.Fatalf("lowering failed on a valid schedule: %v", err)
	}
	if len(low.Cycles) != res.Latency {
		t.Errorf("cycles = %d, latency %d", len(low.Cycles), res.Latency)
	}
	if low.Width != g.W*5+1 || low.Height != g.H*5+1 {
		t.Errorf("extent = %dx%d", low.Width, low.Height)
	}
	if low.PhysicalQubits() != 2*low.Width*low.Height {
		t.Error("physical qubit accounting inconsistent")
	}
	if low.MaxCorridor() == 0 {
		t.Error("no corridors recorded")
	}
}

// Property: every valid schedule lowers collision-free at every distance
// — the 2D conflict model is physically sound.
func TestLoweringSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		c := circuit.New("rand", n)
		for i := 0; i < 5+rng.Intn(40); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := grid.Rect(n)
		res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{Rng: rng})
		if err != nil || res.Schedule.Validate(res.Circuit) != nil {
			return false
		}
		for _, d := range []int{3, 5, 9} {
			if _, err := Lower(res.Schedule, d); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
