// Package lattice lowers braiding schedules from the tile-level 2D
// abstraction down to the physical surface-code lattice of §2.1: each
// tile is a d×d block of physical qubits hosting a double-defect logical
// qubit, routing vertices sit at block corners, and a braiding path
// becomes a defect trajectory — a corridor of physical cells along which
// stabilizers are disabled and re-enabled during the five-step braid
// transformation.
//
// The lowering is the soundness check for the whole 2D model: two braids
// that the scheduler declares compatible (vertex- and channel-disjoint on
// the routing lattice) must occupy disjoint physical corridors at code
// distance d. Lower verifies exactly that, cycle by cycle, and reports
// the physical footprint of the machine.
package lattice

import (
	"fmt"

	"hilight/internal/grid"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// Cell is a physical lattice coordinate (stabilizer-site granularity).
type Cell struct {
	X, Y int
}

// BraidCorridor is the physical footprint of one braid during its cycle.
type BraidCorridor struct {
	Gate  int // source gate index, -1 for inserted SWAP braids
	Cells []Cell
}

// Lowering is the physical realization of a schedule at distance d.
type Lowering struct {
	Distance int
	// Width and Height are the physical lattice extents
	// (grid.W×d+1 by grid.H×d+1 stabilizer sites).
	Width, Height int
	Cycles        [][]BraidCorridor
}

// LowerPath expands a routing-lattice path into its physical corridor at
// code distance d: routing vertex (vx,vy) sits at physical site
// (vx·d, vy·d) and each channel contributes the d−1 interior sites of
// the straight segment between its endpoints.
func LowerPath(p route.Path, g *grid.Grid, d int) []Cell {
	var cells []Cell
	for i, v := range p {
		vx, vy := g.VertexXY(v)
		cells = append(cells, Cell{vx * d, vy * d})
		if i == 0 {
			continue
		}
		ux, uy := g.VertexXY(p[i-1])
		switch {
		case uy == vy: // horizontal channel
			step := 1
			if vx < ux {
				step = -1
			}
			for k := 1; k < d; k++ {
				cells = append(cells, Cell{ux*d + step*k, uy * d})
			}
		default: // vertical channel
			step := 1
			if vy < uy {
				step = -1
			}
			for k := 1; k < d; k++ {
				cells = append(cells, Cell{ux * d, uy*d + step*k})
			}
		}
	}
	return cells
}

// DefectSites returns the two defect positions of the logical qubit on
// tile t: the standard double-defect pair sits at the horizontal third
// points of the tile's physical block.
func DefectSites(g *grid.Grid, t, d int) [2]Cell {
	tx, ty := g.TileXY(t)
	cy := ty*d + d/2
	off := d / 3
	if off < 1 {
		off = 1
	}
	return [2]Cell{
		{tx*d + off, cy},
		{tx*d + d - off, cy},
	}
}

// Lower maps every braid of the schedule to its physical corridor at
// distance d and verifies the central soundness property: corridors of
// the same cycle are pairwise disjoint. A violation means the 2D
// conflict model would have let two braids tear the same stabilizers —
// it is returned as an error, never silently accepted.
func Lower(s *sched.Schedule, d int) (*Lowering, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("lattice: code distance %d must be odd and ≥ 3", d)
	}
	low := &Lowering{
		Distance: d,
		Width:    s.Grid.W*d + 1,
		Height:   s.Grid.H*d + 1,
	}
	for li, layer := range s.Layers {
		seen := make(map[Cell]int, 64)
		var cycle []BraidCorridor
		for bi, b := range layer {
			cells := LowerPath(b.Path, s.Grid, d)
			for _, c := range cells {
				if c.X < 0 || c.Y < 0 || c.X >= low.Width || c.Y >= low.Height {
					return nil, fmt.Errorf("lattice: cycle %d braid %d: cell %v outside the %dx%d lattice",
						li, bi, c, low.Width, low.Height)
				}
				if prev, clash := seen[c]; clash {
					return nil, fmt.Errorf("lattice: cycle %d: braids %d and %d collide at physical cell %v",
						li, prev, bi, c)
				}
				seen[c] = bi
			}
			cycle = append(cycle, BraidCorridor{Gate: b.Gate, Cells: cells})
		}
		low.Cycles = append(low.Cycles, cycle)
	}
	return low, nil
}

// PhysicalQubits returns the number of data qubits the lowered lattice
// spans (two physical qubits per stabilizer site in the rotated-code
// accounting used for estimates).
func (l *Lowering) PhysicalQubits() int {
	return 2 * l.Width * l.Height
}

// MaxCorridor returns the largest single-braid corridor (in cells) —
// the longest stabilizer tear any cycle performs.
func (l *Lowering) MaxCorridor() int {
	m := 0
	for _, cycle := range l.Cycles {
		for _, bc := range cycle {
			if len(bc.Cells) > m {
				m = len(bc.Cells)
			}
		}
	}
	return m
}
