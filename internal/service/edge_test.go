package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hilight"
	"hilight/internal/wire"
)

// TestStreamAbortOnPassPanic pins the in-band abort contract: a pass
// panic after ?stream=1 has sent its 200 must terminate the stream with
// a well-formed 'X' frame — not a mid-frame truncation — and still flow
// to the recovery middleware for panic accounting.
func TestStreamAbortOnPassPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var cycles atomic.Int64
	SetChaosHooks(&ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		if cycles.Add(1) == 3 {
			panic("edge test: injected pass panic")
		}
	}})
	t.Cleanup(func() { SetChaosHooks(nil) })

	resp, raw := doCompile(t, ts.URL+"/v1/compile?stream=1", "", map[string]any{"benchmark": "QFT-10"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.StreamContentType {
		t.Fatalf("Content-Type %q, want %q", ct, wire.StreamContentType)
	}

	// The raw body must decode as a complete frame sequence whose
	// terminal frame is the abort — every byte accounted for, no torn
	// frame at the tail.
	dec := wire.NewStreamDecoder(bytes.NewReader(raw))
	var last wire.Frame
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream not well-formed after pass panic: %v", err)
		}
		last = f
	}
	if last.Kind != wire.FrameError {
		t.Fatalf("terminal frame kind %q, want %q", last.Kind, wire.FrameError)
	}
	if !strings.Contains(string(last.Payload), "injected pass panic") {
		t.Errorf("abort frame does not carry the panic: %s", last.Payload)
	}
	// ReadStream surfaces the same abort as a remote error.
	if _, _, err := wire.ReadStream(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "injected pass panic") {
		t.Errorf("ReadStream error = %v, want remote pass panic", err)
	}

	snap := s.cfg.Metrics.Snapshot()
	if v, _ := snap.Counter("service/panics"); v != 1 {
		t.Errorf("service/panics = %d, want 1 (panic must still reach the recovery middleware)", v)
	}
	if v, _ := snap.Counter("service/requests-failed"); v < 1 {
		t.Errorf("requests-failed = %d, want >= 1", v)
	}
}

// TestStreamAbortOnWatchdogStall pins the watchdog sibling: a stalled
// compile whose stream already went out aborts in-band with the stall
// cause and counts under service/watchdog/aborted.
func TestStreamAbortOnWatchdogStall(t *testing.T) {
	s, ts := newTestServer(t, Config{WatchdogWindow: 30 * time.Millisecond})
	var armed atomic.Bool
	armed.Store(true)
	SetChaosHooks(&ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		if armed.CompareAndSwap(true, false) {
			time.Sleep(500 * time.Millisecond) // >> two watchdog windows
		}
	}})
	t.Cleanup(func() { SetChaosHooks(nil) })

	resp, raw := doCompile(t, ts.URL+"/v1/compile?stream=1", "", map[string]any{"benchmark": "QFT-10"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	dec := wire.NewStreamDecoder(bytes.NewReader(raw))
	var last wire.Frame
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream not well-formed after watchdog abort: %v", err)
		}
		last = f
	}
	if last.Kind != wire.FrameError {
		t.Fatalf("terminal frame kind %q, want %q", last.Kind, wire.FrameError)
	}
	if !strings.Contains(string(last.Payload), "no routing-cycle progress") {
		t.Errorf("abort frame does not carry the stall cause: %s", last.Payload)
	}
	snap := s.cfg.Metrics.Snapshot()
	if v, _ := snap.Counter("service/watchdog/fired"); v != 1 {
		t.Errorf("watchdog/fired = %d, want 1", v)
	}
	if v, _ := snap.Counter("service/watchdog/aborted"); v != 1 {
		t.Errorf("watchdog/aborted = %d, want 1", v)
	}
}

// TestCompileEnvelopeNegotiation pins the node-to-node form: Accept:
// application/x-hilight-sched+json answers the JSON envelope with the
// schedule as the binary payload — full metadata, compact schedule.
func TestCompileEnvelopeNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"benchmark": "QFT-10"}

	resp, body := doCompile(t, ts.URL+"/v1/compile", wire.BinaryEnvelopeContentType, req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.BinaryEnvelopeContentType {
		t.Fatalf("Content-Type %q, want %q", ct, wire.BinaryEnvelopeContentType)
	}
	var env compileResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.ScheduleBin) == 0 || len(env.Schedule) != 0 {
		t.Fatal("envelope mode must carry schedule_bin only")
	}
	binSched, err := wire.Binary.Decode(env.ScheduleBin)
	if err != nil {
		t.Fatalf("schedule_bin undecodable: %v", err)
	}

	// The default JSON negotiation of the (now cached) same compile
	// carries the same schedule and the same metadata fields.
	respJ, bodyJ := doCompile(t, ts.URL+"/v1/compile", "", req)
	if respJ.StatusCode != 200 {
		t.Fatalf("json status %d: %s", respJ.StatusCode, bodyJ)
	}
	var envJ compileResponse
	if err := json.Unmarshal(bodyJ, &envJ); err != nil {
		t.Fatal(err)
	}
	if !envJ.Cached {
		t.Error("JSON follow-up missed the cache entry the envelope compile filled")
	}
	if envJ.Fingerprint != env.Fingerprint || envJ.Method != env.Method ||
		envJ.LatencyCycles != env.LatencyCycles {
		t.Error("envelope and JSON negotiations disagree on metadata")
	}
	jsonSched, err := hilight.DecodeScheduleJSON(envJ.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hilight.EncodeScheduleJSON(binSched)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hilight.EncodeScheduleJSON(jsonSched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("envelope and JSON negotiations returned different schedules")
	}
}

// TestRetryAfterDerived pins the 429 hint derivation: the Retry-After
// header tracks observed compile latency (clamped to [floor, 1m]) and
// the JSON body mirrors the exact value as retry_after_ms.
func TestRetryAfterDerived(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, RetryAfter: time.Second})

	// Saturate the single worker so the next request is rejected.
	rel, err := s.admit.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	check := func(wantSec int64) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "QFT-10"})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
		}
		header, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
		if err != nil {
			t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
		}
		var eb struct {
			Error        string `json:"error"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		}
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("429 body not JSON: %v (%s)", err, body)
		}
		if eb.Error == "" {
			t.Error("429 body missing error message")
		}
		if eb.RetryAfterMS <= 0 {
			t.Fatalf("retry_after_ms = %d, want > 0", eb.RetryAfterMS)
		}
		// The header is the body value rounded up to whole seconds.
		if want := int64(math.Ceil(float64(eb.RetryAfterMS) / 1000)); header != want {
			t.Errorf("Retry-After header %ds does not mirror retry_after_ms %dms", header, eb.RetryAfterMS)
		}
		if header != wantSec {
			t.Errorf("Retry-After = %ds, want %ds", header, wantSec)
		}
	}

	// No compile observed yet: the configured floor (1s) answers.
	check(1)

	// With an observed average of ~4s per compile and one request in
	// flight on one worker, a new arrival waits two waves ≈ 8s.
	s.compileSeconds.Observe(4.0)
	check(8)

	// A pathological average clamps at the one-minute ceiling.
	s.compileSeconds.Observe(1000.0)
	check(60)
}

// TestTenantQuotaOverHTTP pins the quota edge: with TenantQuota 1, a
// tenant's second concurrent compile answers 429 (with the derived
// Retry-After mirror) while another tenant proceeds.
func TestTenantQuotaOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, TenantQuota: 1})
	gate := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	SetChaosHooks(&ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		if armed.CompareAndSwap(true, false) {
			<-gate // hold the first compile mid-flight
		}
	}})
	t.Cleanup(func() { SetChaosHooks(nil) })

	compile := func(tenant string) (*http.Response, []byte) {
		data, _ := json.Marshal(map[string]any{"benchmark": "QFT-10"})
		req, err := http.NewRequest("POST", ts.URL+"/v1/compile", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Hilight-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	first := make(chan int, 1)
	go func() {
		resp, _ := compile("acme")
		first <- resp.StatusCode
	}()
	// Wait until the first compile is admitted and parked on the gate.
	deadline := time.Now().Add(5 * time.Second)
	for armed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first compile never reached the routing hook")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := compile("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-tenant status %d, want 429: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "tenant") || !strings.Contains(string(body), "retry_after_ms") {
		t.Errorf("quota 429 body missing context: %s", body)
	}
	if respB, bodyB := compile("globex"); respB.StatusCode != 200 {
		t.Errorf("other tenant status %d, want 200: %s", respB.StatusCode, bodyB)
	}

	close(gate)
	if code := <-first; code != 200 {
		t.Errorf("gated compile finished with %d, want 200", code)
	}
}

// TestPriorityHeaderValidation pins the 400 on an unknown priority
// class and the acceptance of the two defined ones.
func TestPriorityHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		pri  string
		want int
	}{
		{"", 200}, {"interactive", 200}, {"batch", 200}, {"urgent", 400},
	} {
		data, _ := json.Marshal(map[string]any{"benchmark": "QFT-10"})
		req, err := http.NewRequest("POST", ts.URL+"/v1/compile", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tc.pri != "" {
			req.Header.Set("X-Hilight-Priority", tc.pri)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("priority %q: status %d, want %d (%s)", tc.pri, resp.StatusCode, tc.want, body)
		}
	}
}

// TestNodeIDHeader pins the cluster observability hook: a NodeID-named
// server stamps every response with X-Hilight-Node.
func TestNodeIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{NodeID: "worker-1"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Hilight-Node"); got != "worker-1" {
		t.Errorf("X-Hilight-Node = %q, want worker-1", got)
	}
}
