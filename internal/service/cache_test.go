package service

import (
	"fmt"
	"testing"

	"hilight/internal/obs"
)

// storedOfSize builds a stored result whose binary schedule payload is
// exactly n bytes; its total accounted size is n + metaSize().
func storedOfSize(n int) *storedResult {
	return &storedResult{ScheduleBin: make([]byte, n)}
}

// metaSize is the marshaled metadata footprint of a storedOfSize entry —
// the non-payload share of its accounted size, measured (not assumed)
// so the assertions below track the real accounting.
func metaSize() int64 {
	return (&storedResult{}).sizeOf()
}

func TestCacheHitMissEvict(t *testing.T) {
	m := obs.NewRegistry()
	meta := metaSize()
	// Room for exactly three 1000-byte entries (payload + metadata).
	c := newScheduleCache(3*(1000+meta), m)

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", storedOfSize(1000))
	c.Put("b", storedOfSize(1000))
	if r, ok := c.Get("a"); !ok || len(r.ScheduleBin) != 1000 {
		t.Fatal("miss after insert")
	}
	// "a" is now most recent; inserting two more evicts "b" first.
	c.Put("c", storedOfSize(1000))
	c.Put("d", storedOfSize(1000))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used entry a evicted")
	}

	snap := m.Snapshot()
	if v, _ := snap.Counter("cache/hits"); v != 2 {
		t.Errorf("cache/hits = %d, want 2", v)
	}
	if v, _ := snap.Counter("cache/misses"); v != 2 {
		t.Errorf("cache/misses = %d, want 2", v)
	}
	if v, _ := snap.Counter("cache/evictions"); v != 1 {
		t.Errorf("cache/evictions = %d, want 1", v)
	}
	if v, _ := snap.Gauge("cache/bytes"); v != 3*(1000+meta) {
		t.Errorf("cache/bytes = %d, want %d", v, 3*(1000+meta))
	}
	if v, _ := snap.Gauge("cache/encoded-bytes"); v != 3000 {
		t.Errorf("cache/encoded-bytes = %d, want 3000 (payload bytes only)", v)
	}
	if v, _ := snap.Gauge("cache/entries"); v != 3 {
		t.Errorf("cache/entries = %d, want 3", v)
	}
}

// TestCacheChargesEncodedSize pins the accounting contract: the cap is
// charged each entry's true encoded size — binary payload plus marshaled
// metadata — not a fixed-overhead estimate. A cap sized for N such
// entries admits exactly N and evicts on the N+1th.
func TestCacheChargesEncodedSize(t *testing.T) {
	m := obs.NewRegistry()
	entry := 1000 + metaSize()
	c := newScheduleCache(4*entry, m)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprint("k", i), storedOfSize(1000))
	}
	if c.Len() != 4 {
		t.Fatalf("cap sized for 4 true-encoded entries holds %d", c.Len())
	}
	if v, _ := m.Snapshot().Counter("cache/evictions"); v != 0 {
		t.Fatalf("%d evictions before the cap was reached", v)
	}
	c.Put("k4", storedOfSize(1000))
	if c.Len() != 4 {
		t.Errorf("len = %d after overflow insert, want 4", c.Len())
	}
	if v, _ := m.Snapshot().Counter("cache/evictions"); v != 1 {
		t.Errorf("cache/evictions = %d after overflow insert, want 1", v)
	}
	// The accounted bytes reconcile exactly with entries × true size.
	if v, _ := m.Snapshot().Gauge("cache/bytes"); v != 4*entry {
		t.Errorf("cache/bytes = %d, want %d", v, 4*entry)
	}
}

// TestCacheMetadataCharged pins that metadata isn't free: entries whose
// payload alone would fit are still evicted when payload+metadata
// exceeds the cap.
func TestCacheMetadataCharged(t *testing.T) {
	m := obs.NewRegistry()
	meta := metaSize()
	// Two 100-byte payloads fit by payload alone, but not with metadata.
	c := newScheduleCache(2*100+meta, m)
	c.Put("a", storedOfSize(100))
	c.Put("b", storedOfSize(100))
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1 — metadata bytes were not charged", c.Len())
	}
}

func TestCacheOversizedEntrySkipped(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(100, m)
	c.Put("huge", storedOfSize(101))
	if c.Len() != 0 {
		t.Error("entry larger than the cache was stored")
	}
}

func TestCacheDisabled(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(-1, m)
	c.Put("a", storedOfSize(1))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache served a hit")
	}
	if v, _ := m.Snapshot().Counter("cache/misses"); v != 1 {
		t.Error("disabled cache should still meter misses")
	}
}

func TestCacheDuplicatePutKeepsAccounting(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(10000, m)
	c.Put("a", storedOfSize(400))
	c.Put("a", storedOfSize(500))
	if c.Len() != 1 {
		t.Fatalf("duplicate key stored twice")
	}
	if v, _ := m.Snapshot().Gauge("cache/bytes"); v != 400+metaSize() {
		t.Errorf("cache/bytes = %d after duplicate put, want %d", v, 400+metaSize())
	}
	if r, _ := c.Get("a"); len(r.ScheduleBin) != 400 {
		t.Errorf("duplicate put replaced the first value")
	}
}

func TestCacheManyKeys(t *testing.T) {
	m := obs.NewRegistry()
	entry := 256 + metaSize()
	c := newScheduleCache(10*entry, m)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint("k", i), storedOfSize(256))
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10 (size-capped)", c.Len())
	}
	// The survivors are exactly the 10 most recent.
	for i := 90; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprint("k", i)); !ok {
			t.Errorf("recent key k%d missing", i)
		}
	}
}
