package service

import (
	"fmt"
	"testing"

	"hilight/internal/obs"
)

func respOfSize(n int) *compileResponse {
	return &compileResponse{Schedule: make([]byte, n)}
}

func TestCacheHitMissEvict(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(3000, m)

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", respOfSize(100), 1000)
	c.Put("b", respOfSize(200), 1000)
	if r, ok := c.Get("a"); !ok || len(r.Schedule) != 100 {
		t.Fatal("miss after insert")
	}
	// "a" is now most recent; inserting two more evicts "b" first.
	c.Put("c", respOfSize(300), 1000)
	c.Put("d", respOfSize(400), 1000)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used entry a evicted")
	}

	snap := m.Snapshot()
	if v, _ := snap.Counter("cache/hits"); v != 2 {
		t.Errorf("cache/hits = %d, want 2", v)
	}
	if v, _ := snap.Counter("cache/misses"); v != 2 {
		t.Errorf("cache/misses = %d, want 2", v)
	}
	if v, _ := snap.Counter("cache/evictions"); v != 1 {
		t.Errorf("cache/evictions = %d, want 1", v)
	}
	if v, _ := snap.Gauge("cache/bytes"); v != 3000 {
		t.Errorf("cache/bytes = %d, want 3000", v)
	}
	if v, _ := snap.Gauge("cache/entries"); v != 3 {
		t.Errorf("cache/entries = %d, want 3", v)
	}
}

func TestCacheOversizedEntrySkipped(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(100, m)
	c.Put("huge", respOfSize(1), 101)
	if c.Len() != 0 {
		t.Error("entry larger than the cache was stored")
	}
}

func TestCacheDisabled(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(-1, m)
	c.Put("a", respOfSize(1), 10)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache served a hit")
	}
	if v, _ := m.Snapshot().Counter("cache/misses"); v != 1 {
		t.Error("disabled cache should still meter misses")
	}
}

func TestCacheDuplicatePutKeepsAccounting(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(1000, m)
	c.Put("a", respOfSize(1), 400)
	c.Put("a", respOfSize(2), 400)
	if c.Len() != 1 {
		t.Fatalf("duplicate key stored twice")
	}
	if v, _ := m.Snapshot().Gauge("cache/bytes"); v != 400 {
		t.Errorf("cache/bytes = %d after duplicate put, want 400", v)
	}
}

func TestCacheManyKeys(t *testing.T) {
	m := obs.NewRegistry()
	c := newScheduleCache(10*256, m)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint("k", i), respOfSize(i), 256)
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10 (size-capped)", c.Len())
	}
	// The survivors are exactly the 10 most recent.
	for i := 90; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprint("k", i)); !ok {
			t.Errorf("recent key k%d missing", i)
		}
	}
}
