package service

import (
	"context"
	"errors"
	"sync/atomic"

	"hilight/internal/obs"
)

// Admission-control outcomes. errQueueFull maps to 429 + Retry-After,
// errDraining to 503 (the server is shutting down and readyz already
// reports it).
var (
	errQueueFull = errors.New("service: compile queue full")
	errDraining  = errors.New("service: server draining")
)

// admission is the server's admission controller: a bounded worker pool
// (slots) fronted by a bounded wait queue (tickets). A request first
// claims a ticket — immediately, or it is rejected with errQueueFull —
// then waits on a worker slot, honoring its context. The two-stage
// design keeps the wait set bounded: at most workers+queue requests are
// inside the controller, everyone else gets instant backpressure
// instead of an unbounded goroutine pileup.
//
// States: accepting → draining (terminal). Draining rejects new work
// while already-admitted requests run to completion; in-flight work is
// tracked by the inflight gauge and drained by Server.Shutdown.
type admission struct {
	tickets  chan struct{} // cap = workers + queue depth
	slots    chan struct{} // cap = workers
	draining atomic.Bool

	queued   *obs.Gauge
	inflight *obs.Gauge
	admitted *obs.Counter
	rejected *obs.Counter
}

func newAdmission(workers, queue int, m *obs.Registry) *admission {
	return &admission{
		tickets:  make(chan struct{}, workers+queue),
		slots:    make(chan struct{}, workers),
		queued:   m.Gauge("service/queued"),
		inflight: m.Gauge("service/inflight"),
		admitted: m.Counter("service/admitted"),
		rejected: m.Counter("service/rejected"),
	}
}

// acquire claims a compile slot, queueing (up to the queue bound) when
// all workers are busy. It returns a release func on success, and
// errQueueFull / errDraining / the context's error otherwise. release
// must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		a.rejected.Inc()
		return nil, errDraining
	}
	select {
	case a.tickets <- struct{}{}:
	default:
		a.rejected.Inc()
		return nil, errQueueFull
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		<-a.tickets
		return nil, ctx.Err()
	}
	// Re-check after a possible queue wait so a drain that started while
	// this request was queued still wins.
	if a.draining.Load() {
		<-a.slots
		<-a.tickets
		a.rejected.Inc()
		return nil, errDraining
	}
	a.admitted.Inc()
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
		<-a.tickets
	}, nil
}

// drain moves the controller to its terminal state: every subsequent
// acquire fails with errDraining. Idempotent.
func (a *admission) drain() { a.draining.Store(true) }
