package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hilight/internal/obs"
)

// Admission-control outcomes. errQueueFull and errQuotaExceeded map to
// 429 + Retry-After, errDraining to 503 (the server is shutting down
// and readyz already reports it).
var (
	errQueueFull     = errors.New("service: compile queue full")
	errDraining      = errors.New("service: server draining")
	errQuotaExceeded = errors.New("service: tenant quota exceeded")
)

// priorityClass splits admitted traffic into two lanes. Interactive is
// the default and may use the whole queue; batch accepts extra
// backpressure — it only claims a ticket while the controller is under
// half occupancy, so a batch flood can never starve interactive
// requests of queue headroom.
type priorityClass int

const (
	priorityInteractive priorityClass = iota
	priorityBatch
)

// admission is the server's admission controller: a bounded worker pool
// (slots) fronted by a bounded wait queue (tickets). A request first
// claims a ticket — immediately, or it is rejected with errQueueFull —
// then waits on a worker slot, honoring its context. The two-stage
// design keeps the wait set bounded: at most workers+queue requests are
// inside the controller, everyone else gets instant backpressure
// instead of an unbounded goroutine pileup.
//
// Per-tenant quotas layer on top: when quota > 0, each tenant (the
// X-Hilight-Tenant header; empty is a tenant like any other) may hold
// at most quota concurrent admissions, rejected with errQuotaExceeded
// past that — one noisy tenant cannot occupy the whole queue.
//
// States: accepting → draining (terminal). Draining rejects new work
// while already-admitted requests run to completion; in-flight work is
// tracked by the inflight gauge and drained by Server.Shutdown.
type admission struct {
	tickets  chan struct{} // cap = workers + queue depth
	slots    chan struct{} // cap = workers
	draining atomic.Bool

	quota   int // per-tenant concurrent admissions; <=0 disables
	mu      sync.Mutex
	tenants map[string]int

	queued        *obs.Gauge
	inflight      *obs.Gauge
	admitted      *obs.Counter
	rejected      *obs.Counter
	quotaRejected *obs.Counter
}

func newAdmission(workers, queue, quota int, m *obs.Registry) *admission {
	return &admission{
		tickets:       make(chan struct{}, workers+queue),
		slots:         make(chan struct{}, workers),
		quota:         quota,
		tenants:       make(map[string]int),
		queued:        m.Gauge("service/queued"),
		inflight:      m.Gauge("service/inflight"),
		admitted:      m.Counter("service/admitted"),
		rejected:      m.Counter("service/rejected"),
		quotaRejected: m.Counter("service/quota-rejected"),
	}
}

// acquire is acquireFor with the default tenant and interactive
// priority — the historical single-lane entry point, kept for callers
// (and tests) that predate tenancy.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	return a.acquireFor(ctx, "", priorityInteractive)
}

// acquireFor claims a compile slot for tenant, queueing (up to the
// queue bound) when all workers are busy. It returns a release func on
// success, and errQueueFull / errQuotaExceeded / errDraining / the
// context's error otherwise. release must be called exactly once.
func (a *admission) acquireFor(ctx context.Context, tenant string, pri priorityClass) (release func(), err error) {
	if a.draining.Load() {
		a.rejected.Inc()
		return nil, errDraining
	}
	relTenant, err := a.acquireTenant(tenant)
	if err != nil {
		a.rejected.Inc()
		a.quotaRejected.Inc()
		return nil, err
	}
	if pri == priorityBatch && len(a.tickets)*2 >= cap(a.tickets) {
		// Batch work yields once the controller is half full; the
		// remaining headroom is reserved for interactive traffic.
		relTenant()
		a.rejected.Inc()
		return nil, errQueueFull
	}
	select {
	case a.tickets <- struct{}{}:
	default:
		relTenant()
		a.rejected.Inc()
		return nil, errQueueFull
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		<-a.tickets
		relTenant()
		return nil, ctx.Err()
	}
	// Re-check after a possible queue wait so a drain that started while
	// this request was queued still wins.
	if a.draining.Load() {
		<-a.slots
		<-a.tickets
		relTenant()
		a.rejected.Inc()
		return nil, errDraining
	}
	a.admitted.Inc()
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
		<-a.tickets
		relTenant()
	}, nil
}

// acquireTenant claims one unit of tenant's concurrency quota (a no-op
// release when quotas are disabled). Batch submissions use it directly:
// the whole batch counts as one admission for quota purposes, held from
// accept to the batch's last job.
func (a *admission) acquireTenant(tenant string) (release func(), err error) {
	if a.quota <= 0 {
		return func() {}, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tenants[tenant] >= a.quota {
		return nil, fmt.Errorf("%w: tenant %q at %d concurrent admissions", errQuotaExceeded, tenant, a.quota)
	}
	a.tenants[tenant]++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			if a.tenants[tenant]--; a.tenants[tenant] <= 0 {
				delete(a.tenants, tenant)
			}
		})
	}, nil
}

// load reports the controller's current occupancy: requests queued or
// in flight. The Retry-After derivation reads it as the backlog a new
// request would sit behind.
func (a *admission) load() int {
	return int(a.queued.Value() + a.inflight.Value())
}

// drain moves the controller to its terminal state: every subsequent
// acquire fails with errDraining. Idempotent.
func (a *admission) drain() { a.draining.Store(true) }
