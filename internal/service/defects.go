package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"hilight"
)

// This file is the live defect feed: POST /v1/defects announces the
// hardware's current defect map, and the server sweeps its schedule
// cache for entries whose schedules geometrically conflict with it —
// a braid path through a newly dead vertex or channel, a braid endpoint
// or placed qubit on a dead tile. Conflicting entries are evicted and,
// when their originating request was recorded, recompiled warm against
// the new map: the stale schedule becomes its own session parent, so
// the unaffected prefix replays and only the suffix re-routes.

// defectsRequest is the JSON body of POST /v1/defects. Defects is the
// full replacement map (absent or empty heals everything) — the feed is
// level-triggered, not edge-triggered, so a lost update is repaired by
// the next one.
type defectsRequest struct {
	Defects *hilight.DefectMap `json:"defects"`
}

// defectsResponse reports the sweep: how many cached schedules were
// checked, how many conflicted (and were evicted), how many were
// recompiled under the new map, and the old→new fingerprint mapping
// (empty string when the entry could only be evicted).
type defectsResponse struct {
	Checked      int               `json:"checked"`
	Conflicting  int               `json:"conflicting"`
	Evicted      int               `json:"evicted"`
	Recompiled   int               `json:"recompiled"`
	Failed       int               `json:"failed,omitempty"`
	Fingerprints map[string]string `json:"fingerprints,omitempty"`
}

// handleDefects serves POST /v1/defects.
func (s *Server) handleDefects(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.defectFeeds.Inc()
	var req defectsRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	dm := req.Defects
	if dm == nil {
		dm = &hilight.DefectMap{}
	}
	snapshot := s.cache.Snapshot()
	resp := defectsResponse{Checked: len(snapshot)}

	var stale []*storedResult
	if !dm.Empty() {
		for _, sr := range snapshot {
			conflict, err := scheduleConflicts(sr, dm)
			if err != nil || conflict {
				// An undecodable entry is treated as conflicting: evicting a
				// corrupt schedule is strictly safer than serving it.
				stale = append(stale, sr)
			}
		}
	}
	if len(stale) == 0 {
		s.succeeded.Inc()
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	// The recompiles run under one admission ticket at batch priority:
	// the feed is maintenance traffic and must not starve interactive
	// compiles of workers.
	release, err := s.admit.acquireFor(r.Context(), tenantOf(r), priorityBatch)
	if err != nil {
		s.failAdmission(w, r, err)
		return
	}
	defer release()

	resp.Fingerprints = make(map[string]string, len(stale))
	for _, sr := range stale {
		resp.Conflicting++
		if s.cache.Remove(sr.Fingerprint) {
			resp.Evicted++
			s.defectEvicted.Inc()
		}
		newFP, err := s.recompileStale(r.Context(), sr, dm)
		if err != nil {
			resp.Failed++
			resp.Fingerprints[sr.Fingerprint] = ""
			continue
		}
		resp.Recompiled++
		s.defectRecompiled.Inc()
		resp.Fingerprints[sr.Fingerprint] = newFP
	}
	s.succeeded.Inc()
	writeJSON(w, http.StatusOK, &resp)
}

// recompileStale re-issues a stale entry's recorded request under the
// new defect map, warm-starting from the stale schedule itself, and
// installs the result under its new fingerprint.
func (s *Server) recompileStale(ctx context.Context, sr *storedResult, dm *hilight.DefectMap) (string, error) {
	if len(sr.ReqJSON) == 0 {
		return "", fmt.Errorf("entry %q has no recorded request", sr.Fingerprint)
	}
	var req compileRequest
	if err := json.Unmarshal(sr.ReqJSON, &req); err != nil {
		return "", fmt.Errorf("entry %q request corrupt: %w", sr.Fingerprint, err)
	}
	if dm.Empty() {
		req.Defects = nil
	} else {
		req.Defects = dm
	}
	c, g, opts, err := req.build()
	if err != nil {
		return "", err
	}
	fp, err := hilight.Fingerprint(c, g, opts...)
	if err != nil {
		return "", err
	}
	if _, ok := s.cache.Get(fp); ok {
		return fp, nil // an earlier feed (or request) already compiled it
	}
	// Only the defect map changed, so the stale entry's input circuit is
	// exactly the circuit the rebuilt request produced.
	parentC := c
	parentSched, err := hilight.DecodeScheduleBinary(sr.ScheduleBin)
	if err != nil {
		return "", fmt.Errorf("entry %q schedule corrupt: %w", sr.Fingerprint, err)
	}

	wctx, progress, stopWd := s.watchdog.guard(ctx, "POST /v1/defects")
	defer stopWd()
	opts = append(opts,
		hilight.WithContext(wctx),
		hilight.WithTimeout(s.cfg.DefaultTimeout),
		hilight.WithMetrics(s.cfg.Metrics),
		hilight.WithObserver(func(cs hilight.CycleStats) {
			progress()
			routeCycleHook(cs)
		}),
	)
	res, err := hilight.RecompileFrom(parentC, parentSched, c, g, opts...)
	if err != nil {
		return "", err
	}
	nsr, err := newStoredResult(fp, res)
	if err != nil {
		return "", err
	}
	nsr.Parent = sr.Fingerprint
	nsr.ReqJSON, _ = json.Marshal(&req)
	s.cache.Put(fp, nsr)
	if s.jobs.journal != nil {
		nsrJSON, _ := json.Marshal(nsr)
		if err := s.jobs.journal.appendSession(fp, sr.Fingerprint, nsrJSON); err != nil {
			return "", fmt.Errorf("journal session: %w", err)
		}
	}
	return fp, nil
}

// scheduleConflicts reports whether a stored schedule geometrically
// conflicts with the defect map: any braid path visiting a dead vertex
// or crossing a dead channel, any braid endpoint on a dead tile, or a
// placed qubit's tile going dead.
func scheduleConflicts(sr *storedResult, dm *hilight.DefectMap) (bool, error) {
	schd, err := hilight.DecodeScheduleBinary(sr.ScheduleBin)
	if err != nil {
		return true, err
	}
	deadTile := make(map[int]bool, len(dm.Tiles))
	for _, t := range dm.Tiles {
		deadTile[t] = true
	}
	deadVertex := make(map[int]bool, len(dm.Vertices))
	for _, v := range dm.Vertices {
		deadVertex[v] = true
	}
	deadChannel := make(map[[2]int]bool, len(dm.Channels))
	for _, ch := range dm.Channels {
		deadChannel[[2]int{ch[0], ch[1]}] = true
		deadChannel[[2]int{ch[1], ch[0]}] = true
	}
	if schd.Initial != nil {
		for _, t := range schd.Initial.QubitTile {
			if deadTile[t] {
				return true, nil
			}
		}
	}
	for _, layer := range schd.Layers {
		for _, b := range layer {
			if deadTile[b.CtlTile] || deadTile[b.TgtTile] {
				return true, nil
			}
			for i, v := range b.Path {
				if deadVertex[v] {
					return true, nil
				}
				if i > 0 && deadChannel[[2]int{b.Path[i-1], v}] {
					return true, nil
				}
			}
		}
	}
	return false, nil
}
