package service

import (
	"sync/atomic"

	"hilight"
)

// ChaosHooks are test-only fault-injection points threaded through the
// real request path. The chaos harness installs them to make a live
// hilightd panic or stall inside a compile — exercising the recovery
// middleware and the watchdog through the same code a production bug
// would take, not through a mock.
type ChaosHooks struct {
	// OnRouteCycle, when non-nil, runs on every routing cycle of every
	// sync compile, after the watchdog's progress tick. Panicking here
	// emulates a pass bug; sleeping past the watchdog window emulates a
	// livelock.
	OnRouteCycle func(hilight.CycleStats)
}

// chaosHooks is process-global so the harness can reach compiles it did
// not start. Production never installs hooks: the fast path is a single
// atomic load returning nil.
var chaosHooks atomic.Pointer[ChaosHooks]

// SetChaosHooks installs h for every subsequent compile (nil uninstalls).
// Test-only; not safe to leave installed in production.
func SetChaosHooks(h *ChaosHooks) { chaosHooks.Store(h) }

// routeCycleHook dispatches one routing cycle to the installed hooks.
func routeCycleHook(s hilight.CycleStats) {
	if h := chaosHooks.Load(); h != nil && h.OnRouteCycle != nil {
		h.OnRouteCycle(s)
	}
}
