package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hilight"
)

// postSession POSTs a compile request with an If-Fingerprint-Match
// header.
func postSession(t *testing.T, url, parent string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if parent != "" {
		req.Header.Set("If-Fingerprint-Match", parent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// sessionCircuits returns a parent QASM and a child QASM (parent plus
// one appended CX) for session tests.
func sessionCircuits(t *testing.T, n int) (string, string) {
	t.Helper()
	c := hilight.QFT(n)
	parent := hilight.FormatQASM(c)
	child := c.Clone()
	child.Add2(hilight.CX, 0, n-1)
	return parent, hilight.FormatQASM(child)
}

func TestSessionRecompile(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	parentQASM, childQASM := sessionCircuits(t, 8)
	resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"qasm": parentQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("cold compile: %d: %s", resp.StatusCode, body)
	}
	var cold compileResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}

	resp, body = postSession(t, ts.URL+"/v1/compile", cold.Fingerprint,
		map[string]any{"qasm": childQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("session compile: %d: %s", resp.StatusCode, body)
	}
	var warm compileResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.WarmCycles == 0 {
		t.Error("session recompile reported no warm cycles for an append edit")
	}
	if warm.Parent != cold.Fingerprint {
		t.Errorf("parent = %q, want %q", warm.Parent, cold.Fingerprint)
	}
	if len(warm.Delta) == 0 {
		t.Error("session response has no delta")
	}
	if warm.Fingerprint == cold.Fingerprint {
		t.Error("child fingerprint equals parent")
	}
	if warm.Cached {
		t.Error("fresh session recompile claims cached")
	}
	if got := s.sessions.Value(); got != 1 {
		t.Errorf("service/sessions = %d, want 1", got)
	}

	// The child is cached: repeating the session request (or a cold
	// request for the same circuit) hits.
	resp, body = postJSON(t, ts.URL+"/v1/compile", map[string]any{"qasm": childQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("repeat: %d: %s", resp.StatusCode, body)
	}
	var repeat compileResponse
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached || repeat.Fingerprint != warm.Fingerprint {
		t.Errorf("repeat not served from cache: cached=%v fp=%q", repeat.Cached, repeat.Fingerprint)
	}
}

func TestSessionParentMiss412(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, childQASM := sessionCircuits(t, 6)
	resp, body := postSession(t, ts.URL+"/v1/compile", "sha256:deadbeef",
		map[string]any{"qasm": childQASM})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("parent miss: status %d, want 412: %s", resp.StatusCode, body)
	}
	if got := s.sessionMisses.Value(); got != 1 {
		t.Errorf("service/session-parent-misses = %d, want 1", got)
	}
}

func TestSessionStreamRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, childQASM := sessionCircuits(t, 6)
	resp, body := postSession(t, ts.URL+"/v1/compile?stream=1", "sha256:deadbeef",
		map[string]any{"qasm": childQASM})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream+session: status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestDefectFeedSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	parentQASM, _ := sessionCircuits(t, 8)
	resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"qasm": parentQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("cold compile: %d: %s", resp.StatusCode, body)
	}
	var cold compileResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	schd, err := hilight.DecodeScheduleJSON(cold.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	dead := schd.Layers[0][0].Path[0]

	// A defect on a routed vertex invalidates and recompiles the entry.
	resp, body = postJSON(t, ts.URL+"/v1/defects", map[string]any{
		"defects": map[string]any{"vertices": []int{dead}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("defect feed: %d: %s", resp.StatusCode, body)
	}
	var feed defectsResponse
	if err := json.Unmarshal(body, &feed); err != nil {
		t.Fatal(err)
	}
	if feed.Checked != 1 || feed.Conflicting != 1 || feed.Evicted != 1 || feed.Recompiled != 1 {
		t.Fatalf("feed = %+v, want 1 checked/conflicting/evicted/recompiled", feed)
	}
	newFP := feed.Fingerprints[cold.Fingerprint]
	if newFP == "" || newFP == cold.Fingerprint {
		t.Fatalf("feed fingerprint mapping %q -> %q", cold.Fingerprint, newFP)
	}

	// The recompiled schedule is served from cache under the degraded
	// request and routes clear of the dead vertex.
	resp, body = postJSON(t, ts.URL+"/v1/compile", map[string]any{
		"qasm":    parentQASM,
		"defects": map[string]any{"vertices": []int{dead}},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("degraded compile: %d: %s", resp.StatusCode, body)
	}
	var after compileResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if !after.Cached || after.Fingerprint != newFP {
		t.Errorf("degraded request not served from feed's recompile: cached=%v fp=%q want %q",
			after.Cached, after.Fingerprint, newFP)
	}
	reschd, err := hilight.DecodeScheduleJSON(after.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range reschd.Layers {
		for _, b := range l {
			for _, v := range b.Path {
				if v == dead {
					t.Fatalf("recompiled schedule routes through dead vertex %d", v)
				}
			}
		}
	}
	if got := s.defectRecompiled.Value(); got != 1 {
		t.Errorf("service/defect-recompiles = %d, want 1", got)
	}

	// A feed that heals everything touches nothing: no schedule
	// geometrically conflicts with an empty map.
	resp, body = postJSON(t, ts.URL+"/v1/defects", map[string]any{})
	if resp.StatusCode != 200 {
		t.Fatalf("heal feed: %d: %s", resp.StatusCode, body)
	}
	var heal defectsResponse
	if err := json.Unmarshal(body, &heal); err != nil {
		t.Fatal(err)
	}
	if heal.Conflicting != 0 {
		t.Errorf("heal feed conflicted: %+v", heal)
	}
}

func TestSessionJournalResurrection(t *testing.T) {
	dir := t.TempDir()
	parentQASM, childQASM := sessionCircuits(t, 8)

	s1, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newServerOn(t, s1)
	resp, body := postJSON(t, ts1.URL+"/v1/compile", map[string]any{"qasm": parentQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("cold: %d: %s", resp.StatusCode, body)
	}
	var cold compileResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	resp, body = postSession(t, ts1.URL+"/v1/compile", cold.Fingerprint,
		map[string]any{"qasm": childQASM})
	if resp.StatusCode != 200 {
		t.Fatalf("session: %d: %s", resp.StatusCode, body)
	}
	var warm compileResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Kill() // crash: only fsynced records survive

	// The new life replays the session record: the child fingerprint
	// resolves as a parent without any recompilation having happened.
	s2, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newServerOn(t, s2)
	defer func() {
		ts2.Close()
		s2.Kill()
	}()
	grandchild := hilight.QFT(8)
	grandchild.Add2(hilight.CX, 0, 7)
	grandchild.Add2(hilight.CX, 1, 6)
	resp, body = postSession(t, ts2.URL+"/v1/compile", warm.Fingerprint,
		map[string]any{"qasm": hilight.FormatQASM(grandchild)})
	if resp.StatusCode != 200 {
		t.Fatalf("post-crash session against replayed child: %d: %s", resp.StatusCode, body)
	}
	var gc compileResponse
	if err := json.Unmarshal(body, &gc); err != nil {
		t.Fatal(err)
	}
	if gc.Parent != warm.Fingerprint {
		t.Errorf("grandchild parent = %q, want %q", gc.Parent, warm.Fingerprint)
	}
	if gc.WarmCycles == 0 {
		t.Error("resurrected parent produced no warm cycles")
	}
}

// newServerOn exposes an already-created Server on an httptest listener
// without the standard cleanup (resurrection tests manage lifecycle
// themselves).
func newServerOn(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}
