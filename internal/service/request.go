package service

import (
	"encoding/json"
	"fmt"
	"slices"
	"time"

	"hilight"
	"hilight/internal/wire"
)

// compileRequest is the JSON body of POST /v1/compile and each entry of
// POST /v1/jobs. Exactly one of QASM and Benchmark selects the circuit;
// the rest mirrors the hilight.Compile option surface that participates
// in the result (and therefore in the cache fingerprint).
type compileRequest struct {
	// QASM is OpenQASM 2.0 source for the circuit.
	QASM string `json:"qasm,omitempty"`
	// Benchmark names a built-in Table 1 benchmark instead of QASM.
	Benchmark string `json:"benchmark,omitempty"`
	// Grid selects the grid; nil means the rectangular M×(M−1) grid for
	// the circuit's width.
	Grid *gridSpec `json:"grid,omitempty"`
	// Method is the mapping method ("" = "hilight"; see GET /v1/methods).
	Method string `json:"method,omitempty"`
	// Seed seeds the randomized components (default 1).
	Seed *int64 `json:"seed,omitempty"`
	// QCO overrides the method's program-level-optimization preset.
	QCO *bool `json:"qco,omitempty"`
	// Compact enables the schedule-compaction pass.
	Compact bool `json:"compact,omitempty"`
	// Defects compiles against degraded hardware.
	Defects *hilight.DefectMap `json:"defects,omitempty"`
	// Fallback lists degradation methods tried in order when the primary
	// method cannot route.
	Fallback []string `json:"fallback,omitempty"`
	// TimeoutMS bounds the compile; 0 uses the server default, and values
	// above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// RouteWorkers sets the worker-pool size of the parallel route pass
	// for *-parallel methods (≤ 0 selects GOMAXPROCS; unset uses the
	// server's -route-workers default, then the method preset). Schedules
	// are byte-identical across pool sizes, so the field does not
	// participate in the cache fingerprint.
	RouteWorkers *int `json:"route_workers,omitempty"`
	// Lookahead overrides the parallel route pass's windowed-lookahead
	// depth. Like RouteWorkers it is an execution knob outside the cache
	// fingerprint: any depth yields an equivalent, fully valid schedule.
	Lookahead *int `json:"lookahead,omitempty"`
	// NoCache skips the schedule cache for this request (both lookup and
	// fill) — for benchmarking the cold path.
	NoCache bool `json:"no_cache,omitempty"`
}

// gridSpec selects the target grid.
type gridSpec struct {
	// Kind is "rect" (M×(M−1), the default) or "square" when W/H are
	// zero; ignored when explicit dimensions are given.
	Kind string `json:"kind,omitempty"`
	// W, H give explicit grid dimensions (both or neither).
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
	// FactoryW/FactoryH reserve a magic-state factory corner.
	FactoryW int `json:"factory_w,omitempty"`
	FactoryH int `json:"factory_h,omitempty"`
}

// build resolves the request into compile inputs: the parsed circuit,
// the grid, and the option list for Compile/Fingerprint. Request errors
// are returned as *apiError with a 4xx status.
func (cr *compileRequest) build() (*hilight.Circuit, *hilight.Grid, []hilight.Option, error) {
	var c *hilight.Circuit
	switch {
	case cr.QASM != "" && cr.Benchmark != "":
		return nil, nil, nil, badRequest("request has both qasm and benchmark; pick one")
	case cr.QASM != "":
		var err error
		c, err = hilight.ParseQASM("request", cr.QASM)
		if err != nil {
			return nil, nil, nil, badRequest("invalid qasm: %v", err)
		}
	case cr.Benchmark != "":
		var ok bool
		c, ok = hilight.Benchmark(cr.Benchmark)
		if !ok {
			return nil, nil, nil, badRequest("unknown benchmark %q (see /v1/benchmarks)", cr.Benchmark)
		}
	default:
		return nil, nil, nil, badRequest("request needs qasm or benchmark")
	}

	g, err := cr.buildGrid(c.NumQubits)
	if err != nil {
		return nil, nil, nil, err
	}

	known := hilight.Methods()
	opts := []hilight.Option{}
	if cr.Method != "" {
		if !slices.Contains(known, cr.Method) {
			return nil, nil, nil, badRequest("unknown method %q (see /v1/methods)", cr.Method)
		}
		opts = append(opts, hilight.WithMethod(cr.Method))
	}
	if cr.Seed != nil {
		opts = append(opts, hilight.WithSeed(*cr.Seed))
	}
	if cr.QCO != nil {
		opts = append(opts, hilight.WithQCO(*cr.QCO))
	}
	if cr.Compact {
		opts = append(opts, hilight.WithCompaction())
	}
	if !cr.Defects.Empty() {
		opts = append(opts, hilight.WithDefects(cr.Defects))
	}
	if len(cr.Fallback) > 0 {
		for _, m := range cr.Fallback {
			if !slices.Contains(known, m) {
				return nil, nil, nil, badRequest("unknown fallback method %q (see /v1/methods)", m)
			}
		}
		opts = append(opts, hilight.WithFallback(cr.Fallback...))
	}
	if cr.RouteWorkers != nil {
		const maxRouteWorkers = 1024 // hostile-input bound on goroutines per compile
		if *cr.RouteWorkers > maxRouteWorkers {
			return nil, nil, nil, badRequest("route_workers %d too large (max %d)", *cr.RouteWorkers, maxRouteWorkers)
		}
		opts = append(opts, hilight.WithRouteWorkers(*cr.RouteWorkers))
	}
	if cr.Lookahead != nil {
		const maxLookahead = 1 << 16 // window is a depth, not a buffer; just bound absurdity
		if *cr.Lookahead < 0 || *cr.Lookahead > maxLookahead {
			return nil, nil, nil, badRequest("lookahead %d out of range [0, %d]", *cr.Lookahead, maxLookahead)
		}
		opts = append(opts, hilight.WithLookahead(*cr.Lookahead))
	}
	return c, g, opts, nil
}

func (cr *compileRequest) buildGrid(qubits int) (*hilight.Grid, error) {
	gs := cr.Grid
	if gs == nil {
		gs = &gridSpec{}
	}
	if (gs.W > 0) != (gs.H > 0) {
		return nil, badRequest("grid needs both w and h (got %dx%d)", gs.W, gs.H)
	}
	if (gs.FactoryW > 0) != (gs.FactoryH > 0) {
		return nil, badRequest("factory needs both factory_w and factory_h")
	}
	if gs.W > 0 {
		if gs.FactoryW > 0 {
			return nil, badRequest("explicit w/h and a factory reservation are mutually exclusive; use kind with factory_w/factory_h")
		}
		const maxDim = 1 << 11 // matches the decoder's hostile-input bound
		if gs.W > maxDim || gs.H > maxDim {
			return nil, badRequest("grid %dx%d too large (max %dx%d)", gs.W, gs.H, maxDim, maxDim)
		}
		return hilight.NewGrid(gs.W, gs.H), nil
	}
	rect := true
	switch gs.Kind {
	case "", "rect":
	case "square":
		rect = false
	default:
		return nil, badRequest("unknown grid kind %q (rect, square)", gs.Kind)
	}
	if gs.FactoryW > 0 {
		g, err := hilight.GridWithFactory(qubits, gs.FactoryW, gs.FactoryH, rect)
		if err != nil {
			return nil, badRequest("factory: %v", err)
		}
		return g, nil
	}
	if rect {
		return hilight.RectGrid(qubits), nil
	}
	return hilight.SquareGrid(qubits), nil
}

// stageTrace is the wire form of one Result.Trace entry.
type stageTrace struct {
	Stage      string           `json:"stage"`
	DurationNS int64            `json:"duration_ns"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// compileResponse is the JSON body of a successful compile: the content
// address, the schedule, and the metrics/trace of the compile that
// produced it. Cached responses carry the original compile's runtime and
// trace with Cached set. Exactly one of Schedule and ScheduleBin is set,
// by content negotiation: the default JSON form carries the schedule
// inline, an Accept: application/x-hilight-sched request gets the binary
// wire payload (base64 in the JSON envelope) instead.
type compileResponse struct {
	Fingerprint    string          `json:"fingerprint"`
	Cached         bool            `json:"cached"`
	Method         string          `json:"method"`
	Degraded       bool            `json:"degraded,omitempty"`
	FallbackMethod string          `json:"fallback_method,omitempty"`
	LatencyCycles  int             `json:"latency_cycles"`
	PathLen        int             `json:"path_len"`
	ResUtil        float64         `json:"resutil"`
	RuntimeNS      int64           `json:"runtime_ns"`
	// WarmCycles, Parent and Delta are set on session recompiles
	// (If-Fingerprint-Match): how many parent layers were replayed
	// verbatim, the parent fingerprint, and the sched.Compare diff
	// against the parent schedule.
	WarmCycles  int             `json:"warm_cycles,omitempty"`
	Parent      string          `json:"parent,omitempty"`
	Delta       json.RawMessage `json:"delta,omitempty"`
	Trace       []stageTrace    `json:"trace,omitempty"`
	Schedule    json.RawMessage `json:"schedule,omitempty"`
	ScheduleBin []byte          `json:"schedule_bin,omitempty"`
}

// storedResult is the canonical stored form of a successful compile: the
// response metadata plus the schedule in the binary wire encoding. It is
// both the schedule cache's value and the journal's per-job completion
// payload (base64 inside the JSONL envelope), so the cache cap and the
// journal are charged the compact encoding — the HTTP layer transcodes
// to JSON on demand. Stored entries are immutable and shared; copy
// before flipping Cached.
type storedResult struct {
	Fingerprint    string       `json:"fingerprint"`
	Cached         bool         `json:"cached"`
	Method         string       `json:"method"`
	Degraded       bool         `json:"degraded,omitempty"`
	FallbackMethod string       `json:"fallback_method,omitempty"`
	LatencyCycles  int          `json:"latency_cycles"`
	PathLen        int          `json:"path_len"`
	ResUtil        float64      `json:"resutil"`
	RuntimeNS      int64        `json:"runtime_ns"`
	WarmCycles     int          `json:"warm_cycles,omitempty"`
	Parent         string       `json:"parent,omitempty"`
	Delta          json.RawMessage `json:"delta,omitempty"`
	Trace          []stageTrace `json:"trace,omitempty"`
	ScheduleBin    []byte       `json:"schedule_bin"`
	// ReqJSON is the canonical compile request that produced this
	// result. It makes the entry a viable session parent — building the
	// request is deterministic, so If-Fingerprint-Match reconstructs the
	// parent's input circuit from it — and lets the live defect feed
	// re-issue the request under a rewritten defect map. The input
	// circuit is deliberately not stored separately: it would double the
	// metadata footprint every entry pays toward the cache byte cap.
	ReqJSON json.RawMessage `json:"req,omitempty"`
}

// newStoredResult converts a compile result to its stored form, encoding
// the schedule with the binary codec.
func newStoredResult(fingerprint string, res *hilight.Result) (*storedResult, error) {
	bin, err := wire.Binary.Encode(res.Schedule)
	if err != nil {
		return nil, fmt.Errorf("encode schedule: %w", err)
	}
	sr := &storedResult{
		Fingerprint:    fingerprint,
		Method:         res.Method,
		Degraded:       res.Degraded,
		FallbackMethod: res.FallbackMethod,
		LatencyCycles:  res.Latency,
		PathLen:        res.PathLen,
		ResUtil:        res.ResUtil,
		RuntimeNS:      res.Runtime.Nanoseconds(),
		WarmCycles:     res.WarmCycles,
		ScheduleBin:    bin,
	}
	if res.Delta != nil {
		// The field types cannot fail to marshal.
		sr.Delta, _ = json.Marshal(res.Delta)
	}
	for _, st := range res.Trace {
		tr := stageTrace{Stage: st.Stage, DurationNS: st.Duration.Nanoseconds()}
		if len(st.Counters) > 0 {
			tr.Counters = make(map[string]int64, len(st.Counters))
			for _, c := range st.Counters {
				tr.Counters[c.Name] = c.Value
			}
		}
		sr.Trace = append(sr.Trace, tr)
	}
	return sr, nil
}

// meta returns the response envelope without a schedule payload — the
// shared first step of both content negotiations (and the streaming
// trailer's metadata frame).
func (sr *storedResult) meta() *compileResponse {
	return &compileResponse{
		Fingerprint:    sr.Fingerprint,
		Cached:         sr.Cached,
		Method:         sr.Method,
		Degraded:       sr.Degraded,
		FallbackMethod: sr.FallbackMethod,
		LatencyCycles:  sr.LatencyCycles,
		PathLen:        sr.PathLen,
		ResUtil:        sr.ResUtil,
		RuntimeNS:      sr.RuntimeNS,
		WarmCycles:     sr.WarmCycles,
		Parent:         sr.Parent,
		Delta:          sr.Delta,
		Trace:          sr.Trace,
	}
}

// response renders the stored result for the negotiated codec: the JSON
// codec transcodes the stored binary schedule back to the canonical JSON
// form (byte-stable — decode+re-encode of a schedule is deterministic),
// the binary codec passes the stored payload through untouched.
func (sr *storedResult) response(c wire.Codec) (*compileResponse, error) {
	resp := sr.meta()
	if c.Name() == wire.Binary.Name() {
		resp.ScheduleBin = sr.ScheduleBin
		return resp, nil
	}
	s, err := wire.Binary.Decode(sr.ScheduleBin)
	if err != nil {
		return nil, fmt.Errorf("stored schedule corrupt: %w", err)
	}
	schedJSON, err := hilight.EncodeScheduleJSON(s)
	if err != nil {
		return nil, fmt.Errorf("encode schedule: %w", err)
	}
	resp.Schedule = schedJSON
	return resp, nil
}

// sizeOf is the stored result's cache footprint: the binary schedule
// payload plus the actual marshaled size of the metadata — the true
// encoded size, not an estimate, so the byte cap admits exactly as many
// entries as their encodings occupy.
func (sr *storedResult) sizeOf() int64 {
	meta := *sr
	meta.ScheduleBin = nil
	b, err := json.Marshal(&meta)
	if err != nil {
		// Unreachable for the field types involved; stay conservative.
		return int64(len(sr.ScheduleBin)) + 512
	}
	return int64(len(sr.ScheduleBin) + len(b))
}

// payloadSize is the schedule payload's share of sizeOf, metered under
// cache/encoded-bytes.
func (sr *storedResult) payloadSize() int64 { return int64(len(sr.ScheduleBin)) }

// apiError is an error with an HTTP status; handlers render it as the
// JSON error envelope.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string { return e.Message }

func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: 400, Message: fmt.Sprintf(format, args...)}
}

// clampTimeout resolves a request's timeout against the server bounds.
func clampTimeout(reqMS int64, def, max time.Duration) time.Duration {
	d := def
	if reqMS > 0 {
		d = time.Duration(reqMS) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
