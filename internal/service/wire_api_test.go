package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"hilight"
	"hilight/internal/wire"
)

func doCompile(t *testing.T, url, accept string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestCompileBinaryNegotiation pins the Accept negotiation on
// POST /v1/compile: the binary content type answers the raw wire payload
// with the envelope metadata in headers, and the payload decodes to the
// same schedule the default JSON envelope carries.
func TestCompileBinaryNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"benchmark": "QFT-10"}

	resp, raw := doCompile(t, ts.URL+"/v1/compile", wire.Binary.ContentType(), req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.Binary.ContentType() {
		t.Fatalf("Content-Type %q, want %q", ct, wire.Binary.ContentType())
	}
	if resp.Header.Get("X-Hilight-Fingerprint") == "" {
		t.Error("binary response missing X-Hilight-Fingerprint")
	}
	if got := resp.Header.Get("X-Hilight-Cached"); got != "false" {
		t.Errorf("X-Hilight-Cached = %q on a fresh compile", got)
	}
	binSched, err := wire.Binary.Decode(raw)
	if err != nil {
		t.Fatalf("binary body undecodable: %v", err)
	}

	// The same request through the default negotiation carries the same
	// schedule as JSON — and is served from the cache the binary compile
	// just filled.
	respJ, bodyJ := doCompile(t, ts.URL+"/v1/compile", "", req)
	if respJ.StatusCode != 200 {
		t.Fatalf("json status %d: %s", respJ.StatusCode, bodyJ)
	}
	var env compileResponse
	if err := json.Unmarshal(bodyJ, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Cached {
		t.Error("JSON follow-up missed the cache entry the binary compile filled")
	}
	if len(env.ScheduleBin) != 0 {
		t.Error("default JSON response leaked schedule_bin")
	}
	// The envelope re-indents the embedded schedule, so compare through a
	// decode/re-encode normalization.
	jsonSched, err := hilight.DecodeScheduleJSON(env.Schedule)
	if err != nil {
		t.Fatalf("JSON schedule undecodable: %v", err)
	}
	want, err := hilight.EncodeScheduleJSON(binSched)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hilight.EncodeScheduleJSON(jsonSched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("binary and JSON negotiations returned different schedules")
	}

	// A binary cache hit flags itself in the header and repeats the bytes.
	resp2, raw2 := doCompile(t, ts.URL+"/v1/compile", wire.Binary.ContentType(), req)
	if resp2.StatusCode != 200 {
		t.Fatalf("binary cache-hit status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Hilight-Cached"); got != "true" {
		t.Errorf("X-Hilight-Cached = %q on a cache hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("cached binary payload differs from the compiled one")
	}
	if len(raw) >= len(env.Schedule) {
		t.Errorf("binary payload (%d B) not smaller than JSON schedule (%d B)", len(raw), len(env.Schedule))
	}
}

// TestCompileStreaming pins ?stream=1: the response is a frame stream
// that reassembles into the same schedule the JSON envelope would carry,
// with the envelope metadata in the end-frame trailer — fresh compiles
// and cache hits alike.
func TestCompileStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"benchmark": "QFT-10"}

	for _, phase := range []struct {
		name   string
		cached bool
	}{{"fresh", false}, {"cache-hit", true}} {
		resp, raw := doCompile(t, ts.URL+"/v1/compile?stream=1", "", req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", phase.name, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wire.StreamContentType {
			t.Fatalf("%s: Content-Type %q, want %q", phase.name, ct, wire.StreamContentType)
		}
		schd, meta, err := wire.ReadStream(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: ReadStream: %v", phase.name, err)
		}
		if schd == nil || len(schd.Layers) == 0 {
			t.Fatalf("%s: stream reassembled to an empty schedule", phase.name)
		}
		var trailer compileResponse
		if err := json.Unmarshal(meta, &trailer); err != nil {
			t.Fatalf("%s: end-frame metadata not a response envelope: %v", phase.name, err)
		}
		if trailer.Cached != phase.cached {
			t.Errorf("%s: trailer cached = %v, want %v", phase.name, trailer.Cached, phase.cached)
		}
		if trailer.Fingerprint != resp.Header.Get("X-Hilight-Fingerprint") {
			t.Errorf("%s: trailer fingerprint disagrees with header", phase.name)
		}
		if len(schd.Layers) != trailer.LatencyCycles {
			t.Errorf("%s: %d streamed layers, trailer says %d cycles", phase.name, len(schd.Layers), trailer.LatencyCycles)
		}
	}
}

// TestStreamRejectsIncompatibleOptions pins the 400s: streamed frames
// are the router's raw output, so post-routing rewrites can't stream.
func TestStreamRejectsIncompatibleOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		req  map[string]any
	}{
		{"compact", map[string]any{"benchmark": "QFT-10", "compact": true}},
		{"fallback", map[string]any{"benchmark": "QFT-10", "fallback": []string{"hilight-map"}}},
	} {
		resp, body := doCompile(t, ts.URL+"/v1/compile?stream=1", "", tc.req)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "stream=1 cannot be combined") {
			t.Errorf("%s: error body does not explain the conflict: %s", tc.name, body)
		}
	}
}

// TestJobsBinaryNegotiation pins content negotiation on job polls: the
// binary Accept renders schedule_bin payloads, the default renders the
// historical inline JSON schedules, and the two agree.
func TestJobsBinaryNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []any{map[string]any{"benchmark": "QFT-10"}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	poll := func(accept string) jobStatus {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+sub.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("poll status %d: %s", resp.StatusCode, out)
		}
		var st jobStatus
		if err := json.Unmarshal(out, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	var jsonSt jobStatus
	for {
		jsonSt = poll("")
		if jsonSt.Status == "done" {
			break
		}
	}
	binSt := poll(wire.Binary.ContentType())
	if len(jsonSt.Results) != 1 || len(binSt.Results) != 1 {
		t.Fatalf("results: json %d, binary %d, want 1 each", len(jsonSt.Results), len(binSt.Results))
	}
	jr, br := jsonSt.Results[0].Result, binSt.Results[0].Result
	if jr == nil || br == nil {
		t.Fatalf("missing results: json %+v, binary %+v", jsonSt.Results[0], binSt.Results[0])
	}
	if len(jr.Schedule) == 0 || len(jr.ScheduleBin) != 0 {
		t.Error("default poll should carry inline JSON schedule only")
	}
	if len(br.ScheduleBin) == 0 || len(br.Schedule) != 0 {
		t.Error("binary poll should carry schedule_bin only")
	}
	schd, err := wire.Binary.Decode(br.ScheduleBin)
	if err != nil {
		t.Fatalf("schedule_bin undecodable: %v", err)
	}
	jsonSched, err := hilight.DecodeScheduleJSON(jr.Schedule)
	if err != nil {
		t.Fatalf("inline schedule undecodable: %v", err)
	}
	want, err := hilight.EncodeScheduleJSON(schd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hilight.EncodeScheduleJSON(jsonSched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("binary and JSON polls disagree on the schedule")
	}
}
