// Package service implements the hilightd compile-as-a-service layer: an
// HTTP API over the public hilight compiler with a content-addressed
// schedule cache in front and admission control (bounded worker pool,
// bounded queue, backpressure, graceful drain) behind it.
//
// Surface-code compilation is deterministic — the same circuit on the
// same grid with the same options always yields the same schedule — so
// results are cached under the hilight.Fingerprint content address and
// identical requests are served without recompiling.
package service

import (
	"container/list"
	"sync"

	"hilight/internal/obs"
)

// scheduleCache is a bounded, size-capped LRU of stored compile results
// keyed by their hilight.Fingerprint digest. Values hold the schedule in
// the binary wire encoding, and the byte cap is charged each entry's
// true encoded size (binary payload + marshaled metadata) — computed
// here, on insert, so callers cannot under- or over-charge. Entries are
// immutable once inserted; Get returns the shared pointer and callers
// must copy before mutating (the handlers copy to flip the Cached flag).
//
// The cache meters itself under the cache/... family: hits, misses and
// evictions counters plus bytes, encoded-bytes (the schedule payloads
// alone) and entries gauges.
type scheduleCache struct {
	mu    sync.Mutex
	max   int64 // capacity in bytes; <= 0 disables the cache
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions      *obs.Counter
	bytes, encodedBytes, entries *obs.Gauge
}

// cacheItem is one LRU entry: the key (so eviction can unlink the map
// entry), the stored result, and its accounted sizes.
type cacheItem struct {
	key     string
	stored  *storedResult
	size    int64
	payload int64
}

func newScheduleCache(maxBytes int64, m *obs.Registry) *scheduleCache {
	return &scheduleCache{
		max:          maxBytes,
		ll:           list.New(),
		items:        make(map[string]*list.Element),
		hits:         m.Counter("cache/hits"),
		misses:       m.Counter("cache/misses"),
		evictions:    m.Counter("cache/evictions"),
		bytes:        m.Gauge("cache/bytes"),
		encodedBytes: m.Gauge("cache/encoded-bytes"),
		entries:      m.Gauge("cache/entries"),
	}
}

// Get returns the stored result for key, bumping its recency. The
// returned pointer is shared: callers must treat it as read-only.
func (c *scheduleCache) Get(key string) (*storedResult, bool) {
	if c.max <= 0 {
		c.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheItem).stored, true
}

// Put inserts sr under key, charging its true encoded size (sizeOf)
// against the cap and evicting least-recently-used entries until the
// insert fits. An entry larger than the whole cache is not stored.
// Re-inserting an existing key refreshes its recency and keeps the first
// value (results are deterministic per key, so the values are
// interchangeable).
func (c *scheduleCache) Put(key string, sr *storedResult) {
	size := sr.sizeOf()
	if c.max <= 0 || size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.size+size > c.max {
		last := c.ll.Back()
		if last == nil {
			break
		}
		c.removeLocked(last)
		c.evictions.Inc()
	}
	payload := sr.payloadSize()
	el := c.ll.PushFront(&cacheItem{key: key, stored: sr, size: size, payload: payload})
	c.items[key] = el
	c.size += size
	c.bytes.Add(size)
	c.encodedBytes.Add(payload)
	c.entries.Add(1)
}

// Snapshot returns the stored results currently cached, most recently
// used first. The pointers are shared and read-only, exactly as with
// Get; recency is not bumped. The defect feed iterates a snapshot so
// conflict checks run without holding the cache lock.
func (c *scheduleCache) Snapshot() []*storedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*storedResult, 0, len(c.items))
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheItem).stored)
	}
	return out
}

// Remove drops key from the cache (no-op when absent). Used by the
// defect feed to invalidate entries whose schedules conflict with the
// new defect map.
func (c *scheduleCache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// Len returns the number of cached entries.
func (c *scheduleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *scheduleCache) removeLocked(el *list.Element) {
	it := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.size -= it.size
	c.bytes.Add(-it.size)
	c.encodedBytes.Add(-it.payload)
	c.entries.Add(-1)
}
