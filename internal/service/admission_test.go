package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"hilight/internal/obs"
)

func TestAdmissionPoolAndQueueBounds(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(2, 1, 0, m) // 2 workers, 1 queued

	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Third request queues; run it in a goroutine since it blocks. Wait
	// for its ticket claim to land (the queued gauge) before probing.
	got3 := make(chan error, 1)
	var rel3 func()
	go func() {
		r, err := a.acquire(context.Background())
		rel3 = r
		got3 <- err
	}()
	waitGauge(t, m, "service/queued", 1)

	// Workers and queue are now both full: a fourth acquire bounces
	// immediately with errQueueFull.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("fourth acquire returned %v, want errQueueFull", err)
	}

	rel1() // frees a worker slot; the queued request proceeds
	if err := <-got3; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	rel2()
	rel3()

	snap := m.Snapshot()
	if v, _ := snap.Counter("service/admitted"); v != 3 {
		t.Errorf("admitted = %d, want 3", v)
	}
	if v, _ := snap.Counter("service/rejected"); v < 1 {
		t.Errorf("rejected = %d, want >= 1", v)
	}
	if v, _ := snap.Gauge("service/inflight"); v != 0 {
		t.Errorf("inflight = %d after all releases, want 0", v)
	}
	if v, _ := snap.Gauge("service/queued"); v != 0 {
		t.Errorf("queued = %d after all releases, want 0", v)
	}
}

// waitGauge polls the registry until the named gauge reaches want.
func waitGauge(t *testing.T, m *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := m.Snapshot().Gauge(name); v == want {
			return
		}
		if time.Now().After(deadline) {
			v, _ := m.Snapshot().Gauge(name)
			t.Fatalf("gauge %s = %d, want %d (timed out)", name, v, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionCanceledWhileQueued(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(1, 4, 0, m)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire returned %v, want context.Canceled", err)
	}
	rel()
	// The canceled waiter must have returned its ticket: the queue is
	// empty again and a fresh acquire succeeds immediately.
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after canceled waiter: %v", err)
	}
	rel2()
}

func TestAdmissionTenantQuota(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(4, 4, 2, m) // quota: 2 concurrent admissions per tenant

	relA1, err := a.acquireFor(context.Background(), "acme", priorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	relA2, err := a.acquireFor(context.Background(), "acme", priorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquireFor(context.Background(), "acme", priorityInteractive); !errors.Is(err, errQuotaExceeded) {
		t.Fatalf("third acme acquire returned %v, want errQuotaExceeded", err)
	}
	// A different tenant is unaffected by acme's saturation.
	relB, err := a.acquireFor(context.Background(), "globex", priorityInteractive)
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	relA1()
	// Releasing one admission reopens the quota.
	relA3, err := a.acquireFor(context.Background(), "acme", priorityInteractive)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	relA2()
	relA3()
	relB()
	if v, _ := m.Snapshot().Counter("service/quota-rejected"); v != 1 {
		t.Errorf("quota-rejected = %d, want 1", v)
	}
	a.mu.Lock()
	if len(a.tenants) != 0 {
		t.Errorf("tenant map not empty after all releases: %v", a.tenants)
	}
	a.mu.Unlock()
}

func TestAdmissionTenantReleaseIdempotent(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(1, 1, 1, m)
	rel, err := a.acquireTenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not underflow the count
	rel2, err := a.acquireTenant("acme")
	if err != nil {
		t.Fatalf("acquire after double release: %v", err)
	}
	rel2()
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := a.tenants["acme"]; n != 0 {
		t.Errorf("acme count = %d after releases, want 0", n)
	}
}

func TestAdmissionBatchPriorityYieldsAtHalfCap(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(2, 2, 0, m) // tickets cap 4; half cap = 2

	// An empty controller admits batch work.
	rel1, err := a.acquireFor(context.Background(), "", priorityBatch)
	if err != nil {
		t.Fatalf("batch acquire on idle controller: %v", err)
	}
	rel2, err := a.acquireFor(context.Background(), "", priorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	// Two of four tickets held: batch traffic now bounces while
	// interactive still has the remaining headroom.
	if _, err := a.acquireFor(context.Background(), "", priorityBatch); !errors.Is(err, errQueueFull) {
		t.Fatalf("batch acquire at half cap returned %v, want errQueueFull", err)
	}
	got3 := make(chan error, 1)
	var rel3 func()
	go func() {
		r, err := a.acquireFor(context.Background(), "", priorityInteractive)
		rel3 = r
		got3 <- err
	}()
	waitGauge(t, m, "service/queued", 1)
	rel1()
	if err := <-got3; err != nil {
		t.Fatalf("interactive acquire past half cap: %v", err)
	}
	rel2()
	rel3()
}

func TestAdmissionDrain(t *testing.T) {
	m := obs.NewRegistry()
	a := newAdmission(1, 1, 0, m)
	a.drain()
	if _, err := a.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("acquire on draining controller returned %v", err)
	}
	a.drain() // idempotent
}
