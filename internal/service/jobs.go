package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hilight"
	"hilight/internal/obs"
)

// jobsRequest is the JSON body of POST /v1/jobs: a batch of circuits
// compiled asynchronously through hilight.CompileAll. Mirroring
// CompileAll's semantics, the options (method, seed, qco, compact,
// defects, fallback) are batch-level and shared by every entry; entries
// select only the circuit and grid.
type jobsRequest struct {
	// Jobs lists the batch's circuit/grid pairs.
	Jobs []batchEntry `json:"jobs"`
	// Method, Seed, QCO, Compact, Defects and Fallback apply to every
	// job, exactly as one option list applies to a whole CompileAll.
	Method   string             `json:"method,omitempty"`
	Seed     *int64             `json:"seed,omitempty"`
	QCO      *bool              `json:"qco,omitempty"`
	Compact  bool               `json:"compact,omitempty"`
	Defects  *hilight.DefectMap `json:"defects,omitempty"`
	Fallback []string           `json:"fallback,omitempty"`
	// RouteWorkers and Lookahead tune the parallel route pass for every
	// job; unset falls back to the server default, then the method preset.
	// Execution knobs only — excluded from each job's fingerprint.
	RouteWorkers *int `json:"route_workers,omitempty"`
	Lookahead    *int `json:"lookahead,omitempty"`
	// Parallelism bounds the batch's worker pool; 0 (or values above the
	// server's worker count) use the server's worker count.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS bounds the whole batch; 0 uses the server default scaled
	// by the batch's depth per worker.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// batchEntry is one async job: a circuit (QASM or benchmark) and its
// grid.
type batchEntry struct {
	QASM      string    `json:"qasm,omitempty"`
	Benchmark string    `json:"benchmark,omitempty"`
	Grid      *gridSpec `json:"grid,omitempty"`
}

// jobStatus is the JSON body of GET /v1/jobs/{id}.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // "running" or "done"
	Count  int    `json:"count"`
	// Finished counts terminally-finished jobs, live-updated while the
	// batch runs (fed by the batch's lifecycle events).
	Finished int `json:"finished"`
	// Results is present once Status is "done", in job order.
	Results []jobResult `json:"results,omitempty"`
}

// jobResult is one batch entry's outcome: a compile response or an
// error, never both (the BatchResult invariant on the wire).
type jobResult struct {
	Error  string           `json:"error,omitempty"`
	Result *compileResponse `json:"result,omitempty"`
}

// batchJob is one stored async batch.
type batchJob struct {
	id       string
	count    int
	done     chan struct{} // closed when results are ready
	finished atomic.Int64  // terminally-finished jobs, for live polls

	mu      sync.Mutex
	results []jobResult
}

// jobStore owns the async batches: it runs each through CompileAll on a
// background goroutine, serves status polls, and bounds memory by
// evicting the oldest completed batches beyond maxStored. Shutdown
// cancels the store context and waits for running batches to drain.
type jobStore struct {
	mu        sync.Mutex
	seq       int
	jobs      map[string]*batchJob
	order     []string // insertion order, for eviction
	maxStored int

	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	metrics *obs.Registry
	// events, when non-nil, additionally receives every batch job's
	// lifecycle events (the log bridge in hilightd).
	events obs.EventObserver

	submitted *obs.Counter
	completed *obs.Counter
	active    *obs.Gauge
}

func newJobStore(maxStored int, m *obs.Registry) *jobStore {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobStore{
		jobs:      make(map[string]*batchJob),
		maxStored: maxStored,
		ctx:       ctx,
		cancel:    cancel,
		metrics:   m,
		submitted: m.Counter("jobs/batches"),
		completed: m.Counter("jobs/batches-completed"),
		active:    m.Gauge("jobs/batches-active"),
	}
}

// submit validates the batch, registers it, and launches its CompileAll
// run. It returns the batch id immediately.
func (s *jobStore) submit(req *jobsRequest, workers, routeWorkers int, defTimeout, maxTimeout time.Duration) (string, error) {
	if len(req.Jobs) == 0 {
		return "", badRequest("jobs batch is empty")
	}
	if req.RouteWorkers == nil && routeWorkers != 0 {
		req.RouteWorkers = &routeWorkers // server-wide default, as in /v1/compile
	}
	const maxBatch = 4096
	if len(req.Jobs) > maxBatch {
		return "", badRequest("jobs batch has %d entries (max %d)", len(req.Jobs), maxBatch)
	}
	// Resolve every entry up front so a malformed entry fails the submit
	// synchronously with a 400 instead of surfacing later in a poll. The
	// per-entry compileRequest carries the batch-level options, so each
	// fingerprint describes exactly the compile CompileAll will run.
	batch := make([]hilight.BatchJob, len(req.Jobs))
	fps := make([]string, len(req.Jobs))
	var shared []hilight.Option
	for i, e := range req.Jobs {
		cr := compileRequest{
			QASM: e.QASM, Benchmark: e.Benchmark, Grid: e.Grid,
			Method: req.Method, Seed: req.Seed, QCO: req.QCO,
			Compact: req.Compact, Defects: req.Defects, Fallback: req.Fallback,
			RouteWorkers: req.RouteWorkers, Lookahead: req.Lookahead,
		}
		c, g, opts, err := cr.build()
		if err != nil {
			if ae, ok := err.(*apiError); ok {
				return "", &apiError{Status: ae.Status, Message: fmt.Sprintf("job %d: %s", i, ae.Message)}
			}
			return "", err
		}
		fp, err := hilight.Fingerprint(c, g, opts...)
		if err != nil {
			return "", badRequest("job %d: %v", i, err)
		}
		fps[i] = fp
		batch[i] = hilight.BatchJob{Circuit: c, Grid: g}
		if i == 0 {
			shared = opts
		}
	}

	parallelism := req.Parallelism
	if parallelism <= 0 || parallelism > workers {
		parallelism = workers
	}
	// One deadline for the whole batch: the per-compile default scaled by
	// the batch's depth per worker, unless the request asks for less.
	waves := (len(batch) + parallelism - 1) / parallelism
	timeout := clampTimeout(req.TimeoutMS, time.Duration(waves)*defTimeout, time.Duration(waves)*maxTimeout)

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := &batchJob{id: id, count: len(batch), done: make(chan struct{})}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictLocked()
	s.mu.Unlock()

	s.submitted.Inc()
	s.active.Add(1)
	s.wg.Add(1)
	go s.run(j, batch, fps, shared, parallelism, timeout)
	return id, nil
}

// run executes the batch and publishes its results.
func (s *jobStore) run(j *batchJob, batch []hilight.BatchJob, fps []string, shared []hilight.Option, parallelism int, timeout time.Duration) {
	defer s.wg.Done()
	opts := append([]hilight.Option{}, shared...)
	opts = append(opts,
		hilight.WithContext(s.ctx),
		hilight.WithTimeout(timeout),
		hilight.WithMetrics(s.metrics),
		hilight.WithEvents(func(e hilight.CompileEvent) {
			if e.Kind == hilight.EventJobFinish || e.Kind == hilight.EventJobPanic {
				j.finished.Add(1)
			}
			if s.events != nil {
				s.events.OnEvent(e)
			}
		}),
	)
	results := hilight.CompileAll(batch, parallelism, opts...)

	wire := make([]jobResult, len(results))
	for i, br := range results {
		if br.Err != nil {
			wire[i] = jobResult{Error: br.Err.Error()}
			continue
		}
		resp, err := newCompileResponse(fps[i], br.Result)
		if err != nil {
			wire[i] = jobResult{Error: err.Error()}
			continue
		}
		wire[i] = jobResult{Result: resp}
	}
	j.mu.Lock()
	j.results = wire
	j.mu.Unlock()
	close(j.done)
	s.completed.Inc()
	s.active.Add(-1)
}

// status returns the batch's poll view.
func (s *jobStore) status(id string) (*jobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	st := &jobStatus{ID: j.id, Count: j.count}
	select {
	case <-j.done:
		st.Status = "done"
		st.Finished = j.count
		j.mu.Lock()
		st.Results = j.results
		j.mu.Unlock()
	default:
		st.Status = "running"
		st.Finished = int(j.finished.Load())
	}
	return st, true
}

// evictLocked drops the oldest completed batches beyond maxStored.
// Running batches are never evicted — their goroutine still needs the
// entry, and a poller would lose a batch it just submitted.
func (s *jobStore) evictLocked() {
	for len(s.jobs) > s.maxStored {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			select {
			case <-j.done:
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything is still running; allow the overshoot
		}
	}
}

// shutdown drains running batches: it first waits for them to finish
// naturally, and only when ctx expires cancels the remainder (CompileAll
// then drains promptly — undispatched jobs fail ErrCanceled directly)
// and waits for the goroutines to exit.
func (s *jobStore) shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return fmt.Errorf("service: job store drain cut short: %w", ctx.Err())
	}
}
