package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hilight"
	"hilight/internal/obs"
	"hilight/internal/wire"
)

// jobsRequest is the JSON body of POST /v1/jobs: a batch of circuits
// compiled asynchronously through hilight.CompileAll. Mirroring
// CompileAll's semantics, the options (method, seed, qco, compact,
// defects, fallback) are batch-level and shared by every entry; entries
// select only the circuit and grid.
//
// The request must round-trip through JSON losslessly: the job journal
// persists the decoded struct verbatim and resurrects batches by
// re-preparing it after a crash.
type jobsRequest struct {
	// Jobs lists the batch's circuit/grid pairs.
	Jobs []batchEntry `json:"jobs"`
	// Method, Seed, QCO, Compact, Defects and Fallback apply to every
	// job, exactly as one option list applies to a whole CompileAll.
	Method   string             `json:"method,omitempty"`
	Seed     *int64             `json:"seed,omitempty"`
	QCO      *bool              `json:"qco,omitempty"`
	Compact  bool               `json:"compact,omitempty"`
	Defects  *hilight.DefectMap `json:"defects,omitempty"`
	Fallback []string           `json:"fallback,omitempty"`
	// RouteWorkers and Lookahead tune the parallel route pass for every
	// job; unset falls back to the server default, then the method preset.
	// Execution knobs only — excluded from each job's fingerprint.
	RouteWorkers *int `json:"route_workers,omitempty"`
	Lookahead    *int `json:"lookahead,omitempty"`
	// Parallelism bounds the batch's worker pool; 0 (or values above the
	// server's worker count) use the server's worker count.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS bounds the whole batch; 0 uses the server default scaled
	// by the batch's depth per worker.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// batchEntry is one async job: a circuit (QASM or benchmark) and its
// grid.
type batchEntry struct {
	QASM      string    `json:"qasm,omitempty"`
	Benchmark string    `json:"benchmark,omitempty"`
	Grid      *gridSpec `json:"grid,omitempty"`
}

// jobStatus is the JSON body of GET /v1/jobs/{id}.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // "running" or "done"
	Count  int    `json:"count"`
	// Finished counts terminally-finished jobs, live-updated while the
	// batch runs (fed by the batch's lifecycle events).
	Finished int `json:"finished"`
	// Results is present once Status is "done", in job order.
	Results []jobResultView `json:"results,omitempty"`
}

// jobResultView is the poll-time rendering of one job's outcome for the
// negotiated codec: the stored binary schedule either transcoded back to
// JSON (the default, byte-identical to the historical responses) or
// passed through as the base64 schedule_bin payload.
type jobResultView struct {
	Error  string           `json:"error,omitempty"`
	Result *compileResponse `json:"result,omitempty"`
}

// jobResult is one batch entry's stored outcome: a stored result (with
// the schedule in the binary wire encoding) or an error, never both (the
// BatchResult invariant). This is also the journal's per-job completion
// payload, so the journal carries the compact encoding. Its zero value
// means "no outcome yet" — the journal replay layer relies on that to
// tell completed jobs from incomplete ones.
type jobResult struct {
	Error  string        `json:"error,omitempty"`
	Result *storedResult `json:"result,omitempty"`
}

// empty reports whether r carries no outcome.
func (r *jobResult) empty() bool { return r.Result == nil && r.Error == "" }

// batchJob is one stored async batch.
type batchJob struct {
	id       string
	count    int
	fps      []string      // per-job fingerprints, as acknowledged
	done     chan struct{} // closed when results are ready
	finished atomic.Int64  // terminally-finished jobs, for live polls
	// onDone, when non-nil, runs once when the batch finishes — the
	// submit path parks the tenant-quota release here so a batch counts
	// against its tenant from ack to completion.
	onDone func()

	mu      sync.Mutex
	results []jobResult
}

// jobStore owns the async batches: it runs each through CompileAll on a
// background goroutine, serves status polls, and bounds memory by
// evicting the oldest completed batches beyond maxStored. Shutdown
// cancels the store context and waits for running batches to drain.
//
// With a journal attached, every acknowledged submission, job
// completion, batch seal and eviction is also persisted; restore
// rebuilds the store from a replayed journal on startup.
type jobStore struct {
	mu        sync.Mutex
	seq       int
	jobs      map[string]*batchJob
	order     []string // insertion order, for eviction
	maxStored int

	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	metrics *obs.Registry
	// events, when non-nil, additionally receives every batch job's
	// lifecycle events (the log bridge in hilightd).
	events obs.EventObserver
	// journal, when non-nil, makes acknowledged batches durable.
	journal *journal
	// watchdog aborts batches that stop making routing-cycle progress.
	watchdog *watchdog
	// cache lets resurrected batches serve journal-missed completions
	// whose schedules a previous life already compiled and cached.
	cache *scheduleCache

	submitted *obs.Counter
	completed *obs.Counter
	active    *obs.Gauge
}

func newJobStore(maxStored int, m *obs.Registry) *jobStore {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobStore{
		jobs:      make(map[string]*batchJob),
		maxStored: maxStored,
		ctx:       ctx,
		cancel:    cancel,
		metrics:   m,
		submitted: m.Counter("jobs/batches"),
		completed: m.Counter("jobs/batches-completed"),
		active:    m.Gauge("jobs/batches-active"),
	}
}

// prepare validates a batch request and resolves it into the inputs a
// CompileAll run needs. It is shared by the submit path and journal
// resurrection, so a journaled request re-prepares through exactly the
// code that validated it at ack time. It mutates req only to inject the
// server-wide route-worker default (so a journaled request replays with
// the knobs it was acknowledged under).
func prepare(req *jobsRequest, workers, routeWorkers int, defTimeout, maxTimeout time.Duration) (
	batch []hilight.BatchJob, fps []string, shared []hilight.Option, parallelism int, timeout time.Duration, err error,
) {
	if len(req.Jobs) == 0 {
		return nil, nil, nil, 0, 0, badRequest("jobs batch is empty")
	}
	if req.RouteWorkers == nil && routeWorkers != 0 {
		req.RouteWorkers = &routeWorkers // server-wide default, as in /v1/compile
	}
	const maxBatch = 4096
	if len(req.Jobs) > maxBatch {
		return nil, nil, nil, 0, 0, badRequest("jobs batch has %d entries (max %d)", len(req.Jobs), maxBatch)
	}
	// Resolve every entry up front so a malformed entry fails the submit
	// synchronously with a 400 instead of surfacing later in a poll. The
	// per-entry compileRequest carries the batch-level options, so each
	// fingerprint describes exactly the compile CompileAll will run.
	batch = make([]hilight.BatchJob, len(req.Jobs))
	fps = make([]string, len(req.Jobs))
	for i, e := range req.Jobs {
		cr := compileRequest{
			QASM: e.QASM, Benchmark: e.Benchmark, Grid: e.Grid,
			Method: req.Method, Seed: req.Seed, QCO: req.QCO,
			Compact: req.Compact, Defects: req.Defects, Fallback: req.Fallback,
			RouteWorkers: req.RouteWorkers, Lookahead: req.Lookahead,
		}
		c, g, opts, err := cr.build()
		if err != nil {
			if ae, ok := err.(*apiError); ok {
				return nil, nil, nil, 0, 0, &apiError{Status: ae.Status, Message: fmt.Sprintf("job %d: %s", i, ae.Message)}
			}
			return nil, nil, nil, 0, 0, err
		}
		fp, err := hilight.Fingerprint(c, g, opts...)
		if err != nil {
			return nil, nil, nil, 0, 0, badRequest("job %d: %v", i, err)
		}
		fps[i] = fp
		batch[i] = hilight.BatchJob{Circuit: c, Grid: g}
		if i == 0 {
			shared = opts
		}
	}

	parallelism = req.Parallelism
	if parallelism <= 0 || parallelism > workers {
		parallelism = workers
	}
	// One deadline for the whole batch: the per-compile default scaled by
	// the batch's depth per worker, unless the request asks for less.
	waves := (len(batch) + parallelism - 1) / parallelism
	timeout = clampTimeout(req.TimeoutMS, time.Duration(waves)*defTimeout, time.Duration(waves)*maxTimeout)
	return batch, fps, shared, parallelism, timeout, nil
}

// submit validates the batch, registers it, journals the acknowledgment
// (waiting for the fsync — once submit returns, the batch survives any
// crash), and launches its CompileAll run. It returns the batch id and
// the per-job fingerprints.
func (s *jobStore) submit(req *jobsRequest, workers, routeWorkers int, defTimeout, maxTimeout time.Duration, onDone func()) (string, []string, error) {
	batch, fps, shared, parallelism, timeout, err := prepare(req, workers, routeWorkers, defTimeout, maxTimeout)
	if err != nil {
		return "", nil, err
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := &batchJob{id: id, count: len(batch), fps: fps, done: make(chan struct{}), onDone: onDone}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictLocked()
	s.mu.Unlock()

	if s.journal != nil {
		if err := s.journal.appendSubmit(id, req, fps); err != nil {
			// The 202 ack promises durability; if the journal can't deliver
			// it, withdraw the registration and fail the submit instead of
			// lying to the client.
			s.mu.Lock()
			delete(s.jobs, id)
			for i, oid := range s.order {
				if oid == id {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			return "", nil, &apiError{Status: 500, Message: fmt.Sprintf("job journal unavailable: %v", err)}
		}
	}

	s.submitted.Inc()
	s.active.Add(1)
	s.wg.Add(1)
	go s.run(j, batch, fps, shared, parallelism, timeout, nil)
	return id, fps, nil
}

// run executes the batch and publishes its results. pre, when non-nil,
// carries per-job outcomes a journal replay already settled: those jobs
// are not recompiled. Remaining jobs first consult the schedule cache
// by fingerprint (a previous life may have compiled them without the
// completion record surviving), and only the rest go through CompileAll.
//
// Each job's outcome is journaled the moment it lands (via WithJobDone),
// so a crash mid-batch preserves completed jobs. Outcomes that only
// reflect cancellation — shutdown, timeout, a watchdog abort — are
// deliberately NOT journaled: they are transient, and persisting them
// would turn a restart's resurrection into a permanent failure. A batch
// is sealed with a terminal record only when every job's outcome was
// journaled; an unsealed batch resurrects on the next startup.
func (s *jobStore) run(j *batchJob, batch []hilight.BatchJob, fps []string, shared []hilight.Option, parallelism int, timeout time.Duration, pre []jobResult) {
	defer s.wg.Done()
	out := make([]jobResult, len(batch))
	var unjournaled atomic.Int64
	record := func(i int, transient bool) {
		if s.journal == nil {
			return
		}
		if transient {
			unjournaled.Add(1)
			return
		}
		if err := s.journal.appendJob(j.id, i, &out[i]); err != nil {
			unjournaled.Add(1)
		}
	}

	// Partition the batch: journal-replayed outcomes are final,
	// cache-known fingerprints are served without recompiling, and only
	// the remainder (subIdx) is handed to CompileAll.
	var subIdx []int
	for i := range batch {
		if pre != nil && !pre[i].empty() {
			out[i] = pre[i]
			j.finished.Add(1)
			continue
		}
		if pre != nil && s.cache != nil {
			if sr, ok := s.cache.Get(fps[i]); ok {
				hit := *sr // shallow copy; ScheduleBin bytes are immutable
				hit.Cached = true
				out[i] = jobResult{Result: &hit}
				j.finished.Add(1)
				record(i, false)
				continue
			}
		}
		subIdx = append(subIdx, i)
	}

	if len(subIdx) > 0 {
		sub := make([]hilight.BatchJob, len(subIdx))
		for k, i := range subIdx {
			sub[k] = batch[i]
		}
		wctx, progress, stopWd := s.watchdog.guard(s.ctx, j.id)
		opts := append([]hilight.Option{}, shared...)
		opts = append(opts,
			hilight.WithContext(wctx),
			hilight.WithTimeout(timeout),
			hilight.WithMetrics(s.metrics),
			hilight.WithObserver(func(cs hilight.CycleStats) {
				progress()
				routeCycleHook(cs)
			}),
			hilight.WithEvents(func(e hilight.CompileEvent) {
				if e.Kind == hilight.EventJobFinish || e.Kind == hilight.EventJobPanic {
					j.finished.Add(1)
				}
				if s.events != nil {
					s.events.OnEvent(e)
				}
			}),
			hilight.WithJobDone(func(k int, br hilight.BatchResult) {
				// subIdx entries are disjoint, so concurrent callbacks write
				// disjoint out slots; CompileAll's return is the fence that
				// publishes them to this goroutine.
				i := subIdx[k]
				switch {
				case br.Err != nil:
					out[i] = jobResult{Error: br.Err.Error()}
				default:
					sr, err := newStoredResult(fps[i], br.Result)
					if err != nil {
						out[i] = jobResult{Error: err.Error()}
					} else {
						out[i] = jobResult{Result: sr}
					}
				}
				record(i, errors.Is(br.Err, hilight.ErrCanceled))
			}),
		)
		hilight.CompileAll(sub, parallelism, opts...)
		stopWd()
		if stalled(wctx) {
			s.watchdog.aborted.Inc()
		}
	}

	if s.journal != nil && unjournaled.Load() == 0 {
		// Seal the batch. appendDone waits for the fsync, so every
		// fire-and-forget completion queued above is durable before the
		// terminal record that vouches for them. A failed seal leaves the
		// batch resurrectable — safe, just not final.
		_ = s.journal.appendDone(j.id)
	}

	j.mu.Lock()
	j.results = out
	j.mu.Unlock()
	close(j.done)
	s.completed.Inc()
	s.active.Add(-1)
	if j.onDone != nil {
		j.onDone()
	}
}

// restore rebuilds the store from replayed journal batches, in their
// original submission order. Sealed batches are reinstalled verbatim —
// a poll for them returns byte-for-byte what it would have before the
// crash. Unsealed batches are resurrected: their journaled outcomes are
// kept and only the incomplete jobs re-run, under the fingerprints the
// original ack promised. Called from New before the server serves.
func (s *jobStore) restore(batches []*replayBatch, workers, routeWorkers int, defTimeout, maxTimeout time.Duration) {
	replayedB := s.metrics.Counter("journal/replayed-batches")
	resurrectedB := s.metrics.Counter("journal/resurrected-batches")
	replayedJ := s.metrics.Counter("journal/replayed-jobs")
	rerunJ := s.metrics.Counter("journal/rerun-jobs")
	for _, rb := range batches {
		j := &batchJob{id: rb.id, count: len(rb.fps), fps: rb.fps, done: make(chan struct{})}
		s.jobs[rb.id] = j
		s.order = append(s.order, rb.id)
		replayedB.Inc()
		replayedJ.Add(int64(rb.have))

		if rb.done {
			j.results = rb.results
			j.finished.Store(int64(len(rb.fps)))
			close(j.done)
			continue
		}

		resurrectedB.Inc()
		rerunJ.Add(int64(len(rb.fps) - rb.have))
		req := rb.req // copy: prepare may inject the route-worker default
		batch, _, shared, parallelism, timeout, err := prepare(&req, workers, routeWorkers, defTimeout, maxTimeout)
		if err != nil || len(batch) != len(rb.fps) {
			// The journaled request no longer prepares into the batch the
			// ack described (version skew, a renamed benchmark). Fail the
			// incomplete jobs explicitly rather than guess at intent; the
			// journaled completions are still served.
			msg := fmt.Sprintf("journaled batch has %d jobs, request resolves to %d", len(rb.fps), len(batch))
			if err != nil {
				msg = err.Error()
			}
			for i := range rb.results {
				if rb.results[i].empty() {
					rb.results[i] = jobResult{Error: fmt.Sprintf("resurrection failed: %s", msg)}
				}
			}
			j.results = rb.results
			j.finished.Store(int64(len(rb.fps)))
			close(j.done)
			continue
		}

		// Re-run under the journaled fingerprints, not freshly computed
		// ones: the ack already promised these ids to the client, and the
		// compile options they digest are identical.
		s.submitted.Inc()
		s.active.Add(1)
		s.wg.Add(1)
		go s.run(j, batch, rb.fps, shared, parallelism, timeout, rb.results)
	}
}

// status returns the batch's poll view, rendering each stored outcome
// for the negotiated codec. JSON transcoding of a stored schedule is
// deterministic, so repeated polls of a sealed batch stay byte-identical
// — the resilience and chaos guarantees ride on that.
func (s *jobStore) status(id string, codec wire.Codec) (*jobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	st := &jobStatus{ID: j.id, Count: j.count}
	select {
	case <-j.done:
		st.Status = "done"
		st.Finished = j.count
		j.mu.Lock()
		results := j.results
		j.mu.Unlock()
		st.Results = make([]jobResultView, len(results))
		for i := range results {
			if r := results[i].Result; r != nil {
				resp, err := r.response(codec)
				if err != nil {
					st.Results[i] = jobResultView{Error: err.Error()}
					continue
				}
				st.Results[i] = jobResultView{Result: resp}
			} else {
				st.Results[i] = jobResultView{Error: results[i].Error}
			}
		}
	default:
		st.Status = "running"
		st.Finished = int(j.finished.Load())
	}
	return st, true
}

// evictLocked drops the oldest completed batches beyond maxStored.
// Running batches are never evicted — their goroutine still needs the
// entry, and a poller would lose a batch it just submitted. Evictions
// are journaled so a replay drops the same batches.
func (s *jobStore) evictLocked() {
	for len(s.jobs) > s.maxStored {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			select {
			case <-j.done:
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				if s.journal != nil {
					_ = s.journal.appendEvict(id)
				}
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything is still running; allow the overshoot
		}
	}
}

// shutdown drains running batches: it first waits for them to finish
// naturally, and only when ctx expires cancels the remainder (CompileAll
// then drains promptly — undispatched jobs fail ErrCanceled directly)
// and waits for the goroutines to exit. The journal is flushed and
// closed either way.
func (s *jobStore) shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.cancel()
	case <-ctx.Done():
		s.cancel()
		<-done
		err = fmt.Errorf("service: job store drain cut short: %w", ctx.Err())
	}
	if s.journal != nil {
		s.journal.close()
	}
	return err
}

// kill hard-stops the store, emulating a process crash: batches are
// canceled, the journal drops its unsynced tail (exactly what kill -9
// would lose), and the goroutines are reaped so tests can assert leak
// freedom.
func (s *jobStore) kill() {
	s.cancel()
	if s.journal != nil {
		s.journal.kill()
	}
	s.wg.Wait()
}
