package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hilight"
	"hilight/internal/wire"
)

// This file is the service's edge API for the cluster coordinator: the
// pieces of the request pipeline a routing tier needs — fingerprinting
// without compiling, splitting a batch into shardable units, and
// transcoding worker envelopes back to the canonical client JSON — all
// exported through the same code paths the single-node server runs, so
// a coordinator in front of workers is byte-compatible with one node.

// Unit is one schedulable compile extracted from a request: the public
// fingerprint it shards on and a self-contained POST /v1/compile body
// that reproduces exactly that compile on any worker.
type Unit struct {
	Fingerprint string
	Body        []byte
}

// DigestCompile validates a POST /v1/compile body and returns its cache
// fingerprint without compiling. Errors are *apiError-backed: feed them
// to HTTPStatus for the status/message the single-node server would
// have answered.
func DigestCompile(body []byte) (string, error) {
	var req compileRequest
	if err := decodeStrict(body, &req); err != nil {
		return "", err
	}
	c, g, opts, err := req.build()
	if err != nil {
		return "", err
	}
	fp, err := hilight.Fingerprint(c, g, opts...)
	if err != nil {
		return "", badRequest("%v", err)
	}
	return fp, nil
}

// SplitJobs validates a POST /v1/jobs body and splits it into per-job
// units, each carrying the batch-level options inline — the same
// expansion prepare() performs before CompileAll, so unit fingerprints
// equal the ones a single-node ack would return.
func SplitJobs(body []byte) ([]Unit, error) {
	var req jobsRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Jobs) == 0 {
		return nil, badRequest("jobs batch is empty")
	}
	const maxBatch = 4096
	if len(req.Jobs) > maxBatch {
		return nil, badRequest("jobs batch has %d entries (max %d)", len(req.Jobs), maxBatch)
	}
	units := make([]Unit, len(req.Jobs))
	for i, e := range req.Jobs {
		cr := compileRequest{
			QASM: e.QASM, Benchmark: e.Benchmark, Grid: e.Grid,
			Method: req.Method, Seed: req.Seed, QCO: req.QCO,
			Compact: req.Compact, Defects: req.Defects, Fallback: req.Fallback,
			RouteWorkers: req.RouteWorkers, Lookahead: req.Lookahead,
		}
		c, g, opts, err := cr.build()
		if err != nil {
			var ae *apiError
			if errors.As(err, &ae) {
				return nil, &apiError{Status: ae.Status, Message: fmt.Sprintf("job %d: %s", i, ae.Message)}
			}
			return nil, err
		}
		fp, err := hilight.Fingerprint(c, g, opts...)
		if err != nil {
			return nil, badRequest("job %d: %v", i, err)
		}
		ub, err := json.Marshal(&cr)
		if err != nil {
			return nil, fmt.Errorf("service: marshal unit %d: %w", i, err)
		}
		units[i] = Unit{Fingerprint: fp, Body: ub}
	}
	return units, nil
}

// EnvelopeMeta is the routing-relevant metadata of a transcoded
// envelope.
type EnvelopeMeta struct {
	Fingerprint string
	Cached      bool
}

// TranscodeEnvelope converts a worker's binary-envelope response
// (Accept: application/x-hilight-sched+json) into the canonical JSON
// body the single-node server writes for the same compile — the same
// structs and the same encoder settings, so the client-visible bytes
// are identical.
func TranscodeEnvelope(envelope []byte) ([]byte, EnvelopeMeta, error) {
	resp, meta, err := decodeEnvelope(envelope)
	if err != nil {
		return nil, EnvelopeMeta{}, err
	}
	body, err := encodeJSONBody(resp)
	if err != nil {
		return nil, EnvelopeMeta{}, err
	}
	return body, meta, nil
}

// UnitOutcome is one dispatched unit's terminal result at the
// coordinator: a worker envelope, or an error message.
type UnitOutcome struct {
	Err      string
	Envelope []byte
}

// ComposeJobStatus renders the canonical GET /v1/jobs/{id} body from
// per-unit outcomes — byte-identical to a single-node poll of the same
// batch state. With done unset the outcomes are ignored and a running
// view (finished of count) is rendered.
func ComposeJobStatus(id string, count, finished int, done bool, outcomes []UnitOutcome) ([]byte, error) {
	st := jobStatus{ID: id, Count: count, Finished: finished, Status: "running"}
	if done {
		st.Status = "done"
		st.Finished = count
		st.Results = make([]jobResultView, len(outcomes))
		for i, o := range outcomes {
			if o.Err != "" {
				st.Results[i] = jobResultView{Error: o.Err}
				continue
			}
			resp, _, err := decodeEnvelope(o.Envelope)
			if err != nil {
				st.Results[i] = jobResultView{Error: err.Error()}
				continue
			}
			// Batch results never report Cached in the single-node store
			// (the flag describes the sync endpoint's cache, not worker
			// placement), so the transcode clears it for byte-identity.
			resp.Cached = false
			st.Results[i] = jobResultView{Result: resp}
		}
	}
	return encodeJSONBody(&st)
}

// ErrorBody renders the canonical JSON error envelope for msg — what
// fail() writes — so coordinator-originated errors are
// indistinguishable from worker ones.
func ErrorBody(msg string) []byte {
	b, _ := encodeJSONBody(errorBody(msg))
	return b
}

// HTTPStatus maps an edge error onto the status and message the
// single-node server would answer: *apiError carries its own status,
// anything else is a 500.
func HTTPStatus(err error) (int, string) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status, ae.Message
	}
	return http.StatusInternalServerError, err.Error()
}

// decodeStrict mirrors decodeBody's strictness (unknown fields are
// request errors) for already-buffered bodies.
func decodeStrict(body []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// decodeEnvelope parses a worker's binary-envelope body and transcodes
// the schedule payload to the canonical inline JSON form.
func decodeEnvelope(envelope []byte) (*compileResponse, EnvelopeMeta, error) {
	var resp compileResponse
	if err := json.Unmarshal(envelope, &resp); err != nil {
		return nil, EnvelopeMeta{}, fmt.Errorf("service: worker envelope: %w", err)
	}
	meta := EnvelopeMeta{Fingerprint: resp.Fingerprint, Cached: resp.Cached}
	if len(resp.ScheduleBin) == 0 {
		return nil, EnvelopeMeta{}, fmt.Errorf("service: worker envelope has no schedule payload")
	}
	sr := storedResult{Fingerprint: resp.Fingerprint, ScheduleBin: resp.ScheduleBin}
	full, err := sr.response(wire.JSON)
	if err != nil {
		return nil, EnvelopeMeta{}, err
	}
	resp.Schedule = full.Schedule
	resp.ScheduleBin = nil
	return &resp, meta, nil
}

// encodeJSONBody renders v exactly as writeJSON does (two-space indent,
// trailing newline) without a ResponseWriter.
func encodeJSONBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
