package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"hilight/internal/obs"
)

// The job journal is hilightd's crash-safety layer: an append-only JSONL
// write-ahead log that records every acknowledged async batch (the full
// request payload plus per-job fingerprints), every per-job completion
// (the wire-form result), each batch's terminal state, and evictions.
// Appends are group-committed: concurrent writers hand lines to a single
// syncer goroutine that writes them in arrival order and fsyncs once per
// batch, so a submit ack waits for exactly one (shared) fsync and a
// kill -9 can only lose records that were never acknowledged.
//
// On startup the journal is replayed: finished batches are reinstalled
// verbatim (their results byte-stable across replays), unfinished
// batches are resurrected with only their incomplete jobs re-run, and
// the log is compacted to the retained records via an atomic
// write-tmp-then-rename before the new process appends anything.
//
// Record kinds, one JSON object per line:
//
//	{"kind":"submit","id":"job-000001","req":{...},"fps":["..."]}
//	{"kind":"job","id":"job-000001","job":2,"res":{...}}
//	{"kind":"done","id":"job-000001"}
//	{"kind":"evict","id":"job-000001"}
//	{"kind":"session","id":"<child fp>","fps":["<parent fp>"],"res":{...}}
//
// A session record captures compile lineage: the stored result of a
// recompile (If-Fingerprint-Match or a defect-feed refresh) keyed by its
// child fingerprint, with the parent fingerprint alongside. Replay seeds
// the schedule cache with these results, so a restarted daemon keeps
// serving warm starts against the same parents its previous life built.
const (
	recSubmit  = "submit"
	recJob     = "job"
	recDone    = "done"
	recEvict   = "evict"
	recSession = "session"
)

// journalFile is the single segment file inside the journal directory.
const journalFile = "journal.jsonl"

// errJournalDown reports an append against a killed or closed journal.
var errJournalDown = errors.New("service: journal is down")

// journalRecord is the wire form of one journal line.
type journalRecord struct {
	Kind string          `json:"kind"`
	ID   string          `json:"id"`
	Req  json.RawMessage `json:"req,omitempty"`
	Fps  []string        `json:"fps,omitempty"`
	Job  int             `json:"job,omitempty"`
	Res  json.RawMessage `json:"res,omitempty"`
}

// appendWait is one enqueued line; done (when non-nil) receives the
// fsync outcome of the group commit that covered the line.
type appendWait struct {
	line []byte
	done chan error
}

// journal owns the append side of the WAL. Appends are funneled through
// ch to the syncer goroutine; quit tears the journal down (killed
// selects drop-everything crash semantics, otherwise remaining queued
// lines are flushed).
type journal struct {
	path string
	f    *os.File

	ch   chan appendWait
	quit chan struct{}
	down sync.Once
	wg   sync.WaitGroup

	// killed flips the teardown mode to crash emulation: queued and
	// future lines are dropped instead of flushed. Written before quit
	// closes, read after — the channel close is the memory fence.
	killed bool

	appends   *obs.Counter
	appendErr *obs.Counter
	fsyncs    *obs.Counter
	bytes     *obs.Counter
}

// replayBatch is one batch reconstructed from the journal.
type replayBatch struct {
	id      string
	seq     int
	reqRaw  json.RawMessage
	req     jobsRequest
	fps     []string
	done    bool
	results []jobResult // len == len(fps); zero entry ⇒ no completion record
	have    int         // completed entries in results
}

// openJournal replays, prunes and compacts the journal under dir, then
// opens it for appending. It returns the retained batches in submission
// order (finished batches beyond maxStored are dropped, mirroring the
// job store's eviction policy), the retained session records (bounded by
// the same maxStored, newest kept), and the highest batch sequence
// number ever used, so new ids never collide with replayed ones.
func openJournal(dir string, maxStored int, m *obs.Registry) (*journal, []*replayBatch, []*journalRecord, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	batches, sessions, maxSeq, err := readJournal(path, m)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	batches = pruneReplay(batches, maxStored, m)
	sessions = pruneSessions(sessions, maxStored, m)
	if err := compactJournal(path, batches, sessions); err != nil {
		return nil, nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	j := &journal{
		path:      path,
		f:         f,
		ch:        make(chan appendWait, 256),
		quit:      make(chan struct{}),
		appends:   m.Counter("journal/appends"),
		appendErr: m.Counter("journal/append-errors"),
		fsyncs:    m.Counter("journal/fsyncs"),
		bytes:     m.Counter("journal/bytes"),
	}
	j.wg.Add(1)
	go j.syncer()
	return j, batches, sessions, maxSeq, nil
}

// append enqueues rec. With wait set it blocks until the group commit
// containing the record has been fsynced and returns its outcome — the
// durability barrier a submit ack and a batch terminal record need.
// Without wait it returns once the record is queued; the syncer writes
// queued records in order, so a later waited append also covers it.
func (j *journal) append(rec *journalRecord, wait bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		j.appendErr.Inc()
		return fmt.Errorf("journal: encode: %w", err)
	}
	aw := appendWait{line: append(line, '\n')}
	if wait {
		aw.done = make(chan error, 1)
	}
	select {
	case j.ch <- aw:
	case <-j.quit:
		j.appendErr.Inc()
		return errJournalDown
	}
	if !wait {
		return nil
	}
	select {
	case err := <-aw.done:
		if err != nil {
			j.appendErr.Inc()
		}
		return err
	case <-j.quit:
		j.appendErr.Inc()
		return errJournalDown
	}
}

// syncer is the single writer: it drains whatever is queued, writes the
// batch in one contiguous write, fsyncs once, and releases every waiter
// of the group. It exits when quit closes — flushing the queue on a
// graceful close, dropping it on kill.
func (j *journal) syncer() {
	defer j.wg.Done()
	var buf []byte
	var waits []chan error
	for {
		var first appendWait
		select {
		case first = <-j.ch:
		case <-j.quit:
			if !j.killed {
				j.flushQueued()
			}
			j.refuseQueued()
			j.f.Close()
			return
		}
		buf, waits = buf[:0], waits[:0]
		buf = append(buf, first.line...)
		if first.done != nil {
			waits = append(waits, first.done)
		}
	drain:
		for len(buf) < 1<<20 {
			select {
			case aw := <-j.ch:
				buf = append(buf, aw.line...)
				if aw.done != nil {
					waits = append(waits, aw.done)
				}
			default:
				break drain
			}
		}
		err := j.commit(buf)
		for _, d := range waits {
			d <- err
		}
	}
}

// commit writes one group's lines and fsyncs.
func (j *journal) commit(buf []byte) error {
	if _, err := j.f.Write(buf); err != nil {
		j.appendErr.Inc()
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.appendErr.Inc()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.fsyncs.Inc()
	j.bytes.Add(int64(len(buf)))
	j.appends.Add(int64(countLines(buf)))
	return nil
}

// flushQueued commits everything still sitting in the channel (graceful
// close path). Senders blocked on done channels were all released by
// commit already or will be refused below; queued fire-and-forget lines
// make it to disk.
func (j *journal) flushQueued() {
	var buf []byte
	var waits []chan error
	for {
		select {
		case aw := <-j.ch:
			buf = append(buf, aw.line...)
			if aw.done != nil {
				waits = append(waits, aw.done)
			}
		default:
			err := error(nil)
			if len(buf) > 0 {
				err = j.commit(buf)
			}
			for _, d := range waits {
				d <- err
			}
			return
		}
	}
}

// refuseQueued fails any waiter that raced its enqueue against quit.
func (j *journal) refuseQueued() {
	for {
		select {
		case aw := <-j.ch:
			if aw.done != nil {
				aw.done <- errJournalDown
			}
		default:
			return
		}
	}
}

// close flushes queued records and releases the file. Idempotent with
// kill — whichever runs first decides the teardown mode.
func (j *journal) close() {
	j.down.Do(func() { close(j.quit) })
	j.wg.Wait()
}

// kill emulates a process crash: queued-but-uncommitted records are
// dropped, future appends fail, and the file handle is released without
// a final flush. Records whose group commit already fsynced are — as
// with a real kill -9 — on disk. Idempotent with close.
func (j *journal) kill() {
	j.down.Do(func() {
		j.killed = true
		close(j.quit)
	})
	j.wg.Wait()
}

// appendSubmit journals a batch acknowledgment and waits for the fsync:
// once it returns nil the submission survives any crash.
func (j *journal) appendSubmit(id string, req *jobsRequest, fps []string) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("journal: encode request: %w", err)
	}
	return j.append(&journalRecord{Kind: recSubmit, ID: id, Req: raw, Fps: fps}, true)
}

// appendJob journals one job completion (fire-and-forget: the batch
// terminal record is the durability barrier that covers it).
func (j *journal) appendJob(id string, job int, r *jobResult) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: encode result: %w", err)
	}
	return j.append(&journalRecord{Kind: recJob, ID: id, Job: job, Res: raw}, false)
}

// appendDone seals a batch: it waits for the fsync, so every completion
// queued before it is durable once it returns.
func (j *journal) appendDone(id string) error {
	return j.append(&journalRecord{Kind: recDone, ID: id}, true)
}

// appendEvict journals a batch eviction (fire-and-forget; a lost evict
// only means the next compaction re-drops the batch).
func (j *journal) appendEvict(id string) error {
	return j.append(&journalRecord{Kind: recEvict, ID: id}, false)
}

// appendSession journals a session recompile's lineage and stored result,
// waiting for the fsync: once it returns nil the child schedule — and
// with it the warm-start parent chain — survives any crash, so an acked
// session request is never lost.
func (j *journal) appendSession(child, parent string, res json.RawMessage) error {
	return j.append(&journalRecord{Kind: recSession, ID: child, Fps: []string{parent}, Res: res}, true)
}

// parseBatchSeq extracts the numeric sequence from a "job-%06d" id.
func parseBatchSeq(id string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(id, "job-%d", &seq); err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// readJournal parses the journal into per-batch replay state. A torn
// tail — a trailing line that is incomplete or fails to parse, the only
// damage an append-only log can take from a crash — is dropped and
// counted; replay stops at the first damaged line since nothing after
// it can be trusted. Duplicate completions for the same (batch, job)
// keep the first record and are counted: a correct journal never
// contains one, so the counter doubles as the chaos harness's
// no-duplicates probe.
func readJournal(path string, m *obs.Registry) ([]*replayBatch, []*journalRecord, int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	torn := m.Counter("journal/torn-records")
	dups := m.Counter("journal/duplicate-completions")
	var (
		batches  []*replayBatch
		sessions []*journalRecord
		sessIdx  = map[string]int{}
		byID     = map[string]*replayBatch{}
		evicted  = map[string]bool{}
		maxSeq   int
	)
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				torn.Inc() // crash mid-write: no trailing newline
			}
			break
		}
		if err != nil {
			return nil, nil, 0, fmt.Errorf("journal: read: %w", err)
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			torn.Inc()
			break
		}
		if seq, ok := parseBatchSeq(rec.ID); ok && seq > maxSeq {
			maxSeq = seq
		}
		if evicted[rec.ID] {
			continue
		}
		switch rec.Kind {
		case recSubmit:
			if byID[rec.ID] != nil {
				continue // duplicate submit: keep the first
			}
			rb := &replayBatch{id: rec.ID, reqRaw: rec.Req, fps: rec.Fps}
			rb.seq, _ = parseBatchSeq(rec.ID)
			if err := json.Unmarshal(rec.Req, &rb.req); err != nil {
				torn.Inc()
				continue
			}
			rb.results = make([]jobResult, len(rb.fps))
			byID[rec.ID] = rb
			batches = append(batches, rb)
		case recJob:
			rb := byID[rec.ID]
			if rb == nil || rec.Job < 0 || rec.Job >= len(rb.results) {
				continue
			}
			if rb.results[rec.Job].Result != nil || rb.results[rec.Job].Error != "" {
				dups.Inc()
				continue
			}
			var jr jobResult
			if err := json.Unmarshal(rec.Res, &jr); err != nil {
				torn.Inc()
				continue
			}
			rb.results[rec.Job] = jr
			rb.have++
		case recDone:
			if rb := byID[rec.ID]; rb != nil && rb.have == len(rb.results) {
				rb.done = true
			}
		case recEvict:
			if rb := byID[rec.ID]; rb != nil {
				delete(byID, rec.ID)
				for i, b := range batches {
					if b.id == rec.ID {
						batches = append(batches[:i], batches[i+1:]...)
						break
					}
				}
			}
			evicted[rec.ID] = true
		case recSession:
			if len(rec.Res) == 0 {
				torn.Inc()
				continue
			}
			r := rec
			if i, ok := sessIdx[rec.ID]; ok {
				// The same child fingerprint recompiled again (e.g. against a
				// different parent after a defect feed): the newest lineage
				// wins, matching the cache's view of the fingerprint.
				sessions[i] = &r
				continue
			}
			sessIdx[rec.ID] = len(sessions)
			sessions = append(sessions, &r)
		}
	}
	return batches, sessions, maxSeq, nil
}

// pruneSessions bounds retained session records: the newest maxStored
// survive, older lineage is compacted away (losing it only costs a cold
// recompile after the next restart, never correctness).
func pruneSessions(sessions []*journalRecord, maxStored int, m *obs.Registry) []*journalRecord {
	drop := len(sessions) - maxStored
	if drop <= 0 {
		return sessions
	}
	m.Counter("journal/compacted-away").Add(int64(drop))
	return sessions[drop:]
}

// pruneReplay applies the job store's retention policy to the replayed
// batches: every unfinished batch survives, finished batches beyond
// maxStored are dropped oldest-first.
func pruneReplay(batches []*replayBatch, maxStored int, m *obs.Registry) []*replayBatch {
	finished := 0
	for _, rb := range batches {
		if rb.done {
			finished++
		}
	}
	drop := finished - maxStored
	if drop <= 0 {
		return batches
	}
	pruned := m.Counter("journal/compacted-away")
	kept := batches[:0]
	for _, rb := range batches {
		if rb.done && drop > 0 {
			drop--
			pruned.Inc()
			continue
		}
		kept = append(kept, rb)
	}
	return kept
}

// compactJournal rewrites the journal to exactly the retained batches:
// tmp file, fsync, atomic rename, directory fsync. A crash at any point
// leaves either the old or the new journal intact.
func compactJournal(path string, batches []*replayBatch, sessions []*journalRecord) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rb := range batches {
		if err := enc.Encode(&journalRecord{Kind: recSubmit, ID: rb.id, Req: rb.reqRaw, Fps: rb.fps}); err != nil {
			f.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		for i := range rb.results {
			if rb.results[i].Result == nil && rb.results[i].Error == "" {
				continue
			}
			raw, err := json.Marshal(&rb.results[i])
			if err != nil {
				f.Close()
				return fmt.Errorf("journal: compact: %w", err)
			}
			if err := enc.Encode(&journalRecord{Kind: recJob, ID: rb.id, Job: i, Res: raw}); err != nil {
				f.Close()
				return fmt.Errorf("journal: compact: %w", err)
			}
		}
		if rb.done {
			if err := enc.Encode(&journalRecord{Kind: recDone, ID: rb.id}); err != nil {
				f.Close()
				return fmt.Errorf("journal: compact: %w", err)
			}
		}
	}
	for _, rec := range sessions {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

func countLines(buf []byte) int {
	n := 0
	for _, b := range buf {
		if b == '\n' {
			n++
		}
	}
	return n
}
