package service

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"hilight"
	"hilight/internal/obs"
)

// TestWatchdogGuardFiresOnStall exercises the watchdog directly: a
// guarded context with no progress ticks must be canceled with the
// stall cause within two windows; one with steady ticks must survive.
func TestWatchdogGuardFiresOnStall(t *testing.T) {
	m := obs.NewRegistry()
	wd := newWatchdog(20*time.Millisecond, m, nil)

	ctx, _, stop := wd.guard(context.Background(), "stalling")
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a stalled guard")
	}
	if !stalled(ctx) {
		t.Fatalf("cause = %v, want errStalled", context.Cause(ctx))
	}
	if v, _ := m.Snapshot().Counter("service/watchdog/fired"); v != 1 {
		t.Errorf("service/watchdog/fired = %d, want 1", v)
	}

	live, progress, stopLive := wd.guard(context.Background(), "progressing")
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		progress()
		select {
		case <-live.Done():
			t.Fatalf("watchdog fired despite progress: %v", context.Cause(live))
		case <-time.After(2 * time.Millisecond):
		}
	}
	stopLive()
	select {
	case <-live.Done():
		if stalled(live) {
			t.Fatal("stop() reported a stall")
		}
	case <-time.After(time.Second):
		t.Fatal("stop() did not release the guard context")
	}
}

// waitNoWatchdogGoroutines polls the process stack dump until no
// watchdog ticker goroutine survives, failing after a grace period.
func waitNoWatchdogGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		dump := string(buf[:n])
		leaked := ""
		for _, g := range strings.Split(dump, "\n\n") {
			if strings.Contains(g, "service.(*watchdog).guard.") {
				leaked = g
			}
		}
		if leaked == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog goroutine leaked:\n%s", leaked)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchdogNoLeakOnEarlyFinish pins the finish-before-first-tick
// path: a compile that returns (and calls stop) long before the window
// elapses must release the ticker goroutine promptly — not after the
// first tick — and must never be counted as fired. Repeated guards make
// a slow leak visible as an accumulating goroutine count.
func TestWatchdogNoLeakOnEarlyFinish(t *testing.T) {
	m := obs.NewRegistry()
	wd := newWatchdog(time.Hour, m, nil) // first tick is an hour away
	for i := 0; i < 64; i++ {
		_, progress, stop := wd.guard(context.Background(), "early-finish")
		progress()
		stop() // the compile finished before the first tick
	}
	waitNoWatchdogGoroutines(t)
	if v, _ := m.Snapshot().Counter("service/watchdog/fired"); v != 0 {
		t.Errorf("service/watchdog/fired = %d after clean early finishes, want 0", v)
	}
}

// TestWatchdogNoLeakOnShutdown pins the server-shutdown path: a guard
// whose parent context is canceled (the job store's ctx during Shutdown
// or Kill) must release its goroutine even if the owner never reaches
// its stop call, and a post-cancel stop must stay a safe no-op.
func TestWatchdogNoLeakOnShutdown(t *testing.T) {
	m := obs.NewRegistry()
	wd := newWatchdog(time.Hour, m, nil)
	ctx, cancel := context.WithCancel(context.Background())
	gctx, _, stop := wd.guard(ctx, "shutdown")
	cancel() // server shutdown cancels the store ctx under the compile
	select {
	case <-gctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("guard context did not observe parent cancellation")
	}
	waitNoWatchdogGoroutines(t)
	if stalled(gctx) {
		t.Error("parent cancellation misreported as a stall")
	}
	stop() // late stop after shutdown must not panic or double-count
	if v, _ := m.Snapshot().Counter("service/watchdog/fired"); v != 0 {
		t.Errorf("service/watchdog/fired = %d after shutdown, want 0", v)
	}
}

// TestWatchdogDisabledIsPassthrough asserts a zero window adds nothing:
// same context back, no goroutine.
func TestWatchdogDisabledIsPassthrough(t *testing.T) {
	wd := newWatchdog(0, obs.NewRegistry(), nil)
	ctx := context.Background()
	gctx, progress, stop := wd.guard(ctx, "off")
	if gctx != ctx {
		t.Fatal("disabled watchdog wrapped the context")
	}
	progress()
	stop()
}

// TestWatchdogAbortsStuckCompile wedges a live compile via the chaos
// hook and asserts the service aborts it with 504, counts the abort,
// and emits the WatchdogFired event.
func TestWatchdogAbortsStuckCompile(t *testing.T) {
	var events []obs.Event
	var mu chanLocker
	m := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers:        2,
		Metrics:        m,
		WatchdogWindow: 30 * time.Millisecond,
		Events: obs.EventObserverFunc(func(e obs.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	})
	_ = s
	SetChaosHooks(&ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		time.Sleep(300 * time.Millisecond) // ≫ 2× window: starves the watchdog
	}})
	t.Cleanup(func() { SetChaosHooks(nil) })

	resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "rd32_270", "no_cache": true})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stuck compile answered %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "stalled") {
		t.Errorf("504 body %s does not name the stall", body)
	}
	snap := m.Snapshot()
	if v, _ := snap.Counter("service/watchdog/fired"); v < 1 {
		t.Errorf("service/watchdog/fired = %d, want ≥ 1", v)
	}
	if v, _ := snap.Counter("service/watchdog/aborted"); v != 1 {
		t.Errorf("service/watchdog/aborted = %d, want 1", v)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, e := range events {
		if e.Kind == obs.WatchdogFired {
			found = true
			if e.Job != -1 || e.Err == nil {
				t.Errorf("WatchdogFired event = %+v, want Job -1 and a cause", e)
			}
		}
	}
	if !found {
		t.Error("no WatchdogFired event emitted")
	}
}

// chanLocker is a tiny mutex (avoids importing sync just for the test).
type chanLocker struct{ ch chan struct{} }

func (l *chanLocker) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLocker) Unlock() { <-l.ch }

// TestPanicRecoveryMiddleware panics a live compile via the chaos hook
// and asserts the handler answers a 500 JSON envelope, the panic is
// counted and reported, the metrics identity holds, and the server
// keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	var events []obs.Event
	var mu chanLocker
	m := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers: 2,
		Metrics: m,
		Events: obs.EventObserverFunc(func(e obs.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	})
	_ = s
	SetChaosHooks(&ChaosHooks{OnRouteCycle: func(hilight.CycleStats) {
		panic("chaos: injected pass bug")
	}})
	t.Cleanup(func() { SetChaosHooks(nil) })

	resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "rd32_270", "no_cache": true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking compile answered %d (%s), want 500", resp.StatusCode, body)
	}
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %s", body)
	}
	if !strings.Contains(env["error"], "injected pass bug") {
		t.Errorf("error envelope %q does not carry the panic value", env["error"])
	}

	SetChaosHooks(nil)
	if resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "rd32_270"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d (%s)", resp.StatusCode, body)
	}

	snap := m.Snapshot()
	if v, _ := snap.Counter("service/panics"); v != 1 {
		t.Errorf("service/panics = %d, want 1", v)
	}
	reqs, _ := snap.Counter("service/requests")
	ok, _ := snap.Counter("service/requests-ok")
	failed, _ := snap.Counter("service/requests-failed")
	if reqs != ok+failed {
		t.Errorf("metrics identity broken: requests %d != ok %d + failed %d", reqs, ok, failed)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, e := range events {
		if e.Kind == obs.HandlerPanic {
			found = true
			if e.Err == nil || !strings.Contains(e.Err.Error(), "injected pass bug") {
				t.Errorf("HandlerPanic event %+v does not carry the panic", e)
			}
			if e.Method != "POST /v1/compile" {
				t.Errorf("HandlerPanic Method = %q", e.Method)
			}
		}
	}
	if !found {
		t.Error("no HandlerPanic event emitted")
	}
}

// makeStoredJob registers a synthetic batch directly in the store;
// running selects whether its done channel stays open.
func makeStoredJob(s *jobStore, id string, running bool) *batchJob {
	j := &batchJob{id: id, count: 1, done: make(chan struct{})}
	if !running {
		j.results = []jobResult{{Error: "x"}}
		close(j.done)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// TestEvictAllRunningOvershoot pins evictLocked's escape hatch: when
// every stored batch is still running, the bound is allowed to
// overshoot rather than evict a batch a poller could still be waiting
// on — and the overshoot is reclaimed once batches finish.
func TestEvictAllRunningOvershoot(t *testing.T) {
	s := newJobStore(1, obs.NewRegistry())
	defer s.cancel()
	j1 := makeStoredJob(s, "job-000001", true)
	j2 := makeStoredJob(s, "job-000002", true)
	makeStoredJob(s, "job-000003", true)

	s.mu.Lock()
	s.evictLocked()
	if len(s.jobs) != 3 {
		t.Fatalf("evicted a running batch: %d stored, want 3 (overshoot)", len(s.jobs))
	}
	s.mu.Unlock()

	// One batch finishes: the next eviction reclaims exactly it.
	close(j1.done)
	s.mu.Lock()
	s.evictLocked()
	if _, alive := s.jobs["job-000001"]; alive {
		t.Error("finished batch job-000001 not evicted")
	}
	if len(s.jobs) != 2 {
		t.Fatalf("%d stored after one completion, want 2 (still overshooting)", len(s.jobs))
	}
	s.mu.Unlock()

	// The rest finish: eviction converges to the bound, keeping the
	// newest.
	close(j2.done)
	s.mu.Lock()
	s.evictLocked()
	if len(s.jobs) != 1 {
		t.Fatalf("%d stored after all completions, want 1", len(s.jobs))
	}
	if _, alive := s.jobs["job-000003"]; !alive {
		t.Error("newest batch evicted; eviction order is not oldest-first")
	}
	s.mu.Unlock()
}

// TestEvictOrderAfterInterleavedCompletions pins the eviction order
// when completions interleave with running batches: the oldest
// *completed* batches go first, running ones are skipped regardless of
// age, and insertion order is preserved for survivors.
func TestEvictOrderAfterInterleavedCompletions(t *testing.T) {
	s := newJobStore(3, obs.NewRegistry())
	defer s.cancel()
	makeStoredJob(s, "job-000001", true)  // oldest, running
	makeStoredJob(s, "job-000002", false) // completed
	makeStoredJob(s, "job-000003", true)  // running
	makeStoredJob(s, "job-000004", false) // completed
	makeStoredJob(s, "job-000005", false) // newest, completed

	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()

	// 5 stored, bound 3: evict job-2 then job-4 — the two oldest
	// *completed* batches — and stop at the bound. job-1 and job-3
	// survive by virtue of running despite being older; job-5 survives
	// by recency despite being completed.
	for _, id := range []string{"job-000002", "job-000004"} {
		if _, alive := s.jobs[id]; alive {
			t.Errorf("%s still stored, want evicted", id)
		}
	}
	for _, id := range []string{"job-000001", "job-000003", "job-000005"} {
		if _, alive := s.jobs[id]; !alive {
			t.Errorf("%s evicted, want stored", id)
		}
	}
	want := []string{"job-000001", "job-000003", "job-000005"}
	if len(s.order) != len(want) {
		t.Fatalf("order = %v, want %v", s.order, want)
	}
	for i, id := range want {
		if s.order[i] != id {
			t.Fatalf("order = %v, want %v", s.order, want)
		}
	}
}
